#include "workloads/openloop.hh"

#include <cmath>
#include <coroutine>
#include <vector>

#include "cpu/admission.hh"
#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sync/lockfree_counter.hh"

namespace dsm {

namespace {

/** SplitMix64 finalizer: derive an independent stream from a seed. */
std::uint64_t
mixSeed(std::uint64_t s)
{
    std::uint64_t z = s + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Portable natural log over (0, 1]: frexp decomposition plus the
 * atanh series for ln(m), using only IEEE +,-,*,/ so exponential gap
 * draws are bit-identical across libm implementations (glibc, musl,
 * macOS all round log() differently in the last ulp, which would break
 * the cross-host byte-identity of committed open-loop baselines).
 */
double
plog(double x)
{
    // 2^53 digits of ln 2; more than double precision.
    constexpr double LN2 = 0.69314718055994530941723212145818;
    int e = 0;
    double m = std::frexp(x, &e); // x = m * 2^e, m in [0.5, 1): exact
    // ln m = 2 atanh(t), t = (m-1)/(m+1) in (-1/3, 0]; |t|^43 < 4e-21
    // so 21 terms reach full double precision.
    double t = (m - 1.0) / (m + 1.0);
    double t2 = t * t;
    double term = t;
    double sum = 0.0;
    for (int k = 1; k <= 41; k += 2) {
        sum += term / k;
        term *= t2;
    }
    return 2.0 * sum + static_cast<double>(e) * LN2;
}

/** Exponential inter-arrival gap with the given mean, at least 1. */
Tick
expGap(Rng &rng, double mean)
{
    // 53 uniform bits mapped into (0, 1]; u = 1 gives gap >= 1.
    double u = (static_cast<double>(rng.next() >> 11) + 1.0) *
               (1.0 / 9007199254740992.0);
    double g = -plog(u) * mean;
    if (g < 1.0)
        return 1;
    return static_cast<Tick>(g);
}

/** Host-side state shared by the generators and server coroutines. */
struct OpenLoopState
{
    std::vector<Rng> rng;            ///< per-node arrival stream
    std::vector<int> remaining;      ///< arrivals left to generate
    std::vector<char> gen_done;      ///< node's generator finished
    /** Server coroutine waiting for work, or null. */
    std::vector<std::coroutine_handle<>> parked;
};

/** Resume node @p i's server at the current tick if it is parked. */
void
wakeServer(System &sys, OpenLoopState &st, std::size_t i)
{
    if (std::coroutine_handle<> h = st.parked[i]) {
        st.parked[i] = nullptr;
        sys.eq().scheduleIn(0, [h] { h.resume(); });
    }
}

/** Suspend the current coroutine until wakeServer() is called. */
struct Park
{
    std::coroutine_handle<> *slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept { *slot = h; }
    void await_resume() const noexcept {}
};

/**
 * One arrival event of node @p i: offer a burst to the admission
 * queue, wake the server, and reschedule until the node's share of
 * arrivals is generated.
 */
void
arrivalEvent(System &sys, OpenLoopState &st, std::size_t i)
{
    const OpenLoopConfig &cfg = sys.admission()->cfg();
    AdmissionQueues &adm = *sys.admission();
    Rng &rng = st.rng[i];

    // Uniform batch in [1, 2*burst-1] has mean burst; the gap mean is
    // scaled by burst below, so the average rate stays rate_ppc.
    std::uint64_t batch =
        cfg.burst > 1
            ? rng.range(1, 2 * static_cast<std::uint64_t>(cfg.burst) - 1)
            : 1;
    if (batch > static_cast<std::uint64_t>(st.remaining[i]))
        batch = static_cast<std::uint64_t>(st.remaining[i]);
    for (std::uint64_t k = 0; k < batch; ++k)
        adm.offer(static_cast<NodeId>(i), sys.now());
    st.remaining[i] -= static_cast<int>(batch);

    if (st.remaining[i] > 0) {
        Tick gap =
            expGap(rng, static_cast<double>(cfg.burst) / cfg.rate_ppc);
        sys.eq().scheduleIn(gap,
                            [&sys, &st, i] { arrivalEvent(sys, st, i); });
    } else {
        st.gen_done[i] = 1;
    }
    // Wake even when everything was shed: a parked server must recheck
    // gen_done so it can retire once its generator finishes.
    wakeServer(sys, st, i);
}

/** The per-node server: drain the admission queue, one update per op. */
Task
serverThread(System &sys, Proc &p, OpenLoopState &st,
             LockFreeCounter &counter)
{
    AdmissionQueues &adm = *sys.admission();
    NodeId id = p.id();
    std::size_t i = static_cast<std::size_t>(id);
    for (;;) {
        while (adm.empty(id)) {
            if (st.gen_done[i])
                co_return;
            co_await Park{&st.parked[i]};
        }
        Tick arrival = adm.pop(id, sys.now());
        // Attribute the queueing delay to the op's trace: the tracer
        // rebases the next transaction's issue tick to the arrival so
        // sojourn = admission wait (ADMIT phase) + service.
        if (sys.txns().enabled())
            sys.txns().noteArrival(id, arrival);
        co_await counter.fetchInc(p);
        adm.complete(arrival, sys.now());
    }
}

} // namespace

OpenLoopResult
runOpenLoop(System &sys, Primitive prim)
{
    AdmissionQueues *adm = sys.admission();
    dsm_assert(adm != nullptr,
               "runOpenLoop requires cfg.openloop.enabled");
    const OpenLoopConfig &cfg = adm->cfg();

    LockFreeCounter counter(sys, prim);

    int n = sys.numProcs();
    OpenLoopState st;
    st.remaining.assign(static_cast<std::size_t>(n), cfg.ops_per_proc);
    st.gen_done.assign(static_cast<std::size_t>(n), 0);
    st.parked.assign(static_cast<std::size_t>(n), nullptr);
    st.rng.reserve(static_cast<std::size_t>(n));
    std::uint64_t base = mixSeed(sys.cfg().machine.seed);
    for (int i = 0; i < n; ++i) {
        // Each node owns an independent stream; the second mix keeps
        // neighbouring nodes' xoshiro states uncorrelated.
        st.rng.emplace_back(
            mixSeed(base + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(i + 1)));
    }

    Tick t0 = sys.now();
    for (int i = 0; i < n; ++i) {
        sys.spawn(serverThread(sys, sys.proc(i), st, counter));
        std::size_t node = static_cast<std::size_t>(i);
        Tick gap = expGap(st.rng[node],
                          static_cast<double>(cfg.burst) / cfg.rate_ppc);
        sys.eq().scheduleIn(gap, [&sys, &st, node] {
            arrivalEvent(sys, st, node);
        });
    }
    RunResult rr = sys.run();

    const OpenLoopStats &os = adm->stats();
    OpenLoopResult res;
    res.offered = os.offered;
    res.admitted = os.admitted;
    res.rejected = os.rejected;
    res.completed = os.completed;
    res.slo_violations = os.slo_violations;
    res.elapsed = sys.now() - t0;
    if (res.elapsed > 0)
        res.throughput = static_cast<double>(res.completed) /
                         static_cast<double>(res.elapsed);
    res.sojourn_mean = os.sojourn.mean();
    res.sojourn_p50 = os.sojourn.p50();
    res.sojourn_p99 = os.sojourn.p99();
    res.sojourn_p999 = os.sojourn.p999();
    res.sojourn_max = os.sojourn.max;
    res.admission_wait_mean = os.admission_wait.mean();
    if (cfg.slo_cycles != 0 && res.completed > 0)
        res.slo_frac = static_cast<double>(res.slo_violations) /
                       static_cast<double>(res.completed);
    res.correct = sys.debugRead(counter.addr()) == res.completed;
    res.completed_run = rr.completed;
    sys.reapTasks();
    return res;
}

} // namespace dsm
