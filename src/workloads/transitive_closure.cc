#include "workloads/transitive_closure.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sync/lockfree_counter.hh"
#include "sync/tree_barrier.hh"

namespace dsm {

std::vector<std::uint8_t>
referenceClosure(std::vector<std::uint8_t> e, int size)
{
    for (int i = 0; i < size; ++i)
        for (int j = 0; j < size; ++j)
            if (e[j * size + i] && i != j)
                for (int k = 0; k < size; ++k)
                    if (e[i * size + k])
                        e[j * size + k] = 1;
    return e;
}

namespace {

/** Process pid's program, transcribed from Figure 1 of the paper. */
Task
tcThread(System &sys, Proc &p, const TcConfig &cfg,
         LockFreeCounter &counter, TreeBarrier &barrier, Addr flag,
         Addr matrix, std::uint64_t &fetches)
{
    const int size = cfg.size;
    const int procs = sys.numProcs();
    auto cell = [matrix, size](int r, int c) {
        return matrix +
               (static_cast<Addr>(r) * size + c) * WORD_BYTES;
    };

    for (int i = 0; i < size; ++i) {
        if (p.id() == 0) {
            co_await p.store(counter.addr(), 0);
            co_await p.store(flag, 0);
        }
        Word row = 0;
        Word rows = 0;
        co_await barrier.arrive(p);

        while ((co_await p.load(flag)).value == 0) {
            long remaining = static_cast<long>(size) -
                             static_cast<long>(row) -
                             static_cast<long>(rows) - 1;
            rows = static_cast<Word>(
                (remaining > 0 ? remaining : 0) / 2 / procs + 1);
            row = co_await counter.fetchAdd(p, rows);
            ++fetches;
            if (row >= static_cast<Word>(size)) {
                co_await p.store(flag, 1);
                break;
            }
            Word work = rows < static_cast<Word>(size) - row
                            ? rows
                            : static_cast<Word>(size) - row;
            for (Word j = row; j < row + work; ++j) {
                Word cur_i =
                    (co_await p.load(cell(static_cast<int>(j), i))).value;
                if (cur_i != 0 && static_cast<int>(j) != i) {
                    for (int k = 0; k < size; ++k) {
                        Word pivot_k =
                            (co_await p.load(cell(i, k))).value;
                        if (pivot_k != 0)
                            co_await p.store(
                                cell(static_cast<int>(j), k), 1);
                    }
                }
            }
        }
        co_await barrier.arrive(p);
    }
}

} // namespace

TcResult
runTransitiveClosure(System &sys, const TcConfig &cfg)
{
    const int size = cfg.size;
    dsm_assert(size > 1, "matrix size must exceed 1");

    // Generate the input graph.
    Rng rng(cfg.seed);
    std::vector<std::uint8_t> input(
        static_cast<std::size_t>(size) * size, 0);
    for (int r = 0; r < size; ++r) {
        for (int c = 0; c < size; ++c) {
            if (r == c)
                continue;
            input[static_cast<std::size_t>(r) * size + c] =
                rng.chance(cfg.edge_pct, 100) ? 1 : 0;
        }
    }

    // Lay the matrix out in simulated shared memory.
    Addr matrix = sys.alloc(static_cast<std::size_t>(size) * size *
                                WORD_BYTES,
                            BLOCK_BYTES);
    for (int r = 0; r < size; ++r)
        for (int c = 0; c < size; ++c)
            sys.writeInit(matrix + (static_cast<Addr>(r) * size + c) *
                                       WORD_BYTES,
                          input[static_cast<std::size_t>(r) * size + c]);

    LockFreeCounter counter(sys, cfg.prim);
    TreeBarrier barrier(sys, sys.numProcs());
    Addr flag = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    std::uint64_t fetches = 0;

    Tick t0 = sys.now();
    for (int i = 0; i < sys.numProcs(); ++i) {
        sys.spawn(tcThread(sys, sys.proc(i), cfg, counter, barrier, flag,
                           matrix, fetches));
    }
    RunResult rr = sys.run();

    TcResult res;
    res.completed = rr.completed;
    res.elapsed = sys.now() - t0;
    res.counter_fetches = fetches;

    std::vector<std::uint8_t> expect = referenceClosure(input, size);
    res.correct = true;
    for (int r = 0; r < size && res.correct; ++r) {
        for (int c = 0; c < size; ++c) {
            Word got = sys.debugRead(
                matrix + (static_cast<Addr>(r) * size + c) * WORD_BYTES);
            bool want =
                expect[static_cast<std::size_t>(r) * size + c] != 0;
            if ((got != 0) != want) {
                res.correct = false;
                break;
            }
        }
    }
    sys.reapTasks();
    return res;
}

} // namespace dsm
