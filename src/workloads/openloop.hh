/**
 * @file
 * Open-loop serving workload: a seeded Poisson (optionally bursty)
 * arrival process offers counter updates to the bounded per-node
 * admission queues (cpu/admission.hh); each node runs a server
 * coroutine that drains its queue in FIFO order, performing one atomic
 * update per admitted arrival with the configured universal primitive.
 *
 * Unlike the paper's closed-loop synthetic applications (a fixed set of
 * processors re-issuing as soon as the previous op completes), the
 * offered load here is independent of service times, so queueing delay
 * and tail latency grow without bound past saturation — the regime the
 * SLO/tail observability layer is built to measure. Arrivals use the
 * simulation's own deterministic RNG and a portable log (no libm
 * transcendentals), preserving the determinism contract: same seed +
 * config => byte-identical results on any host, serial or --jobs N.
 */

#ifndef DSM_WORKLOADS_OPENLOOP_HH
#define DSM_WORKLOADS_OPENLOOP_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Measured results of one open-loop serving run. */
struct OpenLoopResult
{
    /** @name Serving counters (copied from the admission layer). @{ */
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t slo_violations = 0;
    /** @} */

    /** Completed updates per cycle, machine-wide. */
    double throughput = 0.0;
    Tick elapsed = 0;

    /** @name Sojourn time (admission wait + service). @{ */
    double sojourn_mean = 0.0;
    Tick sojourn_p50 = 0;
    Tick sojourn_p99 = 0;
    Tick sojourn_p999 = 0;
    Tick sojourn_max = 0;
    /** @} */

    double admission_wait_mean = 0.0;
    /** Fraction of completed ops whose sojourn exceeded the SLO. */
    double slo_frac = 0.0;

    /** Final counter value matched the number of completed updates. */
    bool correct = false;
    bool completed_run = false;
};

/**
 * Run one open-loop serving experiment on a fresh phase of @p sys,
 * which must have been built with cfg.openloop.enabled. Generates
 * OpenLoopConfig::ops_per_proc arrivals per node at rate_ppc
 * arrivals/cycle/proc (in bursts of mean size OpenLoopConfig::burst),
 * serves every admitted arrival with a counter update using @p prim,
 * and returns after the generators finish and the queues drain.
 */
OpenLoopResult runOpenLoop(System &sys, Primitive prim);

} // namespace dsm

#endif // DSM_WORKLOADS_OPENLOOP_HH
