/**
 * @file
 * The paper's three synthetic applications (Section 4.1):
 *
 *  1. a lock-free concurrent counter (LL/SC and CAS simulate
 *     fetch_and_Phi) -- Figure 3;
 *  2. a counter protected by a test-and-test-and-set lock with bounded
 *     exponential backoff (all three primitives used similarly) --
 *     Figure 4;
 *  3. a counter protected by an MCS lock (LL/SC simulates
 *     compare_and_swap) -- Figure 5.
 *
 * "Each processor executes a tight loop, in each iteration of which it
 * either updates the counter or not, depending on the desired level of
 * contention. Depending on the desired average write-run length, every
 * one or more iterations are separated by a constant-time barrier."
 *
 * Contention c: processors 0..c-1 all update in every phase.
 * Write-run a (with c == 1): in each phase exactly one processor (round
 * robin) performs a run of consecutive updates whose lengths average a.
 */

#ifndef DSM_WORKLOADS_COUNTER_APPS_HH
#define DSM_WORKLOADS_COUNTER_APPS_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Which of the three synthetic counter applications to run. */
enum class CounterKind
{
    LOCK_FREE, ///< Figure 3
    TTS,       ///< Figure 4
    MCS,       ///< Figure 5
};

const char *toString(CounterKind k);

/** Parameters of a synthetic counter run. */
struct CounterAppConfig
{
    CounterKind kind = CounterKind::LOCK_FREE;
    Primitive prim = Primitive::FAP;
    /** Contention level c: processors concurrently updating per phase. */
    int contention = 1;
    /** Average write-run length a (meaningful for the c == 1 sweeps). */
    double write_run = 1.0;
    /** Number of barrier-separated phases. */
    int phases = 128;
    /** TTS backoff parameters. */
    Tick backoff_base = 16;
    Tick backoff_cap = 1024;
};

/** Measured results of a synthetic counter run. */
struct CounterAppResult
{
    /**
     * The paper's metric: "the elapsed time averaged over a large
     * number of counter updates" -- total elapsed time of the measured
     * region divided by the number of updates. With c concurrent
     * updaters this is a throughput-style per-update cost; with c == 1
     * it equals the per-update latency (plus the constant barrier).
     */
    double avg_cycles_per_update = 0.0;
    /** Mean end-to-end latency of one update as seen by its issuer. */
    double mean_update_latency = 0.0;
    std::uint64_t updates = 0;
    Tick elapsed = 0;
    /** Final counter value matched the number of updates. */
    bool correct = false;
    /** Failed CAS/SC/TAS attempts observed. */
    std::uint64_t failed_attempts = 0;
    bool completed = false;
};

/**
 * Run one synthetic counter experiment on a fresh phase of @p sys.
 * Spawns one thread per processor; returns after all complete.
 */
CounterAppResult runCounterApp(System &sys, const CounterAppConfig &cfg);

/**
 * The run-length pattern whose mean is @p a, e.g. 1.5 -> {1, 2}.
 * Supported values: small rationals with denominator 1 or 2.
 */
std::vector<int> runLengthPattern(double a);

} // namespace dsm

#endif // DSM_WORKLOADS_COUNTER_APPS_HH
