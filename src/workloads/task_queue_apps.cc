#include "workloads/task_queue_apps.hh"

#include <memory>
#include <vector>

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sync/tts_lock.hh"

namespace dsm {

namespace {

/** Host-side bookkeeping shared by the worker threads. */
struct PoolState
{
    std::vector<int> executed; ///< times each task ran (host-side check)
    std::uint64_t tasks_run = 0;
};

/**
 * One worker: draw tasks from the lock-protected central pool until it
 * is exhausted; run each task's critical section and local computation.
 */
Task
workerThread(Proc &p, const TaskQueueConfig &cfg,
             TtsLock &pool_lock, Addr next_task,
             std::vector<std::unique_ptr<TtsLock>> &data_locks,
             Addr data, PoolState &state, bool per_column)
{
    Rng rng(cfg.seed * 1315423911ULL + static_cast<std::uint64_t>(p.id()));
    // Stagger start times: the measured SPLASH sharing patterns are
    // steady-state ones, not a synchronized-start thundering herd.
    co_await p.compute(1 + rng.below(cfg.work_max));
    for (;;) {
        // Draw the next task from the central work pool.
        co_await pool_lock.acquire(p);
        Word t = (co_await p.load(next_task)).value;
        co_await p.store(next_task, t + 1);
        co_await pool_lock.release(p);
        if (t >= static_cast<Word>(cfg.num_tasks))
            break;

        ++state.executed[static_cast<std::size_t>(t)];
        ++state.tasks_run;

        // The task's shared-data critical section.
        int lock_idx =
            per_column ? static_cast<int>(t) %
                             static_cast<int>(data_locks.size())
                       : -1;
        if (lock_idx >= 0)
            co_await data_locks[static_cast<std::size_t>(lock_idx)]
                ->acquire(p);
        for (int w = 0; w < cfg.cs_words; ++w) {
            Addr cell = data +
                        (static_cast<Addr>(t) % 64) * BLOCK_BYTES +
                        static_cast<Addr>(w % 4) * WORD_BYTES;
            Word v = (co_await p.load(cell)).value;
            co_await p.store(cell, v + 1);
        }
        if (lock_idx >= 0)
            co_await data_locks[static_cast<std::size_t>(lock_idx)]
                ->release(p);

        // Local computation between critical sections.
        co_await p.compute(rng.range(cfg.work_min, cfg.work_max));
    }
}

TaskQueueResult
runTaskQueueApp(System &sys, const TaskQueueConfig &cfg, bool per_column)
{
    TtsLock pool_lock(sys, cfg.prim, cfg.backoff_base, cfg.backoff_cap);
    std::vector<std::unique_ptr<TtsLock>> data_locks;
    if (per_column) {
        for (int i = 0; i < cfg.num_locks; ++i)
            data_locks.push_back(std::make_unique<TtsLock>(
                sys, cfg.prim, cfg.backoff_base, cfg.backoff_cap));
    }
    Addr next_task = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr data = sys.alloc(64 * BLOCK_BYTES, BLOCK_BYTES);

    PoolState state;
    state.executed.assign(static_cast<std::size_t>(cfg.num_tasks), 0);

    Tick t0 = sys.now();
    for (int i = 0; i < sys.numProcs(); ++i) {
        sys.spawn(workerThread(sys.proc(i), cfg, pool_lock, next_task,
                               data_locks, data, state, per_column));
    }
    RunResult rr = sys.run();

    TaskQueueResult res;
    res.completed = rr.completed;
    res.elapsed = sys.now() - t0;
    res.tasks_run = state.tasks_run;
    res.correct = state.tasks_run ==
                  static_cast<std::uint64_t>(cfg.num_tasks);
    for (int c : state.executed)
        if (c != 1)
            res.correct = false;

    sys.sharing().finalize();
    res.avg_write_run = sys.sharing().averageWriteRun();
    res.pct_no_contention = 100.0 * sys.sharing().contention().fraction(1);
    sys.reapTasks();
    return res;
}

} // namespace

TaskQueueResult
runLocusLike(System &sys, const TaskQueueConfig &cfg)
{
    return runTaskQueueApp(sys, cfg, false);
}

TaskQueueResult
runCholeskyLike(System &sys, const TaskQueueConfig &cfg)
{
    TaskQueueConfig c = cfg;
    if (c.num_locks < 2)
        c.num_locks = 12;
    return runTaskQueueApp(sys, c, true);
}

} // namespace dsm
