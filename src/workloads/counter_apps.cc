#include "workloads/counter_apps.hh"

#include <cmath>
#include <memory>

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sync/lockfree_counter.hh"
#include "sync/mcs_lock.hh"
#include "sync/tts_lock.hh"

namespace dsm {

const char *
toString(CounterKind k)
{
    switch (k) {
      case CounterKind::LOCK_FREE: return "lock-free";
      case CounterKind::TTS: return "tts-lock";
      case CounterKind::MCS: return "mcs-lock";
    }
    return "?";
}

std::vector<int>
runLengthPattern(double a)
{
    dsm_assert(a >= 1.0, "write-run length must be at least 1");
    int twice = static_cast<int>(std::lround(a * 2.0));
    dsm_assert(std::abs(a * 2.0 - twice) < 1e-9,
               "write-run length %.3f is not a multiple of 0.5", a);
    if (twice % 2 == 0)
        return {twice / 2};
    return {twice / 2, twice / 2 + 1};
}

namespace {

/** Shared measurement state, host-side. */
struct Metrics
{
    std::uint64_t updates = 0;
    std::uint64_t latency_sum = 0;
};

/** One counter update under the configured kind. */
CoTask<void>
doUpdate(Proc &p, const CounterAppConfig &cfg, LockFreeCounter &counter,
         TtsLock *tts, McsLock *mcs, Addr plain_counter)
{
    switch (cfg.kind) {
      case CounterKind::LOCK_FREE:
        co_await counter.fetchInc(p);
        break;
      case CounterKind::TTS: {
        co_await tts->acquire(p);
        Word v = (co_await p.load(plain_counter)).value;
        co_await p.store(plain_counter, v + 1);
        co_await tts->release(p);
        break;
      }
      case CounterKind::MCS: {
        co_await mcs->acquire(p);
        Word v = (co_await p.load(plain_counter)).value;
        co_await p.store(plain_counter, v + 1);
        co_await mcs->release(p);
        break;
      }
    }
}

/** The per-processor thread body. */
Task
counterThread(System &sys, Proc &p, const CounterAppConfig &cfg,
              SyncBarrier &barrier, LockFreeCounter &counter,
              TtsLock *tts, McsLock *mcs, Addr plain_counter,
              std::vector<int> pattern, Metrics &metrics)
{
    int procs = sys.numProcs();
    for (int phase = 0; phase < cfg.phases; ++phase) {
        bool active;
        int run_len;
        if (cfg.contention <= 1) {
            // No contention: one processor per phase, rotating, so
            // ownership of the counter changes hands between phases.
            active = phase % procs == p.id();
            run_len = pattern[static_cast<std::size_t>(phase / procs) %
                              pattern.size()];
        } else {
            active = p.id() < cfg.contention;
            run_len =
                pattern[static_cast<std::size_t>(phase) % pattern.size()];
        }
        if (active) {
            for (int k = 0; k < run_len; ++k) {
                Tick t0 = sys.now();
                co_await doUpdate(p, cfg, counter, tts, mcs,
                                  plain_counter);
                metrics.latency_sum += sys.now() - t0;
                ++metrics.updates;
            }
        }
        co_await barrier.arrive();
    }
}

} // namespace

CounterAppResult
runCounterApp(System &sys, const CounterAppConfig &cfg)
{
    dsm_assert(cfg.contention >= 1 && cfg.contention <= sys.numProcs(),
               "contention level %d out of range", cfg.contention);

    LockFreeCounter counter(sys, cfg.prim);
    std::unique_ptr<TtsLock> tts;
    std::unique_ptr<McsLock> mcs;
    if (cfg.kind == CounterKind::TTS)
        tts = std::make_unique<TtsLock>(sys, cfg.prim, cfg.backoff_base,
                                        cfg.backoff_cap);
    if (cfg.kind == CounterKind::MCS)
        mcs = std::make_unique<McsLock>(sys, cfg.prim);
    Addr plain_counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);

    SyncBarrier barrier(sys, sys.numProcs());
    Metrics metrics;
    std::vector<int> pattern = runLengthPattern(cfg.write_run);

    Tick t0 = sys.now();
    for (int i = 0; i < sys.numProcs(); ++i) {
        sys.spawn(counterThread(sys, sys.proc(i), cfg, barrier, counter,
                                tts.get(), mcs.get(), plain_counter,
                                pattern, metrics));
    }
    RunResult rr = sys.run();

    CounterAppResult res;
    res.completed = rr.completed;
    res.updates = metrics.updates;
    res.elapsed = sys.now() - t0;
    if (metrics.updates > 0) {
        res.avg_cycles_per_update =
            static_cast<double>(res.elapsed) /
            static_cast<double>(metrics.updates);
        res.mean_update_latency =
            static_cast<double>(metrics.latency_sum) /
            static_cast<double>(metrics.updates);
    }
    Word final_value = cfg.kind == CounterKind::LOCK_FREE
                           ? sys.debugRead(counter.addr())
                           : sys.debugRead(plain_counter);
    res.correct = final_value == metrics.updates;
    res.failed_attempts = counter.failedAttempts() +
                          (tts ? tts->failedAttempts() : 0);
    sys.reapTasks();
    return res;
}

} // namespace dsm
