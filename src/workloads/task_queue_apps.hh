/**
 * @file
 * Stand-ins for the paper's SPLASH applications.
 *
 * The paper uses LocusRoute and Cholesky only through their sharing
 * patterns (Section 4.2): lock variables with average write-run lengths
 * of 1.70-1.83 (LocusRoute) and 1.59-1.62 (Cholesky) and contention
 * histograms dominated by the no-contention case with low/moderate
 * tails. Since the original binaries (and MINT) are unavailable, these
 * workloads reproduce the same structure: dynamically scheduled tasks
 * drawn from a lock-protected central work pool (LocusRoute's geographic
 * cost-grid routing loop; Cholesky's supernodal elimination with
 * per-column locks), with computation between critical sections sized to
 * produce the paper's measured contention levels.
 */

#ifndef DSM_WORKLOADS_TASK_QUEUE_APPS_HH
#define DSM_WORKLOADS_TASK_QUEUE_APPS_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Parameters for the lock-based dynamic-scheduling stand-ins. */
struct TaskQueueConfig
{
    Primitive prim = Primitive::FAP;
    /** Number of tasks drawn from the central pool. */
    int num_tasks = 256;
    /** Uniform local-computation cost per task, in cycles. */
    Tick work_min = 2000;
    Tick work_max = 6000;
    /**
     * Number of data locks (1 for the LocusRoute-like central pool
     * structure; >1 for Cholesky-like per-column locks).
     */
    int num_locks = 1;
    /** Shared-data words touched inside each data critical section. */
    int cs_words = 2;
    /** TTS backoff parameters. */
    Tick backoff_base = 16;
    Tick backoff_cap = 1024;
    std::uint64_t seed = 7;
};

/** Results of a stand-in run. */
struct TaskQueueResult
{
    Tick elapsed = 0;
    bool completed = false;
    /** All tasks were executed exactly once. */
    bool correct = false;
    std::uint64_t tasks_run = 0;
    /** Sharing-pattern metrics over the run (Section 4.2). */
    double avg_write_run = 0.0;
    double pct_no_contention = 0.0;
};

/**
 * LocusRoute-like: a single lock protects the central work pool; each
 * task routes a "wire" through a shared cost grid.
 */
TaskQueueResult runLocusLike(System &sys, const TaskQueueConfig &cfg);

/**
 * Cholesky-like: tasks come from the central pool, and each updates one
 * of several columns under that column's lock.
 */
TaskQueueResult runCholeskyLike(System &sys, const TaskQueueConfig &cfg);

} // namespace dsm

#endif // DSM_WORKLOADS_TASK_QUEUE_APPS_HH
