/**
 * @file
 * The paper's Transitive Closure application (Figure 1): a Floyd-
 * Warshall-based transitive closure of a directed graph that uses a
 * lock-free counter to distribute variable-size, input-dependent jobs
 * among the processors, and the scalable tree barrier [20] for barrier
 * synchronization.
 */

#ifndef DSM_WORKLOADS_TRANSITIVE_CLOSURE_HH
#define DSM_WORKLOADS_TRANSITIVE_CLOSURE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Parameters of a Transitive Closure run. */
struct TcConfig
{
    /** Number of graph vertices (adjacency matrix is size x size). */
    int size = 48;
    /** Primitive used for the job-distribution counter. */
    Primitive prim = Primitive::FAP;
    /** Probability (out of 100) of each directed edge. */
    int edge_pct = 8;
    /** Seed for graph generation. */
    std::uint64_t seed = 42;
};

/** Results of a Transitive Closure run. */
struct TcResult
{
    Tick elapsed = 0;
    /** Matrix matches a host-computed reference closure. */
    bool correct = false;
    bool completed = false;
    std::uint64_t counter_fetches = 0;
};

/**
 * Run the Figure 1 program on all processors of @p sys.
 * The adjacency matrix is generated from cfg.seed, the parallel closure
 * is computed in simulated shared memory, and the result is verified
 * against a sequential host reference.
 */
TcResult runTransitiveClosure(System &sys, const TcConfig &cfg);

/** Host-side sequential reference (for tests). */
std::vector<std::uint8_t> referenceClosure(std::vector<std::uint8_t> e,
                                           int size);

} // namespace dsm

#endif // DSM_WORKLOADS_TRANSITIVE_CLOSURE_HH
