#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace dsm {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::element()
{
    if (_have_key) {
        // A key was just emitted; this element is its value.
        _have_key = false;
        return;
    }
    if (!_first.empty()) {
        if (!_first.back())
            _out += ',';
        _first.back() = false;
    }
}

void
JsonWriter::beginObject()
{
    element();
    _out += '{';
    _first.push_back(true);
}

void
JsonWriter::endObject()
{
    dsm_assert(!_first.empty() && !_have_key, "mismatched endObject");
    _out += '}';
    _first.pop_back();
}

void
JsonWriter::beginArray()
{
    element();
    _out += '[';
    _first.push_back(true);
}

void
JsonWriter::endArray()
{
    dsm_assert(!_first.empty() && !_have_key, "mismatched endArray");
    _out += ']';
    _first.pop_back();
}

void
JsonWriter::key(const std::string &k)
{
    dsm_assert(!_have_key, "two keys in a row: %s", k.c_str());
    element();
    _out += '"';
    _out += jsonEscape(k);
    _out += "\":";
    _have_key = true;
}

void
JsonWriter::value(const std::string &s)
{
    element();
    _out += '"';
    _out += jsonEscape(s);
    _out += '"';
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double d)
{
    element();
    // JSON has no NaN/Inf; clamp to null-like zero.
    if (!std::isfinite(d))
        d = 0.0;
    std::string t = csprintf("%.10g", d);
    _out += t;
}

void
JsonWriter::value(std::uint64_t v)
{
    element();
    _out += csprintf("%llu", static_cast<unsigned long long>(v));
}

void
JsonWriter::value(std::int64_t v)
{
    element();
    _out += csprintf("%lld", static_cast<long long>(v));
}

void
JsonWriter::value(int v)
{
    value(static_cast<std::int64_t>(v));
}

void
JsonWriter::value(unsigned v)
{
    value(static_cast<std::uint64_t>(v));
}

void
JsonWriter::value(bool b)
{
    element();
    _out += b ? "true" : "false";
}

void
JsonWriter::raw(const std::string &json)
{
    element();
    _out += json;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::OBJECT)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::num(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->kind == Kind::NUMBER ? v->number : fallback;
}

std::string
JsonValue::str(const std::string &key) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->kind == Kind::STRING ? v->string : "";
}

namespace {

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    bool
    run(JsonValue *out, std::string *err)
    {
        bool ok = parseValue(out) && (skipWs(), _pos == _text.size());
        if (!ok && err != nullptr) {
            *err = _err.empty() ? "trailing characters" : _err;
            *err += " at offset " + std::to_string(_pos);
        }
        return ok;
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;
    std::string _err;

    bool
    fail(const std::string &what)
    {
        if (_err.empty())
            _err = what;
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos >= _text.size() || _text[_pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++_pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (_text.compare(_pos, len, word) != 0)
            return fail(std::string("bad literal, wanted ") + word);
        _pos += len;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    break;
                char e = _text[_pos++];
                switch (e) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'n': out->push_back('\n'); break;
                  case 'r': out->push_back('\r'); break;
                  case 't': out->push_back('\t'); break;
                  case 'u': {
                    if (_pos + 4 > _text.size())
                        return fail("truncated \\u escape");
                    // The emitters only escape control characters, so
                    // a raw byte is a faithful enough decoding.
                    unsigned long cp = std::strtoul(
                        _text.substr(_pos, 4).c_str(), nullptr, 16);
                    out->push_back(static_cast<char>(cp & 0xff));
                    _pos += 4;
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out->push_back(c);
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = _text.c_str() + _pos;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        out->kind = JsonValue::Kind::NUMBER;
        out->number = v;
        _pos += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    parseArray(JsonValue *out)
    {
        if (!consume('['))
            return false;
        out->kind = JsonValue::Kind::ARRAY;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!parseValue(&elem))
                return false;
            out->array.push_back(std::move(elem));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume(']');
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        if (!consume('{'))
            return false;
        out->kind = JsonValue::Kind::OBJECT;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            std::string key;
            skipWs();
            if (!parseString(&key) || !consume(':'))
                return false;
            JsonValue val;
            if (!parseValue(&val))
                return false;
            out->object.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseValue(JsonValue *out)
    {
        skipWs();
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out->kind = JsonValue::Kind::STRING;
            return parseString(&out->string);
          case 't':
            out->kind = JsonValue::Kind::BOOL;
            out->boolean = true;
            return literal("true", 4);
          case 'f':
            out->kind = JsonValue::Kind::BOOL;
            out->boolean = false;
            return literal("false", 5);
          case 'n':
            out->kind = JsonValue::Kind::NUL;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *err)
{
    return Parser(text).run(out, err);
}

} // namespace dsm
