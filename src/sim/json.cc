#include "sim/json.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dsm {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::element()
{
    if (_have_key) {
        // A key was just emitted; this element is its value.
        _have_key = false;
        return;
    }
    if (!_first.empty()) {
        if (!_first.back())
            _out += ',';
        _first.back() = false;
    }
}

void
JsonWriter::beginObject()
{
    element();
    _out += '{';
    _first.push_back(true);
}

void
JsonWriter::endObject()
{
    dsm_assert(!_first.empty() && !_have_key, "mismatched endObject");
    _out += '}';
    _first.pop_back();
}

void
JsonWriter::beginArray()
{
    element();
    _out += '[';
    _first.push_back(true);
}

void
JsonWriter::endArray()
{
    dsm_assert(!_first.empty() && !_have_key, "mismatched endArray");
    _out += ']';
    _first.pop_back();
}

void
JsonWriter::key(const std::string &k)
{
    dsm_assert(!_have_key, "two keys in a row: %s", k.c_str());
    element();
    _out += '"';
    _out += jsonEscape(k);
    _out += "\":";
    _have_key = true;
}

void
JsonWriter::value(const std::string &s)
{
    element();
    _out += '"';
    _out += jsonEscape(s);
    _out += '"';
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double d)
{
    element();
    // JSON has no NaN/Inf; clamp to null-like zero.
    if (!std::isfinite(d))
        d = 0.0;
    std::string t = csprintf("%.10g", d);
    _out += t;
}

void
JsonWriter::value(std::uint64_t v)
{
    element();
    _out += csprintf("%llu", static_cast<unsigned long long>(v));
}

void
JsonWriter::value(std::int64_t v)
{
    element();
    _out += csprintf("%lld", static_cast<long long>(v));
}

void
JsonWriter::value(int v)
{
    value(static_cast<std::int64_t>(v));
}

void
JsonWriter::value(unsigned v)
{
    value(static_cast<std::uint64_t>(v));
}

void
JsonWriter::value(bool b)
{
    element();
    _out += b ? "true" : "false";
}

void
JsonWriter::raw(const std::string &json)
{
    element();
    _out += json;
}

} // namespace dsm
