#include "sim/event_queue.hh"

namespace dsm {

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() is const; the callback must be moved out, so
    // const_cast the entry before popping. The entry is never reused.
    Entry &top = const_cast<Entry &>(_heap.top());
    Tick when = top.when;
    Callback cb = std::move(top.cb);
    _heap.pop();
    dsm_assert(when >= _now, "event queue time went backwards");
    _now = when;
    ++_executed;
    cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when, std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && !_heap.empty() && _heap.top().when <= when) {
        step();
        ++n;
    }
    if (_now < when)
        _now = when;
    return n;
}

} // namespace dsm
