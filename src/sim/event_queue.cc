#include "sim/event_queue.hh"

namespace dsm {

EventQueue::~EventQueue()
{
    // Destroy the callbacks of events that never fired; the pool chunks
    // themselves are released by the unique_ptrs.
    for (Event *e : _heap)
        e->destroy(e);
}

EventQueue::Event *
EventQueue::allocate()
{
    if (_free != nullptr) {
        Event *e = _free;
        _free = e->next_free;
        return e;
    }
    if (_chunk_used == CHUNK_EVENTS) {
        _chunks.push_back(std::make_unique<Event[]>(CHUNK_EVENTS));
        _chunk_used = 0;
    }
    return &_chunks.back()[_chunk_used++];
}

void
EventQueue::release(Event *e)
{
    e->next_free = _free;
    _free = e;
}

void
EventQueue::siftUp(std::size_t i)
{
    Event *e = _heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!later(_heap[parent], e))
            break;
        _heap[i] = _heap[parent];
        i = parent;
    }
    _heap[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    Event *e = _heap[i];
    std::size_t n = _heap.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && later(_heap[child], _heap[child + 1]))
            ++child;
        if (!later(e, _heap[child]))
            break;
        _heap[i] = _heap[child];
        i = child;
    }
    _heap[i] = e;
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    Event *e = _heap.front();
    Event *last = _heap.back();
    _heap.pop_back();
    if (!_heap.empty()) {
        _heap.front() = last;
        siftDown(0);
    }
    dsm_assert(e->when >= _now, "event queue time went backwards");
    if (_sample_period != 0)
        sampleUpTo(e->when);
    _now = e->when;
    ++_executed;
    // The callback may schedule new events (allocating from the pool);
    // this event is released only after it finishes running.
    e->invoke(e);
    release(e);
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when, std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && !_heap.empty() && _heap.front()->when <= when) {
        step();
        ++n;
    }
    if (_now < when) {
        // The final clock jump crosses window boundaries too.
        if (_sample_period != 0)
            sampleUpTo(when);
        _now = when;
    }
    return n;
}

} // namespace dsm
