/**
 * @file
 * Central configuration for the simulated machine and for the atomic
 * primitive implementation under study.
 */

#ifndef DSM_SIM_CONFIG_HH
#define DSM_SIM_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace dsm {

/**
 * Coherence policy applied to atomically accessed (synchronization) data.
 * Ordinary data always uses the base write-invalidate protocol, as in the
 * paper.
 */
enum class SyncPolicy
{
    INV, ///< compute in cache controllers, write-invalidate
    UPD, ///< compute in memory, write-update
    UNC, ///< compute in memory, caching disabled
};

/** Variants of the INV implementation of compare_and_swap (Section 3). */
enum class CasVariant
{
    PLAIN, ///< obtain an exclusive copy, compare locally
    DENY,  ///< INVd: compare at home/owner; on failure grant no copy
    SHARE, ///< INVs: compare at home/owner; on failure grant shared copy
};

/**
 * Which universal primitive the synchronization algorithms are built on.
 * FAP means the native fetch_and_Phi family.
 */
enum class Primitive
{
    FAP,
    LLSC,
    CAS,
};

const char *toString(SyncPolicy p);
const char *toString(CasVariant v);
const char *toString(Primitive p);

/**
 * Configuration of the atomic-primitive implementation under study:
 * the coherence policy for sync data, the CAS flavour, and the auxiliary
 * instructions (Section 3).
 */
struct SyncConfig
{
    SyncPolicy policy = SyncPolicy::INV;
    CasVariant cas_variant = CasVariant::PLAIN;
    /** Use load_exclusive for reads that feed compare_and_swap. */
    bool use_load_exclusive = false;
    /** Issue drop_copy after atomic accesses to sync data. */
    bool use_drop_copy = false;

    /** Short label such as "INV+lx+dc" for report rows. */
    std::string label() const;
};

/** Machine-model parameters (Section 4.1 defaults: 64 nodes, 8x8 mesh). */
struct MachineConfig
{
    /** Number of processing nodes; must be mesh_x * mesh_y and <= 64. */
    int num_procs = 64;
    int mesh_x = 8;
    int mesh_y = 8;

    /** Cache geometry. */
    unsigned cache_sets = 512;
    unsigned cache_ways = 2;

    /** Cycles for a cache hit observed by the processor. */
    Tick cache_hit_latency = 1;
    /** Cycles for a cache-array access on the controller side. */
    Tick cache_access_latency = 2;
    /** Memory-module (DRAM + directory) service time per request. */
    Tick mem_service_time = 20;
    /** Network per-hop head latency. */
    Tick hop_latency = 2;
    /** Cycles to transfer one flit through an injection/ejection port. */
    Tick flit_latency = 1;
    /** Flit width in bytes. */
    unsigned flit_bytes = 8;
    /** Header bytes added to every message. */
    unsigned header_bytes = 8;
    /** Latency of a node-local (cache <-> local memory) request. */
    Tick local_latency = 4;
    /** Base delay before a NACKed request is retried. */
    Tick retry_delay = 10;
    /** Retry delay is multiplied by a random factor in [1, jitter]. */
    unsigned retry_jitter = 4;
    /** Cost of the constant-time ("magic") synthetic barrier. */
    Tick magic_barrier_cost = 10;
    /**
     * In-memory load_linked reservation limit (Section 3.1, option 3):
     * at most this many processors may hold reservations on one block;
     * beyond-limit load_linkeds return a failure indicator and their
     * store_conditionals fail locally without network traffic.
     * 0 means unlimited (the full bit-vector option).
     */
    int max_memory_reservations = 0;
    /**
     * Model the spurious reservation invalidations of real processors
     * (Section 2.1: on the MIPS R4000 reservations are invalidated on
     * context switches and TLB exceptions): every this many cycles,
     * every cache's load_linked reservation is cleared. 0 disables.
     * Lock-freedom survives "so long as we always try again".
     */
    Tick spurious_resv_period = 0;
    /** RNG seed for the whole system. */
    std::uint64_t seed = 1;

    /** Sanity-check the parameters; dsm_fatal on user error. */
    void validate() const;
};

/**
 * Event-tracer configuration. Tracing is off by default; when enabled,
 * the categories mask selects which TraceCat bits are recorded (see
 * trace/trace.hh) and capacity bounds the ring buffer.
 */
struct TraceConfig
{
    bool enabled = false;
    /** Category bitmask applied when enabled (default: everything). */
    std::uint32_t categories = 0xffffffffu;
    /** Ring-buffer capacity in records. */
    std::size_t capacity = 1u << 16;
};

/**
 * Transaction-tracer configuration (trace/txn.hh). Off by default;
 * when enabled every processor-issued operation is traced end to end,
 * with full records kept for the first @c capacity completions.
 */
struct TxnTraceConfig
{
    bool enabled = false;
    /** Completed transaction records kept (aggregation never drops). */
    std::size_t capacity = 1024;
    /** Per-transaction phase-span cap for the Perfetto export. */
    std::size_t max_spans = 512;
    /** Chain-divergence messages kept for proto/checker reporting. */
    std::size_t max_divergences = 16;
    /**
     * Slowest-transaction exemplar reservoir: keep the K slowest
     * completed transactions (by end-to-end latency, ids break ties)
     * with their full span trees, independent of the record capacity
     * above. They are exported into the Perfetto trace and the tail
     * section of telemetry/BENCH output. 0 disables the reservoir.
     */
    std::size_t exemplar_k = 0;
    /**
     * Per-transaction compact phase records kept for tail-vs-median
     * attribution (stats/attribution.hh): the conditional per-phase
     * histograms over transactions above the p90/p99 cut are computed
     * from these. Completions beyond the cap are counted as
     * tail_dropped but still aggregate normally.
     */
    std::size_t tail_capacity = 1u << 16;
};

/**
 * Time-resolved telemetry configuration (stats/timeseries.hh and
 * stats/line_profiler.hh). Off by default and free when off: the event
 * loop pays one branch per event, every protocol hook one null-pointer
 * test, and the stats JSON keeps its exact shape. When enabled, the
 * simulator samples windowed deltas of the registered counters every
 * @c window cycles into bounded ring-buffered series, attributes
 * traffic per cache line, and counts flits per directed mesh link.
 */
struct TelemetryConfig
{
    bool enabled = false;
    /** Sampling window in cycles: one sample per series per window. */
    Tick window = 4096;
    /**
     * Ring capacity per series, in windows. When a run outlives the
     * ring, the oldest windows are folded into a per-series evicted
     * sum, so retained + evicted always equals the aggregate.
     */
    std::size_t max_windows = 4096;
    /** Rows of the ranked hot-line table in exports. */
    std::size_t hot_lines = 16;
};

/**
 * Open-loop arrival configuration (workloads/openloop.hh). Off by
 * default and free when off: no admission queues are built, no stats
 * registered, and the stats JSON keeps its exact shape. When enabled,
 * a seeded Poisson (optionally bursty) arrival process offers
 * operations to bounded per-node admission queues; each node's
 * processor serves its queue in FIFO order, so latency is measured as
 * *sojourn* time (admission wait + service) against an optional SLO.
 * The arrival streams draw from per-node RNGs derived from the machine
 * seed, preserving the determinism contract: same seed + config =>
 * byte-identical statsJson regardless of --jobs.
 */
struct OpenLoopConfig
{
    bool enabled = false;
    /** Mean arrivals per cycle per processor (offered load). */
    double rate_ppc = 0.0;
    /**
     * Mean operations per arrival event. 1 gives a pure Poisson
     * process; b > 1 draws a uniform batch in [1, 2b-1] (mean b) per
     * event and scales the inter-arrival gap by b, so the offered
     * rate stays rate_ppc while arrivals clump.
     */
    int burst = 1;
    /** Bounded admission-queue depth; arrivals beyond it are shed. */
    int queue_cap = 64;
    /** Sojourn-time SLO in cycles; ops over it count as violations. 0 = off. */
    Tick slo_cycles = 0;
    /** Arrivals offered per processor (the run's stopping criterion). */
    int ops_per_proc = 256;

    /**
     * Parse a DSM_OPENLOOP-style spec into this config. "1"/"on"/
     * "default" enables the defaults above with rate=0.001; otherwise
     * a comma-separated key=value list (rate, burst, queue_cap,
     * slo_cycles, ops_per_proc).
     *
     * @return "" on success, otherwise a descriptive error.
     */
    std::string parse(const std::string &spec);

    /** Canonical key=value spec string (inverse of parse). */
    std::string summary() const;
};

/**
 * Read $DSM_OPENLOOP into an OpenLoopConfig. Unset, empty, or "0"
 * leaves it disabled; a bad spec is a fatal user error.
 */
OpenLoopConfig openLoopConfigFromEnv();

/**
 * Overload-protection configuration (mem/home_queue.hh and the serving
 * hooks in proto/controller.cc). Off by default and free when off: no
 * home queues are built, no stats registered, and the stats JSON keeps
 * its exact shape. When enabled, each of the four mechanisms is
 * independently toggleable for ablation:
 *
 *  - combining: at the home-directory service point, coalesce queued
 *    commutative requests to the same line (fetch&add increments, and
 *    duplicate read-shared fills) into one memory service slot with an
 *    exact per-requester reply fan-out, so a combining home serves k
 *    contended fetch&adds in O(1) slots instead of k.
 *  - backpressure: replies from a home carry its request-queue depth;
 *    a requester seeing depth over credit_threshold enters a throttled
 *    state for a deterministic duration and propagates it to the
 *    open-loop admission queues so shedding happens at the edge.
 *  - priority: requests retried after a NACK (or retransmitted by the
 *    recovery layer) are marked low priority; the home serves a
 *    two-level queue, foreground first, with an aging bound that
 *    promotes any low request waiting >= age_limit cycles (starvation
 *    freedom: a low head is overtaken for at most age_limit cycles).
 *  - nack_backoff: raises the NACK-retry exponential backoff cap from
 *    the built-in 4 doublings to backoff_cap, ending retry livelock at
 *    high processor counts.
 *
 * Determinism contract holds throughout: throttle durations are pure
 * functions of the observed queue depth (no RNG), and the NACK backoff
 * keeps using the machine's seeded stream.
 */
struct ServeConfig
{
    bool enabled = false;
    /** Coalesce commutative same-line requests at the home. */
    bool combining = true;
    /** Largest number of requests folded into one service slot. */
    int combine_limit = 8;
    /** Queue-depth feedback on replies + edge throttling. */
    bool backpressure = true;
    /** Home-queue depth beyond which requesters throttle. */
    int credit_threshold = 8;
    /**
     * Adaptive credit threshold ("credit_threshold=auto"): derive the
     * throttling threshold from the telemetry layer's home-queue-depth
     * series instead of the static value above — the threshold tracks
     * twice the recent per-window mean depth (floored at 2), so
     * sustained load moves the operating point while deviations above
     * the recent norm still throttle. Requires telemetry.enabled;
     * credit_threshold then only names the startup value used before
     * the first sampled window.
     */
    bool credit_auto = false;
    /** Two-level home scheduling: foreground over retry traffic. */
    bool priority = true;
    /** Cycles a low-priority request may wait before promotion. */
    Tick age_limit = 2000;
    /** Capped-exponential contention backoff for NACK retries. */
    bool nack_backoff = true;
    /** Maximum doublings of machine.retry_delay (>= the built-in 4). */
    int backoff_cap = 10;

    /**
     * Parse a DSM_SERVE-style spec into this config. "1"/"on"/
     * "default" enables all four mechanisms with the defaults above;
     * otherwise a comma-separated key=value list (combining,
     * combine_limit, backpressure, credit_threshold, priority,
     * age_limit, nack_backoff, backoff_cap).
     *
     * @return "" on success, otherwise a descriptive error.
     */
    std::string parse(const std::string &spec);

    /** Canonical key=value spec string (inverse of parse). */
    std::string summary() const;
};

/**
 * Read $DSM_SERVE into a ServeConfig. Unset, empty, or "0" leaves it
 * disabled; a bad spec is a fatal user error.
 */
ServeConfig serveConfigFromEnv();

/**
 * Upper bound on FaultConfig::msg_jitter_max: keeps injected delays far
 * below any plausible run deadline so jitter can never masquerade as a
 * hang (the watchdogs must stay able to tell slow from stuck).
 */
constexpr Tick FAULT_JITTER_HORIZON = 1u << 20;

/**
 * Deterministic fault-injection configuration (fault/fault.hh). Off by
 * default and free when off (a single null-pointer branch per hook, the
 * same discipline as the tracers). When enabled, a dedicated RNG stream
 * — independent of the protocol's backoff stream — draws bounded
 * per-message latency jitter in the mesh, spurious reservation drops
 * and forced evictions at operation issue, and extra NACK rounds at the
 * home directory. Runs are reproducible byte-for-byte at a given
 * (machine seed, fault seed) pair, including under parallel sweeps.
 */
struct FaultConfig
{
    bool enabled = false;
    /**
     * Seed for the fault RNG stream. 0 derives a stream from the
     * machine seed, so per-point seeds in a sweep vary the faults too.
     */
    std::uint64_t seed = 0;
    /** Probability that a network message's arrival is jittered. */
    double msg_jitter_prob = 0.0;
    /** Maximum jitter, in cycles, added to a jittered message. */
    Tick msg_jitter_max = 0;
    /** Probability an op issue drops a valid load_linked reservation. */
    double resv_drop_prob = 0.0;
    /** Probability an op issue first evicts the cached target block. */
    double evict_prob = 0.0;
    /** Probability a NACKable home request gets a spurious NACK. */
    double nack_prob = 0.0;
    /**
     * Per-requester cap on *consecutive* injected NACKs, so injection
     * perturbs schedules without manufacturing livelock. 0 means
     * unbounded (useful only for directed livelock tests).
     */
    int max_extra_nacks = 4;

    /** @name Message-loss faults and the end-to-end recovery layer.
     *
     * Losing a message silently would wedge the protocol, so enabling
     * any loss knob requires req_timeout > 0: the requester-side
     * transaction timer that retransmits unacknowledged requests with
     * capped exponential backoff. Only the two droppable legs — a
     * requester's request to the home and the home's reply back — are
     * ever lost; forwards, invalidations, updates, acknowledgements,
     * and write-backs stay reliable (see Msg::recoverableRequest).
     * @{ */

    /** Probability a droppable message is lost at mesh egress. */
    double msg_drop_prob = 0.0;
    /**
     * Number of "flaky link" episodes: each picks one mesh link (seeded
     * draw) that drops droppable messages with flaky_drop_prob for a
     * seeded duration. 0 disables episodes.
     */
    int flaky_links = 0;
    /** Episode start times are drawn uniformly from [0, flaky_window). */
    Tick flaky_window = 0;
    /** Episode durations are drawn uniformly from [1, flaky_duration]. */
    Tick flaky_duration = 0;
    /** Drop probability on a flaky link while its episode is active. */
    double flaky_drop_prob = 1.0;
    /**
     * Requester-side retransmission timeout in cycles (0 disables the
     * whole recovery layer; must be nonzero when any loss knob is on).
     * Retransmits back off exponentially, capped at 16x this value.
     */
    Tick req_timeout = 0;
    /**
     * Link quarantine: after quarantine_k drops on one link within
     * quarantine_window cycles, the mesh marks the link degraded and
     * reroutes around it via the alternate dimension order. 0 disables.
     */
    int quarantine_k = 0;
    Tick quarantine_window = 0;

    /** @} */

    /** @name Faulty-channel faults: reordering, duplication, corruption.
     *
     * The full faulty-channel model on top of the lossy-FIFO model
     * above. All three axes apply only to the sequence-guarded message
     * classes (droppable requests/replies plus invalidation and update
     * acknowledgements) and all three require the recovery layer
     * (req_timeout > 0): reordered and duplicated deliveries are
     * absorbed by the epoch/sequence guards, and a corrupted message is
     * detected by its checksum at ejection and becomes a loss, closing
     * through the retransmission ledger.
     * @{ */

    /** Probability a guarded message bypasses the per-dst FIFO order. */
    double reorder_prob = 0.0;
    /** Maximum ejection skew, in cycles, of a reordered message. */
    Tick reorder_max = 0;
    /** Probability a delivered guarded message is replayed later. */
    double dup_prob = 0.0;
    /** Maximum delay, in cycles, before the replayed copy arrives. */
    Tick dup_delay = 64;
    /** Probability a droppable message is corrupted in flight. */
    double corrupt_prob = 0.0;
    /**
     * Age bound on load_linked reservations, in cycles (0 = unbounded):
     * a store_conditional finding its reservation older than this fails
     * locally, so a reordered stale reply can never resurrect a dead
     * reservation.
     */
    Tick resv_max_age = 0;

    /** @} */

    /** True when any message-loss knob is armed (recovery required). */
    bool lossEnabled() const
    {
        return enabled && (msg_drop_prob > 0.0 || flaky_links > 0);
    }

    /** True when any faulty-channel axis is armed (recovery required). */
    bool chaosEnabled() const
    {
        return enabled && (reorder_prob > 0.0 || dup_prob > 0.0 ||
                           corrupt_prob > 0.0);
    }

    /** True when the end-to-end recovery layer is armed. */
    bool recoveryEnabled() const { return enabled && req_timeout > 0; }

    /**
     * True when reordering can break the per-destination FIFO delivery
     * the directory's INV/UPDATE-before-fill ordering otherwise relies
     * on; arms the requester-side fill-race tracking (TxnState::
     * fill_raced). The model checker sets reorder_prob to 1 when its
     * reorder budget is nonzero so the pure transitions see the same
     * predicate.
     */
    bool reorderPossible() const { return enabled && reorder_prob > 0.0; }

    /**
     * Parse a DSM_FAULTS-style spec into this config. "1"/"on"/
     * "default" enables a standard mix; otherwise a comma-separated
     * key=value list (jitter_prob, jitter_max, resv_drop_prob,
     * evict_prob, nack_prob, max_extra_nacks, seed, drop_prob,
     * flaky_links, flaky_window, flaky_duration, flaky_drop_prob,
     * req_timeout, quarantine_k, quarantine_window, reorder_prob,
     * reorder_max, dup_prob, dup_delay, corrupt_prob, resv_max_age).
     *
     * @return "" on success, otherwise a descriptive error.
     */
    std::string parse(const std::string &spec);

    /** Canonical key=value spec string (inverse of parse). */
    std::string summary() const;
};

/**
 * Forward-progress watchdog configuration (fault/watchdog.hh). Off by
 * default. When enabled, a transaction exceeding the retry bound or the
 * simulated-cycle age bound trips the watchdog: System::run() stops,
 * reports livelocked, and attaches a diagnosis naming the stuck
 * transaction (with its TxnTracer span tree when transaction tracing
 * is on). Deadlock detection — event queue drained while tasks remain
 * blocked — is always on and needs no configuration.
 */
struct WatchdogConfig
{
    bool enabled = false;
    /** Trip when any transaction exceeds this many retries. 0 = off. */
    int max_retries = 0;
    /** Trip when any transaction is older than this, in cycles. 0 = off. */
    Tick max_txn_age = 0;
    /** Period of the age-scan event (only used when max_txn_age > 0). */
    Tick scan_period = 10000;
};

/**
 * Model-checker configuration (mc/explorer.hh). Controls the shape of
 * the closed system the exhaustive explorer enumerates. The bounds are
 * deliberately tight: exhaustive interleaving enumeration is
 * exponential, so only genuinely small configurations terminate.
 * Config::validate() rejects anything outside them with a descriptive
 * error; the simulator itself ignores this block entirely.
 */
struct McConfig
{
    /** Processing nodes in the model-checked system (2 or 3). */
    int nodes = 2;
    /** Universal primitive each processor's fetch&add program uses. */
    Primitive primitive = Primitive::FAP;
    /** Synchronization cache lines explored (exactly 1 for now). */
    int lines = 1;
    /** Atomic operations each processor's program issues (1..4). */
    int ops_per_proc = 1;
    /**
     * How many messages one exploration may lose: 0 explores the
     * fault-free protocol, 1 additionally branches on dropping each
     * droppable message once (exercising dedup + retransmission).
     */
    int loss_budget = 0;
    /**
     * How many guarded messages one exploration may deliver out of
     * per-channel FIFO order (a REORDER transition delivers a
     * non-head channel message). Arms the recovery layer like
     * loss_budget.
     */
    int reorder_budget = 0;
    /**
     * How many guarded messages one exploration may duplicate (a
     * DUPLICATE transition delivers a replay-flagged copy of a channel
     * head without consuming it). Arms the recovery layer like
     * loss_budget.
     */
    int dup_budget = 0;
    /**
     * Abort an exploration that exceeds this many distinct canonical
     * states (a state-space-explosion fuse, not a correctness knob).
     */
    std::uint64_t max_states = 5'000'000;
    /**
     * Model home-node combining: add a COMBINE transition that folds
     * the combinable heads of the home's request channels into one
     * atomic delivery (tf::deliverCombined), proving no reply is lost
     * or duplicated when a combined batch interleaves with the rest of
     * the protocol. FAP only (the only primitive whose home requests
     * commute).
     */
    bool combining = false;
};

/** Complete simulation configuration. */
struct Config
{
    MachineConfig machine;
    SyncConfig sync;
    TraceConfig trace;
    TxnTraceConfig txn_trace;
    TelemetryConfig telemetry;
    OpenLoopConfig openloop;
    ServeConfig serve;
    FaultConfig faults;
    WatchdogConfig watchdog;
    McConfig mc;

    /**
     * Check the whole configuration for user error: machine shape
     * (num_procs == mesh_x * mesh_y, num_procs <= 64), cache geometry,
     * nonzero latencies, and tracing parameters. System construction
     * calls this and refuses (dsm_fatal) on the first problem found.
     *
     * @return "" if the configuration is valid, otherwise one
     *         descriptive error message.
     */
    std::string validate() const;
};

} // namespace dsm

#endif // DSM_SIM_CONFIG_HH
