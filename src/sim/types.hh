/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef DSM_SIM_TYPES_HH
#define DSM_SIM_TYPES_HH

#include <cstdint>

namespace dsm {

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated shared address space. */
using Addr = std::uint64_t;

/** The machine word operated on by loads, stores, and atomic primitives. */
using Word = std::uint64_t;

/** Identifier of a processing node (processor + cache + memory module). */
using NodeId = int;

/** Sentinel for "no node". */
constexpr NodeId INVALID_NODE = -1;

/** Size of a machine word in bytes. */
constexpr unsigned WORD_BYTES = 8;

/** Coherence block (cache line) size in bytes; the paper uses 32. */
constexpr unsigned BLOCK_BYTES = 32;

/** Words per coherence block. */
constexpr unsigned BLOCK_WORDS = BLOCK_BYTES / WORD_BYTES;

/** Round an address down to its block base. */
constexpr Addr
blockBase(Addr a)
{
    return a & ~static_cast<Addr>(BLOCK_BYTES - 1);
}

/** Index of a word within its block. */
constexpr unsigned
wordInBlock(Addr a)
{
    return static_cast<unsigned>((a % BLOCK_BYTES) / WORD_BYTES);
}

/** Round an address down to its word base. */
constexpr Addr
wordBase(Addr a)
{
    return a & ~static_cast<Addr>(WORD_BYTES - 1);
}

} // namespace dsm

#endif // DSM_SIM_TYPES_HH
