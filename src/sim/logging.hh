/**
 * @file
 * Error and status reporting in the gem5 style.
 *
 * panic() is for internal simulator bugs (conditions that should never
 * happen regardless of user input); it aborts. fatal() is for user error
 * (bad configuration); it exits with status 1. warn() and inform() print
 * to stderr and continue.
 */

#ifndef DSM_SIM_LOGGING_HH
#define DSM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dsm {

/** Formatted message sink used by the logging helpers below. */
void logMessage(const char *level, const std::string &msg);

/**
 * Suppress (or restore) info/warn output. Quiet mode keeps stderr clean
 * for scripted bench runs whose real product is BENCH_*.json; panic and
 * fatal always print. Also enabled by the DSM_QUIET environment
 * variable (any non-empty value other than "0").
 */
void setLogQuiet(bool quiet);

/** Current quiet state (programmatic setting or DSM_QUIET). */
bool logQuiet();

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dsm

/** Abort: an internal simulator invariant was violated. */
#define dsm_panic(...) \
    ::dsm::panicImpl(__FILE__, __LINE__, ::dsm::csprintf(__VA_ARGS__))

/** Exit: the simulation cannot continue due to a user/configuration error. */
#define dsm_fatal(...) \
    ::dsm::fatalImpl(__FILE__, __LINE__, ::dsm::csprintf(__VA_ARGS__))

/** Continue, but alert the user to questionable behaviour. */
#define dsm_warn(...) \
    ::dsm::logMessage("warn", ::dsm::csprintf(__VA_ARGS__))

/** Continue; purely informational status output. */
#define dsm_inform(...) \
    ::dsm::logMessage("info", ::dsm::csprintf(__VA_ARGS__))

/** panic() unless the stated invariant holds. */
#define dsm_assert(cond, ...)                                            \
    do {                                                                 \
        if (!(cond))                                                     \
            ::dsm::panicImpl(__FILE__, __LINE__,                         \
                             ::dsm::csprintf("assertion failed: %s: %s", \
                                             #cond,                      \
                                             ::dsm::csprintf(            \
                                                 __VA_ARGS__).c_str())); \
    } while (0)

#endif // DSM_SIM_LOGGING_HH
