/**
 * @file
 * Minimal streaming JSON emitter used by the stats registry, the trace
 * exporters, and the bench binaries' machine-readable output. Emits
 * compact, valid JSON; no parsing (tests carry their own tiny parser).
 */

#ifndef DSM_SIM_JSON_HH
#define DSM_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsm {

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Call begin/end/key/value in document order;
 * separators and quoting are handled here. Misuse (a value where a key
 * is required) is a programming error and asserts.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by exactly one value. */
    void key(const std::string &k);

    void value(const std::string &s);
    void value(const char *s);
    void value(double d);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(unsigned v);
    void value(bool b);

    /** Splice an already-rendered JSON fragment as one value. */
    void raw(const std::string &json);

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** The document so far. */
    const std::string &str() const { return _out; }

  private:
    /** Emit a separator before a new element if one is needed. */
    void element();

    std::string _out;
    std::vector<bool> _first; ///< per open container: no elements yet
    bool _have_key = false;
};

} // namespace dsm

#endif // DSM_SIM_JSON_HH
