/**
 * @file
 * Minimal JSON support: a streaming emitter used by the stats registry,
 * the trace exporters, and the bench binaries' machine-readable output,
 * plus a small recursive-descent parser (JsonValue/parseJson) for tools
 * that read those documents back — most prominently bench_diff, the
 * cross-run perf-regression harness.
 */

#ifndef DSM_SIM_JSON_HH
#define DSM_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dsm {

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Call begin/end/key/value in document order;
 * separators and quoting are handled here. Misuse (a value where a key
 * is required) is a programming error and asserts.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by exactly one value. */
    void key(const std::string &k);

    void value(const std::string &s);
    void value(const char *s);
    void value(double d);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(unsigned v);
    void value(bool b);

    /** Splice an already-rendered JSON fragment as one value. */
    void raw(const std::string &json);

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** The document so far. */
    const std::string &str() const { return _out; }

  private:
    /** Emit a separator before a new element if one is needed. */
    void element();

    std::string _out;
    std::vector<bool> _first; ///< per open container: no elements yet
    bool _have_key = false;
};

/**
 * Parsed JSON value. Numbers are held as doubles, which is exact for
 * every counter the consumers compare (all < 2^53). Object member
 * order is preserved.
 */
struct JsonValue
{
    enum class Kind { NUL, BOOL, NUMBER, STRING, ARRAY, OBJECT };

    Kind kind = Kind::NUL;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::OBJECT; }
    bool isArray() const { return kind == Kind::ARRAY; }
    bool isNumber() const { return kind == Kind::NUMBER; }
    bool isString() const { return kind == Kind::STRING; }

    /** Object member lookup; nullptr if absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool has(const std::string &key) const { return find(key) != nullptr; }

    /** Member's numeric value, or @p fallback if absent/non-numeric. */
    double num(const std::string &key, double fallback = -1.0) const;

    /** Member's string value, or "" if absent/non-string. */
    std::string str(const std::string &key) const;
};

/**
 * Parse @p text into @p out. On failure returns false and leaves a
 * human-readable message (with byte offset) in @p err when non-null.
 */
bool parseJson(const std::string &text, JsonValue *out, std::string *err);

} // namespace dsm

#endif // DSM_SIM_JSON_HH
