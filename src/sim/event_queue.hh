/**
 * @file
 * Deterministic discrete-event queue driving the cycle-level simulation.
 *
 * Events scheduled for the same tick fire in FIFO order of scheduling
 * (a monotonically increasing sequence number breaks ties), which makes
 * every simulation run bit-for-bit reproducible.
 *
 * The pending set is a binary heap of pooled intrusive events: each
 * event embeds a small type-erased callback buffer, so the hot
 * schedule/fire path performs no per-event heap allocation once the
 * pool is warm (callbacks larger than the inline buffer fall back to
 * one heap allocation). Fired events return to a free list for reuse.
 */

#ifndef DSM_SIM_EVENT_QUEUE_HH
#define DSM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm {

/**
 * The global simulated clock and pending-event set.
 *
 * All model components share one EventQueue owned by the System. Time
 * advances only inside run()/runUntil()/step(), never backwards.
 */
class EventQueue
{
  public:
    /** Generic callback type; any callable may be scheduled directly. */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time in cycles. */
    Tick now() const { return _now; }

    /** Number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** True if no events remain pending. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /**
     * Schedule a callable at an absolute tick.
     * @param when Absolute tick; must not be in the past.
     * @param f The action to run when the clock reaches @p when.
     */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        dsm_assert(when >= _now,
                   "scheduling into the past: %llu < %llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(_now));
        Event *e = allocate();
        e->when = when;
        e->seq = _next_seq++;
        bindCallback(e, std::forward<F>(f));
        _heap.push_back(e);
        siftUp(_heap.size() - 1);
    }

    /** Schedule a callable @p delay cycles from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&f)
    {
        schedule(_now + delay, std::forward<F>(f));
    }

    /**
     * Attach a periodic sampling hook (time-resolved telemetry). The
     * callback fires once per window boundary — ticks period, 2*period,
     * ... — immediately before the first event at or after each
     * boundary executes, so a sample at boundary T observes exactly the
     * events of [0, T). Boundaries with no events in between are still
     * delivered (in order) before the next event runs; sampling never
     * schedules events, so it cannot keep the queue alive. With no
     * sampler attached the hot path pays a single branch per event.
     */
    using SamplerFn = std::function<void(Tick)>;
    void
    setSampler(Tick period, SamplerFn fn)
    {
        dsm_assert(period > 0, "sampler period must be nonzero");
        _sample_period = period;
        _next_sample = _now + period;
        _sampler = std::move(fn);
    }

    /** Deliver any window boundaries up to and including @p when. */
    void
    sampleUpTo(Tick when)
    {
        while (_next_sample <= when) {
            _sampler(_next_sample);
            _next_sample += _sample_period;
        }
    }

    /**
     * Execute the single next event, advancing the clock to it.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or @p limit events have executed.
     * @return the number of events executed by this call.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run until the clock would pass @p when (events at @p when still
     * execute), the queue drains, or @p limit events have executed.
     * The clock is advanced to at least @p when on return.
     * @return the number of events executed by this call.
     */
    std::uint64_t runUntil(Tick when, std::uint64_t limit = UINT64_MAX);

  private:
    /**
     * Inline callback storage. Sized so the protocol's hottest closures
     * (a captured Msg plus a few pointers) avoid the heap fallback.
     */
    static constexpr std::size_t INLINE_BYTES = 192;
    /** Events per pool chunk. */
    static constexpr std::size_t CHUNK_EVENTS = 256;

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        /** Run then destroy the stored callback. */
        void (*invoke)(Event *);
        /** Destroy the stored callback without running it. */
        void (*destroy)(Event *);
        /** Free-list link; meaningful only while the event is free. */
        Event *next_free;
        alignas(std::max_align_t) unsigned char store[INLINE_BYTES];
    };

    template <typename F>
    static void
    bindCallback(Event *e, F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= INLINE_BYTES &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (static_cast<void *>(e->store)) Fn(std::forward<F>(f));
            e->invoke = [](Event *ev) {
                Fn *fn = std::launder(
                    reinterpret_cast<Fn *>(ev->store));
                (*fn)();
                fn->~Fn();
            };
            e->destroy = [](Event *ev) {
                std::launder(reinterpret_cast<Fn *>(ev->store))->~Fn();
            };
        } else {
            // Oversized callback: one owned heap allocation.
            new (static_cast<void *>(e->store))
                Fn *(new Fn(std::forward<F>(f)));
            e->invoke = [](Event *ev) {
                Fn *fn = *std::launder(
                    reinterpret_cast<Fn **>(ev->store));
                (*fn)();
                delete fn;
            };
            e->destroy = [](Event *ev) {
                delete *std::launder(
                    reinterpret_cast<Fn **>(ev->store));
            };
        }
    }

    /** True if event @p a fires after event @p b. */
    static bool
    later(const Event *a, const Event *b)
    {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    }

    Event *allocate();
    void release(Event *e);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Min-heap of pending events ordered by (when, seq). */
    std::vector<Event *> _heap;
    /** Pool chunks; event addresses are stable for their lifetime. */
    std::vector<std::unique_ptr<Event[]>> _chunks;
    /** Recycled events ready for reuse. */
    Event *_free = nullptr;
    /** Events handed out of the newest chunk so far. */
    std::size_t _chunk_used = CHUNK_EVENTS;

    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;

    /** @name Telemetry sampling hook (0 = no sampler attached). @{ */
    Tick _sample_period = 0;
    Tick _next_sample = 0;
    SamplerFn _sampler;
    /** @} */
};

} // namespace dsm

#endif // DSM_SIM_EVENT_QUEUE_HH
