/**
 * @file
 * Deterministic discrete-event queue driving the cycle-level simulation.
 *
 * Events scheduled for the same tick fire in FIFO order of scheduling
 * (a monotonically increasing sequence number breaks ties), which makes
 * every simulation run bit-for-bit reproducible.
 */

#ifndef DSM_SIM_EVENT_QUEUE_HH
#define DSM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm {

/**
 * The global simulated clock and pending-event set.
 *
 * All model components share one EventQueue owned by the System. Time
 * advances only inside run()/runUntil()/step(), never backwards.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return _now; }

    /** Number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** True if no events remain pending. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /**
     * Schedule a callback at an absolute tick.
     * @param when Absolute tick; must not be in the past.
     * @param cb The action to run when the clock reaches @p when.
     */
    void
    schedule(Tick when, Callback cb)
    {
        dsm_assert(when >= _now,
                   "scheduling into the past: %llu < %llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(_now));
        _heap.push(Entry{when, _next_seq++, std::move(cb)});
    }

    /** Schedule a callback @p delay cycles from now. */
    void scheduleIn(Tick delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    /**
     * Execute the single next event, advancing the clock to it.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or @p limit events have executed.
     * @return the number of events executed by this call.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run until the clock would pass @p when (events at @p when still
     * execute), the queue drains, or @p limit events have executed.
     * The clock is advanced to at least @p when on return.
     * @return the number of events executed by this call.
     */
    std::uint64_t runUntil(Tick when, std::uint64_t limit = UINT64_MAX);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace dsm

#endif // DSM_SIM_EVENT_QUEUE_HH
