#include "sim/config.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace dsm {

const char *
toString(SyncPolicy p)
{
    switch (p) {
      case SyncPolicy::INV: return "INV";
      case SyncPolicy::UPD: return "UPD";
      case SyncPolicy::UNC: return "UNC";
    }
    return "?";
}

const char *
toString(CasVariant v)
{
    switch (v) {
      case CasVariant::PLAIN: return "INV";
      case CasVariant::DENY: return "INVd";
      case CasVariant::SHARE: return "INVs";
    }
    return "?";
}

const char *
toString(Primitive p)
{
    switch (p) {
      case Primitive::FAP: return "FAP";
      case Primitive::LLSC: return "LLSC";
      case Primitive::CAS: return "CAS";
    }
    return "?";
}

std::string
SyncConfig::label() const
{
    std::string s = toString(policy);
    if (policy == SyncPolicy::INV && cas_variant != CasVariant::PLAIN)
        s = toString(cas_variant);
    if (use_load_exclusive)
        s += "+lx";
    if (use_drop_copy)
        s += "+dc";
    return s;
}

std::string
OpenLoopConfig::parse(const std::string &spec)
{
    if (spec == "1" || spec == "on" || spec == "default") {
        // A mid-load default: well below saturation for every impl at
        // the 16-proc sweep shape, so smoke runs finish quickly.
        *this = OpenLoopConfig();
        enabled = true;
        rate_ppc = 0.001;
        return "";
    }

    OpenLoopConfig out;
    out.enabled = true;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return csprintf("openloop spec item '%s' is not key=value",
                            item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *end = nullptr;
        double d = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0')
            return csprintf("openloop spec value '%s' for '%s' is not "
                            "a number", val.c_str(), key.c_str());
        if (key == "rate") {
            out.rate_ppc = d;
        } else if (key == "burst") {
            out.burst = static_cast<int>(d);
        } else if (key == "queue_cap") {
            out.queue_cap = static_cast<int>(d);
        } else if (key == "slo_cycles") {
            out.slo_cycles = static_cast<Tick>(d);
        } else if (key == "ops_per_proc") {
            out.ops_per_proc = static_cast<int>(d);
        } else {
            return csprintf("unknown openloop spec key '%s'",
                            key.c_str());
        }
    }
    *this = out;
    return "";
}

std::string
OpenLoopConfig::summary() const
{
    return csprintf("rate=%g,burst=%d,queue_cap=%d,slo_cycles=%llu,"
                    "ops_per_proc=%d",
                    rate_ppc, burst, queue_cap,
                    (unsigned long long)slo_cycles, ops_per_proc);
}

OpenLoopConfig
openLoopConfigFromEnv()
{
    OpenLoopConfig ol;
    const char *spec = std::getenv("DSM_OPENLOOP");
    if (spec == nullptr || *spec == '\0' || std::string(spec) == "0")
        return ol;
    std::string err = ol.parse(spec);
    if (!err.empty())
        dsm_fatal("DSM_OPENLOOP: %s", err.c_str());
    return ol;
}

std::string
ServeConfig::parse(const std::string &spec)
{
    if (spec == "1" || spec == "on" || spec == "default") {
        *this = ServeConfig();
        enabled = true;
        return "";
    }

    ServeConfig out;
    out.enabled = true;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return csprintf("serve spec item '%s' is not key=value",
                            item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "credit_threshold" && val == "auto") {
            out.credit_auto = true;
            continue;
        }
        char *end = nullptr;
        double d = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0')
            return csprintf("serve spec value '%s' for '%s' is not "
                            "a number", val.c_str(), key.c_str());
        if (key == "combining") {
            out.combining = d != 0.0;
        } else if (key == "combine_limit") {
            out.combine_limit = static_cast<int>(d);
        } else if (key == "backpressure") {
            out.backpressure = d != 0.0;
        } else if (key == "credit_threshold") {
            out.credit_threshold = static_cast<int>(d);
        } else if (key == "priority") {
            out.priority = d != 0.0;
        } else if (key == "age_limit") {
            out.age_limit = static_cast<Tick>(d);
        } else if (key == "nack_backoff") {
            out.nack_backoff = d != 0.0;
        } else if (key == "backoff_cap") {
            out.backoff_cap = static_cast<int>(d);
        } else {
            return csprintf("unknown serve spec key '%s'", key.c_str());
        }
    }
    *this = out;
    return "";
}

std::string
ServeConfig::summary() const
{
    std::string threshold = credit_auto
                                ? "auto"
                                : csprintf("%d", credit_threshold);
    return csprintf("combining=%d,combine_limit=%d,backpressure=%d,"
                    "credit_threshold=%s,priority=%d,age_limit=%llu,"
                    "nack_backoff=%d,backoff_cap=%d",
                    combining ? 1 : 0, combine_limit,
                    backpressure ? 1 : 0, threshold.c_str(),
                    priority ? 1 : 0, (unsigned long long)age_limit,
                    nack_backoff ? 1 : 0, backoff_cap);
}

ServeConfig
serveConfigFromEnv()
{
    ServeConfig sv;
    const char *spec = std::getenv("DSM_SERVE");
    if (spec == nullptr || *spec == '\0' || std::string(spec) == "0")
        return sv;
    std::string err = sv.parse(spec);
    if (!err.empty())
        dsm_fatal("DSM_SERVE: %s", err.c_str());
    return sv;
}

void
MachineConfig::validate() const
{
    Config cfg;
    cfg.machine = *this;
    std::string err = cfg.validate();
    if (!err.empty())
        dsm_fatal("%s", err.c_str());
}

std::string
Config::validate() const
{
    const MachineConfig &m = machine;
    if (m.num_procs < 1 || m.num_procs > 64)
        return csprintf("num_procs must be in [1, 64], got %d",
                        m.num_procs);
    if (m.mesh_x < 1 || m.mesh_y < 1)
        return csprintf("mesh dimensions must be positive, got %dx%d",
                        m.mesh_x, m.mesh_y);
    if (m.mesh_x * m.mesh_y != m.num_procs)
        return csprintf("mesh %dx%d does not cover %d procs",
                        m.mesh_x, m.mesh_y, m.num_procs);
    if (m.cache_sets == 0 || (m.cache_sets & (m.cache_sets - 1)) != 0)
        return csprintf("cache_sets must be a nonzero power of two, "
                        "got %u", m.cache_sets);
    if (m.cache_ways == 0)
        return "cache_ways must be nonzero";
    if (m.cache_hit_latency == 0)
        return "cache_hit_latency must be nonzero";
    if (m.cache_access_latency == 0)
        return "cache_access_latency must be nonzero";
    if (m.mem_service_time == 0)
        return "mem_service_time must be nonzero";
    // hop_latency == 0 is allowed: it models contention-free routing
    // and is exercised by the timing-parameter sweeps.
    if (m.flit_latency == 0)
        return "flit_latency must be nonzero";
    if (m.local_latency == 0)
        return "local_latency must be nonzero";
    if (m.retry_delay == 0)
        return "retry_delay must be nonzero";
    if (m.flit_bytes == 0)
        return "flit_bytes must be nonzero";
    if (m.retry_jitter == 0)
        return "retry_jitter must be at least 1";
    if (m.max_memory_reservations < 0)
        return csprintf("max_memory_reservations must be >= 0, got %d",
                        m.max_memory_reservations);
    if (trace.enabled && trace.capacity == 0)
        return "trace.capacity must be nonzero when tracing is enabled";
    if (txn_trace.enabled && txn_trace.capacity == 0)
        return "txn_trace.capacity must be nonzero when transaction "
               "tracing is enabled";
    if (telemetry.enabled && telemetry.window == 0)
        return "telemetry.window must be nonzero when telemetry is "
               "enabled";
    if (telemetry.enabled && telemetry.max_windows == 0)
        return "telemetry.max_windows must be nonzero when telemetry "
               "is enabled";

    const OpenLoopConfig &ol = openloop;
    if (ol.enabled) {
        if (!(ol.rate_ppc > 0.0) || ol.rate_ppc > 1.0)
            return csprintf("openloop.rate_ppc must be in (0, 1] "
                            "arrivals/cycle/proc when open-loop "
                            "arrivals are enabled, got %g", ol.rate_ppc);
        if (ol.burst < 1 || ol.burst > 4096)
            return csprintf("openloop.burst must be in [1, 4096], "
                            "got %d", ol.burst);
        if (ol.queue_cap < 1)
            return csprintf("openloop.queue_cap must be >= 1 (a node "
                            "needs at least one admission slot), got %d",
                            ol.queue_cap);
        if (ol.ops_per_proc < 1)
            return csprintf("openloop.ops_per_proc must be >= 1, got %d",
                            ol.ops_per_proc);
    }

    const ServeConfig &sv = serve;
    if (sv.enabled) {
        if (sv.combine_limit < 2)
            return csprintf("serve.combine_limit must be >= 2 (a batch "
                            "of one is not combining), got %d",
                            sv.combine_limit);
        if (sv.credit_threshold < 1)
            return csprintf("serve.credit_threshold must be >= 1, "
                            "got %d", sv.credit_threshold);
        if (sv.priority && sv.age_limit == 0)
            return "serve.age_limit must be nonzero when "
                   "serve.priority is enabled (it is the starvation "
                   "bound, not an off switch)";
        if (sv.nack_backoff &&
            (sv.backoff_cap < 4 || sv.backoff_cap > 20))
            return csprintf("serve.backoff_cap must be in [4, 20] "
                            "(below 4 would weaken the built-in "
                            "backoff; above 20 overflows the shift), "
                            "got %d", sv.backoff_cap);
        if (sv.credit_auto && !sv.backpressure)
            return "serve.credit_threshold=auto requires "
                   "serve.backpressure (there is no threshold to adapt "
                   "otherwise)";
        if (sv.credit_auto && !telemetry.enabled)
            return "serve.credit_threshold=auto requires "
                   "telemetry.enabled (the adaptive threshold is "
                   "derived from the sampled queue-depth series)";
    }

    const FaultConfig &f = faults;
    struct { const char *name; double v; } probs[] = {
        { "faults.msg_jitter_prob", f.msg_jitter_prob },
        { "faults.resv_drop_prob", f.resv_drop_prob },
        { "faults.evict_prob", f.evict_prob },
        { "faults.nack_prob", f.nack_prob },
    };
    for (const auto &p : probs) {
        if (p.v < 0.0 || p.v > 1.0)
            return csprintf("%s must be in [0, 1], got %g", p.name, p.v);
    }
    if (f.enabled && f.msg_jitter_prob > 0.0 && f.msg_jitter_max == 0)
        return "faults.msg_jitter_max must be nonzero when "
               "faults.msg_jitter_prob > 0";
    if (f.msg_jitter_max > FAULT_JITTER_HORIZON)
        return csprintf("faults.msg_jitter_max must be <= %llu (the "
                        "event-queue jitter horizon), got %llu",
                        (unsigned long long)FAULT_JITTER_HORIZON,
                        (unsigned long long)f.msg_jitter_max);
    if (f.max_extra_nacks < 0)
        return csprintf("faults.max_extra_nacks must be >= 0, got %d",
                        f.max_extra_nacks);
    if (f.msg_drop_prob < 0.0 || f.msg_drop_prob > 1.0)
        return csprintf("faults.msg_drop_prob must be in [0, 1], got %g",
                        f.msg_drop_prob);
    if (f.flaky_drop_prob < 0.0 || f.flaky_drop_prob > 1.0)
        return csprintf("faults.flaky_drop_prob must be in [0, 1], "
                        "got %g", f.flaky_drop_prob);
    if (f.flaky_links < 0)
        return csprintf("faults.flaky_links must be >= 0, got %d",
                        f.flaky_links);
    if (f.flaky_links > 0 &&
        (f.flaky_window == 0 || f.flaky_duration == 0))
        return "faults.flaky_window and faults.flaky_duration must be "
               "nonzero when faults.flaky_links > 0";
    if (f.lossEnabled() && f.req_timeout == 0)
        return "faults.req_timeout must be nonzero when message loss "
               "(msg_drop_prob / flaky_links) is enabled; a lost "
               "message is unrecoverable without retransmission";
    if (f.quarantine_k < 0)
        return csprintf("faults.quarantine_k must be >= 0, got %d",
                        f.quarantine_k);
    if (f.quarantine_k > 0 && f.quarantine_window == 0)
        return "faults.quarantine_window must be nonzero when "
               "faults.quarantine_k > 0";
    struct { const char *name; double v; } chaos_probs[] = {
        { "faults.reorder_prob", f.reorder_prob },
        { "faults.dup_prob", f.dup_prob },
        { "faults.corrupt_prob", f.corrupt_prob },
    };
    for (const auto &p : chaos_probs) {
        if (p.v < 0.0 || p.v > 1.0)
            return csprintf("%s must be in [0, 1], got %g", p.name, p.v);
    }
    if (f.enabled && f.reorder_prob > 0.0 && f.reorder_max == 0)
        return "faults.reorder_max must be nonzero when "
               "faults.reorder_prob > 0";
    if (f.reorder_max > FAULT_JITTER_HORIZON)
        return csprintf("faults.reorder_max must be <= %llu (the "
                        "event-queue jitter horizon), got %llu",
                        (unsigned long long)FAULT_JITTER_HORIZON,
                        (unsigned long long)f.reorder_max);
    if (f.enabled && f.dup_prob > 0.0 && f.dup_delay == 0)
        return "faults.dup_delay must be nonzero when "
               "faults.dup_prob > 0 (a replay needs a delay to race "
               "its original)";
    if (f.dup_delay > FAULT_JITTER_HORIZON)
        return csprintf("faults.dup_delay must be <= %llu (the "
                        "event-queue jitter horizon), got %llu",
                        (unsigned long long)FAULT_JITTER_HORIZON,
                        (unsigned long long)f.dup_delay);
    if (f.chaosEnabled() && f.req_timeout == 0)
        return "faults.req_timeout must be nonzero when a "
               "faulty-channel axis (reorder_prob / dup_prob / "
               "corrupt_prob) is enabled; the sequence guards and the "
               "corruption-as-loss path live in the recovery layer";

    const WatchdogConfig &w = watchdog;
    if (w.max_retries < 0)
        return csprintf("watchdog.max_retries must be >= 0, got %d",
                        w.max_retries);
    if (w.enabled && w.max_retries == 0 && w.max_txn_age == 0)
        return "watchdog enabled but both max_retries and max_txn_age "
               "are 0; set at least one bound";
    if (w.max_txn_age > 0 && w.scan_period == 0)
        return "watchdog.scan_period must be nonzero when max_txn_age "
               "is set";

    // The model checker enumerates every interleaving, so its bounds
    // are hard: a 4-node or 2-line exploration would not terminate in
    // any useful time, and a loss budget above 1 squares the already
    // exponential branching.
    const McConfig &mcc = mc;
    if (mcc.nodes < 2 || mcc.nodes > 3)
        return csprintf("mc.nodes must be 2 or 3 (exhaustive "
                        "exploration is exponential in nodes), got %d",
                        mcc.nodes);
    if (mcc.lines != 1)
        return csprintf("mc.lines must be exactly 1 (the explorer "
                        "models a single synchronization line), got %d",
                        mcc.lines);
    if (mcc.ops_per_proc < 1 || mcc.ops_per_proc > 4)
        return csprintf("mc.ops_per_proc must be in [1, 4], got %d",
                        mcc.ops_per_proc);
    if (mcc.loss_budget != 0 && mcc.loss_budget != 1)
        return csprintf("mc.loss_budget must be 0 or 1 (at most one "
                        "message loss per run is explored), got %d",
                        mcc.loss_budget);
    if (mcc.reorder_budget != 0 && mcc.reorder_budget != 1)
        return csprintf("mc.reorder_budget must be 0 or 1 (at most one "
                        "reordered delivery per run is explored), "
                        "got %d", mcc.reorder_budget);
    if (mcc.dup_budget != 0 && mcc.dup_budget != 1)
        return csprintf("mc.dup_budget must be 0 or 1 (at most one "
                        "duplicated delivery per run is explored), "
                        "got %d", mcc.dup_budget);
    if (mcc.max_states == 0)
        return "mc.max_states must be nonzero (it is the exploration "
               "fuse, not an off switch)";
    if (mcc.combining && mcc.primitive != Primitive::FAP)
        return csprintf("mc.combining requires mc.primitive FAP (only "
                        "fetch&add home requests commute), got %s",
                        toString(mcc.primitive));
    return "";
}

} // namespace dsm
