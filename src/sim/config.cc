#include "sim/config.hh"

#include "sim/logging.hh"

namespace dsm {

const char *
toString(SyncPolicy p)
{
    switch (p) {
      case SyncPolicy::INV: return "INV";
      case SyncPolicy::UPD: return "UPD";
      case SyncPolicy::UNC: return "UNC";
    }
    return "?";
}

const char *
toString(CasVariant v)
{
    switch (v) {
      case CasVariant::PLAIN: return "INV";
      case CasVariant::DENY: return "INVd";
      case CasVariant::SHARE: return "INVs";
    }
    return "?";
}

const char *
toString(Primitive p)
{
    switch (p) {
      case Primitive::FAP: return "FAP";
      case Primitive::LLSC: return "LLSC";
      case Primitive::CAS: return "CAS";
    }
    return "?";
}

std::string
SyncConfig::label() const
{
    std::string s = toString(policy);
    if (policy == SyncPolicy::INV && cas_variant != CasVariant::PLAIN)
        s = toString(cas_variant);
    if (use_load_exclusive)
        s += "+lx";
    if (use_drop_copy)
        s += "+dc";
    return s;
}

void
MachineConfig::validate() const
{
    if (num_procs < 1 || num_procs > 64)
        dsm_fatal("num_procs must be in [1, 64], got %d", num_procs);
    if (mesh_x * mesh_y != num_procs)
        dsm_fatal("mesh %dx%d does not cover %d procs",
                  mesh_x, mesh_y, num_procs);
    if (cache_sets == 0 || (cache_sets & (cache_sets - 1)) != 0)
        dsm_fatal("cache_sets must be a nonzero power of two, got %u",
                  cache_sets);
    if (cache_ways == 0)
        dsm_fatal("cache_ways must be nonzero");
    if (flit_bytes == 0)
        dsm_fatal("flit_bytes must be nonzero");
    if (retry_jitter == 0)
        dsm_fatal("retry_jitter must be at least 1");
}

} // namespace dsm
