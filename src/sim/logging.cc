#include "sim/logging.hh"

#include <cstdarg>
#include <stdexcept>

namespace dsm {

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

namespace {

bool
envQuiet()
{
    const char *v = std::getenv("DSM_QUIET");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

// -1 = follow DSM_QUIET; 0/1 = explicit programmatic override.
int quiet_override = -1;

} // anonymous namespace

void
setLogQuiet(bool quiet)
{
    quiet_override = quiet ? 1 : 0;
}

bool
logQuiet()
{
    return quiet_override >= 0 ? quiet_override != 0 : envQuiet();
}

void
logMessage(const char *level, const std::string &msg)
{
    if (logQuiet())
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace dsm
