/**
 * @file
 * Small deterministic pseudo-random number generator (xoshiro256**).
 *
 * The standard library engines are avoided so that simulation results are
 * identical across standard library implementations.
 */

#ifndef DSM_SIM_RNG_HH
#define DSM_SIM_RNG_HH

#include <cstdint>

namespace dsm {

/** Deterministic RNG; every consumer owns its own stream. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t *s = _state;
        std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace dsm

#endif // DSM_SIM_RNG_HH
