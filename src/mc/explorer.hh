/**
 * @file
 * Exhaustive small-configuration model checker over the pure transition
 * functions (proto/transition.hh).
 *
 * The explorer builds a tiny closed system — 2–3 nodes, a single
 * synchronization line, each processor executing a short fixed program
 * of atomic operations — and enumerates *every* reachable state by DFS
 * over all message-delivery interleavings (per-(src,dst) channels are
 * FIFO, matching the mesh's in-order delivery; only channel heads are
 * deliverable). Optionally it also branches on losing any single
 * droppable message (loss budget 1), with the recovery layer's timeout
 * retransmissions modeled as always-eventually firing; on delivering
 * any single sequence-guarded message ahead of its channel (reorder
 * budget 1, modeling the mesh's bounded-skew fault); and on delivering
 * a replayed-flagged copy of any single sequence-guarded message while
 * the original stays queued (duplication budget 1).
 *
 * In every reachable state it checks:
 *  - coherence safety: at most one exclusive copy, no exclusive copy
 *    coexisting with shared copies, every cached copy consistent with
 *    the directory, exclusive copy value authoritative (the same
 *    CoherenceView invariants proto/checker.cc applies to a System);
 *  - value correctness: on quiescence, each processor's fetch_and_add
 *    results plus the final memory value form the unique serial
 *    history {0, 1, ..., N*ops-1} (atomicity of the primitives);
 *  - Table 1 chain facts: completed operations never exceed the
 *    paper's serialized-message chain bound for the observed case;
 *  - recovery-ledger closure: with a loss injected, every run still
 *    quiesces with all processors' programs complete (the drop was
 *    recovered), and dedup never double-applies a request.
 *
 * States with unfinished processors and no enabled transition are
 * reported as deadlocks with a full state dump.
 */

#ifndef DSM_MC_EXPLORER_HH
#define DSM_MC_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace dsm {
namespace mc {

/** One invariant violation or deadlock, with a full state dump. */
struct Violation
{
    std::string kind;  ///< "coherence" / "value" / "chain" / "ledger" / "deadlock"
    std::string detail;
    std::string state_dump;
};

/** Result of one exhaustive exploration. */
struct Result
{
    bool completed = false;        ///< hit no violation and no cap
    std::uint64_t states = 0;      ///< distinct canonical states
    std::uint64_t transitions = 0; ///< transitions executed
    std::uint64_t terminals = 0;   ///< quiescent all-done states
    std::uint64_t losses = 0;      ///< loss branches explored
    std::uint64_t reorders = 0;    ///< out-of-order delivery branches
    std::uint64_t dups = 0;        ///< duplicate delivery branches
    std::uint64_t combines = 0;    ///< combined-batch branches explored
    std::uint64_t max_depth = 0;   ///< deepest DFS path
    std::vector<Violation> violations;

    bool ok() const { return completed && violations.empty(); }
};

/** Exhaustively explore the configuration in @p cfg (see McConfig). */
Result explore(const Config &cfg);

} // namespace mc
} // namespace dsm

#endif // DSM_MC_EXPLORER_HH
