/**
 * @file
 * Exhaustive small-configuration model checker (see explorer.hh).
 *
 * The explorer is the second driver of the pure transition functions:
 * where proto/controller.cc commits outcomes against the event-driven
 * System, this file commits them against an explicit World value and
 * enumerates every delivery interleaving by DFS. Nothing here
 * re-implements protocol logic — every state change flows through
 * tf::issue / tf::step / tf::dispatch / tf::retransmit, and every
 * invariant runs through the shared proto/checker.cc entry points
 * (checkCoherenceView, checkChainFacts).
 */

#include "mc/explorer.hh"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mem/home_queue.hh"
#include "proto/checker.hh"
#include "proto/transition.hh"
#include "sim/logging.hh"

namespace dsm {
namespace mc {

namespace {

/** The single synchronization block the explorer models. */
constexpr Addr MC_BLOCK = BLOCK_BYTES;
/** The counter word (first word of the block). */
constexpr Addr MC_ADDR = MC_BLOCK;

/**
 * Per-processor program state: a coroutine-free mirror of
 * LockFreeCounter::fetchAdd's per-primitive loops
 * (sync/lockfree_counter.cc). FAP issues one fetch_and_add; CAS issues
 * LOAD then CAS(old, old+1) until the CAS succeeds; LLSC issues LL
 * then SC(old+1) until the SC succeeds. `temp` holds the loaded/linked
 * value feeding the second micro-op; `observed` collects the old value
 * of each completed fetch&add for the terminal serial-history check.
 */
struct ProcSM
{
    int ops_done = 0;
    /** 0 = issue FAA / LOAD / LL next; 1 = issue CAS / SC next. */
    int micro = 0;
    Word temp = 0;
    std::vector<Word> observed;
};

/** One complete system configuration (the value DFS explores over). */
struct World
{
    std::vector<tf::CtrlState> node;
    std::vector<ProcSM> proc;
    /** chan[src * N + dst]: in-order per-link channels (mesh FIFO). */
    std::vector<std::vector<Msg>> chan;
    /** The single block's directory entry (lives at the home node). */
    DirEntry dir;
    std::array<Word, BLOCK_WORDS> mem{};
    /** NACKed transactions whose driver retry has not yet fired. */
    std::vector<bool> retry_token;
    /** A message owned by node i was lost; its timeout has not fired. */
    std::vector<bool> lost;
    int loss_left = 0;
    int reorder_left = 0;
    int dup_left = 0;
    /** Table 1 facts for each node's in-flight operation. */
    std::vector<ChainFact> fact;
};

/** A choice the scheduler can make in some state. */
struct Transition
{
    /**
     * COMBINE (mc.combining only) models the serving layer's home-node
     * batch: every combinable channel head addressed to the home is
     * popped in src order and served in one tf::deliverCombined call.
     * Partial batches are covered by DELIVER interleavings (deliver
     * some heads singly, then combine the rest), so one maximal
     * COMBINE per state spans the subset space without blow-up.
     */
    /**
     * REORDER (mc.reorder_budget) delivers a sequence-guarded message
     * sitting *behind* the head of its channel, modeling the mesh's
     * bounded-skew fault that bypasses the FIFO ejection reservation.
     * DUPLICATE (mc.dup_budget) delivers a replayed-flagged copy of a
     * sequence-guarded channel head while the original stays queued —
     * the epoch/sequence guards must absorb the copy regardless of
     * which of the two is processed first.
     */
    enum Kind { ISSUE, DELIVER, RETRY, TIMEOUT, DROP, COMBINE,
                REORDER, DUPLICATE } kind;
    int a = 0; ///< node, or channel src
    int b = 0; ///< channel dst
    int c = 0; ///< in-channel index (REORDER only)
};

/** True if @p m may lead a home combining batch (FAP requests only). */
bool
combineLeader(const Msg &m)
{
    return (m.type == MsgType::UNC_REQ || m.type == MsgType::UPD_REQ) &&
           m.op == AtomicOp::FAA;
}

/**
 * The node whose recovery machinery owns a message: the requester
 * whose seq it carries. Every request stamps msg.requester
 * (tf buildReq) and every reply echoes it (tf reply), so the fallback
 * is belt and braces for fan-out acknowledgements.
 */
NodeId
seqOwner(const Msg &m)
{
    if (m.requester != INVALID_NODE)
        return m.requester;
    return recoverableReply(m.type) ? m.dst : m.src;
}

void
encU(std::string &k, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        k.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Rename a seq to its per-owner rank (identity for seq 0). */
std::uint64_t
rankOf(const std::vector<std::vector<std::uint64_t>> &ranks,
       NodeId owner, std::uint64_t seq)
{
    if (seq == 0 || owner < 0 ||
        owner >= static_cast<NodeId>(ranks.size()))
        return seq;
    const auto &r = ranks[static_cast<std::size_t>(owner)];
    auto it = std::lower_bound(r.begin(), r.end(), seq);
    dsm_assert(it != r.end() && *it == seq, "mc: unranked seq");
    return static_cast<std::uint64_t>(it - r.begin()) + 1;
}

void
encMsg(std::string &k, const Msg &m,
       const std::vector<std::vector<std::uint64_t>> &ranks)
{
    encU(k, static_cast<std::uint64_t>(m.type));
    encU(k, static_cast<std::uint64_t>(m.src));
    encU(k, static_cast<std::uint64_t>(m.dst));
    encU(k, static_cast<std::uint64_t>(m.requester));
    encU(k, m.addr);
    encU(k, m.word_addr);
    encU(k, static_cast<std::uint64_t>(m.op));
    encU(k, m.value);
    encU(k, m.expected);
    encU(k, m.result);
    encU(k, m.success ? 1 : 0);
    encU(k, m.serial);
    encU(k, static_cast<std::uint64_t>(m.ack_count));
    encU(k, m.has_data ? 1 : 0);
    if (m.has_data)
        for (Word wd : m.data)
            encU(k, wd);
    encU(k, static_cast<std::uint64_t>(m.chain));
    encU(k, rankOf(ranks, seqOwner(m), m.seq));
    encU(k, static_cast<std::uint64_t>(m.attempt));
}

class Explorer : public tf::StepCtx
{
  public:
    explicit Explorer(const Config &user)
    {
        // Build the closed-system configuration: mc.nodes processors,
        // a direct-mapped single-set cache (so LRU state never
        // matters), and — when a loss budget is granted — the recovery
        // layer armed with the explorer itself choosing what gets lost
        // (msg_drop_prob stays 0: drops are transitions, not dice).
        _cfg = user;
        _cfg.machine.num_procs = user.mc.nodes;
        _cfg.machine.mesh_x = user.mc.nodes;
        _cfg.machine.mesh_y = 1;
        _cfg.machine.cache_sets = 1;
        _cfg.machine.cache_ways = 1;
        _cfg.txn_trace.enabled = true;
        _cfg.faults = FaultConfig{};
        if (user.mc.loss_budget > 0 || user.mc.reorder_budget > 0 ||
            user.mc.dup_budget > 0) {
            // Reordering and duplication are only observable on
            // sequence-stamped messages, so every faulty-channel budget
            // arms the recovery layer (sequence guards + dedup tables).
            _cfg.faults.enabled = true;
            _cfg.faults.req_timeout = 100;
        }
        if (user.mc.reorder_budget > 0) {
            // Arms FaultConfig::reorderPossible() so the pure
            // transitions track fill races exactly as a chaos run does
            // (no FaultPlan is built here — the probability itself is
            // never drawn).
            _cfg.faults.reorder_prob = 1.0;
        }
        _n = _cfg.machine.num_procs;
        _ops = user.mc.ops_per_proc;
        _prim = user.mc.primitive;
        _max_states = user.mc.max_states;
        _budget = user.mc.loss_budget;
        _reorder_budget = user.mc.reorder_budget;
        _dup_budget = user.mc.dup_budget;
        _combining = user.mc.combining;
        _home = static_cast<NodeId>((MC_BLOCK / BLOCK_BYTES) %
                                    static_cast<Addr>(_n));
    }

    Result run();

    /** @name tf::StepCtx over the world currently being stepped. @{ */
    bool isSync(Addr a) const override
    {
        return blockBase(a) == MC_BLOCK;
    }

    DirEntry
    dirEntry(Addr block) const override
    {
        dsm_assert(blockBase(block) == MC_BLOCK,
                   "mc: directory access outside the modeled block");
        return _cur->dir;
    }

    Word
    memWord(Addr a) const override
    {
        dsm_assert(blockBase(a) == MC_BLOCK,
                   "mc: memory access outside the modeled block");
        return _cur->mem[wordInBlock(a)];
    }

    std::array<Word, BLOCK_WORDS>
    memBlock(Addr block) const override
    {
        dsm_assert(blockBase(block) == MC_BLOCK,
                   "mc: memory access outside the modeled block");
        return _cur->mem;
    }

    std::uint64_t
    activeTxnId(NodeId n) const override
    {
        return _cur->node[static_cast<std::size_t>(n)].txn.active
                   ? static_cast<std::uint64_t>(n) + 1
                   : 0;
    }
    /** @} */

  private:
    tf::Env
    envFor(NodeId self) const
    {
        tf::Env e;
        e.cfg = &_cfg;
        e.self = self;
        e.ctx = this;
        return e;
    }

    World initialWorld() const;
    std::vector<Transition> enabled(const World &w) const;
    void apply(World &w, const Transition &t);
    void commit(World &w, NodeId self, tf::Outcome &&o);
    void procComplete(World &w, NodeId i, Word value, bool success);

    std::string canonical(const World &w) const;
    std::string dump(const World &w) const;

    void checkEveryState(const World &w);
    void checkQuiescent(const World &w);
    void checkTerminal(const World &w);
    bool quiescent(const World &w) const;
    bool allDone(const World &w) const;

    void
    violation(const World &w, const char *kind, std::string detail)
    {
        if (_result.violations.size() < 32)
            _result.violations.push_back(
                Violation{kind, std::move(detail), dump(w)});
    }

    Config _cfg;
    int _n = 0;
    int _ops = 0;
    Primitive _prim = Primitive::FAP;
    std::uint64_t _max_states = 0;
    int _budget = 0;
    int _reorder_budget = 0;
    int _dup_budget = 0;
    bool _combining = false;
    /** Home node of the modeled block (block-interleaved). */
    NodeId _home = 0;

    /** World the StepCtx callbacks read (set around each tf call). */
    const World *_cur = nullptr;
    Result _result;
};

World
Explorer::initialWorld() const
{
    World w;
    for (int i = 0; i < _n; ++i) {
        w.node.emplace_back(
            static_cast<int>(_cfg.machine.cache_sets),
            static_cast<int>(_cfg.machine.cache_ways));
        if (_cfg.faults.recoveryEnabled())
            w.node.back().dedup.resize(static_cast<std::size_t>(_n));
    }
    w.proc.resize(static_cast<std::size_t>(_n));
    w.chan.resize(static_cast<std::size_t>(_n) * _n);
    w.retry_token.assign(static_cast<std::size_t>(_n), false);
    w.lost.assign(static_cast<std::size_t>(_n), false);
    w.loss_left = _budget;
    w.reorder_left = _reorder_budget;
    w.dup_left = _dup_budget;
    w.fact.resize(static_cast<std::size_t>(_n));
    return w;
}

bool
Explorer::quiescent(const World &w) const
{
    for (const auto &c : w.chan)
        if (!c.empty())
            return false;
    for (int i = 0; i < _n; ++i)
        if (w.node[i].txn.active || w.retry_token[i] || w.lost[i])
            return false;
    return true;
}

bool
Explorer::allDone(const World &w) const
{
    for (int i = 0; i < _n; ++i)
        if (w.proc[i].ops_done < _ops)
            return false;
    return true;
}

std::vector<Transition>
Explorer::enabled(const World &w) const
{
    std::vector<Transition> out;
    for (int i = 0; i < _n; ++i)
        if (!w.node[i].txn.active && w.proc[i].ops_done < _ops)
            out.push_back({Transition::ISSUE, i, 0});
    for (int s = 0; s < _n; ++s)
        for (int d = 0; d < _n; ++d)
            if (!w.chan[static_cast<std::size_t>(s) * _n + d].empty())
                out.push_back({Transition::DELIVER, s, d});
    for (int i = 0; i < _n; ++i)
        if (w.retry_token[i])
            out.push_back({Transition::RETRY, i, 0});
    for (int i = 0; i < _n; ++i)
        if (w.lost[i])
            out.push_back({Transition::TIMEOUT, i, 0});
    if (w.loss_left > 0) {
        for (int s = 0; s < _n; ++s) {
            for (int d = 0; d < _n; ++d) {
                const auto &c =
                    w.chan[static_cast<std::size_t>(s) * _n + d];
                if (c.empty())
                    continue;
                const Msg &m = c.front();
                if (recoverableRequest(m.type) ||
                    recoverableReply(m.type))
                    out.push_back({Transition::DROP, s, d});
            }
        }
    }
    if (w.reorder_left > 0) {
        for (int s = 0; s < _n; ++s) {
            for (int d = 0; d < _n; ++d) {
                const auto &c =
                    w.chan[static_cast<std::size_t>(s) * _n + d];
                for (std::size_t i = 1; i < c.size(); ++i)
                    if (sequenceGuarded(c[i].type) && c[i].seq != 0)
                        out.push_back({Transition::REORDER, s, d,
                                       static_cast<int>(i)});
            }
        }
    }
    if (w.dup_left > 0) {
        for (int s = 0; s < _n; ++s) {
            for (int d = 0; d < _n; ++d) {
                const auto &c =
                    w.chan[static_cast<std::size_t>(s) * _n + d];
                if (!c.empty() && sequenceGuarded(c.front().type) &&
                    c.front().seq != 0)
                    out.push_back({Transition::DUPLICATE, s, d});
            }
        }
    }
    if (_combining) {
        const Msg *lead = nullptr;
        int members = 0;
        for (int s = 0; s < _n; ++s) {
            const auto &c =
                w.chan[static_cast<std::size_t>(s) * _n + _home];
            if (c.empty())
                continue;
            const Msg &m = c.front();
            if (lead == nullptr) {
                if (combineLeader(m)) {
                    lead = &m;
                    members = 1;
                }
            } else if (HomeQueue::combinesWith(*lead, m)) {
                ++members;
            }
        }
        if (members >= 2)
            out.push_back({Transition::COMBINE, 0, 0});
    }
    return out;
}

void
Explorer::procComplete(World &w, NodeId i, Word value, bool success)
{
    // Mirror LockFreeCounter::fetchAdd's control flow for one
    // completed micro-op.
    ProcSM &p = w.proc[static_cast<std::size_t>(i)];
    switch (_prim) {
      case Primitive::FAP:
        p.observed.push_back(value);
        ++p.ops_done;
        break;
      case Primitive::CAS:
      case Primitive::LLSC:
        if (p.micro == 0) {
            p.temp = value;
            p.micro = 1;
        } else {
            if (success) {
                p.observed.push_back(p.temp);
                ++p.ops_done;
            }
            p.micro = 0;
        }
        break;
    }
}

void
Explorer::commit(World &w, NodeId self, tf::Outcome &&o)
{
    for (const tf::MemWrite &mw : o.mem_writes) {
        dsm_assert(blockBase(mw.addr) == MC_BLOCK,
                   "mc: memory write outside the modeled block");
        if (mw.is_block)
            w.mem = mw.block;
        else
            w.mem[wordInBlock(mw.addr)] = mw.word;
    }
    for (const tf::DirWrite &dw : o.dir_writes) {
        dsm_assert(blockBase(dw.addr) == MC_BLOCK,
                   "mc: directory write outside the modeled block");
        w.dir = dw.entry;
    }
    for (const tf::Effect &ef : o.effects) {
        switch (ef.kind) {
          case tf::EffectKind::SEND: {
            Msg m = ef.msg;
            m.src = self;
            w.chan[static_cast<std::size_t>(self) * _n + m.dst]
                .push_back(m);
            break;
          }
          case tf::EffectKind::COMPLETE: {
            // The driver's finishTxn, minus tracers: validate the
            // operation's Table 1 chain fact, retire the transaction,
            // and advance the processor's program.
            ChainFact &f = w.fact[self];
            f.observed_chain = w.node[self].txn.max_chain;
            std::vector<std::string> bad = checkChainFacts({f});
            for (std::string &s : bad)
                violation(w, "chain", std::move(s));
            w.node[self].txn.active = false;
            break;
          }
          case tf::EffectKind::RETRY: {
            // The driver draws a backoff and schedules the dispatch;
            // here the delay is a scheduling choice like any other.
            // Only the final serviced attempt is validated against
            // Table 1 (TxnTracer::retry), so the NACKed attempt's
            // facts are cleared.
            w.retry_token[self] = true;
            ChainFact &f = w.fact[self];
            f.serviced = false;
            f.forwarded = false;
            f.home = INVALID_NODE;
            f.owner = INVALID_NODE;
            f.fanout_mask = 0;
            break;
          }
          case tf::EffectKind::TXN_SERVICE: {
            if (ef.id == 0)
                break;
            NodeId req = static_cast<NodeId>(ef.id - 1);
            ChainFact &f = w.fact[static_cast<std::size_t>(req)];
            f.serviced = true;
            f.home = self;
            f.forwarded = ef.facts.forwarded;
            f.owner = ef.facts.owner;
            f.fanout_mask = ef.facts.fanout_mask;
            break;
          }
          case tf::EffectKind::ARM_TIMER:
            // Timeouts are modeled by the lost[] flags: a timer only
            // matters on the branch where its message was dropped.
            break;
          default:
            // Trace / profiler / txn-mark records carry no protocol
            // meaning.
            break;
        }
        // COMPLETE retires the transaction the effect loop may still
        // reference; handle program advancement after the switch so
        // the fact read above sees the pre-completion state.
        if (ef.kind == tf::EffectKind::COMPLETE)
            procComplete(w, self, ef.value, ef.flag);
    }
}

void
Explorer::apply(World &w, const Transition &t)
{
    _cur = &w;
    switch (t.kind) {
      case Transition::ISSUE: {
        tf::OpReq req;
        req.addr = MC_ADDR;
        req.txn_id = static_cast<std::uint64_t>(t.a) + 1;
        const ProcSM &p = w.proc[static_cast<std::size_t>(t.a)];
        switch (_prim) {
          case Primitive::FAP:
            req.op = AtomicOp::FAA;
            req.value = 1;
            break;
          case Primitive::CAS:
            if (p.micro == 0) {
                req.op = AtomicOp::LOAD;
            } else {
                req.op = AtomicOp::CAS;
                req.expected = p.temp;
                req.value = p.temp + 1;
            }
            break;
          case Primitive::LLSC:
            if (p.micro == 0) {
                req.op = AtomicOp::LL;
            } else {
                req.op = AtomicOp::SC;
                req.value = p.temp + 1;
            }
            break;
        }
        ChainFact &f = w.fact[static_cast<std::size_t>(t.a)];
        f = ChainFact{};
        f.op = req.op;
        f.requester = t.a;
        tf::Outcome o = tf::issue(envFor(t.a), w.node[t.a], req);
        commit(w, t.a, std::move(o));
        break;
      }
      case Transition::DELIVER: {
        auto &c = w.chan[static_cast<std::size_t>(t.a) * _n + t.b];
        Msg m = c.front();
        c.erase(c.begin());
        // The canonical pure step: dedup (when armed) plus delivery.
        tf::StepResult r = tf::step(envFor(t.b), w.node[t.b], m);
        w.node[t.b] = std::move(r.next);
        commit(w, t.b, std::move(r.out));
        break;
      }
      case Transition::RETRY: {
        w.retry_token[t.a] = false;
        dsm_assert(w.node[t.a].txn.active,
                   "mc: retry token without an active transaction");
        tf::Outcome o = tf::dispatch(envFor(t.a), w.node[t.a]);
        commit(w, t.a, std::move(o));
        break;
      }
      case Transition::TIMEOUT: {
        // The driver's recoveryTimeout guards: a timer firing after
        // the response arrived (or the txn retired) simply lapses.
        w.lost[t.a] = false;
        const tf::TxnState &txn = w.node[t.a].txn;
        if (!txn.active || !txn.waiting || txn.resp_seen)
            break;
        tf::Outcome o = tf::retransmit(envFor(t.a), w.node[t.a]);
        commit(w, t.a, std::move(o));
        break;
      }
      case Transition::DROP: {
        auto &c = w.chan[static_cast<std::size_t>(t.a) * _n + t.b];
        Msg m = c.front();
        c.erase(c.begin());
        --w.loss_left;
        ++_result.losses;
        NodeId owner = seqOwner(m);
        dsm_assert(owner >= 0 && owner < _n,
                   "mc: dropped message with no owner");
        w.lost[static_cast<std::size_t>(owner)] = true;
        break;
      }
      case Transition::REORDER: {
        // Deliver a message from behind the channel head: the mesh's
        // bounded-skew fault lets it bypass the FIFO ejection
        // reservation of everything queued ahead of it.
        auto &c = w.chan[static_cast<std::size_t>(t.a) * _n + t.b];
        Msg m = c[static_cast<std::size_t>(t.c)];
        m.reordered = true;
        c.erase(c.begin() + t.c);
        --w.reorder_left;
        ++_result.reorders;
        tf::StepResult r = tf::step(envFor(t.b), w.node[t.b], m);
        w.node[t.b] = std::move(r.next);
        commit(w, t.b, std::move(r.out));
        break;
      }
      case Transition::DUPLICATE: {
        // Deliver a replayed-flagged copy of the head while the
        // original stays queued: the sequence guards must absorb the
        // copy without re-driving the protocol, in either order.
        const auto &c = w.chan[static_cast<std::size_t>(t.a) * _n + t.b];
        Msg dup = c.front();
        dup.replayed = true;
        dup.reordered = false;
        --w.dup_left;
        ++_result.dups;
        tf::StepResult r = tf::step(envFor(t.b), w.node[t.b], dup);
        w.node[t.b] = std::move(r.next);
        commit(w, t.b, std::move(r.out));
        break;
      }
      case Transition::COMBINE: {
        // Pop every combinable head in src order, run each member
        // through the home's dedup exactly as the controller does, and
        // serve the survivors in one combined batch.
        std::vector<Msg> batch;
        for (int s = 0; s < _n; ++s) {
            auto &c = w.chan[static_cast<std::size_t>(s) * _n + _home];
            if (c.empty())
                continue;
            const Msg &m = c.front();
            bool take = batch.empty()
                            ? combineLeader(m)
                            : HomeQueue::combinesWith(batch.front(), m);
            if (take) {
                batch.push_back(m);
                c.erase(c.begin());
            }
        }
        dsm_assert(batch.size() >= 2,
                   "mc: COMBINE enabled without a batch");
        ++_result.combines;
        tf::CtrlState &home = w.node[static_cast<std::size_t>(_home)];
        std::vector<Msg> live;
        for (const Msg &m : batch) {
            if (!home.dedup.empty() && m.seq != 0) {
                tf::Outcome o;
                bool handled = tf::tryDedup(envFor(_home), home, m, o);
                commit(w, _home, std::move(o));
                if (handled)
                    continue;
            }
            live.push_back(m);
        }
        if (live.size() >= 2)
            commit(w, _home,
                   tf::deliverCombined(envFor(_home), home, live));
        else if (live.size() == 1)
            commit(w, _home, tf::deliver(envFor(_home), home, live[0]));
        break;
      }
    }
    _cur = nullptr;
}

std::string
Explorer::canonical(const World &w) const
{
    // Seq rank-renaming: NACK-and-retry cycles mint fresh seqs
    // forever, so raw seq values would make every lap around a retry
    // loop a "new" state. Only the relative order of the live seqs
    // owned by a node matters to the protocol (the dedup table and the
    // stale-reply guard compare with <, >, ==), so each owner's live
    // seqs are renamed to their sorted rank, and next_seq — always the
    // highest assigned — becomes the owner's rank count.
    std::vector<std::vector<std::uint64_t>> ranks(
        static_cast<std::size_t>(_n));
    if (_cfg.faults.recoveryEnabled()) {
        auto note = [&ranks](NodeId owner, std::uint64_t seq) {
            if (seq != 0 && owner >= 0 &&
                owner < static_cast<NodeId>(ranks.size()))
                ranks[static_cast<std::size_t>(owner)].push_back(seq);
        };
        for (int i = 0; i < _n; ++i) {
            const tf::CtrlState &st = w.node[i];
            if (st.txn.active && st.txn.waiting)
                note(i, st.txn.seq);
            for (std::size_t r = 0; r < st.dedup.size(); ++r) {
                note(static_cast<NodeId>(r), st.dedup[r].seq);
                if (st.dedup[r].has_reply)
                    note(static_cast<NodeId>(r),
                         st.dedup[r].reply.seq);
            }
        }
        for (const auto &c : w.chan)
            for (const Msg &m : c)
                note(seqOwner(m), m.seq);
        for (auto &r : ranks) {
            std::sort(r.begin(), r.end());
            r.erase(std::unique(r.begin(), r.end()), r.end());
        }
    }

    std::string k;
    k.reserve(512);
    for (int i = 0; i < _n; ++i) {
        const tf::CtrlState &st = w.node[i];

        // Cache: base/state/data of each valid line. LRU stamps and
        // hit/miss counters never influence a 1-way cache's behavior.
        for (const CacheLine &l : st.cache.lines()) {
            if (!l.valid())
                continue;
            encU(k, l.base);
            encU(k, static_cast<std::uint64_t>(l.state));
            for (Word wd : l.data)
                encU(k, wd);
        }
        encU(k, 0xfeedu); // cache / reservation delimiter
        encU(k, st.cache.reservationValid() ? 1 : 0);
        encU(k, st.cache.reservationValid()
                    ? st.cache.reservationAddr()
                    : 0);

        // Transaction: everything the protocol reads. retries only
        // feeds the driver's backoff draw (and grows without bound in
        // NACK cycles), start/txn_id are fixed here, and seq/attempt/
        // req_type are dead unless a request is outstanding — all
        // excluded so livelock laps fold onto one state.
        const tf::TxnState &t = st.txn;
        encU(k, t.active ? 1 : 0);
        if (t.active) {
            encU(k, static_cast<std::uint64_t>(t.op));
            encU(k, t.addr);
            encU(k, t.value);
            encU(k, t.expected);
            encU(k, t.waiting ? 1 : 0);
            encU(k, t.resp_seen ? 1 : 0);
            encU(k, static_cast<std::uint64_t>(t.acks_needed));
            encU(k, static_cast<std::uint64_t>(t.acks_got));
            encU(k, t.resp_value);
            encU(k, t.resp_success ? 1 : 0);
            encU(k, t.resp_serial);
            encU(k, static_cast<std::uint64_t>(t.max_chain));
            encU(k, static_cast<std::uint64_t>(t.fill_raced));
            if (t.waiting) {
                encU(k, rankOf(ranks, i, t.seq));
                encU(k, static_cast<std::uint64_t>(t.attempt));
                encU(k, static_cast<std::uint64_t>(t.req_type));
            }
        }
        encU(k, ranks[static_cast<std::size_t>(i)].size());
        for (std::size_t r = 0; r < st.dedup.size(); ++r) {
            const tf::DedupEntry &de = st.dedup[r];
            encU(k, rankOf(ranks, static_cast<NodeId>(r), de.seq));
            encU(k, de.has_reply ? 1 : 0);
            if (de.has_reply)
                encMsg(k, de.reply, ranks);
        }
        encU(k, st.resv_denied ? 1 : 0);
        encU(k, st.resv_denied_block);

        // Processor program state.
        const ProcSM &p = w.proc[i];
        encU(k, static_cast<std::uint64_t>(p.ops_done));
        encU(k, static_cast<std::uint64_t>(p.micro));
        encU(k, p.temp);
        for (Word v : p.observed)
            encU(k, v);

        // Active-operation chain fact (checked at COMPLETE, so it is
        // state the checking depends on).
        const ChainFact &f = w.fact[i];
        encU(k, static_cast<std::uint64_t>(f.op));
        encU(k, f.serviced ? 1 : 0);
        encU(k, f.forwarded ? 1 : 0);
        encU(k, static_cast<std::uint64_t>(f.home));
        encU(k, static_cast<std::uint64_t>(f.owner));
        encU(k, f.fanout_mask);

        encU(k, w.retry_token[i] ? 1 : 0);
        encU(k, w.lost[i] ? 1 : 0);
    }

    // Directory entry (write serials are bounded by completed writes,
    // so they stay verbatim), memory, channels, loss budget.
    encU(k, static_cast<std::uint64_t>(w.dir.state));
    encU(k, w.dir.sharers);
    encU(k, static_cast<std::uint64_t>(w.dir.owner));
    encU(k, w.dir.busy ? 1 : 0);
    encU(k, static_cast<std::uint64_t>(w.dir.pending_requester));
    encU(k, w.dir.wb_received ? 1 : 0);
    encU(k, w.dir.await_wb ? 1 : 0);
    encU(k, w.dir.reservations);
    encU(k, w.dir.serial);
    for (Word wd : w.mem)
        encU(k, wd);
    for (const auto &c : w.chan) {
        encU(k, c.size());
        for (const Msg &m : c)
            encMsg(k, m, ranks);
    }
    encU(k, static_cast<std::uint64_t>(w.loss_left));
    encU(k, static_cast<std::uint64_t>(w.reorder_left));
    encU(k, static_cast<std::uint64_t>(w.dup_left));
    return k;
}

std::string
Explorer::dump(const World &w) const
{
    std::string out;
    for (int i = 0; i < _n; ++i) {
        out += csprintf("node %d: done %d/%d micro %d temp %llu%s%s\n",
                        i, w.proc[i].ops_done, _ops, w.proc[i].micro,
                        (unsigned long long)w.proc[i].temp,
                        w.retry_token[i] ? " [retry pending]" : "",
                        w.lost[i] ? " [loss outstanding]" : "");
        out += tf::debugString(w.node[i]);
    }
    out += csprintf("dir: state %s sharers %#llx owner %d busy %d "
                    "pending %d wb_received %d await_wb %d resv %#llx\n",
                    toString(w.dir.state),
                    (unsigned long long)w.dir.sharers, w.dir.owner,
                    w.dir.busy ? 1 : 0, w.dir.pending_requester,
                    w.dir.wb_received ? 1 : 0, w.dir.await_wb ? 1 : 0,
                    (unsigned long long)w.dir.reservations);
    out += csprintf("mem[%#llx]:", (unsigned long long)MC_BLOCK);
    for (Word wd : w.mem)
        out += csprintf(" %llu", (unsigned long long)wd);
    out += "\n";
    for (int s = 0; s < _n; ++s)
        for (int d = 0; d < _n; ++d)
            for (const Msg &m :
                 w.chan[static_cast<std::size_t>(s) * _n + d])
                out += csprintf("chan %d->%d: %s", s, d,
                                tf::debugString(m).c_str());
    return out;
}

/** Build the shared-checker snapshot of a world. */
CoherenceView
viewOf(const World &w, const Config &cfg, int n)
{
    CoherenceView v;
    BlockView b;
    b.block = MC_BLOCK;
    b.has_dir = true;
    b.dir = w.dir;
    b.mem = w.mem;
    b.unc_sync = cfg.sync.policy == SyncPolicy::UNC;
    for (NodeId i = 0; i < n; ++i)
        for (const CacheLine &l : w.node[i].cache.lines())
            if (l.valid() && l.base == MC_BLOCK)
                b.copies.push_back(CopyView{i, l.state, l.data});
    v.blocks.push_back(std::move(b));
    return v;
}

void
Explorer::checkEveryState(const World &w)
{
    // Single-writer safety must hold in *every* reachable state, not
    // just quiescent ones: two simultaneous EXCLUSIVE copies would be
    // a real protocol failure mid-flight. (Exclusive-vs-shared overlap
    // is transiently legal while invalidations are in flight, so the
    // full snapshot check waits for quiescence.)
    int exclusives = 0;
    for (int i = 0; i < _n; ++i)
        if (w.node[i].cache.stateOf(MC_ADDR) == LineState::EXCLUSIVE)
            ++exclusives;
    if (exclusives > 1)
        violation(w, "coherence",
                  csprintf("%d exclusive copies coexist", exclusives));
}

void
Explorer::checkQuiescent(const World &w)
{
    for (std::string &s : checkCoherenceView(viewOf(w, _cfg, _n)))
        violation(w, "coherence", std::move(s));
}

void
Explorer::checkTerminal(const World &w)
{
    ++_result.terminals;
    // Value correctness: the completed fetch&adds must form the unique
    // serial history 0, 1, ..., N*ops-1 (each value observed exactly
    // once) and the authoritative copy must hold the total. A
    // lost-then-retransmitted request applied twice (a dedup failure)
    // breaks both.
    std::vector<Word> all;
    for (int i = 0; i < _n; ++i)
        all.insert(all.end(), w.proc[i].observed.begin(),
                   w.proc[i].observed.end());
    std::sort(all.begin(), all.end());
    const std::size_t total = static_cast<std::size_t>(_n) * _ops;
    bool serial_ok = all.size() == total;
    for (std::size_t v = 0; serial_ok && v < all.size(); ++v)
        serial_ok = all[v] == v;
    if (!serial_ok) {
        std::string got;
        for (Word v : all)
            got += csprintf(" %llu", (unsigned long long)v);
        violation(w, "value",
                  csprintf("observed old values {%s } are not the "
                           "serial history {0..%zu}",
                           got.c_str(), total - 1));
    }
    // Under write-invalidate an EXCLUSIVE cached copy — not memory —
    // is the authoritative value (the line is dirty until written
    // back); otherwise every valid copy equals memory (checked by the
    // quiescent snapshot), so memory is authoritative.
    Word final_val = w.mem[wordInBlock(MC_ADDR)];
    for (int i = 0; i < _n; ++i) {
        const CacheLine *l = w.node[i].cache.peek(MC_ADDR);
        if (l != nullptr && l->state == LineState::EXCLUSIVE)
            final_val = l->readWord(MC_ADDR);
    }
    if (final_val != static_cast<Word>(total))
        violation(w, "value",
                  csprintf("final counter value %llu != %zu",
                           (unsigned long long)final_val, total));
}

Result
Explorer::run()
{
    std::unordered_set<std::string> visited;
    // DFS over (world, untried-transition) frames. Worlds are stored
    // by value: small configurations keep them tiny, and explicit
    // frames avoid any recursion-depth concern.
    struct Frame
    {
        World w;
        std::vector<Transition> ts;
        std::size_t next = 0;
    };
    std::vector<Frame> stack;

    World init = initialWorld();
    visited.insert(canonical(init));
    checkEveryState(init);
    stack.push_back(Frame{init, enabled(init), 0});

    while (!stack.empty()) {
        if (visited.size() > _max_states) {
            _result.states = visited.size();
            _result.completed = false;
            return _result;
        }
        Frame &f = stack.back();
        if (f.next == 0) {
            if (f.ts.empty()) {
                if (allDone(f.w))
                    checkTerminal(f.w);
                else
                    violation(f.w, "deadlock",
                              "no enabled transition but programs are "
                              "incomplete");
            } else if (quiescent(f.w)) {
                // No traffic in flight: the full snapshot invariants
                // must hold even though programs will continue.
                checkQuiescent(f.w);
                if (allDone(f.w))
                    checkTerminal(f.w);
            }
        }
        if (f.next >= f.ts.size()) {
            stack.pop_back();
            continue;
        }
        World succ = f.w;
        Transition t = f.ts[f.next++];
        apply(succ, t);
        ++_result.transitions;
        if (visited.insert(canonical(succ)).second) {
            checkEveryState(succ);
            std::vector<Transition> ts = enabled(succ);
            stack.push_back(Frame{std::move(succ), std::move(ts), 0});
            _result.max_depth = std::max<std::uint64_t>(
                _result.max_depth, stack.size());
        }
    }

    _result.states = visited.size();
    _result.completed = true;
    return _result;
}

} // namespace

Result
explore(const Config &cfg)
{
    std::string err = cfg.validate();
    dsm_assert(err.empty(), "mc: invalid configuration: %s",
               err.c_str());
    Explorer e(cfg);
    return e.run();
}

} // namespace mc
} // namespace dsm
