/**
 * @file
 * Set-associative write-back cache with 32-byte blocks.
 *
 * Line states follow the DASH protocol: INVALID, SHARED (read-only,
 * memory current), EXCLUSIVE (this cache owns the only copy; treated as
 * potentially dirty, so evictions of EXCLUSIVE lines always write back).
 *
 * Each cache also holds the processor's load_linked reservation (one
 * reservation bit plus a reservation address register, as on the MIPS
 * R4000 and in Section 3.1).
 */

#ifndef DSM_CACHE_CACHE_HH
#define DSM_CACHE_CACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace dsm {

/** Stable cache-line states. */
enum class LineState
{
    INVALID,
    SHARED,
    EXCLUSIVE,
};

const char *toString(LineState s);

/** One cache line. */
struct CacheLine
{
    Addr base = 0; ///< block base address
    LineState state = LineState::INVALID;
    std::array<Word, BLOCK_WORDS> data{};
    std::uint64_t lru = 0; ///< last-touch stamp

    bool valid() const { return state != LineState::INVALID; }

    Word
    readWord(Addr a) const
    {
        return data[wordInBlock(a)];
    }

    void
    writeWord(Addr a, Word v)
    {
        data[wordInBlock(a)] = v;
    }
};

/** An evicted line that needs further handling by the controller. */
struct Victim
{
    bool valid = false;
    Addr base = 0;
    LineState state = LineState::INVALID;
    std::array<Word, BLOCK_WORDS> data{};
};

/** Per-cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations_received = 0;
};

/**
 * The cache proper. The controller is responsible for coherence actions;
 * the cache only tracks state, data, and replacement.
 */
class Cache
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity.
     */
    Cache(unsigned sets, unsigned ways);

    /** Find the line holding @p a; nullptr on miss. Updates LRU. */
    CacheLine *lookup(Addr a);

    /** Find without disturbing replacement state. */
    const CacheLine *peek(Addr a) const;

    /** State of the block holding @p a (INVALID on miss); no LRU touch. */
    LineState
    stateOf(Addr a) const
    {
        const CacheLine *l = peek(a);
        return l == nullptr ? LineState::INVALID : l->state;
    }

    /**
     * Allocate a line for the block containing @p a, evicting the LRU
     * way if the set is full. The allocated line is returned in INVALID
     * state; the caller fills state and data.
     * @param victim Receives the evicted line, if any.
     */
    CacheLine *allocate(Addr a, Victim *victim);

    /** Drop the line holding @p a, if present. */
    void invalidate(Addr a);

    /** Total lines currently valid. */
    unsigned validLines() const;

    /** @name Load-linked reservation (one per cache). @{ */
    bool reservationValid() const { return _resv_valid; }
    Addr reservationAddr() const { return _resv_addr; }
    /** Tick the reservation was set at (faults.resv_max_age aging). */
    Tick reservationTick() const { return _resv_tick; }

    void
    setReservation(Addr a, Tick now = 0)
    {
        _resv_valid = true;
        _resv_addr = blockBase(a);
        _resv_tick = now;
    }

    void clearReservation() { _resv_valid = false; }

    /** Clear the reservation if it covers the block containing @p a. */
    void
    clearReservationIfCovers(Addr a)
    {
        if (_resv_valid && _resv_addr == blockBase(a))
            _resv_valid = false;
    }
    /** @} */

    CacheStats &stats() { return _stats; }
    const CacheStats &stats() const { return _stats; }

    /** All line slots (sets x ways), for inspection and checking. */
    const std::vector<CacheLine> &lines() const { return _lines; }

  private:
    unsigned setIndex(Addr a) const;

    unsigned _sets;
    unsigned _ways;
    std::vector<CacheLine> _lines; ///< sets * ways, set-major
    std::uint64_t _stamp = 0;

    bool _resv_valid = false;
    Addr _resv_addr = 0;
    Tick _resv_tick = 0;

    CacheStats _stats;
};

} // namespace dsm

#endif // DSM_CACHE_CACHE_HH
