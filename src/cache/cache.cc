#include "cache/cache.hh"

#include "sim/logging.hh"

namespace dsm {

const char *
toString(LineState s)
{
    switch (s) {
      case LineState::INVALID: return "Invalid";
      case LineState::SHARED: return "Shared";
      case LineState::EXCLUSIVE: return "Exclusive";
    }
    return "?";
}

Cache::Cache(unsigned sets, unsigned ways)
    : _sets(sets), _ways(ways), _lines(sets * ways)
{
    dsm_assert(sets > 0 && (sets & (sets - 1)) == 0,
               "sets must be a power of two");
    dsm_assert(ways > 0, "ways must be nonzero");
}

unsigned
Cache::setIndex(Addr a) const
{
    return static_cast<unsigned>((a / BLOCK_BYTES) & (_sets - 1));
}

CacheLine *
Cache::lookup(Addr a)
{
    Addr base = blockBase(a);
    unsigned s = setIndex(a);
    for (unsigned w = 0; w < _ways; ++w) {
        CacheLine &line = _lines[s * _ways + w];
        if (line.valid() && line.base == base) {
            line.lru = ++_stamp;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
Cache::peek(Addr a) const
{
    Addr base = blockBase(a);
    unsigned s = setIndex(a);
    for (unsigned w = 0; w < _ways; ++w) {
        const CacheLine &line = _lines[s * _ways + w];
        if (line.valid() && line.base == base)
            return &line;
    }
    return nullptr;
}

CacheLine *
Cache::allocate(Addr a, Victim *victim)
{
    Addr base = blockBase(a);
    unsigned s = setIndex(a);
    dsm_assert(peek(a) == nullptr,
               "allocate of already-present block %#llx",
               static_cast<unsigned long long>(base));

    CacheLine *choice = nullptr;
    for (unsigned w = 0; w < _ways; ++w) {
        CacheLine &line = _lines[s * _ways + w];
        if (!line.valid()) {
            choice = &line;
            break;
        }
        if (choice == nullptr || line.lru < choice->lru)
            choice = &line;
    }

    if (victim != nullptr)
        victim->valid = false;
    if (choice->valid()) {
        ++_stats.evictions;
        clearReservationIfCovers(choice->base);
        if (victim != nullptr) {
            victim->valid = true;
            victim->base = choice->base;
            victim->state = choice->state;
            victim->data = choice->data;
        }
    }

    choice->base = base;
    choice->state = LineState::INVALID;
    choice->data.fill(0);
    choice->lru = ++_stamp;
    return choice;
}

void
Cache::invalidate(Addr a)
{
    Addr base = blockBase(a);
    clearReservationIfCovers(base);
    unsigned s = setIndex(a);
    for (unsigned w = 0; w < _ways; ++w) {
        CacheLine &line = _lines[s * _ways + w];
        if (line.valid() && line.base == base) {
            line.state = LineState::INVALID;
            return;
        }
    }
}

unsigned
Cache::validLines() const
{
    unsigned n = 0;
    for (const CacheLine &line : _lines)
        if (line.valid())
            ++n;
    return n;
}

} // namespace dsm
