#include "exp/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unordered_map>

#include "cpu/system.hh"
#include "fault/fault.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "stats/telemetry_html.hh"

namespace {

/** True when $DSM_TXN_TRACE asks for transaction tracing. */
bool
txnTraceEnv()
{
    const char *v = std::getenv("DSM_TXN_TRACE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

/** True when $DSM_TIMESERIES asks for time-resolved telemetry. */
bool
timeseriesEnv()
{
    const char *v = std::getenv("DSM_TIMESERIES");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // anonymous namespace

namespace dsm {

std::vector<ImplCase>
figureMatrix()
{
    std::vector<ImplCase> v;
    auto add = [&v](SyncPolicy pol, Primitive prim, CasVariant var,
                    bool lx, bool dc) {
        SyncConfig sc;
        sc.policy = pol;
        sc.cas_variant = var;
        sc.use_load_exclusive = lx;
        sc.use_drop_copy = dc;
        std::string label = std::string(toString(pol)) + " ";
        if (pol == SyncPolicy::INV && var != CasVariant::PLAIN)
            label = std::string(toString(var)) + " ";
        label += toString(prim);
        if (lx)
            label += "+lx";
        if (dc)
            label += "+dc";
        v.push_back({label, prim, sc});
    };

    // UNC: no caching, so no drop_copy / load_exclusive variants.
    add(SyncPolicy::UNC, Primitive::FAP, CasVariant::PLAIN, false, false);
    add(SyncPolicy::UNC, Primitive::LLSC, CasVariant::PLAIN, false, false);
    add(SyncPolicy::UNC, Primitive::CAS, CasVariant::PLAIN, false, false);

    for (bool dc : {false, true}) {
        add(SyncPolicy::INV, Primitive::FAP, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::INV, Primitive::LLSC, CasVariant::PLAIN, false,
            dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::DENY, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::SHARE, false, dc);
        add(SyncPolicy::INV, Primitive::CAS, CasVariant::PLAIN, true, dc);
    }
    for (bool dc : {false, true}) {
        add(SyncPolicy::UPD, Primitive::FAP, CasVariant::PLAIN, false, dc);
        add(SyncPolicy::UPD, Primitive::LLSC, CasVariant::PLAIN, false,
            dc);
        add(SyncPolicy::UPD, Primitive::CAS, CasVariant::PLAIN, false, dc);
    }
    return v;
}

std::vector<ImplCase>
applicationMatrix()
{
    std::vector<ImplCase> v;
    for (SyncPolicy pol :
         {SyncPolicy::UNC, SyncPolicy::INV, SyncPolicy::UPD}) {
        for (Primitive prim :
             {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
            SyncConfig sc;
            sc.policy = pol;
            std::string label =
                std::string(toString(pol)) + " " + toString(prim);
            v.push_back({label, prim, sc});
        }
    }
    return v;
}

Experiment
Experiment::paper64(std::string name, SyncPolicy pol)
{
    Config cfg; // defaults are the paper's machine: 64 nodes, 8x8 mesh
    cfg.sync.policy = pol;
    return Experiment(std::move(name), cfg);
}

Experiment::Experiment(std::string name, Config base)
    : _name(std::move(name)), _base(std::move(base)), _report(_name)
{
}

Experiment &
Experiment::title(const std::string &line)
{
    _titles.push_back(line);
    return *this;
}

Experiment &
Experiment::meta(const std::string &k, const std::string &v)
{
    _report.meta(k, v);
    return *this;
}

Experiment &
Experiment::meta(const std::string &k, double v)
{
    _report.meta(k, v);
    return *this;
}

Experiment &
Experiment::meta(const std::string &k, int v)
{
    _report.meta(k, v);
    return *this;
}

Experiment &
Experiment::rowKey(std::string k)
{
    _row_key = std::move(k);
    return *this;
}

Experiment &
Experiment::colKey(std::string k)
{
    _col_key = std::move(k);
    return *this;
}

Experiment &
Experiment::table(bool on)
{
    _table = on;
    return *this;
}

Experiment &
Experiment::quiet(bool on)
{
    _quiet = on;
    return *this;
}

Experiment &
Experiment::writeReport(bool on)
{
    _write_report = on;
    return *this;
}

Experiment &
Experiment::traceTxns(bool on)
{
    _trace_txns = on;
    return *this;
}

Experiment &
Experiment::timeseries(bool on)
{
    _timeseries = on;
    return *this;
}

Experiment &
Experiment::seed(std::uint64_t s)
{
    if (s != 0)
        _seed = s;
    return *this;
}

Experiment &
Experiment::faults(const FaultConfig &fc)
{
    if (fc.enabled)
        _faults = fc;
    return *this;
}

Config
Experiment::configFor(SyncPolicy pol) const
{
    Config cfg = _base;
    cfg.sync.policy = pol;
    return cfg;
}

Config
Experiment::configFor(const ImplCase &impl) const
{
    Config cfg = _base;
    cfg.sync = impl.sync;
    return cfg;
}

Experiment &
Experiment::impls(std::vector<ImplCase> matrix)
{
    _impls = std::move(matrix);
    return *this;
}

Experiment &
Experiment::workload(WorkloadFn fn)
{
    _workload = std::move(fn);
    return *this;
}

Experiment &
Experiment::sweep(const std::string &key, std::vector<double> values)
{
    SweepSpec spec;
    spec.key = key;
    for (double v : values)
        spec.labels.push_back(csprintf("%s=%g", key.c_str(), v));
    spec.values = std::move(values);
    _sweeps.push_back(std::move(spec));
    return *this;
}

Experiment &
Experiment::cases(const std::string &key, std::vector<std::string> labels)
{
    SweepSpec spec;
    spec.key = key;
    for (std::size_t i = 0; i < labels.size(); ++i)
        spec.values.push_back(static_cast<double>(i));
    spec.labels = std::move(labels);
    _sweeps.push_back(std::move(spec));
    return *this;
}

Experiment &
Experiment::point(std::string row, std::string col, Config cfg,
                  PointFn fn)
{
    dsm_assert(fn != nullptr, "point without a workload closure");
    _points.push_back(Point{std::move(row), std::move(col),
                            std::move(cfg), std::move(fn)});
    return *this;
}

void
Experiment::expandMatrix()
{
    if (_expanded)
        return;
    _expanded = true;
    if (_impls.empty() && _sweeps.empty())
        return;
    dsm_assert(!_impls.empty() && !_sweeps.empty() &&
                   _workload != nullptr,
               "matrix sweeps need impls(), sweep()/cases(), and "
               "workload()");
    // Impl-major expansion: every implementation's row collects each
    // sweep's columns in declaration order.
    for (const ImplCase &impl : _impls) {
        Config cfg = configFor(impl);
        for (const SweepSpec &spec : _sweeps) {
            for (std::size_t i = 0; i < spec.values.size(); ++i) {
                SweepPoint sp{spec.key, spec.values[i], spec.labels[i]};
                WorkloadFn fn = _workload;
                ImplCase ic = impl;
                _points.push_back(Point{
                    impl.label, sp.label, cfg,
                    [fn, ic, sp](System &sys) {
                        return fn(sys, ic, sp);
                    }});
            }
        }
    }
}

void
Experiment::emit(const std::string &s)
{
    _rendered += s;
    if (!_quiet) {
        std::fputs(s.c_str(), stdout);
        std::fflush(stdout);
    }
}

std::string
Experiment::headerText() const
{
    std::string out = "\n";
    out += csprintf("%-*s", static_cast<int>(_label_width),
                    _row_key.c_str());
    for (const std::string &c : _cols)
        out += csprintf(" %10s", c.c_str());
    out += "\n";
    out.append(_label_width + 11 * _cols.size(), '-');
    out += "\n";
    return out;
}

std::string
Experiment::rowText(const std::string &row,
                    const std::vector<const PointResult *> &cells) const
{
    std::string out = csprintf("%-*s", static_cast<int>(_label_width),
                               row.c_str());
    for (const PointResult *r : cells)
        out += csprintf(" %10.1f", r->value);
    out += "\n";
    return out;
}

const std::vector<PointResult> &
Experiment::run(int jobs)
{
    expandMatrix();

    // Seed override: an explicit seed() wins over $DSM_SEED. Recorded
    // in the report meta only when actually applied, so default runs
    // stay byte-identical to reports written before seeds existed.
    std::uint64_t s = _seed != 0 ? _seed : seedFromEnv();
    if (s != 0 && !_seed_applied) {
        _seed_applied = true;
        for (Point &p : _points)
            p.cfg.machine.seed = s;
        _report.meta("seed", s);
    }

    // Fault plan: an explicit faults() wins over $DSM_FAULTS.
    FaultConfig fc = _faults.enabled ? _faults : faultConfigFromEnv();
    if (fc.enabled && !_faults_applied) {
        _faults_applied = true;
        for (Point &p : _points)
            p.cfg.faults = fc;
        _report.meta("faults", fc.summary());
    }

    // Transaction tracing: flip it on in every point's Config and wrap
    // each point function to harvest the tracer after the workload
    // returns. The Chrome pid and process name are baked in from the
    // declaration index, so a parallel run's harvest is byte-identical
    // to a serial one.
    bool txn_on = _trace_txns || txnTraceEnv();
    if (txn_on && !_txn_wrapped) {
        _txn_wrapped = true;
        for (std::size_t i = 0; i < _points.size(); ++i) {
            Point &p = _points[i];
            p.cfg.txn_trace.enabled = true;
            PointFn inner = std::move(p.fn);
            int pid = static_cast<int>(i);
            std::string pname =
                p.col.empty() ? p.row : p.row + " " + p.col;
            p.fn = [inner, pid, pname](System &sys) {
                PointResult r = inner(sys);
                const TxnTracer &tx = sys.txns();
                r.fields.set("txn_completed", tx.completed());
                r.fields.set("txn_phase_sum_mismatches",
                             tx.phaseSumMismatches());
                r.fields.set("txn_chain_divergences",
                             tx.chainDivergences());
                r.fields.setRaw("txn_phases",
                                tx.attribution().phasesJson());
                r.txn_events = tx.chromeEventsJsonArray(pid, pname);
                r.txn_summary = tx.attribution().summaryLine();
                r.txn_divergences = tx.chainDivergences();
                r.txn_mismatches = tx.phaseSumMismatches();
                return r;
            };
        }
    }

    // Time-resolved telemetry: flip it on in every point's Config and
    // wrap each point function to harvest the finalized telemetry
    // snapshot after the workload returns. Harvests are merged in
    // declaration order below, so --jobs never changes the document.
    bool ts_on = _timeseries || timeseriesEnv();
    if (ts_on && !_ts_wrapped) {
        _ts_wrapped = true;
        for (Point &p : _points) {
            p.cfg.telemetry.enabled = true;
            PointFn inner = std::move(p.fn);
            p.fn = [inner](System &sys) {
                PointResult r = inner(sys);
                r.ts_json = sys.telemetryJson();
                return r;
            };
        }
    }

    // Column order and label width for the printed table.
    _cols.clear();
    for (const Point &p : _points) {
        if (!p.col.empty() &&
            std::find(_cols.begin(), _cols.end(), p.col) == _cols.end())
            _cols.push_back(p.col);
        _label_width = std::max(_label_width, p.row.size());
    }

    // The last point of each row triggers that row's table line.
    std::unordered_map<std::string, std::size_t> last_of_row;
    std::unordered_map<std::string, std::vector<std::size_t>> row_points;
    for (std::size_t i = 0; i < _points.size(); ++i) {
        last_of_row[_points[i].row] = i;
        row_points[_points[i].row].push_back(i);
    }

    for (const std::string &t : _titles)
        emit(t + "\n");
    if (_table && !_points.empty())
        emit(headerText());

    std::vector<char> done(_points.size(), 0);
    std::size_t frontier = 0;

    SweepRunner runner(jobs);
    runner.runInto(_points, _results, [&](std::size_t i) {
        done[i] = 1;
        // Emit output for every completed prefix point, in declaration
        // order: text blocks as they come, a table row once its last
        // point is in. Runs under the runner's lock, so parallel sweeps
        // print byte-identically to serial ones.
        while (frontier < _points.size() && done[frontier]) {
            const PointResult &r = _results[frontier];
            if (!r.text.empty())
                emit(r.text);
            if (_table &&
                last_of_row[_points[frontier].row] == frontier) {
                std::vector<const PointResult *> cells;
                for (std::size_t j : row_points[_points[frontier].row])
                    cells.push_back(&_results[j]);
                emit(rowText(_points[frontier].row, cells));
            }
            ++frontier;
        }
    });

    // Assemble the machine-readable report in declaration order. The
    // report never records the job count: the document must be
    // bit-identical however the sweep was scheduled.
    _report.meta("procs", _base.machine.num_procs);
    _report.meta("mesh_x", _base.machine.mesh_x);
    _report.meta("mesh_y", _base.machine.mesh_y);
    for (std::size_t i = 0; i < _points.size(); ++i) {
        BenchRow out;
        if (!_row_key.empty())
            out.set(_row_key, _points[i].row);
        if (!_col_key.empty() && !_points[i].col.empty())
            out.set(_col_key, _points[i].col);
        out.merge(_results[i].fields);
        out.metrics(_results[i].metrics);
        _report.append(std::move(out));
    }
    if (_write_report) {
        _report_path = _report.write();
        if (!_report_path.empty())
            emit(csprintf("\nwrote %s\n", _report_path.c_str()));
    }

    if (txn_on) {
        std::uint64_t divergences = 0, mismatches = 0;
        for (const PointResult &r : _results) {
            divergences += r.txn_divergences;
            mismatches += r.txn_mismatches;
        }
        emit(csprintf("txn trace: %llu chain divergences, %llu "
                      "phase-sum mismatches across %zu points\n",
                      (unsigned long long)divergences,
                      (unsigned long long)mismatches,
                      _results.size()));
        if (_write_report) {
            const char *dir = std::getenv("DSM_BENCH_DIR");
            std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
            std::string path = d + "/TRACE_" + _name + ".json";
            std::ofstream out(path, std::ios::binary);
            if (out) {
                // Merge the per-point event arrays into one Chrome
                // trace document; each fragment is a complete JSON
                // array, so strip the outer brackets before joining.
                out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
                bool first = true;
                for (const PointResult &r : _results) {
                    if (r.txn_events.size() <= 2)
                        continue; // "[]": no events
                    if (!first)
                        out << ',';
                    first = false;
                    out.write(r.txn_events.data() + 1,
                              static_cast<std::streamsize>(
                                  r.txn_events.size() - 2));
                }
                out << "]}\n";
            }
            if (!out) {
                dsm_warn("could not write txn trace %s", path.c_str());
            } else {
                _trace_path = path;
                emit(csprintf("wrote %s\n", path.c_str()));
            }
        }
    }

    if (ts_on) {
        // Merge the per-point telemetry fragments into one
        // dsm-timeseries-v1 document. Each fragment is a complete JSON
        // object, so splice its members after the point's identity keys
        // by stripping the opening brace.
        std::string doc = "{\"schema\":\"dsm-timeseries-v1\",\"bench\":\"" +
                          jsonEscape(_name) + "\",\"meta\":{\"procs\":" +
                          csprintf("%d", _base.machine.num_procs) +
                          ",\"mesh_x\":" +
                          csprintf("%d", _base.machine.mesh_x) +
                          ",\"mesh_y\":" +
                          csprintf("%d", _base.machine.mesh_y) +
                          "},\"points\":[";
        for (std::size_t i = 0; i < _points.size(); ++i) {
            if (i != 0)
                doc += ',';
            doc += "{\"impl\":\"" + jsonEscape(_points[i].row) +
                   "\",\"point\":\"" + jsonEscape(_points[i].col) + "\"";
            const std::string &frag = _results[i].ts_json;
            if (frag.size() > 2)
                doc += "," + frag.substr(1);
            else
                doc += "}";
        }
        doc += "]}";
        _timeseries_json = std::move(doc);
        if (_write_report) {
            const char *dir = std::getenv("DSM_BENCH_DIR");
            std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
            std::string path = d + "/TIMESERIES_" + _name + ".json";
            std::ofstream out(path, std::ios::binary);
            if (out)
                out << _timeseries_json << '\n';
            if (!out) {
                dsm_warn("could not write timeseries %s", path.c_str());
            } else {
                _timeseries_path = path;
                emit(csprintf("wrote %s\n", path.c_str()));
            }
            std::string hpath = d + "/TIMESERIES_" + _name + ".html";
            if (writeTelemetryHtml(hpath, _timeseries_json, _name)) {
                _timeseries_html_path = hpath;
                emit(csprintf("wrote %s\n", hpath.c_str()));
            }
        }
    }
    return _results;
}

} // namespace dsm
