/**
 * @file
 * Parallel execution engine for Experiment sweeps.
 *
 * A sweep is a list of Points, each a fully independent deterministic
 * simulation (its own Config, seed, and System). The SweepRunner
 * executes them across a pool of host threads and delivers results
 * indexed by declaration order, so a parallel run is bit-identical to
 * a serial one: each point's outcome depends only on its Config, never
 * on which thread ran it or when.
 */

#ifndef DSM_EXP_SWEEP_RUNNER_HH
#define DSM_EXP_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "stats/bench_report.hh"

namespace dsm {

class System;

/** What one executed sweep point produced. */
struct PointResult
{
    /** Headline number shown in the point's table cell. */
    double value = 0.0;
    /** Standard metric harvest; the point function fills this. */
    RunMetrics metrics;
    /** Extra machine-readable row fields (spliced before metrics). */
    BenchRow fields;
    /** Optional free-form block printed with the results. */
    std::string text;

    /** @name Transaction-tracer harvest (filled by Experiment when
     *  transaction tracing is on; empty otherwise). @{ */
    /** Chrome trace events of this point, a rendered JSON array. */
    std::string txn_events;
    /** One-line phase-attribution summary. */
    std::string txn_summary;
    std::uint64_t txn_divergences = 0; ///< Table 1 chain divergences
    std::uint64_t txn_mismatches = 0;  ///< phase-sum != latency count
    /** @} */

    /**
     * Telemetry harvest (filled by Experiment when timeseries() is on,
     * empty otherwise): System::telemetryJson() of this point, a
     * rendered JSON object.
     */
    std::string ts_json;
};

/** The workload of one point, run on a freshly built System. */
using PointFn = std::function<PointResult(System &)>;

/** One independent simulation of a sweep. */
struct Point
{
    std::string row;  ///< table row this point belongs to
    std::string col;  ///< table column this point belongs to
    Config cfg;       ///< complete machine + sync config (incl. seed)
    PointFn fn;       ///< builds the workload, runs it, harvests
};

/**
 * Executes a list of Points across @c jobs host threads.
 *
 * Results are returned in declaration order regardless of completion
 * order. With jobs == 1 everything runs inline on the calling thread
 * (no pool is created), which is the reference behaviour that parallel
 * runs are guaranteed to reproduce byte-for-byte.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs Worker threads; <= 0 resolves via resolveJobs(0)
     *             ($DSM_JOBS, default 1).
     */
    explicit SweepRunner(int jobs = 0);

    /** The resolved worker-thread count. */
    int jobs() const { return _jobs; }

    /**
     * Run every point; return results in declaration order.
     * @param on_done Optional progress hook, called once per completed
     *        point (with its declaration index) under an internal lock;
     *        callbacks never run concurrently.
     */
    std::vector<PointResult>
    run(const std::vector<Point> &points,
        const std::function<void(std::size_t)> &on_done = {});

    /**
     * Like run(), but fills a caller-owned result vector (resized to
     * points.size() first). When @p on_done fires for index i, @p out
     * already holds the results of every completed point, so streaming
     * consumers may read out[j] for any j they know to be done.
     */
    void runInto(const std::vector<Point> &points,
                 std::vector<PointResult> &out,
                 const std::function<void(std::size_t)> &on_done = {});

    /**
     * Resolve a requested job count: a positive request wins, else
     * $DSM_JOBS if set and positive, else 1.
     */
    static int resolveJobs(int requested);

  private:
    int _jobs;
};

/**
 * Extract a "--jobs N" / "--jobs=N" / "-j N" flag from a bench binary's
 * command line. @return the value, or 0 if no flag is present (meaning:
 * fall back to $DSM_JOBS). dsm_fatal on a malformed value.
 */
int parseJobsFlag(int argc, char **argv);

/**
 * Extract a "--seed N" / "--seed=N" flag from a bench binary's command
 * line. @return the value, or 0 if no flag is present (meaning: fall
 * back to $DSM_SEED via Experiment::seed, else the config default).
 * dsm_fatal on a malformed or zero value.
 */
std::uint64_t parseSeedFlag(int argc, char **argv);

/** $DSM_SEED as an integer, or 0 when unset. dsm_fatal if malformed. */
std::uint64_t seedFromEnv();

} // namespace dsm

#endif // DSM_EXP_SWEEP_RUNNER_HH
