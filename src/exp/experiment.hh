/**
 * @file
 * First-class experiment driver for the paper-reproduction benchmarks.
 *
 * An Experiment describes a named sweep as a list of Points (Config +
 * SyncConfig + Primitive + workload closure + seed) and executes them
 * with a SweepRunner across host threads (--jobs N / $DSM_JOBS). Rows,
 * text blocks, and the BENCH_<name>.json report are emitted in
 * declaration order, so parallel output is bit-identical to serial.
 *
 * Two styles compose:
 *
 *  - fluent matrix sweeps (Figures 3-5, ablations):
 *        Experiment::paper64("fig3_lockfree_counter")
 *            .impls(figureMatrix())
 *            .workload(fn)           // (System &, ImplCase, SweepPoint)
 *            .sweep("a", {1, 1.5, 2, 3, 10})
 *            .sweep("c", {2, 4, 8, 16, 64})
 *            .run(jobs);
 *
 *  - explicit points (Figure 2, Table 1, directed experiments):
 *        ex.point(rowLabel, colLabel, cfg, fn);  // fn: (System &)
 *
 * The implementation matrix of Section 3 (policy x primitive x variant
 * x auxiliary instructions) lives here too: figureMatrix() is the full
 * set shown in Figures 3-5, applicationMatrix() the reduced policy x
 * primitive set used by Figure 6 and the ablations.
 */

#ifndef DSM_EXP_EXPERIMENT_HH
#define DSM_EXP_EXPERIMENT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/sweep_runner.hh"
#include "sim/config.hh"
#include "stats/bench_report.hh"

namespace dsm {

/** One implementation under study: a (primitive, SyncConfig) pair. */
struct ImplCase
{
    std::string label;  ///< e.g. "INV CAS+lx" or "UNC FAP"
    Primitive prim;
    SyncConfig sync;
};

/**
 * The full set of implementations shown in Figures 3-5, grouped as in
 * the paper: UNC bars, then INV bars without/with drop_copy (CAS in the
 * INV, INVd, INVs, and INV+load_exclusive variants), then UPD bars
 * without/with drop_copy.
 */
std::vector<ImplCase> figureMatrix();

/** The reduced (policy x primitive) matrix used for Figure 6. */
std::vector<ImplCase> applicationMatrix();

/** One sweep column, as seen by a workload closure. */
struct SweepPoint
{
    std::string key;    ///< sweep parameter name, e.g. "c"
    double value = 0;   ///< parameter value (or case index)
    std::string label;  ///< column label, e.g. "c=64"
};

/** Workload closure for matrix sweeps declared via impls()/sweep(). */
using WorkloadFn = std::function<PointResult(
    System &, const ImplCase &, const SweepPoint &)>;

/**
 * A named experiment: base machine config, declared points, and the
 * table/report conventions. run() executes all points (in parallel if
 * asked), prints the table and text blocks in declaration order, and
 * writes BENCH_<name>.json.
 */
class Experiment
{
  public:
    /** An experiment on the paper's machine: 64 nodes on an 8x8 mesh. */
    static Experiment paper64(std::string name,
                              SyncPolicy pol = SyncPolicy::INV);

    Experiment(std::string name, Config base);

    /** @name Description. @{ */

    /** Append a line printed above the table. */
    Experiment &title(const std::string &line);

    /** Run-level metadata recorded in the report's meta object. */
    Experiment &meta(const std::string &k, const std::string &v);
    Experiment &meta(const std::string &k, double v);
    Experiment &meta(const std::string &k, int v);

    /** Key naming the row label in report rows (default "impl"). */
    Experiment &rowKey(std::string k);
    /** Key naming the column label ("point" by default; "" omits it). */
    Experiment &colKey(std::string k);
    /** Enable/disable the plain-text value table (default on). */
    Experiment &table(bool on);
    /** Suppress all stdout (tableText() still accumulates). */
    Experiment &quiet(bool on);
    /** Enable/disable writing BENCH_<name>.json (default on). */
    Experiment &writeReport(bool on);

    /**
     * Enable transaction tracing on every point: each point's Config
     * gets txn_trace.enabled, its results gain per-phase latency
     * attribution (a "txn_phases" report field plus txn_* counters),
     * and — when report writing is on — the merged Chrome trace is
     * written as TRACE_<name>.json next to BENCH_<name>.json. Also
     * switched on by a nonempty $DSM_TXN_TRACE (other than "0").
     */
    Experiment &traceTxns(bool on);

    /**
     * Enable time-resolved telemetry on every point: each point's
     * Config gets telemetry.enabled, its System samples every series
     * at each window boundary, and — when report writing is on — the
     * merged dsm-timeseries-v1 document is written as
     * TIMESERIES_<name>.json (plus a self-contained HTML rendering,
     * TIMESERIES_<name>.html) next to BENCH_<name>.json. Also switched
     * on by a nonempty $DSM_TIMESERIES (other than "0"). The merged
     * document is assembled in declaration order, so a parallel run's
     * export is byte-identical to a serial one.
     */
    Experiment &timeseries(bool on);

    /**
     * Override the machine RNG seed of every point (0 is a no-op, so
     * chaining `.seed(parseSeedFlag(argc, argv))` is safe). Also
     * honoured from $DSM_SEED when no explicit seed is given. When a
     * seed is applied — and only then — it is recorded in the report's
     * meta object as "seed", keeping default reports byte-identical.
     */
    Experiment &seed(std::uint64_t s);

    /**
     * Apply a fault-injection plan to every point (a disabled config
     * is a no-op). Also honoured from $DSM_FAULTS / $DSM_FAULT_SEED
     * when not set explicitly. An applied plan is recorded in the
     * report's meta object as "faults" (FaultConfig::summary()).
     */
    Experiment &faults(const FaultConfig &fc);

    /** @} */

    /** @name Configuration. @{ */

    /** The base machine config every point starts from (mutable). */
    Config &baseConfig() { return _base; }
    const Config &baseConfig() const { return _base; }

    /** Base config with the sync policy replaced. */
    Config configFor(SyncPolicy pol) const;

    /** Base config with the implementation's SyncConfig applied. */
    Config configFor(const ImplCase &impl) const;

    /** @} */

    /** @name Matrix sweeps. @{ */

    /** The implementation matrix crossed with every sweep() call. */
    Experiment &impls(std::vector<ImplCase> matrix);

    /** The closure run for every (impl x sweep point) combination. */
    Experiment &workload(WorkloadFn fn);

    /**
     * Add one numeric sweep dimension: a column per value, labelled
     * "<key>=<value>". Points expand impl-major at run() time, so every
     * implementation's row holds each sweep's columns in order.
     */
    Experiment &sweep(const std::string &key, std::vector<double> values);

    /** Like sweep(), with named cases; SweepPoint.value is the index. */
    Experiment &cases(const std::string &key,
                      std::vector<std::string> labels);

    /** @} */

    /** Add one explicit point (declaration order is output order). */
    Experiment &point(std::string row, std::string col, Config cfg,
                      PointFn fn);

    /**
     * Execute every declared point and emit results.
     * @param jobs Worker threads; <= 0 resolves via $DSM_JOBS, else 1.
     * @return results in declaration order.
     */
    const std::vector<PointResult> &run(int jobs = 0);

    /** Results of the last run(), in declaration order. */
    const std::vector<PointResult> &results() const { return _results; }

    /** The points declared so far (explicit + expanded after run()). */
    std::size_t numPoints() const { return _points.size(); }

    /** Everything printed (or suppressed by quiet()) by run(). */
    const std::string &tableText() const { return _rendered; }

    /** The machine-readable report document of the last run(). */
    std::string reportJson() const { return _report.toJson(); }

    /** Where run() wrote the report ("" before run / on failure). */
    const std::string &reportPath() const { return _report_path; }

    /** Where run() wrote TRACE_<name>.json ("" if not written). */
    const std::string &tracePath() const { return _trace_path; }

    /** The merged dsm-timeseries-v1 document ("" unless telemetry ran). */
    const std::string &timeseriesJson() const { return _timeseries_json; }

    /** Where run() wrote TIMESERIES_<name>.json ("" if not written). */
    const std::string &timeseriesPath() const { return _timeseries_path; }

    /** Where run() wrote TIMESERIES_<name>.html ("" if not written). */
    const std::string &
    timeseriesHtmlPath() const
    {
        return _timeseries_html_path;
    }

  private:
    struct SweepSpec
    {
        std::string key;
        std::vector<double> values;
        std::vector<std::string> labels;
    };

    void expandMatrix();
    void emit(const std::string &s);
    void flushCompleted(const std::vector<Point> &pts,
                        const std::vector<char> &done,
                        std::size_t &frontier);
    std::string headerText() const;
    std::string rowText(const std::string &row,
                        const std::vector<const PointResult *> &cells)
        const;

    std::string _name;
    Config _base;
    std::vector<std::string> _titles;
    std::string _row_key = "impl";
    std::string _col_key = "point";
    bool _table = true;
    bool _quiet = false;
    bool _write_report = true;
    bool _trace_txns = false;
    bool _txn_wrapped = false;
    bool _timeseries = false;
    bool _ts_wrapped = false;
    std::uint64_t _seed = 0;
    bool _seed_applied = false;
    FaultConfig _faults;
    bool _faults_applied = false;

    std::vector<ImplCase> _impls;
    WorkloadFn _workload;
    std::vector<SweepSpec> _sweeps;
    std::vector<Point> _points;
    bool _expanded = false;

    std::vector<PointResult> _results;
    BenchReport _report;
    std::string _report_path;
    std::string _trace_path;
    std::string _timeseries_json;
    std::string _timeseries_path;
    std::string _timeseries_html_path;
    std::string _rendered;

    /** Column labels in first-appearance order. */
    std::vector<std::string> _cols;
    /** Label width of the printed table. */
    std::size_t _label_width = 16;
};

} // namespace dsm

#endif // DSM_EXP_EXPERIMENT_HH
