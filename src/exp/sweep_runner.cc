#include "exp/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

PointResult
executePoint(const Point &p)
{
    System sys(p.cfg);
    return p.fn(sys);
}

} // anonymous namespace

SweepRunner::SweepRunner(int jobs) : _jobs(resolveJobs(jobs))
{
}

int
SweepRunner::resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("DSM_JOBS");
    if (env != nullptr && env[0] != '\0') {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == nullptr || *end != '\0' || v < 1)
            dsm_fatal("DSM_JOBS must be a positive integer, got '%s'",
                      env);
        return static_cast<int>(v);
    }
    return 1;
}

std::vector<PointResult>
SweepRunner::run(const std::vector<Point> &points,
                 const std::function<void(std::size_t)> &on_done)
{
    std::vector<PointResult> results;
    runInto(points, results, on_done);
    return results;
}

void
SweepRunner::runInto(const std::vector<Point> &points,
                     std::vector<PointResult> &results,
                     const std::function<void(std::size_t)> &on_done)
{
    results.clear();
    results.resize(points.size());
    std::size_t n = points.size();
    std::size_t workers =
        std::min(static_cast<std::size_t>(_jobs), n);

    if (workers <= 1) {
        // Reference serial path: no threads, declaration order.
        for (std::size_t i = 0; i < n; ++i) {
            results[i] = executePoint(points[i]);
            if (on_done)
                on_done(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                PointResult r = executePoint(points[i]);
                std::lock_guard<std::mutex> lock(done_mutex);
                results[i] = std::move(r);
                if (on_done)
                    on_done(i);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
}

int
parseJobsFlag(int argc, char **argv)
{
    auto parse = [](const char *s) {
        char *end = nullptr;
        long v = std::strtol(s, &end, 10);
        if (end == nullptr || *end != '\0' || v < 1)
            dsm_fatal("--jobs expects a positive integer, got '%s'", s);
        return static_cast<int>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--jobs=", 7) == 0)
            return parse(a + 7);
        if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) {
            if (i + 1 >= argc)
                dsm_fatal("%s requires a value", a);
            return parse(argv[i + 1]);
        }
    }
    return 0;
}

std::uint64_t
parseSeedFlag(int argc, char **argv)
{
    auto parse = [](const char *s) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || v == 0)
            dsm_fatal("--seed expects a positive integer, got '%s'", s);
        return static_cast<std::uint64_t>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--seed=", 7) == 0)
            return parse(a + 7);
        if (std::strcmp(a, "--seed") == 0) {
            if (i + 1 >= argc)
                dsm_fatal("--seed requires a value");
            return parse(argv[i + 1]);
        }
    }
    return 0;
}

std::uint64_t
seedFromEnv()
{
    const char *s = std::getenv("DSM_SEED");
    if (s == nullptr || *s == '\0')
        return 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || v == 0)
        dsm_fatal("DSM_SEED must be a positive integer, got '%s'", s);
    return static_cast<std::uint64_t>(v);
}

} // namespace dsm
