/**
 * @file
 * Queued memory module: a single-ported memory bank with a FIFO request
 * queue and fixed service time, modeling memory contention as in the
 * paper's simulator ("queued memory").
 */

#ifndef DSM_MEM_MEM_MODULE_HH
#define DSM_MEM_MEM_MODULE_HH

#include <cstdint>

#include "sim/types.hh"
#include "stats/histogram.hh"

namespace dsm {

/**
 * One node's memory module. access() reserves the next free service slot
 * and returns its completion time; callers schedule their directory
 * action at that tick, which serializes all directory/memory state
 * mutations at this node.
 */
class MemModule
{
  public:
    explicit MemModule(Tick service_time) : _service(service_time) {}

    /**
     * Enqueue a request arriving at @p now.
     * @return the tick at which the request completes.
     */
    Tick
    access(Tick now)
    {
        Tick start = now > _free ? now : _free;
        _free = start + _service;
        ++_accesses;
        _busy_cycles += _service;
        Tick wait = start - now;
        if (wait > 0)
            _queue_cycles += wait;
        _queue_wait.add(wait);
        return _free;
    }

    /** Number of requests serviced. */
    std::uint64_t accesses() const { return _accesses; }
    /** Total cycles requests spent waiting in the queue. */
    std::uint64_t queueCycles() const { return _queue_cycles; }
    /** Total cycles the bank spent servicing requests. */
    std::uint64_t busyCycles() const { return _busy_cycles; }
    /** Per-request queue-wait distribution (cycles). */
    const Histogram &queueWait() const { return _queue_wait; }

    /** Tick at which the bank next goes idle (backlog gauge). */
    Tick freeAt() const { return _free; }

  private:
    Tick _service;
    Tick _free = 0;
    std::uint64_t _accesses = 0;
    std::uint64_t _queue_cycles = 0;
    std::uint64_t _busy_cycles = 0;
    Histogram _queue_wait;
};

} // namespace dsm

#endif // DSM_MEM_MEM_MODULE_HH
