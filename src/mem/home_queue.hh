/**
 * @file
 * Explicit home-node request queue for the overload-protection layer
 * (ServeConfig). Without it, requests to a home reserve MemModule
 * service slots implicitly in arrival order; with serve.enabled each
 * home buffers its requests here and the controller pumps one service
 * slot at a time, which is what makes combining (many requests, one
 * slot) and priority scheduling (two classes with aging) possible.
 *
 * The queue is two-level: foreground requests (prio 0) ahead of
 * low-priority retry/recovery traffic (prio 1). Starvation freedom of
 * the low class is by aging: pump() serves the low head first whenever
 * it has waited at least age_limit cycles, so a low request is
 * overtaken by foreground traffic for a bounded time, after which it
 * is the very next request served.
 */

#ifndef DSM_MEM_HOME_QUEUE_HH
#define DSM_MEM_HOME_QUEUE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "net/msg.hh"
#include "sim/types.hh"

namespace dsm {

/** Machine-wide counters of the overload-protection layer. */
struct ServeStats
{
    /** @name Home-queue service accounting. @{ */
    std::uint64_t slots = 0;      ///< memory service slots consumed
    std::uint64_t served = 0;     ///< requests served (all classes)
    std::uint64_t hi_served = 0;  ///< foreground requests served
    std::uint64_t lo_served = 0;  ///< low-priority requests served
    std::uint64_t aged = 0;       ///< low heads promoted by aging
    /** @} */

    /** @name Combining (invariant: served == slots + coalesced). @{ */
    std::uint64_t batches = 0;    ///< combined batches (size >= 2)
    std::uint64_t coalesced = 0;  ///< followers folded into a leader's slot
    /** @} */

    /** @name Credit-based backpressure. @{ */
    std::uint64_t throttle_events = 0; ///< requester entered throttle
    std::uint64_t throttle_cycles = 0; ///< total throttled duration
    /** @} */

    /** @name Contention backoff for NACK retries. @{ */
    std::uint64_t backoff_capped = 0; ///< retries at the raised cap
    /** @} */
};

/**
 * One home node's two-level request queue. Owned by System (one per
 * node when serve.enabled); the node's Controller pushes arriving
 * home-targeted requests and pumps service slots.
 */
class HomeQueue
{
  public:
    /** One queued request with its arrival tick (for aging/tracing). */
    struct Entry
    {
        Msg msg;
        Tick enq = 0;
    };

    explicit HomeQueue(Tick age_limit) : _age_limit(age_limit) {}

    /** Buffer an arriving request in its priority class. */
    void
    push(const Msg &m, Tick now, bool low)
    {
        (low ? _lo : _hi).push_back(Entry{m, now});
    }

    /**
     * Pop the next request to serve at @p now: the low head when it
     * has aged past the limit, else the foreground head, else the low
     * head. Requires !empty().
     */
    Entry
    pop(Tick now, ServeStats &st)
    {
        bool aged = !_lo.empty() && now >= _lo.front().enq &&
                    now - _lo.front().enq >= _age_limit;
        std::deque<Entry> &q = (aged || _hi.empty()) ? _lo : _hi;
        Entry e = q.front();
        q.pop_front();
        ++st.served;
        if (&q == &_lo) {
            ++st.lo_served;
            if (aged && !_hi.empty())
                ++st.aged;
        } else {
            ++st.hi_served;
        }
        return e;
    }

    /**
     * Extract every queued request that combines with @p leader —
     * same type, same word address, commutative op — from either
     * class, preserving queue order, up to @p limit followers.
     * Combining candidates: FAA fetch&adds to the same word (UNC_REQ /
     * UPD_REQ), and duplicate GET_S fills of the same block.
     */
    std::vector<Entry>
    extractCombinable(const Msg &leader, int limit)
    {
        std::vector<Entry> out;
        auto sweep = [&](std::deque<Entry> &q) {
            for (auto it = q.begin();
                 it != q.end() && static_cast<int>(out.size()) < limit;) {
                if (combinesWith(leader, it->msg)) {
                    out.push_back(*it);
                    it = q.erase(it);
                } else {
                    ++it;
                }
            }
        };
        sweep(_hi);
        sweep(_lo);
        return out;
    }

    /** True when @p follower can share @p leader's service slot. */
    static bool
    combinesWith(const Msg &leader, const Msg &follower)
    {
        if (follower.type != leader.type ||
            follower.src == leader.src)
            return false;
        if (leader.type == MsgType::GET_S)
            return follower.addr == leader.addr;
        if ((leader.type == MsgType::UNC_REQ ||
             leader.type == MsgType::UPD_REQ) &&
            leader.op == AtomicOp::FAA &&
            follower.op == AtomicOp::FAA)
            return follower.word_addr == leader.word_addr;
        return false;
    }

    bool empty() const { return _hi.empty() && _lo.empty(); }
    std::size_t depth() const { return _hi.size() + _lo.size(); }

  private:
    Tick _age_limit;
    std::deque<Entry> _hi;
    std::deque<Entry> _lo;
};

} // namespace dsm

#endif // DSM_MEM_HOME_QUEUE_HH
