/**
 * @file
 * Directory state, DASH-style, one entry per 32-byte block.
 *
 * A block is UNCACHED, SHARED (with a full bit-vector of sharers), or
 * EXCLUSIVE (with a single owner). Exclusive-ownership transfers pass
 * through a busy sub-state during which conflicting requests are NACKed
 * and retried (Section 3 bases the protocols on the DASH protocol).
 *
 * The entry also holds the in-memory load_linked/store_conditional state
 * for the UNC and UPD implementations (Section 3.1): a reservation bit
 * vector and a write serial number (the paper's preferred space
 * optimization, also used by our serial-number LL/SC extension).
 */

#ifndef DSM_MEM_DIRECTORY_HH
#define DSM_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsm {

/** Stable states of a directory entry. */
enum class DirState
{
    UNCACHED,
    SHARED,
    EXCLUSIVE,
};

const char *toString(DirState s);

/** Directory entry for one coherence block. */
struct DirEntry
{
    DirState state = DirState::UNCACHED;
    /** Bit-vector of sharers (valid when SHARED); bit i = node i. */
    std::uint64_t sharers = 0;
    /** Owning node (valid when EXCLUSIVE). */
    NodeId owner = INVALID_NODE;

    /** @name Busy sub-state for in-flight ownership transfers. @{ */
    bool busy = false;
    /** Original requester to answer (or NACK) when the transfer ends. */
    NodeId pending_requester = INVALID_NODE;
    /** A write-back arrived while the forward was outstanding. */
    bool wb_received = false;
    /** The owner reported the line gone; waiting for its write-back. */
    bool await_wb = false;
    /** @} */

    /** @name In-memory LL/SC support (UNC/UPD implementations). @{ */
    /** Reservation bit-vector; bit i = processor i holds a reservation. */
    std::uint64_t reservations = 0;
    /** Serial number of writes to this block (Section 3.1 option 4). */
    std::uint32_t serial = 0;
    /** @} */

    bool isSharer(NodeId n) const { return sharers & (1ULL << n); }
    void addSharer(NodeId n) { sharers |= 1ULL << n; }
    void removeSharer(NodeId n) { sharers &= ~(1ULL << n); }
    int numSharers() const { return __builtin_popcountll(sharers); }

    bool hasReservation(NodeId n) const
    {
        return reservations & (1ULL << n);
    }
    void setReservation(NodeId n) { reservations |= 1ULL << n; }
    void clearReservations() { reservations = 0; }
    int numReservations() const
    {
        return __builtin_popcountll(reservations);
    }

    /** Record a write for the serial-number LL/SC scheme. */
    void bumpSerial() { ++serial; }
};

/** The directory for blocks homed at one memory module. */
class Directory
{
  public:
    /** Get (creating on demand) the entry for the block containing @p a. */
    DirEntry &
    entry(Addr a)
    {
        return _entries[blockBase(a)];
    }

    /** Look up without creating; nullptr if never touched. */
    const DirEntry *
    find(Addr a) const
    {
        auto it = _entries.find(blockBase(a));
        return it == _entries.end() ? nullptr : &it->second;
    }

    std::size_t size() const { return _entries.size(); }

    /** All entries, for inspection and invariant checking. */
    const std::unordered_map<Addr, DirEntry> &entries() const
    {
        return _entries;
    }

    /** Record one stable-state transition (called by the controller). */
    void noteTransition() { ++_transitions; }

    /** Stable-state transitions recorded at this directory. */
    const std::uint64_t &transitions() const { return _transitions; }

  private:
    std::unordered_map<Addr, DirEntry> _entries;
    std::uint64_t _transitions = 0;
};

} // namespace dsm

#endif // DSM_MEM_DIRECTORY_HH
