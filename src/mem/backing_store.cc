#include "mem/backing_store.hh"

namespace dsm {

Word
BackingStore::readWord(Addr a) const
{
    auto it = _words.find(wordBase(a));
    return it == _words.end() ? 0 : it->second;
}

void
BackingStore::writeWord(Addr a, Word v)
{
    _words[wordBase(a)] = v;
}

std::array<Word, BLOCK_WORDS>
BackingStore::readBlock(Addr a) const
{
    std::array<Word, BLOCK_WORDS> out{};
    Addr base = blockBase(a);
    for (unsigned i = 0; i < BLOCK_WORDS; ++i)
        out[i] = readWord(base + i * WORD_BYTES);
    return out;
}

void
BackingStore::writeBlock(Addr a, const std::array<Word, BLOCK_WORDS> &data)
{
    Addr base = blockBase(a);
    for (unsigned i = 0; i < BLOCK_WORDS; ++i)
        _words[base + i * WORD_BYTES] = data[i];
}

} // namespace dsm
