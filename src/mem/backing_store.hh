/**
 * @file
 * Sparse word-granularity backing store for main memory contents.
 *
 * Each word of the simulated shared address space has exactly one home
 * memory module, so a single sparse map suffices; block reads/writes are
 * provided for data-carrying coherence messages. Cache copies are stored
 * separately in the caches so that races on atomically accessed data are
 * simulated value-accurately (as the paper's simulator does).
 */

#ifndef DSM_MEM_BACKING_STORE_HH
#define DSM_MEM_BACKING_STORE_HH

#include <array>
#include <unordered_map>

#include "sim/types.hh"

namespace dsm {

/** Sparse main-memory contents, word granularity, zero-initialized. */
class BackingStore
{
  public:
    /** Read the word at (word-aligned) address @p a. */
    Word readWord(Addr a) const;

    /** Write the word at (word-aligned) address @p a. */
    void writeWord(Addr a, Word v);

    /** Read the whole block containing @p a. */
    std::array<Word, BLOCK_WORDS> readBlock(Addr a) const;

    /** Write the whole block containing @p a. */
    void writeBlock(Addr a, const std::array<Word, BLOCK_WORDS> &data);

  private:
    std::unordered_map<Addr, Word> _words;
};

} // namespace dsm

#endif // DSM_MEM_BACKING_STORE_HH
