#include "mem/directory.hh"

namespace dsm {

const char *
toString(DirState s)
{
    switch (s) {
      case DirState::UNCACHED: return "Uncached";
      case DirState::SHARED: return "Shared";
      case DirState::EXCLUSIVE: return "Exclusive";
    }
    return "?";
}

} // namespace dsm
