#include "net/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "trace/txn.hh"

namespace dsm {

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg)
    : _eq(eq), _cfg(cfg),
      _handlers(cfg.num_procs),
      _inj_free(cfg.num_procs, 0),
      _ej_free(cfg.num_procs, 0),
      _inj_msgs(cfg.num_procs, 0),
      _ej_msgs(cfg.num_procs, 0),
      _inj_flits(cfg.num_procs, 0)
{
}

void
Mesh::setHandler(NodeId n, Handler h)
{
    dsm_assert(n >= 0 && n < static_cast<NodeId>(_handlers.size()),
               "bad node id %d", n);
    _handlers[n] = std::move(h);
}

void
Mesh::clearStats()
{
    _stats = MeshStats{};
    std::fill(_inj_msgs.begin(), _inj_msgs.end(), 0);
    std::fill(_ej_msgs.begin(), _ej_msgs.end(), 0);
    std::fill(_inj_flits.begin(), _inj_flits.end(), 0);
    std::fill(_link_flits.begin(), _link_flits.end(), 0);
}

void
Mesh::enableLinkCounters()
{
    std::size_t links = static_cast<std::size_t>(_cfg.num_procs) *
                        static_cast<std::size_t>(_cfg.num_procs);
    _link_flits.assign(links, 0);
}

int
Mesh::hops(NodeId a, NodeId b) const
{
    int ax = a % _cfg.mesh_x, ay = a / _cfg.mesh_x;
    int bx = b % _cfg.mesh_x, by = b / _cfg.mesh_x;
    return std::abs(ax - bx) + std::abs(ay - by);
}

unsigned
Mesh::flitsFor(const Msg &msg) const
{
    unsigned bytes = msg.sizeBytes() + _cfg.header_bytes;
    return (bytes + _cfg.flit_bytes - 1) / _cfg.flit_bytes;
}

void
Mesh::setRecovery(Recovery *r, int quarantine_k, Tick quarantine_window)
{
    _recovery = r;
    _quarantine_k = quarantine_k;
    _quarantine_window = quarantine_window;
    std::size_t links = static_cast<std::size_t>(_cfg.num_procs) *
                        static_cast<std::size_t>(_cfg.num_procs);
    _quarantined.assign(links, 0);
    _drop_times.assign(links, {});
    _have_quarantine = false;
}

int
Mesh::buildPath(NodeId src, NodeId dst, bool yx_order,
                NodeId *path) const
{
    int x = src % _cfg.mesh_x, y = src / _cfg.mesh_x;
    int dx = dst % _cfg.mesh_x, dy = dst / _cfg.mesh_x;
    int n = 0;
    path[n++] = src;
    auto walk_x = [&] {
        while (x != dx) {
            x += x < dx ? 1 : -1;
            path[n++] = static_cast<NodeId>(y * _cfg.mesh_x + x);
        }
    };
    auto walk_y = [&] {
        while (y != dy) {
            y += y < dy ? 1 : -1;
            path[n++] = static_cast<NodeId>(y * _cfg.mesh_x + x);
        }
    };
    if (yx_order) {
        walk_y();
        walk_x();
    } else {
        walk_x();
        walk_y();
    }
    dsm_assert(n <= MAX_PATH_NODES, "path overflow %d", n);
    return n;
}

bool
Mesh::pathQuarantined(const NodeId *path, int nodes) const
{
    for (int i = 0; i + 1 < nodes; ++i)
        if (_quarantined[linkId(path[i], path[i + 1])] != 0)
            return true;
    return false;
}

void
Mesh::noteLinkDrop(NodeId from, NodeId to, Tick now)
{
    if (_quarantine_k <= 0)
        return;
    std::size_t id = linkId(from, to);
    if (_quarantined[id] != 0)
        return;
    std::vector<Tick> &times = _drop_times[id];
    times.push_back(now);
    // Keep only drops inside the sliding window.
    std::size_t keep = 0;
    for (Tick t : times)
        if (now - t <= _quarantine_window)
            times[keep++] = t;
    times.resize(keep);
    if (static_cast<int>(times.size()) < _quarantine_k)
        return;
    _quarantined[id] = 1;
    _have_quarantine = true;
    times.clear();
    times.shrink_to_fit();
    ++_recovery->counters().links_quarantined;
    if (_tracer != nullptr && _tracer->on(TraceCat::LINK_FAULT)) {
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::LINK_FAULT;
        ev.node = static_cast<std::int16_t>(from);
        ev.peer = static_cast<std::int16_t>(to);
        ev.value = 1;
        _tracer->record(ev);
    }
}

void
Mesh::send(const Msg &msg)
{
    dsm_assert(msg.src >= 0 && msg.src < _cfg.num_procs &&
               msg.dst >= 0 && msg.dst < _cfg.num_procs,
               "bad endpoints %d -> %d", msg.src, msg.dst);
    dsm_assert(_handlers[msg.dst] != nullptr, "no handler at node %d",
               msg.dst);

    Tick now = _eq.now();
    Msg m = msg;
    Tracer *tr = _tracer;
    if (tr != nullptr && tr->on(TraceCat::MSG_SEND)) {
        m.trace_id = tr->nextFlowId();
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::MSG_SEND;
        ev.node = static_cast<std::int16_t>(m.src);
        ev.peer = static_cast<std::int16_t>(m.dst);
        ev.op = static_cast<std::uint8_t>(m.type);
        ev.addr = m.addr;
        ev.flow = m.trace_id;
        tr->record(ev);
    }

    if (m.txn_id != 0 && _txns != nullptr)
        _txns->noteSend(m.txn_id);

    // When the scheduled lambda runs, _eq.now() is the delivery tick.
    // Injected duplicate replays reuse this path with the replayed
    // flag set; a reordered delivery is counted here so the ledger's
    // reorders_delivered reconciles against the injector's draw count.
    auto schedule_delivery = [this, tr](Tick at, const Msg &dm) {
        _eq.schedule(at, [this, tr, dm] {
            if (tr != nullptr && tr->on(TraceCat::MSG_RECV)) {
                TraceEvent ev;
                ev.tick = _eq.now();
                ev.cat = TraceCat::MSG_RECV;
                ev.node = static_cast<std::int16_t>(dm.dst);
                ev.peer = static_cast<std::int16_t>(dm.src);
                ev.op = static_cast<std::uint8_t>(dm.type);
                ev.addr = dm.addr;
                ev.flow = dm.trace_id;
                tr->record(ev);
            }
            if (dm.reordered && _recovery != nullptr)
                ++_recovery->counters().reorders_delivered;
            _handlers[dm.dst](dm);
        });
    };

    if (m.src == m.dst) {
        ++_stats.local;
        schedule_delivery(now + _cfg.local_latency, m);
        return;
    }

    unsigned flits = flitsFor(m);
    Tick ser = static_cast<Tick>(flits) * _cfg.flit_latency;

    // Injection port: serialized among messages leaving this node.
    Tick depart = std::max(now, _inj_free[m.src]);
    _inj_free[m.src] = depart + ser;

    // In-flight time: head latency over the dimension-order path.
    int nhops = hops(m.src, m.dst);

    // Only a consumer — armed message loss, corruption (which needs a
    // link to attribute the detected drop to), or per-link telemetry —
    // makes us materialize the path: XY dimension order, falling back
    // to YX (identical hop count, so timing-neutral) when XY would
    // cross a quarantined link.
    bool loss_armed = _faults != nullptr && _faults->lossArmed();
    bool corrupt_armed = _faults != nullptr && _faults->corruptArmed();
    bool droppable = _recovery != nullptr && m.seq != 0 &&
                     (recoverableRequest(m.type) ||
                      recoverableReply(m.type));
    NodeId path[MAX_PATH_NODES];
    int nnodes = 0;
    if (loss_armed || corrupt_armed || !_link_flits.empty()) {
        nnodes = buildPath(m.src, m.dst, false, path);
        if (_have_quarantine && pathQuarantined(path, nnodes)) {
            NodeId alt[MAX_PATH_NODES];
            int altn = buildPath(m.src, m.dst, true, alt);
            if (!pathQuarantined(alt, altn)) {
                std::copy(alt, alt + altn, path);
                nnodes = altn;
            }
        }
    }

    // Telemetry: attribute this message's flits to each directed link
    // of its path. Counted before the loss check — a dropped message
    // still offered its load to the links it would have crossed.
    if (!_link_flits.empty())
        for (int i = 0; i + 1 < nnodes; ++i)
            _link_flits[linkId(path[i], path[i + 1])] += flits;

    // Message-loss faults. A dropped message has already consumed its
    // injection slot — only the delivery (and the ejection port) never
    // happens.
    if (loss_armed) {
        NodeId lf = INVALID_NODE, lt = INVALID_NODE;
        if (droppable &&
            _faults->dropMessage(now, path, nnodes, lf, lt)) {
            ++_stats.messages;
            _stats.flits += flits;
            _stats.hop_sum += static_cast<std::uint64_t>(nhops);
            ++_inj_msgs[m.src];
            _inj_flits[m.src] += flits;
            _recovery->noteDrop(m, lf, lt);
            noteLinkDrop(lf, lt, now);
            if (tr != nullptr && tr->on(TraceCat::LINK_FAULT)) {
                TraceEvent ev;
                ev.tick = now;
                ev.cat = TraceCat::LINK_FAULT;
                ev.node = static_cast<std::int16_t>(lf);
                ev.peer = static_cast<std::int16_t>(lt);
                ev.op = static_cast<std::uint8_t>(m.type);
                ev.addr = m.addr;
                ev.flow = m.trace_id;
                tr->record(ev);
            }
            return;
        }
    }

    // Payload corruption: stamp the checksum the ejection port will
    // verify, then let the injector flip a protocol-visible bit. A
    // mismatch at verify turns the corruption into a detected drop —
    // the message never reaches the protocol, and the retransmission
    // machinery recovers it like any other loss. Corruption is payload
    // damage, not a link failure, so it does not feed the quarantine
    // windows. (If a flip ever eluded the checksum, the corrupted
    // message would be delivered and the coherence checker would flag
    // the damage — the ledger's corrupt_detected count is how runs
    // prove that never happened.)
    if (corrupt_armed && droppable) {
        m.checksum = m.computeChecksum();
        if (_faults->corruptMessage(m) &&
            m.computeChecksum() != m.checksum) {
            ++_stats.messages;
            _stats.flits += flits;
            _stats.hop_sum += static_cast<std::uint64_t>(nhops);
            ++_inj_msgs[m.src];
            _inj_flits[m.src] += flits;
            ++_recovery->counters().corrupt_detected;
            _recovery->noteDrop(m, path[0], path[1]);
            if (tr != nullptr && tr->on(TraceCat::LINK_FAULT)) {
                TraceEvent ev;
                ev.tick = now;
                ev.cat = TraceCat::LINK_FAULT;
                ev.node = static_cast<std::int16_t>(path[0]);
                ev.peer = static_cast<std::int16_t>(path[1]);
                ev.op = static_cast<std::uint8_t>(m.type);
                ev.addr = m.addr;
                ev.flow = m.trace_id;
                tr->record(ev);
            }
            return;
        }
    }

    Tick head_arrive = depart + static_cast<Tick>(nhops) * _cfg.hop_latency;

    // Fault injection: bounded arrival jitter, applied before the
    // ejection-port reservation below so the per-destination FIFO
    // delivery order the protocol depends on still holds.
    if (_faults != nullptr)
        head_arrive += _faults->messageJitter();

    // Reordering: a sequence-guarded message may bypass the ejection
    // port's FIFO reservation with a bounded seeded skew — it neither
    // waits for the port backlog nor extends the reservation, so
    // messages sent later can overtake it (and it can overtake the
    // backlog). Confined to the guarded classes the epoch/sequence
    // guards absorb; every other class keeps FIFO delivery.
    bool guarded = _faults != nullptr && _recovery != nullptr &&
                   m.seq != 0 && sequenceGuarded(m.type);
    Tick deliver;
    Tick skew = guarded && _faults->reorderArmed()
                    ? _faults->reorderSkew() : 0;
    if (skew != 0) {
        m.reordered = true;
        deliver = head_arrive + ser + skew;
    } else {
        // Ejection port: serialized among messages entering the
        // destination.
        Tick start = std::max(head_arrive, _ej_free[m.dst]);
        deliver = start + ser;
        _ej_free[m.dst] = deliver;
    }

    ++_stats.messages;
    _stats.flits += flits;
    _stats.hop_sum += static_cast<std::uint64_t>(nhops);
    ++_inj_msgs[m.src];
    ++_ej_msgs[m.dst];
    _inj_flits[m.src] += flits;

    // Duplication: replay a guarded message a seeded delay after its
    // original delivery. The replay is scheduled directly — it cannot
    // itself be dropped, corrupted, or reordered, and the original is
    // always delivered strictly first (dup_delay >= 1). The replayed
    // flag lets the guards attribute the absorbed duplicate to the
    // injection ledger; mesh traffic stats count only the original.
    if (guarded && _faults->dupArmed()) {
        Tick delay = _faults->duplicateDelay();
        if (delay != 0) {
            Msg dup = m;
            dup.replayed = true;
            dup.reordered = false;
            schedule_delivery(deliver + delay, dup);
        }
    }

    schedule_delivery(deliver, m);
}

} // namespace dsm
