#include "net/mesh.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace dsm {

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg)
    : _eq(eq), _cfg(cfg),
      _handlers(cfg.num_procs),
      _inj_free(cfg.num_procs, 0),
      _ej_free(cfg.num_procs, 0)
{
}

void
Mesh::setHandler(NodeId n, Handler h)
{
    dsm_assert(n >= 0 && n < static_cast<NodeId>(_handlers.size()),
               "bad node id %d", n);
    _handlers[n] = std::move(h);
}

int
Mesh::hops(NodeId a, NodeId b) const
{
    int ax = a % _cfg.mesh_x, ay = a / _cfg.mesh_x;
    int bx = b % _cfg.mesh_x, by = b / _cfg.mesh_x;
    return std::abs(ax - bx) + std::abs(ay - by);
}

unsigned
Mesh::flitsFor(const Msg &msg) const
{
    unsigned bytes = msg.sizeBytes() + _cfg.header_bytes;
    return (bytes + _cfg.flit_bytes - 1) / _cfg.flit_bytes;
}

void
Mesh::send(const Msg &msg)
{
    dsm_assert(msg.src >= 0 && msg.src < _cfg.num_procs &&
               msg.dst >= 0 && msg.dst < _cfg.num_procs,
               "bad endpoints %d -> %d", msg.src, msg.dst);
    Handler &h = _handlers[msg.dst];
    dsm_assert(h != nullptr, "no handler at node %d", msg.dst);

    Tick now = _eq.now();
    if (msg.src == msg.dst) {
        ++_stats.local;
        _eq.schedule(now + _cfg.local_latency,
                     [&h, msg] { h(msg); });
        return;
    }

    unsigned flits = flitsFor(msg);
    Tick ser = static_cast<Tick>(flits) * _cfg.flit_latency;

    // Injection port: serialized among messages leaving this node.
    Tick depart = std::max(now, _inj_free[msg.src]);
    _inj_free[msg.src] = depart + ser;

    // In-flight time: head latency over the dimension-order path.
    int nhops = hops(msg.src, msg.dst);
    Tick head_arrive = depart + static_cast<Tick>(nhops) * _cfg.hop_latency;

    // Ejection port: serialized among messages entering the destination.
    Tick start = std::max(head_arrive, _ej_free[msg.dst]);
    Tick deliver = start + ser;
    _ej_free[msg.dst] = deliver;

    ++_stats.messages;
    _stats.flits += flits;
    _stats.hop_sum += static_cast<std::uint64_t>(nhops);

    _eq.schedule(deliver, [&h, msg] { h(msg); });
}

} // namespace dsm
