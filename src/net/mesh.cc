#include "net/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "fault/fault.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "trace/txn.hh"

namespace dsm {

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg)
    : _eq(eq), _cfg(cfg),
      _handlers(cfg.num_procs),
      _inj_free(cfg.num_procs, 0),
      _ej_free(cfg.num_procs, 0),
      _inj_msgs(cfg.num_procs, 0),
      _ej_msgs(cfg.num_procs, 0),
      _inj_flits(cfg.num_procs, 0)
{
}

void
Mesh::setHandler(NodeId n, Handler h)
{
    dsm_assert(n >= 0 && n < static_cast<NodeId>(_handlers.size()),
               "bad node id %d", n);
    _handlers[n] = std::move(h);
}

void
Mesh::clearStats()
{
    _stats = MeshStats{};
    std::fill(_inj_msgs.begin(), _inj_msgs.end(), 0);
    std::fill(_ej_msgs.begin(), _ej_msgs.end(), 0);
    std::fill(_inj_flits.begin(), _inj_flits.end(), 0);
}

int
Mesh::hops(NodeId a, NodeId b) const
{
    int ax = a % _cfg.mesh_x, ay = a / _cfg.mesh_x;
    int bx = b % _cfg.mesh_x, by = b / _cfg.mesh_x;
    return std::abs(ax - bx) + std::abs(ay - by);
}

unsigned
Mesh::flitsFor(const Msg &msg) const
{
    unsigned bytes = msg.sizeBytes() + _cfg.header_bytes;
    return (bytes + _cfg.flit_bytes - 1) / _cfg.flit_bytes;
}

void
Mesh::send(const Msg &msg)
{
    dsm_assert(msg.src >= 0 && msg.src < _cfg.num_procs &&
               msg.dst >= 0 && msg.dst < _cfg.num_procs,
               "bad endpoints %d -> %d", msg.src, msg.dst);
    Handler &h = _handlers[msg.dst];
    dsm_assert(h != nullptr, "no handler at node %d", msg.dst);

    Tick now = _eq.now();
    Msg m = msg;
    Tracer *tr = _tracer;
    if (tr != nullptr && tr->on(TraceCat::MSG_SEND)) {
        m.trace_id = tr->nextFlowId();
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::MSG_SEND;
        ev.node = static_cast<std::int16_t>(m.src);
        ev.peer = static_cast<std::int16_t>(m.dst);
        ev.op = static_cast<std::uint8_t>(m.type);
        ev.addr = m.addr;
        ev.flow = m.trace_id;
        tr->record(ev);
    }

    if (m.txn_id != 0 && _txns != nullptr)
        _txns->noteSend(m.txn_id);

    // When the lambda runs, _eq.now() is the delivery tick.
    auto deliver_fn = [this, &h, tr, m] {
        if (tr != nullptr && tr->on(TraceCat::MSG_RECV)) {
            TraceEvent ev;
            ev.tick = _eq.now();
            ev.cat = TraceCat::MSG_RECV;
            ev.node = static_cast<std::int16_t>(m.dst);
            ev.peer = static_cast<std::int16_t>(m.src);
            ev.op = static_cast<std::uint8_t>(m.type);
            ev.addr = m.addr;
            ev.flow = m.trace_id;
            tr->record(ev);
        }
        h(m);
    };

    if (m.src == m.dst) {
        ++_stats.local;
        Tick at = now + _cfg.local_latency;
        _eq.schedule(at, std::move(deliver_fn));
        return;
    }

    unsigned flits = flitsFor(m);
    Tick ser = static_cast<Tick>(flits) * _cfg.flit_latency;

    // Injection port: serialized among messages leaving this node.
    Tick depart = std::max(now, _inj_free[m.src]);
    _inj_free[m.src] = depart + ser;

    // In-flight time: head latency over the dimension-order path.
    int nhops = hops(m.src, m.dst);
    Tick head_arrive = depart + static_cast<Tick>(nhops) * _cfg.hop_latency;

    // Fault injection: bounded arrival jitter, applied before the
    // ejection-port reservation below so the per-destination FIFO
    // delivery order the protocol depends on still holds.
    if (_faults != nullptr)
        head_arrive += _faults->messageJitter();

    // Ejection port: serialized among messages entering the destination.
    Tick start = std::max(head_arrive, _ej_free[m.dst]);
    Tick deliver = start + ser;
    _ej_free[m.dst] = deliver;

    ++_stats.messages;
    _stats.flits += flits;
    _stats.hop_sum += static_cast<std::uint64_t>(nhops);
    ++_inj_msgs[m.src];
    ++_ej_msgs[m.dst];
    _inj_flits[m.src] += flits;

    _eq.schedule(deliver, std::move(deliver_fn));
}

} // namespace dsm
