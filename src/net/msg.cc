#include "net/msg.hh"

namespace dsm {

const char *
toString(AtomicOp op)
{
    switch (op) {
      case AtomicOp::LOAD: return "load";
      case AtomicOp::STORE: return "store";
      case AtomicOp::LOAD_EXCL: return "load_exclusive";
      case AtomicOp::DROP_COPY: return "drop_copy";
      case AtomicOp::TAS: return "test_and_set";
      case AtomicOp::FAA: return "fetch_and_add";
      case AtomicOp::FAS: return "fetch_and_store";
      case AtomicOp::FAO: return "fetch_and_or";
      case AtomicOp::CAS: return "compare_and_swap";
      case AtomicOp::LL: return "load_linked";
      case AtomicOp::SC: return "store_conditional";
      case AtomicOp::LLS: return "load_linked_serial";
      case AtomicOp::SCS: return "store_conditional_serial";
    }
    return "?";
}

const char *
toString(MsgType t)
{
    switch (t) {
      case MsgType::GET_S: return "GetS";
      case MsgType::GET_X: return "GetX";
      case MsgType::UPGRADE: return "Upgrade";
      case MsgType::CAS_HOME: return "CasHome";
      case MsgType::SC_REQ: return "ScReq";
      case MsgType::UNC_REQ: return "UncReq";
      case MsgType::UPD_REQ: return "UpdReq";
      case MsgType::WB_DATA: return "WbData";
      case MsgType::DROP_NOTIFY: return "DropNotify";
      case MsgType::DATA_S: return "DataS";
      case MsgType::DATA_X: return "DataX";
      case MsgType::UPG_ACK: return "UpgAck";
      case MsgType::NACK: return "Nack";
      case MsgType::CAS_FAIL: return "CasFail";
      case MsgType::CAS_FAIL_S: return "CasFailS";
      case MsgType::UNC_RESP: return "UncResp";
      case MsgType::UPD_RESP: return "UpdResp";
      case MsgType::SC_RESP: return "ScResp";
      case MsgType::INV: return "Inv";
      case MsgType::UPDATE: return "Update";
      case MsgType::INV_ACK: return "InvAck";
      case MsgType::UPDATE_ACK: return "UpdateAck";
      case MsgType::FWD_GET_S: return "FwdGetS";
      case MsgType::FWD_GET_X: return "FwdGetX";
      case MsgType::FWD_CAS: return "FwdCas";
      case MsgType::OWNER_DATA_S: return "OwnerDataS";
      case MsgType::OWNER_DATA_X: return "OwnerDataX";
      case MsgType::CAS_OWNER_FAIL: return "CasOwnerFail";
      case MsgType::CAS_OWNER_FAIL_S: return "CasOwnerFailS";
      case MsgType::FWD_NACK_RETRY: return "FwdNackRetry";
      case MsgType::FWD_NACK_WB: return "FwdNackWb";
    }
    return "?";
}

unsigned
Msg::sizeBytes() const
{
    // Address-only control messages: 8 bytes of address/command.
    // Operand-carrying requests add one or two words.
    // Data-carrying messages add a full block.
    unsigned base = 8;
    switch (type) {
      case MsgType::UNC_REQ:
      case MsgType::UPD_REQ:
        base += 2 * WORD_BYTES; // operand + expected
        // Serial-number LL/SC grows the message by the counter size
        // (Section 3.1).
        if (op == AtomicOp::LLS || op == AtomicOp::SCS)
            base += WORD_BYTES;
        break;
      case MsgType::CAS_HOME:
      case MsgType::FWD_CAS:
        base += 2 * WORD_BYTES; // operand + expected
        break;
      case MsgType::SC_REQ:
      case MsgType::UPGRADE:
      case MsgType::UPDATE:
      case MsgType::UNC_RESP:
      case MsgType::UPD_RESP:
      case MsgType::SC_RESP:
        base += WORD_BYTES;
        break;
      default:
        break;
    }
    if (has_data)
        base += BLOCK_BYTES;
    return base;
}

std::uint32_t
Msg::computeChecksum() const
{
    // FNV-1a over the protocol-visible fields. Strong enough to detect
    // the injected single-bit flips deterministically; the metadata
    // fields (trace/txn ids, seq, attempt, prio, qdepth, fault flags)
    // ride outside the checksummed payload by design.
    std::uint32_t h = 2166136261u;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint32_t>(v & 0xffu);
            h *= 16777619u;
            v >>= 8;
        }
    };
    mix(static_cast<std::uint64_t>(type));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(requester)));
    mix(addr);
    mix(word_addr);
    mix(static_cast<std::uint64_t>(op));
    mix(value);
    mix(expected);
    mix(result);
    mix(success ? 1 : 0);
    mix(serial);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(
        ack_count)));
    mix(has_data ? 1 : 0);
    if (has_data)
        for (Word w : data)
            mix(w);
    return h;
}

} // namespace dsm
