/**
 * @file
 * Coherence-protocol message definitions.
 *
 * A single fat struct carries every protocol message; the type field
 * selects which fields are meaningful. Message sizes (and hence flit
 * counts) are derived from the type by sizeBytes().
 */

#ifndef DSM_NET_MSG_HH
#define DSM_NET_MSG_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace dsm {

/**
 * The memory/synchronization operations a processor can issue. The same
 * enumeration encodes the operation inside UncReq/UpdReq messages.
 */
enum class AtomicOp
{
    LOAD,       ///< ordinary load
    STORE,      ///< ordinary store
    LOAD_EXCL,  ///< load_exclusive auxiliary instruction
    DROP_COPY,  ///< drop_copy auxiliary instruction
    TAS,        ///< test_and_set (fetch_and_Phi family)
    FAA,        ///< fetch_and_add
    FAS,        ///< fetch_and_store (swap)
    FAO,        ///< fetch_and_or
    CAS,        ///< compare_and_swap
    LL,         ///< load_linked
    SC,         ///< store_conditional
    LLS,        ///< serial-number load_linked (Section 3.1, option 4)
    SCS,        ///< serial-number store_conditional (may be "bare")
};

/** True for the fetch_and_Phi family members. */
constexpr bool
isFetchAndPhi(AtomicOp op)
{
    return op == AtomicOp::TAS || op == AtomicOp::FAA ||
           op == AtomicOp::FAS || op == AtomicOp::FAO;
}

/** True for operations that atomically read-modify-write memory. */
constexpr bool
isAtomic(AtomicOp op)
{
    return isFetchAndPhi(op) || op == AtomicOp::CAS ||
           op == AtomicOp::SC || op == AtomicOp::SCS;
}

const char *toString(AtomicOp op);

/** Protocol message types. */
enum class MsgType
{
    // Requests sent to the home node.
    GET_S,        ///< read request, shared copy
    GET_X,        ///< read-exclusive request (store / load_excl / INV rmw)
    UPGRADE,      ///< shared -> exclusive upgrade (no data needed)
    CAS_HOME,     ///< INVd/INVs compare_and_swap request
    SC_REQ,       ///< INV store_conditional that cannot complete locally
    UNC_REQ,      ///< uncached operation (UNC policy)
    UPD_REQ,      ///< write-update operation (UPD policy)
    WB_DATA,      ///< write-back of an exclusive line (eviction/drop_copy)
    DROP_NOTIFY,  ///< a shared copy was dropped (drop_copy)

    // Home -> requester responses.
    DATA_S,       ///< data, shared grant
    DATA_X,       ///< data, exclusive grant; ack_count invalidations out
    UPG_ACK,      ///< upgrade granted; ack_count invalidations out
    NACK,         ///< busy/raced; requester must retry
    CAS_FAIL,     ///< INVd failure: no copy granted
    CAS_FAIL_S,   ///< INVs failure: read-only copy granted (carries data)
    UNC_RESP,     ///< uncached operation result
    UPD_RESP,     ///< update operation result; may carry data + ack_count
    SC_RESP,      ///< store_conditional verdict; ack_count on success

    // Home -> sharer.
    INV,          ///< invalidate; ack to msg.requester
    UPDATE,       ///< write-update of one word; ack to msg.requester

    // Sharer -> requester.
    INV_ACK,
    UPDATE_ACK,

    // Home -> owner (forwarded requests; msg.requester is the original).
    FWD_GET_S,
    FWD_GET_X,
    FWD_CAS,      ///< INVd/INVs comparison forwarded to the owner

    // Owner -> home.
    OWNER_DATA_S, ///< data + downgrade to shared
    OWNER_DATA_X, ///< data + ownership surrender
    CAS_OWNER_FAIL,   ///< INVd: comparison failed at owner, no downgrade
    CAS_OWNER_FAIL_S, ///< INVs: comparison failed; owner downgraded, data
    FWD_NACK_RETRY,   ///< owner busy; home should NACK the requester
    FWD_NACK_WB,      ///< owner no longer holds line; write-back in flight
};

const char *toString(MsgType t);

/**
 * True for the request types the recovery layer covers: processor
 * requests sent to the home node, each carrying its own retry
 * machinery. Only these (and their direct replies) may be dropped by
 * message-loss fault injection; forwards, invalidations, updates,
 * acknowledgements, write-backs, and drop notifications stay reliable.
 */
constexpr bool
recoverableRequest(MsgType t)
{
    return t == MsgType::GET_S || t == MsgType::GET_X ||
           t == MsgType::UPGRADE || t == MsgType::CAS_HOME ||
           t == MsgType::SC_REQ || t == MsgType::UNC_REQ ||
           t == MsgType::UPD_REQ;
}

/** True for home -> requester replies to a recoverable request. */
constexpr bool
recoverableReply(MsgType t)
{
    return t == MsgType::DATA_S || t == MsgType::DATA_X ||
           t == MsgType::UPG_ACK || t == MsgType::NACK ||
           t == MsgType::CAS_FAIL || t == MsgType::CAS_FAIL_S ||
           t == MsgType::UNC_RESP || t == MsgType::UPD_RESP ||
           t == MsgType::SC_RESP;
}

/** A protocol message. Fields beyond type/src/dst are type-dependent. */
struct Msg
{
    MsgType type = MsgType::NACK;
    NodeId src = INVALID_NODE;
    NodeId dst = INVALID_NODE;
    /** Original requester (for forwarded/third-party messages). */
    NodeId requester = INVALID_NODE;
    /** Block-aligned address of the affected line. */
    Addr addr = 0;
    /** Word address for operations narrower than a block. */
    Addr word_addr = 0;
    /** Operation encoded in UNC_REQ/UPD_REQ messages. */
    AtomicOp op = AtomicOp::LOAD;
    /** Operand (store/FAP value, CAS new value, SC new value). */
    Word value = 0;
    /** CAS expected value. */
    Word expected = 0;
    /** Operation result / UPDATE payload word. */
    Word result = 0;
    /** Success indication for CAS/SC results. */
    bool success = false;
    /** Block write serial number (requests: expected; responses: current). */
    Word serial = 0;
    /** Invalidations/updates whose acks the requester must collect. */
    int ack_count = 0;
    /** Block data payload; valid iff has_data. */
    std::array<Word, BLOCK_WORDS> data{};
    bool has_data = false;
    /**
     * Length of the serialized message chain ending at this message
     * (1 for a request issued by a processor). Used to verify Table 1.
     */
    int chain = 1;
    /**
     * Flow correlation id for the event tracer (0 = untraced). Assigned
     * by Mesh::send when message tracing is on; lets the Chrome trace
     * exporter link each send to its receive as a flow arrow.
     */
    std::uint32_t trace_id = 0;
    /**
     * Transaction id for the transaction tracer (0 = untraced).
     * Stamped by the issuing cache controller and copied into every
     * message sent on the transaction's behalf. Metadata only:
     * excluded from sizeBytes(), like chain and trace_id.
     */
    std::uint64_t txn_id = 0;
    /**
     * Recovery-layer request identity (0 = recovery off). The
     * requester assigns a fresh per-node monotonic seq to every *new*
     * network request (a NACK-and-retry is a new request); timeout
     * retransmissions reuse the seq with an incremented attempt.
     * Replies — and the invalidations/updates/acks fanned out on the
     * request's behalf — echo the seq so the requester and the home's
     * dedup table can tell a current message from a stale duplicate.
     * Metadata only: excluded from sizeBytes(); conceptually the seq
     * rides in the 8 header bytes every message already pays for.
     */
    std::uint64_t seq = 0;
    /** Retransmission attempt number for this seq (1 = original). */
    int attempt = 1;
    /**
     * Service priority at the home queue (serve.priority): 0 =
     * foreground, 1 = low (NACK retries and recovery retransmissions).
     * Metadata only: excluded from sizeBytes(); conceptually a single
     * header bit every message already pays for.
     */
    int prio = 0;
    /**
     * Home request-queue depth observed when a reply was sent, or -1
     * when the home runs without a serve queue (serve.backpressure
     * credit feedback). Metadata only: excluded from sizeBytes();
     * conceptually a byte in the reply header.
     */
    int qdepth = -1;
    /**
     * Checksum over the protocol-visible fields, stamped by Mesh::send
     * and verified at ejection when corruption faults are armed
     * (faults.corrupt_prob). A corrupted message fails verification and
     * is dropped — detected, never delivered — turning corruption into
     * a loss the retransmission ledger already covers. Metadata only:
     * excluded from sizeBytes(); conceptually the CRC field real link
     * headers already carry.
     */
    std::uint32_t checksum = 0;
    /**
     * Fault-injection provenance flags (faults.dup_prob /
     * faults.reorder_prob): replayed marks an injected duplicate
     * delivery, reordered a delivery that bypassed the per-dst FIFO
     * order. The protocol guards use replayed to attribute an absorbed
     * duplicate to the injection ledger (Recovery::Counters::
     * dups_absorbed) instead of the organic stale counters; the mesh
     * counts reordered deliveries for conservation. Metadata only:
     * excluded from sizeBytes() and from the checksum.
     */
    bool replayed = false;
    bool reordered = false;

    /** Payload size in bytes (excluding the per-message header). */
    unsigned sizeBytes() const;

    /**
     * Checksum of the protocol-visible fields (everything a corruption
     * fault may flip: type, routing, address, operands, payload).
     * Excludes the metadata fields, which conceptually ride in header
     * bytes outside the checksummed payload.
     */
    std::uint32_t computeChecksum() const;
};

/**
 * True for the message classes covered by the epoch/sequence guards:
 * the recoverable requests/replies plus the invalidation and update
 * acknowledgements a requester collects. Reordering and duplication
 * fault injection is scoped to exactly these classes — every other
 * class keeps per-link FIFO, reliable delivery (the model checker's
 * REORDER/DUPLICATE transitions cover the guarded classes
 * exhaustively).
 */
constexpr bool
sequenceGuarded(MsgType t)
{
    return recoverableRequest(t) || recoverableReply(t) ||
           t == MsgType::INV_ACK || t == MsgType::UPDATE_ACK;
}

} // namespace dsm

#endif // DSM_NET_MSG_HH
