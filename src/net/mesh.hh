/**
 * @file
 * 2-D wormhole mesh interconnect model.
 *
 * Following the paper's methodology, latency models contention at the
 * network entry (injection port) and exit (ejection port) of each node,
 * but not at internal mesh routers. A message's in-flight time is the
 * dimension-order hop count times the per-hop latency plus the flit
 * serialization time at the ports.
 *
 * Messages between a fixed (src, dst) pair are delivered in FIFO order,
 * which the coherence protocol relies on.
 */

#ifndef DSM_NET_MESH_HH
#define DSM_NET_MESH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace dsm {

class FaultPlan;
class Recovery;
class Tracer;
class TxnTracer;

/** Longest possible dimension-order path, in nodes (8x8 mesh worst case). */
constexpr int MAX_PATH_NODES = 16;

/** Aggregate network statistics. */
struct MeshStats
{
    std::uint64_t messages = 0;  ///< network messages (src != dst)
    std::uint64_t flits = 0;     ///< flits injected
    std::uint64_t local = 0;     ///< node-local deliveries (src == dst)
    std::uint64_t hop_sum = 0;   ///< total hops traversed
};

/**
 * The interconnect. Every node registers a handler; send() computes the
 * delivery time from port occupancy and hop distance, then schedules the
 * handler invocation.
 */
class Mesh
{
  public:
    using Handler = std::function<void(const Msg &)>;

    Mesh(EventQueue &eq, const MachineConfig &cfg);

    /** Register the message handler for node @p n. */
    void setHandler(NodeId n, Handler h);

    /**
     * Send a message. Node-local messages (src == dst) bypass the network
     * and are delivered after the configured local latency.
     */
    void send(const Msg &msg);

    /** Dimension-order hop count between two nodes. */
    int hops(NodeId a, NodeId b) const;

    const MeshStats &stats() const { return _stats; }
    void clearStats();

    /** Attach the event tracer (records MSG_SEND/MSG_RECV). */
    void setTracer(Tracer *t) { _tracer = t; }

    /** Attach the transaction tracer (counts per-transaction sends). */
    void setTxnTracer(TxnTracer *t) { _txns = t; }

    /**
     * Attach the fault injector; network messages may then receive
     * bounded arrival jitter. Jitter lands before the ejection-port
     * FIFO reservation, so per-destination delivery order — which the
     * protocol relies on — is preserved. Local messages are exempt.
     *
     * With the faulty-channel axes armed the mesh additionally may
     * reorder (bypass the ejection reservation with bounded skew),
     * duplicate (replay a delivered message after a seeded delay), or
     * corrupt (bit-flip, detected by checksum verify and converted
     * into a drop) — each confined to the sequence-guarded message
     * classes the protocol's epoch/sequence guards absorb.
     */
    void setFaults(FaultPlan *f) { _faults = f; }

    /**
     * Attach the recovery ledger and arm link quarantine: after
     * @p quarantine_k drops on one directed link within
     * @p quarantine_window ticks, the link is marked degraded for the
     * rest of the run and dimension-order traffic is rerouted around it
     * (XY -> YX, which has the identical hop count). Recovery must be
     * attached whenever message loss is armed — the ledger is what
     * guarantees every drop is accounted for.
     */
    void setRecovery(Recovery *r, int quarantine_k,
                     Tick quarantine_window);

    /** Is the directed link @p a -> @p b quarantined? */
    bool linkQuarantined(NodeId a, NodeId b) const
    {
        return !_quarantined.empty() &&
               _quarantined[linkId(a, b)] != 0;
    }

    /**
     * Fill @p path with the nodes a message visits from @p src to
     * @p dst in dimension order (@p yx_order routes Y-first) and
     * return the node count. path[0] == src, path[n-1] == dst.
     */
    int buildPath(NodeId src, NodeId dst, bool yx_order,
                  NodeId *path) const;

    /** @name Per-node port counters (for the stats registry). @{ */
    const std::uint64_t &injMsgs(NodeId n) const { return _inj_msgs[n]; }
    const std::uint64_t &ejMsgs(NodeId n) const { return _ej_msgs[n]; }
    const std::uint64_t &injFlits(NodeId n) const { return _inj_flits[n]; }
    /** @} */

    /** @name Per-directed-link flit counters (telemetry). @{ */

    /**
     * Allocate the N^2 per-directed-link flit matrix and attribute
     * every subsequent message's flits to each adjacent link of its
     * dimension-order path (the rerouted path when a quarantine is
     * active, the intended path for dropped messages — offered load).
     * Off by default: send() then never materializes paths for timing.
     */
    void enableLinkCounters();

    bool linkCountersEnabled() const { return !_link_flits.empty(); }

    /** Flits offered to the directed link @p a -> @p b. */
    std::uint64_t
    linkFlits(NodeId a, NodeId b) const
    {
        return _link_flits.empty() ? 0 : _link_flits[linkId(a, b)];
    }

    /** @} */

  private:
    unsigned flitsFor(const Msg &msg) const;

    std::size_t linkId(NodeId a, NodeId b) const
    {
        return static_cast<std::size_t>(a) *
               static_cast<std::size_t>(_cfg.num_procs) +
               static_cast<std::size_t>(b);
    }

    bool pathQuarantined(const NodeId *path, int nodes) const;

    /** Record a drop on a link; may trip its quarantine. */
    void noteLinkDrop(NodeId from, NodeId to, Tick now);

    EventQueue &_eq;
    const MachineConfig &_cfg;
    std::vector<Handler> _handlers;
    std::vector<Tick> _inj_free; ///< next tick each injection port is free
    std::vector<Tick> _ej_free;  ///< next tick each ejection port is free
    MeshStats _stats;
    std::vector<std::uint64_t> _inj_msgs; ///< messages injected per node
    std::vector<std::uint64_t> _ej_msgs;  ///< messages ejected per node
    std::vector<std::uint64_t> _inj_flits;///< flits injected per node
    /** Flits per directed link; empty unless enableLinkCounters(). */
    std::vector<std::uint64_t> _link_flits;
    Tracer *_tracer = nullptr;
    TxnTracer *_txns = nullptr;
    FaultPlan *_faults = nullptr;
    Recovery *_recovery = nullptr;
    /** @name Link quarantine state (allocated only when armed). @{ */
    int _quarantine_k = 0;
    Tick _quarantine_window = 0;
    std::vector<std::uint8_t> _quarantined;   ///< per directed link
    std::vector<std::vector<Tick>> _drop_times; ///< recent drops per link
    bool _have_quarantine = false; ///< any link quarantined yet
    /** @} */
};

} // namespace dsm

#endif // DSM_NET_MESH_HH
