/**
 * @file
 * 2-D wormhole mesh interconnect model.
 *
 * Following the paper's methodology, latency models contention at the
 * network entry (injection port) and exit (ejection port) of each node,
 * but not at internal mesh routers. A message's in-flight time is the
 * dimension-order hop count times the per-hop latency plus the flit
 * serialization time at the ports.
 *
 * Messages between a fixed (src, dst) pair are delivered in FIFO order,
 * which the coherence protocol relies on.
 */

#ifndef DSM_NET_MESH_HH
#define DSM_NET_MESH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace dsm {

class FaultPlan;
class Tracer;
class TxnTracer;

/** Aggregate network statistics. */
struct MeshStats
{
    std::uint64_t messages = 0;  ///< network messages (src != dst)
    std::uint64_t flits = 0;     ///< flits injected
    std::uint64_t local = 0;     ///< node-local deliveries (src == dst)
    std::uint64_t hop_sum = 0;   ///< total hops traversed
};

/**
 * The interconnect. Every node registers a handler; send() computes the
 * delivery time from port occupancy and hop distance, then schedules the
 * handler invocation.
 */
class Mesh
{
  public:
    using Handler = std::function<void(const Msg &)>;

    Mesh(EventQueue &eq, const MachineConfig &cfg);

    /** Register the message handler for node @p n. */
    void setHandler(NodeId n, Handler h);

    /**
     * Send a message. Node-local messages (src == dst) bypass the network
     * and are delivered after the configured local latency.
     */
    void send(const Msg &msg);

    /** Dimension-order hop count between two nodes. */
    int hops(NodeId a, NodeId b) const;

    const MeshStats &stats() const { return _stats; }
    void clearStats();

    /** Attach the event tracer (records MSG_SEND/MSG_RECV). */
    void setTracer(Tracer *t) { _tracer = t; }

    /** Attach the transaction tracer (counts per-transaction sends). */
    void setTxnTracer(TxnTracer *t) { _txns = t; }

    /**
     * Attach the fault injector; network messages may then receive
     * bounded arrival jitter. Jitter lands before the ejection-port
     * FIFO reservation, so per-destination delivery order — which the
     * protocol relies on — is preserved. Local messages are exempt.
     */
    void setFaults(FaultPlan *f) { _faults = f; }

    /** @name Per-node port counters (for the stats registry). @{ */
    const std::uint64_t &injMsgs(NodeId n) const { return _inj_msgs[n]; }
    const std::uint64_t &ejMsgs(NodeId n) const { return _ej_msgs[n]; }
    const std::uint64_t &injFlits(NodeId n) const { return _inj_flits[n]; }
    /** @} */

  private:
    unsigned flitsFor(const Msg &msg) const;

    EventQueue &_eq;
    const MachineConfig &_cfg;
    std::vector<Handler> _handlers;
    std::vector<Tick> _inj_free; ///< next tick each injection port is free
    std::vector<Tick> _ej_free;  ///< next tick each ejection port is free
    MeshStats _stats;
    std::vector<std::uint64_t> _inj_msgs; ///< messages injected per node
    std::vector<std::uint64_t> _ej_msgs;  ///< messages ejected per node
    std::vector<std::uint64_t> _inj_flits;///< flits injected per node
    Tracer *_tracer = nullptr;
    TxnTracer *_txns = nullptr;
    FaultPlan *_faults = nullptr;
};

} // namespace dsm

#endif // DSM_NET_MESH_HH
