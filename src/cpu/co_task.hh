/**
 * @file
 * Awaitable sub-coroutine type used to compose synchronization
 * algorithms: a workload Task can `co_await lock.acquire(p)` where
 * acquire() is itself a coroutine issuing Proc operations.
 *
 * CoTask is lazy: the body starts when awaited, and completion resumes
 * the awaiting coroutine by symmetric transfer.
 */

#ifndef DSM_CPU_CO_TASK_HH
#define DSM_CPU_CO_TASK_HH

#include <coroutine>
#include <utility>

#include "sim/logging.hh"

namespace dsm {

/** Awaitable coroutine returning a T (or void). */
template <typename T = void>
class CoTask
{
  public:
    struct promise_type
    {
        T value{};
        std::coroutine_handle<> continuation;

        CoTask
        get_return_object()
        {
            return CoTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                return h.promise().continuation
                           ? h.promise().continuation
                           : std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_value(T v) { value = std::move(v); }

        void
        unhandled_exception()
        {
            dsm_panic("unhandled exception in a CoTask coroutine");
        }
    };

    CoTask() = default;
    explicit CoTask(std::coroutine_handle<promise_type> h) : _h(h) {}
    CoTask(CoTask &&o) noexcept : _h(std::exchange(o._h, nullptr)) {}

    CoTask &
    operator=(CoTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;
    ~CoTask() { destroy(); }

    /** Awaiter: start the body; resume the awaiter when it returns. */
    auto
    operator co_await() && noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            T await_resume() { return std::move(h.promise().value); }
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _h;
};

/** Specialization for coroutines that produce no value. */
template <>
class CoTask<void>
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        CoTask
        get_return_object()
        {
            return CoTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                return h.promise().continuation
                           ? h.promise().continuation
                           : std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception()
        {
            dsm_panic("unhandled exception in a CoTask coroutine");
        }
    };

    CoTask() = default;
    explicit CoTask(std::coroutine_handle<promise_type> h) : _h(h) {}
    CoTask(CoTask &&o) noexcept : _h(std::exchange(o._h, nullptr)) {}

    CoTask &
    operator=(CoTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            _h = std::exchange(o._h, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;
    ~CoTask() { destroy(); }

    auto
    operator co_await() && noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _h;
};

} // namespace dsm

#endif // DSM_CPU_CO_TASK_HH
