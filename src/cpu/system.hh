/**
 * @file
 * Top-level simulated machine: the event queue, interconnect, per-node
 * memory modules/directories/controllers/processors, the shared address
 * space, and the sync-region registry that assigns the studied coherence
 * policy to atomically accessed data (Section 3: the base protocol for
 * all other data is write-invalidate).
 */

#ifndef DSM_CPU_SYSTEM_HH
#define DSM_CPU_SYSTEM_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "cpu/admission.hh"
#include "cpu/proc.hh"
#include "cpu/sync_barrier.hh"
#include "cpu/task.hh"
#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "fault/watchdog.hh"
#include "mem/backing_store.hh"
#include "mem/directory.hh"
#include "mem/home_queue.hh"
#include "mem/mem_module.hh"
#include "net/mesh.hh"
#include "proto/controller.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/line_profiler.hh"
#include "stats/registry.hh"
#include "stats/sharing_tracker.hh"
#include "stats/stat_set.hh"
#include "stats/timeseries.hh"
#include "trace/trace.hh"
#include "trace/txn.hh"

namespace dsm {

/** Outcome of System::run(). */
struct RunResult
{
    bool completed = false;  ///< all spawned tasks finished
    bool deadlocked = false; ///< events drained with tasks pending
    bool livelocked = false; ///< the forward-progress watchdog tripped
    Tick end_tick = 0;
    std::uint64_t events = 0;
    /**
     * Human-readable failure report when deadlocked or livelocked:
     * which bound tripped (livelock) and every blocked transaction's
     * controller state, with TxnTracer span trees when transaction
     * tracing is on. Empty on success.
     */
    std::string diagnosis;
};

/** The whole simulated multiprocessor. */
class System
{
  public:
    explicit System(const Config &cfg);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** @name Component access. @{ */
    const Config &cfg() const { return _cfg; }
    EventQueue &eq() { return _eq; }
    Mesh &mesh() { return _mesh; }
    BackingStore &store() { return _store; }
    MemModule &mem(NodeId n) { return _mems[n]; }
    Directory &dir(NodeId n) { return _dirs[n]; }
    Controller &ctrl(NodeId n) { return *_ctrls[n]; }
    Proc &proc(NodeId n) { return *_procs[n]; }
    SharingTracker &sharing() { return _sharing; }
    Rng &rng() { return _rng; }
    int numProcs() const { return _cfg.machine.num_procs; }
    Tick now() const { return _eq.now(); }
    /** @} */

    /** @name Statistics and tracing. @{ */

    /** Mutable protocol statistics of node @p n (the hot-path sink). */
    SysStats &
    stats(NodeId n)
    {
        return _node_stats[static_cast<std::size_t>(n)];
    }

    /** System-wide aggregate: every node's statistics merged. */
    SysStats
    stats() const
    {
        SysStats agg;
        for (const SysStats &s : _node_stats)
            agg.merge(s);
        return agg;
    }

    /** Reset every node's protocol statistics (e.g. after warmup). */
    void
    clearStats()
    {
        for (SysStats &s : _node_stats)
            s = SysStats{};
        // Keep the fault counters in step with the protocol counters
        // they reconcile against (checker::checkFaultAccounting).
        _faults.clearCounters();
        _recovery.clearCounters();
        // Telemetry delta series re-baseline against the zeroed
        // counters and drop recorded windows, so post-clear windows
        // again sum exactly to the post-clear aggregates. The line
        // profiler and link-flit matrix stay cumulative, like the
        // transaction tracer.
        _telemetry.rebaseline();
    }

    /** The hierarchical stats registry (per-node and global entries). */
    StatsRegistry &registry() { return _registry; }
    const StatsRegistry &registry() const { return _registry; }

    /** The protocol event tracer. */
    Tracer &tracer() { return _tracer; }

    /**
     * The transaction tracer (end-to-end per-operation tracing with
     * phase attribution and Table 1 chain validation). Unlike the
     * per-node SysStats, it is *not* reset by clearStats(): chain
     * validation is cumulative over the whole run.
     */
    TxnTracer &txns() { return _txns; }
    const TxnTracer &txns() const { return _txns; }

    /**
     * The fault injector, or nullptr when fault injection is off —
     * hot paths pay one branch, like the tracers. Like the
     * transaction tracer, the plan's RNG stream is not reset by
     * clearStats() (its counters are, see clearStats()).
     */
    FaultPlan *faults() { return _faults_on; }

    /** The fault plan itself, for inspection even when disabled. */
    const FaultPlan &faultPlan() const { return _faults; }

    /** The livelock watchdog, or nullptr when disabled. */
    Watchdog *watchdog() { return _watchdog_on; }

    /** The watchdog itself, for inspection even when disabled. */
    const Watchdog &watchdogState() const { return _watchdog; }

    /**
     * The message-loss recovery layer (requester timers, home dedup,
     * drop ledger), or nullptr when FaultConfig::req_timeout is 0 —
     * the null-pointer gate that keeps loss-free runs zero-cost.
     */
    Recovery *recovery() { return _recovery_on; }

    /** The recovery layer itself, for inspection even when disabled. */
    const Recovery &recoveryState() const { return _recovery; }

    /**
     * The open-loop admission queues, or nullptr when open-loop
     * arrivals are off — the usual null-pointer gate (closed-loop runs
     * pay nothing and keep their exact stats JSON shape). Like the
     * transaction tracer, the serving counters are cumulative and not
     * reset by clearStats().
     */
    AdmissionQueues *admission() { return _admission_on; }

    /** The admission layer itself, for inspection even when disabled. */
    const AdmissionQueues &admissionState() const { return _admission; }

    /**
     * Node @p n's explicit home service queue, or nullptr when the
     * overload-protection serving layer is off — the usual null-pointer
     * gate. When on, home-targeted requests buffer here (two service
     * classes, combining window) instead of in the memory module's
     * implicit FIFO.
     */
    HomeQueue *
    homeQueue(NodeId n)
    {
        return _home_queues.empty()
                   ? nullptr
                   : &_home_queues[static_cast<std::size_t>(n)];
    }

    /** Machine-wide serving-layer counters (serve.enabled only). */
    ServeStats &serveStats() { return _serve_stats; }
    const ServeStats &serveStats() const { return _serve_stats; }

    /**
     * Current credit-backpressure threshold under
     * serve.credit_threshold=auto: recomputed at every telemetry window
     * boundary as twice the mean of the recent per-window home-queue
     * depth samples, floored at 2 — a queue riding at its recent normal
     * is left alone, one spiking past twice normal throttles. Before
     * the first window (or with auto off) it is the configured
     * credit_threshold.
     */
    int adaptiveCreditThreshold() const { return _credit_threshold; }

    /**
     * The time-resolved telemetry sampler, or nullptr when telemetry
     * is off — the usual null-pointer gate. When on, the event queue
     * drives it at every TelemetryConfig::window boundary.
     */
    TimeSeries *telemetry() { return _telemetry_on; }

    /** The sampler itself, for inspection even when disabled. */
    const TimeSeries &telemetryState() const { return _telemetry; }

    /**
     * The per-line contention profiler, or nullptr when telemetry is
     * off. Protocol hot paths pay one branch, like the tracers.
     */
    LineProfiler *lineProfiler() { return _line_prof_on; }

    /** The profiler itself, for inspection even when disabled. */
    const LineProfiler &lineProfilerState() const { return _line_prof; }

    /**
     * Finalize sampling (records the residual partial window) and
     * render the full telemetry snapshot — the windowed series, the
     * ranked hot-line table, and the per-directed-link flit matrix —
     * as one JSON object. The payload of the dsm-timeseries-v1 export.
     */
    std::string telemetryJson();

    /** The full registry rendered as nested JSON. */
    std::string statsJson() const { return _registry.toJson(); }

    /** @} */

    /** Home node of the block containing @p a (block-interleaved). */
    NodeId
    homeOf(Addr a) const
    {
        return static_cast<NodeId>((a / BLOCK_BYTES) %
                                   static_cast<Addr>(numProcs()));
    }

    /** True if @p a lies in a registered synchronization block. */
    bool
    isSync(Addr a) const
    {
        return _sync_blocks.count(blockBase(a)) != 0;
    }

    /**
     * Coherence policy applied to accesses to @p a: the configured sync
     * policy for registered sync blocks, INV (the base write-invalidate
     * protocol) for everything else.
     */
    SyncPolicy
    policyOf(Addr a) const
    {
        return isSync(a) ? _cfg.sync.policy : SyncPolicy::INV;
    }

    /** @name Address-space management. @{ */

    /** Allocate ordinary shared memory. */
    Addr alloc(std::size_t bytes, std::size_t align = WORD_BYTES);

    /**
     * Allocate one block-aligned, block-padded synchronization variable
     * and register its block under the configured sync policy.
     * @return the address of the variable's first word.
     */
    Addr allocSync();

    /** allocSync(), placing the block's home at node @p home. */
    Addr allocSyncAt(NodeId home);

    /** alloc(), placing the first block's home at node @p home. */
    Addr allocAt(NodeId home, std::size_t bytes);

    /** Register an existing block as synchronization data. */
    void markSync(Addr a) { _sync_blocks.insert(blockBase(a)); }

    /** Initialize memory contents before (or between) runs. */
    void writeInit(Addr a, Word v) { _store.writeWord(a, v); }

    /**
     * Debug read of the globally most up-to-date value of word @p a:
     * the exclusive owner's cached copy if one exists, else memory.
     * For tests and result extraction only; has no timing effect.
     */
    Word debugRead(Addr a) const;

    /** @} */

    /** @name Thread management. @{ */

    /** Register a workload coroutine; it starts when run() is called. */
    void spawn(Task t);

    /** Number of spawned tasks that have not yet completed. */
    int tasksPending() const;

    /**
     * Run until every spawned task completes, the event queue drains,
     * or @p max_ticks of simulated time elapse.
     */
    RunResult run(Tick max_ticks = 2'000'000'000ULL);

    /** Discard completed tasks (e.g. between measurement phases). */
    void reapTasks();

    /** @} */

    /**
     * Multi-line human-readable summary of the configuration and of
     * every statistics domain: network, memory modules, caches, and
     * protocol counters.
     */
    std::string report() const;

  private:
    /** Periodic reservation clearing (MachineConfig::spurious_resv_period). */
    void scheduleSpuriousInvalidation();

    /** Periodic watchdog age scan (WatchdogConfig::max_txn_age). */
    void scheduleWatchdogScan();

    /** Populate the stats registry with per-node and global entries. */
    void buildRegistry();

    /** Register the machine-wide telemetry series (telemetry on only). */
    void registerTelemetrySeries();

    /**
     * Re-derive the adaptive credit threshold from the retained
     * serve_queue_depth gauge windows (credit_threshold=auto only).
     * Called at every telemetry window boundary, after sampling, so the
     * just-closed window participates: threshold = max(2, 2 * ceil(mean
     * of retained per-window machine-wide depths)).
     */
    void updateCreditThreshold();

    Config _cfg;
    EventQueue _eq;
    Mesh _mesh;
    BackingStore _store;
    std::vector<MemModule> _mems;
    std::vector<Directory> _dirs;
    std::vector<std::unique_ptr<Controller>> _ctrls;
    std::vector<std::unique_ptr<Proc>> _procs;
    /** Per-node protocol stats; sized once, addresses stable. */
    std::vector<SysStats> _node_stats;
    StatsRegistry _registry;
    Tracer _tracer;
    TxnTracer _txns;
    FaultPlan _faults;
    Watchdog _watchdog;
    Recovery _recovery;
    TimeSeries _telemetry;
    LineProfiler _line_prof;
    AdmissionQueues _admission;
    /** Per-home service queues; sized only when serve.enabled. */
    std::vector<HomeQueue> _home_queues;
    ServeStats _serve_stats;
    /** Live credit threshold (serve.credit_threshold=auto). */
    int _credit_threshold = 0;
    /** Non-null only when the corresponding feature is enabled. */
    FaultPlan *_faults_on = nullptr;
    Watchdog *_watchdog_on = nullptr;
    Recovery *_recovery_on = nullptr;
    TimeSeries *_telemetry_on = nullptr;
    LineProfiler *_line_prof_on = nullptr;
    AdmissionQueues *_admission_on = nullptr;
    SharingTracker _sharing;
    Rng _rng;

    std::vector<Task> _tasks;
    Addr _next_alloc = BLOCK_BYTES; ///< address 0 reserved

    /** Registered sync blocks (block base addresses). */
    std::unordered_set<Addr> _sync_blocks;
};

} // namespace dsm

#endif // DSM_CPU_SYSTEM_HH
