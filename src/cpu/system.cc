#include "cpu/system.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

System::System(const Config &cfg)
    : _cfg(cfg),
      _eq(),
      _mesh(_eq, _cfg.machine),
      _rng(cfg.machine.seed)
{
    std::string cfg_err = _cfg.validate();
    if (!cfg_err.empty())
        dsm_fatal("invalid configuration: %s", cfg_err.c_str());
    int n = _cfg.machine.num_procs;
    _mems.reserve(n);
    _dirs.resize(n);
    _node_stats.resize(n);
    for (int i = 0; i < n; ++i)
        _mems.emplace_back(_cfg.machine.mem_service_time);
    for (int i = 0; i < n; ++i) {
        _ctrls.push_back(std::make_unique<Controller>(*this, i));
        _procs.push_back(std::make_unique<Proc>(*this, i));
    }
    for (int i = 0; i < n; ++i) {
        Controller *c = _ctrls[i].get();
        _mesh.setHandler(i, [c](const Msg &m) { c->handleMsg(m); });
    }
    _tracer.configure(_cfg.trace);
    _mesh.setTracer(&_tracer);
    _txns.configure(_cfg.txn_trace, n);
    _mesh.setTxnTracer(&_txns);
    _faults.configure(_cfg.faults, _cfg.machine.seed, _cfg.machine);
    if (_faults.enabled()) {
        _faults_on = &_faults;
        _mesh.setFaults(&_faults);
    }
    if (_cfg.faults.recoveryEnabled()) {
        _recovery.configure(*this, _mesh);
        _recovery_on = &_recovery;
        _mesh.setRecovery(&_recovery, _cfg.faults.quarantine_k,
                          _cfg.faults.quarantine_window);
    }
    _watchdog.configure(_cfg.watchdog);
    if (_watchdog.enabled())
        _watchdog_on = &_watchdog;
    if (_cfg.openloop.enabled) {
        _admission.configure(_cfg.openloop, n);
        _admission_on = &_admission;
    }
    if (_cfg.serve.enabled) {
        _home_queues.reserve(n);
        for (int i = 0; i < n; ++i)
            _home_queues.emplace_back(_cfg.serve.age_limit);
    }
    _credit_threshold = _cfg.serve.credit_threshold;
    if (_cfg.telemetry.enabled) {
        _telemetry.configure(_cfg.telemetry);
        _telemetry_on = &_telemetry;
        _line_prof_on = &_line_prof;
        _mesh.enableLinkCounters();
        registerTelemetrySeries();
        if (_cfg.serve.credit_auto) {
            // serve.credit_threshold=auto: re-derive the backpressure
            // threshold from the depth series at each window boundary.
            _eq.setSampler(_cfg.telemetry.window, [this](Tick t) {
                _telemetry.sample(t);
                updateCreditThreshold();
            });
        } else {
            _eq.setSampler(_cfg.telemetry.window,
                           [this](Tick t) { _telemetry.sample(t); });
        }
    }
    buildRegistry();
    if (_cfg.machine.spurious_resv_period > 0)
        scheduleSpuriousInvalidation();
    if (_watchdog.enabled() && _cfg.watchdog.max_txn_age > 0)
        scheduleWatchdogScan();
}

void
System::registerTelemetrySeries()
{
    // Machine-wide series, sampled at window boundaries by the event
    // queue. Getters that sum per-node counters are O(nodes) per
    // window — off the per-event hot path entirely.
    _telemetry.addDelta("events",
                        [this] { return _eq.eventsExecuted(); });
    _telemetry.addDelta("ops", [this] {
        std::uint64_t v = 0;
        for (const auto &p : _procs)
            v += p->opsIssued();
        return v;
    });
    const MeshStats &ms = _mesh.stats();
    _telemetry.addDelta("messages", [&ms] { return ms.messages; });
    _telemetry.addDelta("flits", [&ms] { return ms.flits; });
    _telemetry.addDelta("nacks", [this] {
        std::uint64_t v = 0;
        for (const SysStats &s : _node_stats)
            v += s.nacks;
        return v;
    });
    _telemetry.addDelta("retries", [this] {
        std::uint64_t v = 0;
        for (const SysStats &s : _node_stats)
            v += s.retries;
        return v;
    });
    _telemetry.addDelta("invalidations", [this] {
        std::uint64_t v = 0;
        for (const SysStats &s : _node_stats)
            v += s.invalidations;
        return v;
    });
    _telemetry.addDelta("mem_queue_cycles", [this] {
        std::uint64_t v = 0;
        for (const MemModule &m : _mems)
            v += m.queueCycles();
        return v;
    });
    // Directory/memory backlog: cycles of already-reserved service
    // time still ahead of the clock, summed and worst-node.
    _telemetry.addGauge("mem_backlog", [this] {
        std::uint64_t v = 0;
        Tick t = _eq.now();
        for (const MemModule &m : _mems)
            if (m.freeAt() > t)
                v += m.freeAt() - t;
        return v;
    });
    _telemetry.addGauge("mem_backlog_max", [this] {
        std::uint64_t v = 0;
        Tick t = _eq.now();
        for (const MemModule &m : _mems)
            if (m.freeAt() > t && m.freeAt() - t > v)
                v = m.freeAt() - t;
        return v;
    });
    if (_cfg.faults.recoveryEnabled()) {
        const Recovery::Counters &rc = _recovery.counters();
        _telemetry.addDelta("recovery_drops", [&rc] { return rc.drops; });
        _telemetry.addDelta("recovery_retransmits",
                            [&rc] { return rc.retransmits; });
    }
    if (_cfg.serve.credit_auto) {
        // Home-queue depth series feeding the adaptive credit threshold.
        // Registered only under credit_threshold=auto so fixed-threshold
        // serve runs keep their exact telemetry shape.
        _telemetry.addGauge("serve_queue_depth", [this] {
            std::uint64_t v = 0;
            for (const HomeQueue &q : _home_queues)
                v += q.depth();
            return v;
        });
    }
    if (_cfg.openloop.enabled) {
        const OpenLoopStats &os = _admission.stats();
        _telemetry.addDelta("openloop_admitted",
                            [&os] { return os.admitted; });
        _telemetry.addDelta("openloop_rejected",
                            [&os] { return os.rejected; });
        _telemetry.addDelta("openloop_completed",
                            [&os] { return os.completed; });
        _telemetry.addGauge("openloop_queue_depth", [this] {
            std::uint64_t v = 0;
            for (int i = 0; i < numProcs(); ++i)
                v += _admission.depth(i);
            return v;
        });
    }
}

void
System::updateCreditThreshold()
{
    std::vector<std::uint64_t> v =
        _telemetry.seriesValues("serve_queue_depth");
    if (v.empty())
        return;
    std::uint64_t sum = 0;
    for (std::uint64_t x : v)
        sum += x;
    std::uint64_t mean_ceil =
        (sum + v.size() - 1) / static_cast<std::uint64_t>(v.size());
    std::uint64_t threshold = 2 * mean_ceil;
    if (threshold < 2)
        threshold = 2;
    _credit_threshold = static_cast<int>(threshold);
}

void
System::buildRegistry()
{
    // Global simulation and network counters.
    _registry.addCounter("sim.ticks", [this] { return _eq.now(); });
    _registry.addCounter("sim.events",
                         [this] { return _eq.eventsExecuted(); });
    const MeshStats &ms = _mesh.stats();
    _registry.addCounter("net.messages", &ms.messages);
    _registry.addCounter("net.flits", &ms.flits);
    _registry.addCounter("net.local", &ms.local);
    _registry.addCounter("net.hop_sum", &ms.hop_sum);

    // Transaction-tracer attribution: global (not per-node), registered
    // only when enabled so untraced runs keep their exact JSON shape.
    if (_cfg.txn_trace.enabled) {
        _registry.addCounter("txn.completed",
                             [this] { return _txns.completed(); });
        _registry.addCounter("txn.records_kept", [this] {
            return static_cast<std::uint64_t>(_txns.records().size());
        });
        _registry.addCounter("txn.records_dropped", _txns.droppedCounter());
        _registry.addCounter("txn.phase_sum_mismatches",
                             _txns.mismatchCounter());
        _registry.addCounter("txn.chain_divergences",
                             _txns.divergenceCounter());
        const PhaseAttribution &at = _txns.attribution();
        _registry.addHistogram("txn.retries", at.retriesHist());
        _registry.addHistogram("txn.fanout", at.fanoutHist());
        _registry.addHistogram("txn.observed_chain", at.chainHist());
        // Tail attribution scalars; the full conditional breakdown is
        // exported via PhaseAttribution::tailJson() (telemetry tail
        // section and bench rows). Getters are lazy: the cuts are only
        // computed when the registry is rendered or snapshotted.
        _registry.addCounter("txn.tail.records", [this] {
            return _txns.attribution().tailRecords();
        });
        _registry.addCounter("txn.tail.dropped", [this] {
            return _txns.attribution().tailDropped();
        });
        _registry.addCounter("txn.tail.p90_threshold", [this] {
            return static_cast<std::uint64_t>(
                _txns.attribution().tailCut(0.90).threshold);
        });
        _registry.addCounter("txn.tail.p99_threshold", [this] {
            return static_cast<std::uint64_t>(
                _txns.attribution().tailCut(0.99).threshold);
        });
        for (int op = 0; op < NUM_ATOMIC_OPS; ++op) {
            std::string base = std::string("txn.ops.") +
                               toString(static_cast<AtomicOp>(op));
            _registry.addLatency(base + ".total", at.totalStat(op));
            for (int ph = 0; ph < NUM_TXN_PHASES; ++ph)
                _registry.addLatency(
                    base + ".phases." +
                        toString(static_cast<TxnPhase>(ph)),
                    at.phaseStat(op, ph));
        }
    }

    // Fault-injection and watchdog counters: registered only when the
    // feature is on, so fault-free runs keep their exact JSON shape.
    if (_cfg.faults.enabled) {
        const FaultPlan::Counters &fc = _faults.counters();
        _registry.addCounter("fault.jitter_applied", &fc.jitter_applied);
        _registry.addCounter("fault.jitter_cycles", &fc.jitter_cycles);
        _registry.addCounter("fault.resv_drops", &fc.resv_drops);
        _registry.addCounter("fault.forced_evictions",
                             &fc.forced_evictions);
        _registry.addCounter("fault.nacks_injected", &fc.nacks_injected);
        // Loss counters only when loss is armed, so legacy fault runs
        // keep their exact JSON shape.
        if (_cfg.faults.lossEnabled()) {
            _registry.addCounter("fault.msg_drops", &fc.msg_drops);
            _registry.addCounter("fault.flaky_drops", &fc.flaky_drops);
        }
        // Chaos counters only when a chaos axis is armed, so loss-only
        // fault runs keep their exact JSON shape.
        if (_cfg.faults.chaosEnabled()) {
            _registry.addCounter("fault.msg_reorders", &fc.msg_reorders);
            _registry.addCounter("fault.msg_dups", &fc.msg_dups);
            _registry.addCounter("fault.msg_corruptions",
                                 &fc.msg_corruptions);
        }
    }
    if (_cfg.faults.recoveryEnabled()) {
        const Recovery::Counters &rc = _recovery.counters();
        _registry.addCounter("recovery.drops", &rc.drops);
        _registry.addCounter("recovery.req_drops", &rc.req_drops);
        _registry.addCounter("recovery.reply_drops", &rc.reply_drops);
        _registry.addCounter("recovery.retransmit_covered",
                             &rc.retransmit_covered);
        _registry.addCounter("recovery.quarantine_covered",
                             &rc.quarantine_covered);
        _registry.addCounter("recovery.pending_drops",
                             [this] { return _recovery.pendingDrops(); });
        _registry.addCounter("recovery.retransmits", &rc.retransmits);
        _registry.addCounter("recovery.stale_replies", &rc.stale_replies);
        _registry.addCounter("recovery.nacks_lost", &rc.nacks_lost);
        _registry.addCounter("recovery.nacks_stale", &rc.nacks_stale);
        _registry.addCounter("recovery.nacks_replayed",
                             &rc.nacks_replayed);
        _registry.addCounter("recovery.dup_requests", &rc.dup_requests);
        _registry.addCounter("recovery.dup_replayed", &rc.dup_replayed);
        _registry.addCounter("recovery.dup_reprocessed",
                             &rc.dup_reprocessed);
        _registry.addCounter("recovery.dup_in_progress",
                             &rc.dup_in_progress);
        _registry.addCounter("recovery.dup_stale", &rc.dup_stale);
        _registry.addCounter("recovery.links_quarantined",
                             &rc.links_quarantined);
        // Faulty-channel ledger: registered only when a chaos axis is
        // armed, so loss-only recovery runs keep their exact JSON shape.
        if (_cfg.faults.chaosEnabled()) {
            _registry.addCounter("recovery.corrupt_detected",
                                 &rc.corrupt_detected);
            _registry.addCounter("recovery.dups_absorbed",
                                 &rc.dups_absorbed);
            _registry.addCounter("recovery.reorders_delivered",
                                 &rc.reorders_delivered);
        }
    }
    if (_cfg.watchdog.enabled)
        _registry.addCounter("fault.watchdog_trips",
                             _watchdog.tripsCounter());

    // Open-loop serving counters: registered only when open-loop
    // arrivals are on, so closed-loop runs keep their exact JSON shape.
    if (_cfg.openloop.enabled) {
        const OpenLoopStats &os = _admission.stats();
        _registry.addCounter("openloop.offered", &os.offered);
        _registry.addCounter("openloop.admitted", &os.admitted);
        _registry.addCounter("openloop.rejected", &os.rejected);
        // Edge-shed attribution exists only when the serving layer can
        // throttle; gate it so serve-off runs keep their JSON shape.
        if (_cfg.serve.enabled)
            _registry.addCounter("openloop.rejected_throttled",
                                 &os.rejected_throttled);
        _registry.addCounter("openloop.completed", &os.completed);
        _registry.addCounter("openloop.slo_violations",
                             &os.slo_violations);
        _registry.addHistogram("openloop.depth_on_arrival",
                               &os.depth_on_arrival);
        _registry.addLatency("openloop.admission_wait",
                             &os.admission_wait);
        _registry.addLatency("openloop.sojourn", &os.sojourn);
    }

    // Overload-protection serving counters: registered only when the
    // serving layer is on, so legacy runs keep their exact JSON shape.
    if (_cfg.serve.enabled) {
        _registry.addCounter("serve.slots", &_serve_stats.slots);
        _registry.addCounter("serve.served", &_serve_stats.served);
        _registry.addCounter("serve.hi_served", &_serve_stats.hi_served);
        _registry.addCounter("serve.lo_served", &_serve_stats.lo_served);
        _registry.addCounter("serve.aged", &_serve_stats.aged);
        _registry.addCounter("serve.batches", &_serve_stats.batches);
        _registry.addCounter("serve.coalesced", &_serve_stats.coalesced);
        _registry.addCounter("serve.throttle_events",
                             &_serve_stats.throttle_events);
        _registry.addCounter("serve.throttle_cycles",
                             &_serve_stats.throttle_cycles);
        _registry.addCounter("serve.backoff_capped",
                             &_serve_stats.backoff_capped);
    }

    // Telemetry accounting: registered only when telemetry is on, so
    // untelemetered runs keep their exact JSON shape.
    if (_cfg.telemetry.enabled) {
        _registry.addCounter("timeseries.windows", [this] {
            return _telemetry.windowsSampled();
        });
        _registry.addCounter("timeseries.windows_evicted", [this] {
            return _telemetry.windowsEvicted();
        });
        _registry.addCounter("timeseries.series", [this] {
            return static_cast<std::uint64_t>(_telemetry.numSeries());
        });
        _registry.addCounter("timeseries.lines_tracked", [this] {
            return _line_prof.linesTracked();
        });
    }

    // Event-trace ring accounting: the ring silently overwrites its
    // oldest records, so surface how many were lost. Registered only
    // when tracing is on (same JSON-shape discipline as above).
    if (_cfg.trace.enabled) {
        _registry.addCounter("trace.recorded",
                             [this] { return _tracer.totalRecorded(); });
        _registry.addCounter("trace.dropped",
                             [this] { return _tracer.dropped(); });
    }

    // Per-node component counters. All pointed-to storage lives in
    // containers sized once by the constructor, so addresses are stable.
    for (int i = 0; i < numProcs(); ++i) {
        std::string p = csprintf("node%d.", i);

        const SysStats &st = _node_stats[i];
        _registry.addCounter(p + "proto.nacks", &st.nacks);
        _registry.addCounter(p + "proto.retries", &st.retries);
        _registry.addCounter(p + "proto.invalidations", &st.invalidations);
        _registry.addCounter(p + "proto.updates", &st.updates);
        _registry.addCounter(p + "proto.writebacks", &st.writebacks);
        _registry.addCounter(p + "proto.drop_notifies", &st.drop_notifies);
        _registry.addCounter(p + "proto.sc_successes", &st.sc_successes);
        _registry.addCounter(p + "proto.sc_failures", &st.sc_failures);
        _registry.addCounter(p + "proto.cas_successes", &st.cas_successes);
        _registry.addCounter(p + "proto.cas_failures", &st.cas_failures);
        _registry.addHistogram(p + "proto.chain_length", &st.chain_length);
        for (int op = 0; op < NUM_ATOMIC_OPS; ++op)
            _registry.addLatency(
                p + "proto.ops." + toString(static_cast<AtomicOp>(op)),
                &st.op_latency[op]);

        const CacheStats &cs = _ctrls[i]->cache().stats();
        _registry.addCounter(p + "cache.hits", &cs.hits);
        _registry.addCounter(p + "cache.misses", &cs.misses);
        _registry.addCounter(p + "cache.evictions", &cs.evictions);
        _registry.addCounter(p + "cache.invalidations_received",
                             &cs.invalidations_received);

        const MemModule &mm = _mems[i];
        _registry.addCounter(p + "mem.accesses",
                             [&mm] { return mm.accesses(); });
        _registry.addCounter(p + "mem.queue_cycles",
                             [&mm] { return mm.queueCycles(); });
        _registry.addCounter(p + "mem.busy_cycles",
                             [&mm] { return mm.busyCycles(); });
        _registry.addHistogram(p + "mem.queue_wait", &mm.queueWait());

        _registry.addCounter(p + "dir.transitions",
                             &_dirs[i].transitions());

        _registry.addCounter(p + "net.inj_msgs", &_mesh.injMsgs(i));
        _registry.addCounter(p + "net.ej_msgs", &_mesh.ejMsgs(i));
        _registry.addCounter(p + "net.inj_flits", &_mesh.injFlits(i));

        const Proc &pr = *_procs[i];
        _registry.addCounter(p + "proc.ops_issued",
                             [&pr] { return pr.opsIssued(); });
    }
}

void
System::scheduleSpuriousInvalidation()
{
    _eq.scheduleIn(_cfg.machine.spurious_resv_period, [this] {
        for (auto &c : _ctrls)
            c->cache().clearReservation();
        // Keep firing only while work remains; otherwise the event
        // queue could never drain.
        if (tasksPending() > 0)
            scheduleSpuriousInvalidation();
    });
}

void
System::scheduleWatchdogScan()
{
    _eq.scheduleIn(_cfg.watchdog.scan_period, [this] {
        _watchdog.scan(*this);
        // Stop re-arming once tripped or idle so the queue can drain.
        if (tasksPending() > 0 && !_watchdog.tripped())
            scheduleWatchdogScan();
    });
}

Addr
System::alloc(std::size_t bytes, std::size_t align)
{
    dsm_assert(align > 0 && (align & (align - 1)) == 0,
               "alignment must be a power of two");
    Addr a = (_next_alloc + align - 1) & ~static_cast<Addr>(align - 1);
    _next_alloc = a + bytes;
    return a;
}

Addr
System::allocSync()
{
    Addr a = alloc(BLOCK_BYTES, BLOCK_BYTES);
    markSync(a);
    return a;
}

Addr
System::allocAt(NodeId home, std::size_t bytes)
{
    dsm_assert(home >= 0 && home < numProcs(), "bad home node %d", home);
    // Advance to the next block whose home is the requested node.
    Addr a = (_next_alloc + BLOCK_BYTES - 1) &
             ~static_cast<Addr>(BLOCK_BYTES - 1);
    while (homeOf(a) != home)
        a += BLOCK_BYTES;
    _next_alloc = a + bytes;
    return a;
}

Addr
System::allocSyncAt(NodeId home)
{
    Addr a = allocAt(home, BLOCK_BYTES);
    markSync(a);
    return a;
}

Word
System::debugRead(Addr a) const
{
    for (const auto &c : _ctrls) {
        const CacheLine *line = c->cache().peek(a);
        if (line != nullptr && line->state == LineState::EXCLUSIVE)
            return line->readWord(a);
    }
    return _store.readWord(a);
}

void
System::spawn(Task t)
{
    dsm_assert(!t.done(), "spawning a completed task");
    std::coroutine_handle<> h = t.handle();
    _tasks.push_back(std::move(t));
    _eq.schedule(_eq.now(), [h] { h.resume(); });
}

int
System::tasksPending() const
{
    int n = 0;
    for (const Task &t : _tasks)
        if (!t.done())
            ++n;
    return n;
}

void
System::reapTasks()
{
    std::erase_if(_tasks, [](const Task &t) { return t.done(); });
}

std::string
System::report() const
{
    std::string out;
    out += csprintf("machine: %d procs (%dx%d mesh), %u-set %u-way "
                    "caches, mem=%llu cy, hop=%llu cy\n",
                    _cfg.machine.num_procs, _cfg.machine.mesh_x,
                    _cfg.machine.mesh_y, _cfg.machine.cache_sets,
                    _cfg.machine.cache_ways,
                    (unsigned long long)_cfg.machine.mem_service_time,
                    (unsigned long long)_cfg.machine.hop_latency);
    out += csprintf("sync implementation: %s (policy %s)\n",
                    _cfg.sync.label().c_str(),
                    toString(_cfg.sync.policy));
    out += csprintf("time: %llu cycles, %llu events\n",
                    (unsigned long long)_eq.now(),
                    (unsigned long long)_eq.eventsExecuted());

    const MeshStats &ms = _mesh.stats();
    out += csprintf("network: %llu messages (%llu flits, %.1f avg hops)"
                    ", %llu local deliveries\n",
                    (unsigned long long)ms.messages,
                    (unsigned long long)ms.flits,
                    ms.messages ? static_cast<double>(ms.hop_sum) /
                                      static_cast<double>(ms.messages)
                                : 0.0,
                    (unsigned long long)ms.local);

    std::uint64_t mem_acc = 0, mem_queue = 0;
    for (const MemModule &m : _mems) {
        mem_acc += m.accesses();
        mem_queue += m.queueCycles();
    }
    out += csprintf("memory: %llu accesses, %llu queueing cycles\n",
                    (unsigned long long)mem_acc,
                    (unsigned long long)mem_queue);

    std::uint64_t hits = 0, misses = 0, evictions = 0, invs = 0;
    for (const auto &c : _ctrls) {
        const CacheStats &cs = c->cache().stats();
        hits += cs.hits;
        misses += cs.misses;
        evictions += cs.evictions;
        invs += cs.invalidations_received;
    }
    out += csprintf("caches: %llu hits, %llu misses, %llu evictions, "
                    "%llu invalidations received\n",
                    (unsigned long long)hits, (unsigned long long)misses,
                    (unsigned long long)evictions,
                    (unsigned long long)invs);
    out += stats().report();
    return out;
}

std::string
System::telemetryJson()
{
    _telemetry.finalize(_eq.now());
    JsonWriter w;
    w.beginObject();
    w.key("timeseries");
    _telemetry.writeJson(w);
    w.kv("lines_tracked", _line_prof.linesTracked());
    w.key("hot_lines");
    w.beginArray();
    for (const LineProfiler::Ranked &r :
         _line_prof.ranked(_cfg.telemetry.hot_lines)) {
        w.beginObject();
        w.kv("addr", static_cast<std::uint64_t>(r.addr));
        w.kv("home", static_cast<int>(homeOf(r.addr)));
        w.kv("sync", isSync(r.addr));
        w.kv("requests", r.prof.requests);
        w.kv("service_cycles", r.prof.service_cycles);
        w.kv("nacks", r.prof.nacks);
        w.kv("migrations", r.prof.migrations);
        w.kv("sharer_joins", r.prof.sharer_joins);
        w.kv("invalidations", r.prof.invalidations);
        w.kv("score", r.prof.score());
        w.endObject();
    }
    w.endArray();
    // Cumulative offered load per directed link, row-major
    // (src * nodes + dst) — the mesh heatmap of the HTML report.
    w.key("links");
    w.beginObject();
    w.kv("nodes", numProcs());
    w.kv("mesh_x", _cfg.machine.mesh_x);
    w.kv("mesh_y", _cfg.machine.mesh_y);
    w.key("flits");
    w.beginArray();
    for (int a = 0; a < numProcs(); ++a)
        for (int b = 0; b < numProcs(); ++b)
            w.value(_mesh.linkFlits(a, b));
    w.endArray();
    w.endObject();
    // Tail-latency section: conditional p90/p99 phase attribution and
    // the slowest-transaction exemplars, plus the open-loop serving
    // counters when an arrival process drove the run. Present only
    // when transaction tracing is on (the attribution source).
    if (_cfg.txn_trace.enabled) {
        w.key("tail");
        w.beginObject();
        w.key("attribution");
        w.raw(_txns.attribution().tailJson());
        w.key("exemplars");
        w.raw(_txns.exemplarsJson());
        if (_admission_on != nullptr) {
            const OpenLoopStats &os = _admission.stats();
            w.key("openloop");
            w.beginObject();
            w.kv("offered", os.offered);
            w.kv("admitted", os.admitted);
            w.kv("rejected", os.rejected);
            w.kv("completed", os.completed);
            w.kv("slo_cycles",
                 static_cast<std::uint64_t>(_cfg.openloop.slo_cycles));
            w.kv("slo_violations", os.slo_violations);
            w.key("sojourn");
            w.beginObject();
            w.kv("count", os.sojourn.count);
            w.kv("mean", os.sojourn.mean());
            w.kv("p50", static_cast<std::uint64_t>(os.sojourn.p50()));
            w.kv("p99", static_cast<std::uint64_t>(os.sojourn.p99()));
            w.kv("p999", static_cast<std::uint64_t>(os.sojourn.p999()));
            w.kv("max", static_cast<std::uint64_t>(os.sojourn.max));
            w.endObject();
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

RunResult
System::run(Tick max_ticks)
{
    RunResult r;
    Tick deadline = _eq.now() + max_ticks;
    while (tasksPending() > 0) {
        if (_watchdog_on != nullptr && _watchdog.tripped()) {
            r.livelocked = true;
            r.diagnosis = _watchdog.diagnosis();
            break;
        }
        if (_eq.empty()) {
            r.deadlocked = true;
            r.diagnosis = "deadlock: event queue drained with tasks "
                          "still blocked\n" +
                          Watchdog::blockedTxnDump(*this);
            break;
        }
        if (_eq.now() > deadline)
            break;
        // Step in small chunks so the (O(tasks)) pending check does not
        // dominate event processing.
        for (int i = 0; i < 64 && !_eq.empty(); ++i)
            _eq.step();
    }
    r.completed = tasksPending() == 0;
    if (r.completed) {
        // Quiesce: drain in-flight protocol traffic (write-backs,
        // acknowledgements) so memory reaches its final state.
        _eq.run();
    }
    r.end_tick = _eq.now();
    r.events = _eq.eventsExecuted();
    return r;
}

} // namespace dsm
