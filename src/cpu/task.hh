/**
 * @file
 * Minimal C++20 coroutine task type for workload threads.
 *
 * A workload "thread" is a coroutine returning Task. It starts suspended;
 * System::spawn() schedules the first resume at simulation start. The
 * coroutine suspends inside the Proc awaitables (memory operations,
 * compute delays, barriers) and is resumed by the model at the operation's
 * completion tick. This plays the role MINT's execution-driven front end
 * plays in the paper: it produces each processor's reference stream.
 */

#ifndef DSM_CPU_TASK_HH
#define DSM_CPU_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/logging.hh"

namespace dsm {

/** Move-only handle owning one workload coroutine. */
class Task
{
  public:
    struct promise_type
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception()
        {
            dsm_panic("unhandled exception escaped a workload coroutine");
        }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : _h(h) {}

    Task(Task &&other) noexcept : _h(std::exchange(other._h, nullptr)) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _h = std::exchange(other._h, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True once the coroutine has run to completion. */
    bool done() const { return !_h || _h.done(); }

    /** The raw handle (used by System::spawn for the initial resume). */
    std::coroutine_handle<> handle() const { return _h; }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _h;
};

} // namespace dsm

#endif // DSM_CPU_TASK_HH
