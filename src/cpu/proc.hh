/**
 * @file
 * The processor-side programming interface used by workloads and by the
 * synchronization library.
 *
 * A Proc models one blocking, in-order processor (like the MIPS R4000 the
 * paper simulates): it issues one memory/synchronization operation at a
 * time and waits for completion. Workload coroutines co_await the
 * operations below.
 *
 * The instruction set matches the simulated machine of Section 4.1: the
 * base ISA's loads/stores and load_linked/store_conditional, plus
 * fetch_and_Phi, compare_and_swap, load_exclusive, and drop_copy.
 */

#ifndef DSM_CPU_PROC_HH
#define DSM_CPU_PROC_HH

#include <coroutine>

#include "net/msg.hh"
#include "proto/controller.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** One simulated processor. */
class Proc
{
  public:
    Proc(System &sys, NodeId id);

    NodeId id() const { return _id; }
    System &sys() { return _sys; }

    /** Awaitable returned by every memory/sync operation. */
    struct Op
    {
        Proc &proc;
        AtomicOp op;
        Addr addr;
        Word value;
        Word expected;
        OpResult result{};

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        OpResult await_resume() const noexcept { return result; }
    };

    /** Ordinary load; result.value is the word read. */
    Op load(Addr a) { return Op{*this, AtomicOp::LOAD, a, 0, 0}; }

    /** Ordinary store. */
    Op store(Addr a, Word v) { return Op{*this, AtomicOp::STORE, a, v, 0}; }

    /** load_exclusive: read @p a, acquiring exclusive ownership. */
    Op
    loadExclusive(Addr a)
    {
        return Op{*this, AtomicOp::LOAD_EXCL, a, 0, 0};
    }

    /** drop_copy: self-invalidate (write back if dirty) the line of @p a. */
    Op dropCopy(Addr a) { return Op{*this, AtomicOp::DROP_COPY, a, 0, 0}; }

    /** test_and_set: set to 1, return the original value. */
    Op testAndSet(Addr a) { return Op{*this, AtomicOp::TAS, a, 1, 0}; }

    /** fetch_and_add. */
    Op fetchAdd(Addr a, Word v) { return Op{*this, AtomicOp::FAA, a, v, 0}; }

    /** fetch_and_store (atomic swap). */
    Op
    fetchStore(Addr a, Word v)
    {
        return Op{*this, AtomicOp::FAS, a, v, 0};
    }

    /** fetch_and_or. */
    Op fetchOr(Addr a, Word v) { return Op{*this, AtomicOp::FAO, a, v, 0}; }

    /**
     * compare_and_swap: if *a == expected, *a = desired.
     * result.success is the verdict; result.value the original value.
     */
    Op
    cas(Addr a, Word expected, Word desired)
    {
        return Op{*this, AtomicOp::CAS, a, desired, expected};
    }

    /** load_linked: read and set the reservation. */
    Op ll(Addr a) { return Op{*this, AtomicOp::LL, a, 0, 0}; }

    /**
     * store_conditional: store @p v if the reservation is still valid.
     * result.success is the verdict.
     */
    Op sc(Addr a, Word v) { return Op{*this, AtomicOp::SC, a, v, 0}; }

    /**
     * Serial-number load_linked (Section 3.1): reads the value and the
     * block's write serial number (result.serial). In-memory primitive:
     * the block must use the UNC or UPD policy.
     */
    Op llSerial(Addr a) { return Op{*this, AtomicOp::LLS, a, 0, 0}; }

    /**
     * Serial-number store_conditional: store @p v iff the block's write
     * serial still equals @p serial. May be issued "bare", with no
     * preceding load_linked -- the property the paper exploits to save
     * a memory access in the MCS lock release.
     */
    Op
    scSerial(Addr a, Word v, Word serial)
    {
        return Op{*this, AtomicOp::SCS, a, v, serial};
    }

    /** Awaitable local computation delay of a fixed number of cycles. */
    struct Delay
    {
        Proc &proc;
        Tick cycles;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}
    };

    /** Spend @p cycles of local computation. */
    Delay compute(Tick cycles) { return Delay{*this, cycles}; }

    /** @name Workload-visible statistics. @{ */
    std::uint64_t opsIssued() const { return _ops_issued; }
    /** @} */

  private:
    friend struct Op;
    friend struct Delay;

    /** Issue to the controller with sharing-pattern instrumentation. */
    void issue(AtomicOp op, Addr a, Word v, Word exp,
               Controller::DoneFn done);

    /** Track consecutive failed attempts (spin-loop iterations). */
    void noteResult(AtomicOp op, const OpResult &r);

    System &_sys;
    NodeId _id;
    std::uint64_t _ops_issued = 0;
    /** Consecutive op completions that left the acquire loop spinning. */
    int _fail_streak = 0;
};

} // namespace dsm

#endif // DSM_CPU_PROC_HH
