#include "cpu/sync_barrier.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

SyncBarrier::SyncBarrier(System &sys, int participants)
    : _sys(sys), _participants(participants)
{
    dsm_assert(participants > 0, "barrier needs at least one participant");
}

void
SyncBarrier::setParticipants(int participants)
{
    dsm_assert(_waiting.empty(),
               "cannot resize a barrier while threads wait at it");
    dsm_assert(participants > 0, "barrier needs at least one participant");
    _participants = participants;
}

void
SyncBarrier::Waiter::await_suspend(std::coroutine_handle<> h)
{
    barrier.arrived(h);
}

void
SyncBarrier::arrived(std::coroutine_handle<> h)
{
    _waiting.push_back(h);
    if (static_cast<int>(_waiting.size()) < _participants)
        return;

    // Full round: release everyone at the same tick after the fixed cost.
    std::vector<std::coroutine_handle<>> batch;
    batch.swap(_waiting);
    ++_rounds;
    Tick when = _sys.now() + _sys.cfg().machine.magic_barrier_cost;
    for (std::coroutine_handle<> w : batch)
        _sys.eq().schedule(when, [w] { w.resume(); });
}

} // namespace dsm
