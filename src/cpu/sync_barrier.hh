/**
 * @file
 * Constant-time "magic" barrier.
 *
 * The paper's synthetic applications use constant-time barriers supported
 * by MINT to control sharing patterns: "Because these barriers are
 * constant-time, they have no effect on the results other than enforcing
 * the intended sharing patterns." SyncBarrier is that construct: it is a
 * pure simulator device, not built from atomic primitives, and releases
 * all arrived threads at the same tick after a fixed cost.
 *
 * For a *real* barrier built from the primitives under study, see
 * sync/tree_barrier.hh.
 */

#ifndef DSM_CPU_SYNC_BARRIER_HH
#define DSM_CPU_SYNC_BARRIER_HH

#include <coroutine>
#include <vector>

#include "sim/types.hh"

namespace dsm {

class System;

/** Constant-time barrier synchronizing a fixed set of participants. */
class SyncBarrier
{
  public:
    /**
     * @param sys The owning system (for the event queue).
     * @param participants Number of threads that must arrive.
     */
    SyncBarrier(System &sys, int participants);

    /** Change the participant count (only while nobody is waiting). */
    void setParticipants(int participants);

    /** Number of times the barrier has released a full round. */
    std::uint64_t rounds() const { return _rounds; }

    /** Awaitable arrival; suspends until all participants arrive. */
    struct Waiter
    {
        SyncBarrier &barrier;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}
    };

    /** co_await barrier.arrive(); */
    Waiter arrive() { return Waiter{*this}; }

  private:
    friend struct Waiter;
    void arrived(std::coroutine_handle<> h);

    System &_sys;
    int _participants;
    std::vector<std::coroutine_handle<>> _waiting;
    std::uint64_t _rounds = 0;
};

} // namespace dsm

#endif // DSM_CPU_SYNC_BARRIER_HH
