#include "cpu/admission.hh"

#include "sim/logging.hh"

namespace dsm {

void
AdmissionQueues::configure(const OpenLoopConfig &cfg, int num_procs)
{
    _cfg = cfg;
    _q.assign(static_cast<std::size_t>(num_procs), {});
    _throttle_until.assign(static_cast<std::size_t>(num_procs), 0);
    _st = OpenLoopStats{};
}

bool
AdmissionQueues::offer(NodeId n, Tick now)
{
    std::deque<Tick> &q = _q[static_cast<std::size_t>(n)];
    ++_st.offered;
    _st.depth_on_arrival.add(q.size());
    if (now < _throttle_until[static_cast<std::size_t>(n)]) {
        ++_st.rejected;
        ++_st.rejected_throttled;
        return false;
    }
    if (q.size() >= static_cast<std::size_t>(_cfg.queue_cap)) {
        ++_st.rejected;
        return false;
    }
    ++_st.admitted;
    q.push_back(now);
    return true;
}

Tick
AdmissionQueues::pop(NodeId n, Tick now)
{
    std::deque<Tick> &q = _q[static_cast<std::size_t>(n)];
    dsm_assert(!q.empty(), "pop from empty admission queue %d", n);
    Tick arrival = q.front();
    q.pop_front();
    _st.admission_wait.sample(now - arrival);
    return arrival;
}

void
AdmissionQueues::setThrottledUntil(NodeId n, Tick until)
{
    Tick &t = _throttle_until[static_cast<std::size_t>(n)];
    if (until > t)
        t = until;
}

void
AdmissionQueues::complete(Tick arrival, Tick now)
{
    ++_st.completed;
    Tick sojourn = now - arrival;
    _st.sojourn.sample(sojourn);
    if (_cfg.slo_cycles != 0 && sojourn > _cfg.slo_cycles)
        ++_st.slo_violations;
}

} // namespace dsm
