#include "cpu/proc.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

Proc::Proc(System &sys, NodeId id) : _sys(sys), _id(id) {}

void
Proc::issue(AtomicOp op, Addr a, Word v, Word exp, Controller::DoneFn done)
{
    ++_ops_issued;
    bool is_sync = _sys.isSync(a) && op != AtomicOp::DROP_COPY;
    // Contention (Figure 2) counts processors concurrently *attempting
    // an atomic access*; ordinary loads (e.g. test-and-test-and-set
    // spinning on a cached copy) are not attempts. Write-run tracking
    // counts every access: reads by other processors end a run.
    bool is_attempt = is_sync && (isAtomic(op) || op == AtomicOp::LL ||
                                  op == AtomicOp::LLS);
    if (is_attempt)
        _sys.sharing().beginAttempt(a, _id);

    // If previous attempts on an acquire loop failed, tell the
    // transaction tracer how many spin iterations preceded this issue.
    if (_sys.txns().enabled() && _fail_streak > 0)
        _sys.txns().noteLoopIter(_id, _fail_streak);

    NodeId id = _id;
    Addr addr = a;
    AtomicOp the_op = op;
    System *sys = &_sys;
    Proc *self = this;
    _sys.ctrl(_id).cpuRequest(
        op, a, v, exp,
        [sys, id, addr, the_op, is_sync, is_attempt, self,
         done = std::move(done)](OpResult r) {
            if (is_attempt)
                sys->sharing().endAttempt(addr, id);
            if (is_sync) {
                bool is_write = false;
                switch (the_op) {
                  case AtomicOp::STORE:
                  case AtomicOp::TAS:
                  case AtomicOp::FAA:
                  case AtomicOp::FAS:
                  case AtomicOp::FAO:
                    is_write = true;
                    break;
                  case AtomicOp::CAS:
                  case AtomicOp::SC:
                  case AtomicOp::SCS:
                    is_write = r.success;
                    break;
                  default:
                    break;
                }
                sys->sharing().recordAccess(addr, id, is_write);
            }
            self->noteResult(the_op, r);
            done(r);
        });
}

void
Proc::noteResult(AtomicOp op, const OpResult &r)
{
    switch (op) {
      case AtomicOp::TAS:
        // A test_and_set that reads 1 found the lock held: a spin.
        _fail_streak = r.value != 0 ? _fail_streak + 1 : 0;
        break;
      case AtomicOp::CAS:
      case AtomicOp::SC:
      case AtomicOp::SCS:
        _fail_streak = r.success ? 0 : _fail_streak + 1;
        break;
      case AtomicOp::STORE:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO:
        _fail_streak = 0;
        break;
      default:
        // Loads (incl. LL/LLS) neither succeed nor fail an acquire.
        break;
    }
}

void
Proc::Op::await_suspend(std::coroutine_handle<> h)
{
    proc.issue(op, addr, value, expected,
               [this, h](OpResult r) {
                   result = r;
                   h.resume();
               });
}

void
Proc::Delay::await_suspend(std::coroutine_handle<> h)
{
    Tick d = cycles > 0 ? cycles : 1;
    proc._sys.eq().scheduleIn(d, [h] { h.resume(); });
}

} // namespace dsm
