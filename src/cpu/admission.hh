/**
 * @file
 * Bounded per-node admission queues for open-loop arrivals.
 *
 * The open-loop workload engine (workloads/openloop.hh) offers
 * operations to these queues from a seeded arrival process; each node's
 * processor serves its queue in FIFO order. The queues live in System —
 * null-pointer-gated like every other optional subsystem, so a
 * closed-loop run pays nothing and its stats JSON keeps its exact
 * shape — and carry the serving-side counters: offered/admitted/shed
 * arrivals, queue depth seen by each arrival, admission wait, and
 * sojourn time (admission wait + service) against the configured SLO.
 */

#ifndef DSM_CPU_ADMISSION_HH
#define DSM_CPU_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"
#include "stats/stat_set.hh"

namespace dsm {

/** Serving-side statistics of the open-loop admission layer. */
struct OpenLoopStats
{
    std::uint64_t offered = 0;        ///< arrivals generated
    std::uint64_t admitted = 0;       ///< arrivals enqueued
    std::uint64_t rejected = 0;       ///< arrivals shed (queue full)
    /**
     * Arrivals shed at the edge because the node was credit-throttled
     * by its home (serve.backpressure); a subset of rejected. Shedding
     * here converts queueing delay the home would impose anyway into
     * an explicit early rejection — graceful degradation instead of
     * unbounded sojourn growth.
     */
    std::uint64_t rejected_throttled = 0;
    std::uint64_t completed = 0;      ///< admitted ops fully served
    std::uint64_t slo_violations = 0; ///< sojourn > slo_cycles
    /** Queue depth observed by each arrival (before it joins). */
    Histogram depth_on_arrival;
    /** Dequeue tick minus arrival tick. */
    LatencyStat admission_wait;
    /** Completion tick minus arrival tick (admission wait + service). */
    LatencyStat sojourn;
};

/** Bounded FIFO admission queues, one per node, plus their stats. */
class AdmissionQueues
{
  public:
    void configure(const OpenLoopConfig &cfg, int num_procs);

    /**
     * Offer one arrival at @p now to node @p n. Samples the observed
     * depth and either admits (true) or sheds it (false, queue full).
     */
    bool offer(NodeId n, Tick now);

    bool empty(NodeId n) const
    {
        return _q[static_cast<std::size_t>(n)].empty();
    }

    std::size_t depth(NodeId n) const
    {
        return _q[static_cast<std::size_t>(n)].size();
    }

    /** Dequeue the oldest arrival of node @p n; samples admission wait. */
    Tick pop(NodeId n, Tick now);

    /**
     * Credit backpressure from node @p n's controller: shed arrivals to
     * @p n (counting them rejected_throttled) until tick @p until.
     */
    void setThrottledUntil(NodeId n, Tick until);

    /** An op admitted at @p arrival finished at @p now. */
    void complete(Tick arrival, Tick now);

    const OpenLoopConfig &cfg() const { return _cfg; }
    const OpenLoopStats &stats() const { return _st; }

  private:
    OpenLoopConfig _cfg;
    std::vector<std::deque<Tick>> _q;
    /** Per-node edge-shed horizon (serve.backpressure; 0 = open). */
    std::vector<Tick> _throttle_until;
    OpenLoopStats _st;
};

} // namespace dsm

#endif // DSM_CPU_ADMISSION_HH
