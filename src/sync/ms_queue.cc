#include "sync/ms_queue.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

/**
 * Counted pointers for the non-blocking queue: the low bits hold a node
 * index + 1 (0 = nil), the high bits a modification count -- the same
 * idea as the paper's serial numbers (Section 3.1), applied per word.
 */
constexpr Word IDX_BITS = 20;
constexpr Word IDX_MASK = (Word{1} << IDX_BITS) - 1;

int
idxOf(Word ptr)
{
    return static_cast<int>(ptr & IDX_MASK) - 1;
}

Word
makePtr(Word count, int idx)
{
    return (count << IDX_BITS) |
           static_cast<Word>(static_cast<unsigned>(idx + 1));
}

Word
countOf(Word ptr)
{
    return ptr >> IDX_BITS;
}

/** A pointer with the same target but a bumped modification count. */
Word
advance(Word old_ptr, int new_idx)
{
    return makePtr(countOf(old_ptr) + 1, new_idx);
}

} // namespace

// ===================== TwoLockQueue ====================================

TwoLockQueue::TwoLockQueue(System &sys, Primitive prim, int capacity)
    : _sys(sys),
      _head_lock(sys, prim),
      _tail_lock(sys, prim),
      _free_lock(sys, prim),
      _prim(prim)
{
    dsm_assert(capacity >= 1, "queue needs capacity");
    _head = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    _tail = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    _free = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    int nodes = capacity + 1; // plus the dummy
    for (int i = 0; i < nodes; ++i) {
        Addr block = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
        _next.push_back(block);
        _value.push_back(block + WORD_BYTES);
    }
    // Node 0 is the initial dummy; 1..capacity sit on the free list.
    sys.writeInit(_head, 1);
    sys.writeInit(_tail, 1);
    sys.writeInit(_free, nodes > 1 ? 2 : 0);
    for (int i = 1; i < nodes; ++i)
        sys.writeInit(_next[static_cast<std::size_t>(i)],
                      i + 1 < nodes ? static_cast<Word>(i) + 2 : 0);
}

CoTask<int>
TwoLockQueue::allocNode(Proc &p)
{
    co_await _free_lock.acquire(p);
    Word f = (co_await p.load(_free)).value;
    if (f == 0) {
        co_await _free_lock.release(p);
        co_return -1;
    }
    Word nf = (co_await p.load(
                   _next[static_cast<std::size_t>(f - 1)])).value;
    co_await p.store(_free, nf);
    co_await _free_lock.release(p);
    co_return static_cast<int>(f) - 1;
}

CoTask<void>
TwoLockQueue::freeNode(Proc &p, int node)
{
    co_await _free_lock.acquire(p);
    Word f = (co_await p.load(_free)).value;
    co_await p.store(_next[static_cast<std::size_t>(node)], f);
    co_await p.store(_free, static_cast<Word>(node) + 1);
    co_await _free_lock.release(p);
}

CoTask<bool>
TwoLockQueue::enqueue(Proc &p, Word value)
{
    int n = co_await allocNode(p);
    if (n < 0)
        co_return false;
    co_await p.store(_value[static_cast<std::size_t>(n)], value);
    co_await p.store(_next[static_cast<std::size_t>(n)], 0);

    co_await _tail_lock.acquire(p);
    Word t = (co_await p.load(_tail)).value;
    co_await p.store(_next[static_cast<std::size_t>(t - 1)],
                     static_cast<Word>(n) + 1);
    co_await p.store(_tail, static_cast<Word>(n) + 1);
    co_await _tail_lock.release(p);
    co_return true;
}

CoTask<bool>
TwoLockQueue::dequeue(Proc &p, Word *out)
{
    co_await _head_lock.acquire(p);
    Word h = (co_await p.load(_head)).value;
    Word nxt = (co_await p.load(
                    _next[static_cast<std::size_t>(h - 1)])).value;
    if (nxt == 0) {
        co_await _head_lock.release(p);
        co_return false;
    }
    *out = (co_await p.load(
                _value[static_cast<std::size_t>(nxt - 1)])).value;
    co_await p.store(_head, nxt);
    co_await _head_lock.release(p);
    // The old dummy returns to the pool; nxt is the new dummy.
    co_await freeNode(p, static_cast<int>(h) - 1);
    co_return true;
}

// ===================== NonBlockingQueue ================================

NonBlockingQueue::NonBlockingQueue(System &sys, int capacity)
    : _sys(sys),
      _head(sys.allocSync()),
      _tail(sys.allocSync()),
      _free_head(sys.allocSync())
{
    dsm_assert(capacity >= 1, "queue needs capacity");
    int nodes = capacity + 1;
    dsm_assert(nodes < static_cast<int>(IDX_MASK), "capacity too large");
    for (int i = 0; i < nodes; ++i) {
        Addr block = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
        _next.push_back(block);
        _value.push_back(block + WORD_BYTES);
    }
    // Node 0 is the dummy; 1..capacity chain onto the free list.
    sys.writeInit(_head, makePtr(0, 0));
    sys.writeInit(_tail, makePtr(0, 0));
    sys.writeInit(_next[0], makePtr(0, -1));
    sys.writeInit(_free_head, makePtr(0, nodes > 1 ? 1 : -1));
    for (int i = 1; i < nodes; ++i)
        sys.writeInit(_next[static_cast<std::size_t>(i)],
                      makePtr(0, i + 1 < nodes ? i + 1 : -1));
}

CoTask<int>
NonBlockingQueue::allocNode(Proc &p)
{
    for (;;) {
        Word f = (co_await p.load(_free_head)).value;
        int fi = idxOf(f);
        if (fi < 0)
            co_return -1; // pool exhausted
        Word fn = (co_await p.load(
                       _next[static_cast<std::size_t>(fi)])).value;
        if ((co_await p.cas(_free_head, f, advance(f, idxOf(fn))))
                .success)
            co_return fi;
    }
}

CoTask<void>
NonBlockingQueue::freeNode(Proc &p, int node)
{
    for (;;) {
        Word f = (co_await p.load(_free_head)).value;
        Word old_next = (co_await p.load(
                             _next[static_cast<std::size_t>(node)]))
                            .value;
        co_await p.store(_next[static_cast<std::size_t>(node)],
                         advance(old_next, idxOf(f)));
        if ((co_await p.cas(_free_head, f, advance(f, node))).success)
            co_return;
    }
}

CoTask<bool>
NonBlockingQueue::enqueue(Proc &p, Word value)
{
    int n = co_await allocNode(p);
    if (n < 0)
        co_return false;
    co_await p.store(_value[static_cast<std::size_t>(n)], value);
    Word old_next =
        (co_await p.load(_next[static_cast<std::size_t>(n)])).value;
    co_await p.store(_next[static_cast<std::size_t>(n)],
                     advance(old_next, -1)); // counted nil

    Word t = 0;
    for (;;) {
        t = (co_await p.load(_tail)).value;
        int ti = idxOf(t);
        Word nxt = (co_await p.load(
                        _next[static_cast<std::size_t>(ti)])).value;
        // Is our snapshot still consistent?
        if ((co_await p.load(_tail)).value != t)
            continue;
        if (idxOf(nxt) < 0) {
            // Tail really is last: try to link our node after it.
            if ((co_await p.cas(_next[static_cast<std::size_t>(ti)],
                                nxt, advance(nxt, n)))
                    .success)
                break;
        } else {
            // Tail is lagging: help swing it forward.
            co_await p.cas(_tail, t, advance(t, idxOf(nxt)));
        }
    }
    // Swing the tail to our node (may fail if someone helped already).
    co_await p.cas(_tail, t, advance(t, n));
    co_return true;
}

CoTask<bool>
NonBlockingQueue::dequeue(Proc &p, Word *out)
{
    for (;;) {
        Word h = (co_await p.load(_head)).value;
        Word t = (co_await p.load(_tail)).value;
        Word nxt = (co_await p.load(
                        _next[static_cast<std::size_t>(idxOf(h))]))
                       .value;
        if ((co_await p.load(_head)).value != h)
            continue;
        if (idxOf(h) == idxOf(t)) {
            if (idxOf(nxt) < 0)
                co_return false; // empty
            // Tail lagging behind head: help it.
            co_await p.cas(_tail, t, advance(t, idxOf(nxt)));
        } else {
            if (idxOf(nxt) < 0)
                continue; // transient view
            Word v = (co_await p.load(
                          _value[static_cast<std::size_t>(idxOf(nxt))]))
                         .value;
            if ((co_await p.cas(_head, h, advance(h, idxOf(nxt))))
                    .success) {
                *out = v;
                co_await freeNode(p, idxOf(h));
                co_return true;
            }
        }
    }
}

} // namespace dsm
