/**
 * @file
 * Ticket lock (FIFO spin lock) built on the primitives under study; an
 * extension beyond the paper's three synthetic applications that gives
 * the fetch_and_add primitive a lock workload it is naturally suited to.
 */

#ifndef DSM_SYNC_TICKET_LOCK_HH
#define DSM_SYNC_TICKET_LOCK_HH

#include <cstdint>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** FIFO ticket lock; acquire returns the ticket to pass to release. */
class TicketLock
{
  public:
    TicketLock(System &sys, Primitive prim);

    /** Take a ticket and spin until served. @return the ticket. */
    CoTask<Word> acquire(Proc &p);

    /** Release; @p ticket must be the value acquire() returned. */
    CoTask<void> release(Proc &p, Word ticket);

    Addr nextTicketAddr() const { return _next_ticket; }
    Addr nowServingAddr() const { return _now_serving; }

  private:
    /** fetch_and_add(next_ticket, 1) via the configured primitive. */
    CoTask<Word> takeTicket(Proc &p);

    System &_sys;
    Primitive _prim;
    Addr _next_ticket;  ///< sync variable
    Addr _now_serving;  ///< sync variable
};

} // namespace dsm

#endif // DSM_SYNC_TICKET_LOCK_HH
