/**
 * @file
 * Concurrent FIFO queues in the style the paper's authors later made
 * famous (Michael & Scott, PODC 1996), built from the primitives under
 * study and exercising the paper's Section 2.2 arguments:
 *
 *  - TwoLockQueue: one lock for the head, one for the tail; enqueuers
 *    and dequeuers do not interfere. Needs only a level-2 primitive
 *    (test_and_set) -- lock-based, so neither lock-free nor wait-free.
 *
 *  - NonBlockingQueue: the CAS-based lock-free queue. Pointers are
 *    encoded as pool indices; nodes are recycled only through the
 *    queue itself, and the queue is used with a freshness discipline
 *    (no external ABA-prone reuse) in tests.
 */

#ifndef DSM_SYNC_MS_QUEUE_HH
#define DSM_SYNC_MS_QUEUE_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "sync/tts_lock.hh"

namespace dsm {

class System;

/** Michael & Scott's two-lock FIFO queue. */
class TwoLockQueue
{
  public:
    /**
     * @param capacity Maximum number of simultaneously queued items
     *        (the node pool size).
     */
    TwoLockQueue(System &sys, Primitive prim, int capacity);

    /**
     * Enqueue @p value.
     * @return false if the node pool was exhausted.
     */
    CoTask<bool> enqueue(Proc &p, Word value);

    /**
     * Dequeue into @p out.
     * @return false if the queue was empty.
     */
    CoTask<bool> dequeue(Proc &p, Word *out);

  private:
    CoTask<int> allocNode(Proc &p);
    CoTask<void> freeNode(Proc &p, int node);

    System &_sys;
    TtsLock _head_lock;
    TtsLock _tail_lock;
    TtsLock _free_lock; ///< guards the node free list
    Primitive _prim;
    Addr _head = 0; ///< ordinary data, protected by _head_lock
    Addr _tail = 0; ///< ordinary data, protected by _tail_lock
    Addr _free = 0; ///< ordinary data, protected by _free_lock
    std::vector<Addr> _next;
    std::vector<Addr> _value;
};

/** The CAS-based non-blocking (lock-free) FIFO queue. */
class NonBlockingQueue
{
  public:
    NonBlockingQueue(System &sys, int capacity);

    /** Enqueue; returns false when the node pool is exhausted. */
    CoTask<bool> enqueue(Proc &p, Word value);

    /** Dequeue; returns false when the queue is empty. */
    CoTask<bool> dequeue(Proc &p, Word *out);

    Addr headAddr() const { return _head; }
    Addr tailAddr() const { return _tail; }

  private:
    CoTask<int> allocNode(Proc &p);
    CoTask<void> freeNode(Proc &p, int node);

    System &_sys;
    Addr _head;      ///< sync: counted pointer to the dummy node
    Addr _tail;      ///< sync: counted pointer to the last node
    Addr _free_head; ///< sync: counted pointer to the node free list
    std::vector<Addr> _next;  ///< counted pointers (CAS target)
    std::vector<Addr> _value; ///< ordinary data
};

} // namespace dsm

#endif // DSM_SYNC_MS_QUEUE_HH
