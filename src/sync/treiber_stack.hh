/**
 * @file
 * Treiber-style lock-free stack, exercising Section 2.2's discussion of
 * the "pointer problem": a load/compare_and_swap pair cannot detect that
 * a pointer was popped and pushed back (ABA), while load_linked/
 * store_conditional can, because any intervening write invalidates the
 * reservation.
 *
 * Node links are encoded as indices into a preallocated node pool
 * (0 = nil, i+1 = node i). The CAS variant is therefore deliberately
 * ABA-vulnerable when nodes are recycled -- tests demonstrate exactly
 * the failure the paper describes -- and the LL/SC variant is immune.
 */

#ifndef DSM_SYNC_TREIBER_STACK_HH
#define DSM_SYNC_TREIBER_STACK_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Lock-free stack of pool-allocated nodes. */
class TreiberStack
{
  public:
    /**
     * @param prim CAS or LLSC (FAP cannot implement a lock-free stack;
     *             Herlihy's hierarchy, Section 2.2).
     * @param pool_size Number of preallocated nodes.
     */
    TreiberStack(System &sys, Primitive prim, int pool_size);

    Addr headAddr() const { return _head; }

    /** Push node @p node_id (0-based pool index) with @p value. */
    CoTask<void> push(Proc &p, int node_id, Word value);

    /**
     * Pop the top node.
     * @return the 0-based pool index of the popped node, or -1 if empty.
     */
    CoTask<int> pop(Proc &p);

    /** Read a node's stored value (host-side, for checking). */
    Word nodeValue(int node_id) const;
    /** Node link/value addresses (for directed ABA tests). */
    Addr nodeNextAddr(int node_id) const { return _next[node_id]; }
    Addr nodeValueAddr(int node_id) const { return _value[node_id]; }

  private:
    static Word encode(int node_id) { return static_cast<Word>(node_id) + 1; }
    static int decode(Word v) { return static_cast<int>(v) - 1; }

    System &_sys;
    Primitive _prim;
    Addr _head;               ///< sync variable
    std::vector<Addr> _next;  ///< per-node link word (ordinary data)
    std::vector<Addr> _value; ///< per-node value word (ordinary data)
};

} // namespace dsm

#endif // DSM_SYNC_TREIBER_STACK_HH
