/**
 * @file
 * CLH queue lock (Craig; Landin & Hagersten): an implicit-queue spin
 * lock needing only fetch_and_store, where each processor spins on its
 * *predecessor's* node. A natural companion to the MCS lock in the
 * paper's algorithm space: it exercises the swap primitive (level 2 of
 * Herlihy's hierarchy) without any compare_and_swap in the release.
 */

#ifndef DSM_SYNC_CLH_LOCK_HH
#define DSM_SYNC_CLH_LOCK_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** CLH list-based queue lock. */
class ClhLock
{
  public:
    ClhLock(System &sys, Primitive prim);

    Addr tailAddr() const { return _tail; }

    CoTask<void> acquire(Proc &p);
    CoTask<void> release(Proc &p);

    std::uint64_t acquisitions() const { return _acquisitions; }

  private:
    /** Atomic swap of the tail via the configured primitive. */
    CoTask<Word> swapTail(Proc &p, Word v);

    System &_sys;
    Primitive _prim;
    Addr _tail; ///< sync variable; holds the current tail node id + 1

    /**
     * Node pool: one node per processor plus one initial node. In CLH a
     * releasing processor donates its node to the successor and adopts
     * its predecessor's, so ownership rotates; we track the node each
     * processor currently owns and the one it spins on.
     */
    std::vector<Addr> _node;      ///< node flag words (ordinary data)
    std::vector<int> _my_node;    ///< node owned by each processor
    std::vector<int> _my_pred;    ///< node adopted from the predecessor
    std::uint64_t _acquisitions = 0;
};

} // namespace dsm

#endif // DSM_SYNC_CLH_LOCK_HH
