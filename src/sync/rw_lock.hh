/**
 * @file
 * Centralized reader-writer lock, after the scalable reader-writer
 * synchronization work the paper cites ([21]) as a consumer of
 * general-purpose primitives.
 *
 * The lock word encodes (reader_count << 1) | writer_bit. Readers and
 * writers update it with the configured universal primitive; the FAP
 * variant uses fetch_and_add with compensation (increment, check, undo),
 * which needs no compare_and_swap.
 */

#ifndef DSM_SYNC_RW_LOCK_HH
#define DSM_SYNC_RW_LOCK_HH

#include <cstdint>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Reader-writer spin lock with writer preference left to chance. */
class RwLock
{
  public:
    RwLock(System &sys, Primitive prim);

    Addr addr() const { return _state; }

    CoTask<void> readerAcquire(Proc &p);
    CoTask<void> readerRelease(Proc &p);
    CoTask<void> writerAcquire(Proc &p);
    CoTask<void> writerRelease(Proc &p);

  private:
    static constexpr Word WRITER_BIT = 1;
    static constexpr Word READER_UNIT = 2;

    /** CAS on the state via CAS or LL/SC. @return success. */
    CoTask<bool> casState(Proc &p, Word expected, Word desired);

    System &_sys;
    Primitive _prim;
    Addr _state; ///< sync variable
};

} // namespace dsm

#endif // DSM_SYNC_RW_LOCK_HH
