/**
 * @file
 * Bounded exponential backoff, as used by the paper's test-and-test-and-
 * set lock ("with bounded exponential backoff") and by retry loops on
 * lock-free objects.
 */

#ifndef DSM_SYNC_BACKOFF_HH
#define DSM_SYNC_BACKOFF_HH

#include "sim/rng.hh"
#include "sim/types.hh"

namespace dsm {

/** Per-attempt bounded exponential backoff state. */
class Backoff
{
  public:
    /**
     * @param base First delay in cycles.
     * @param cap  Upper bound on the delay.
     */
    Backoff(Tick base, Tick cap) : _base(base), _cap(cap), _cur(base) {}

    /**
     * The next delay: uniformly random in [1, current bound], doubling
     * the bound (up to the cap) on each call.
     */
    Tick next(Rng &rng);

    /** Reset to the base delay (e.g. after a successful acquire). */
    void reset() { _cur = _base; }

    Tick currentBound() const { return _cur; }

  private:
    Tick _base;
    Tick _cap;
    Tick _cur;
};

} // namespace dsm

#endif // DSM_SYNC_BACKOFF_HH
