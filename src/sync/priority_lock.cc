#include "sync/priority_lock.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

PriorityLock::PriorityLock(System &sys, Primitive prim)
    : _sys(sys), _prim(prim), _lock(sys.allocSync())
{
    int n = sys.numProcs();
    _request.reserve(n);
    _grant.reserve(n);
    for (int i = 0; i < n; ++i) {
        _request.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
        _grant.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
    }
}

CoTask<bool>
PriorityLock::tryLock(Proc &p)
{
    switch (_prim) {
      case Primitive::FAP:
        co_return (co_await p.testAndSet(_lock)).value == 0;
      case Primitive::CAS:
        co_return (co_await p.cas(_lock, 0, 1)).success;
      case Primitive::LLSC: {
        OpResult r = co_await p.ll(_lock);
        if (r.value != 0)
            co_return false;
        co_return (co_await p.sc(_lock, 1)).success;
      }
    }
    dsm_panic("unreachable");
}

CoTask<void>
PriorityLock::acquire(Proc &p, Word priority)
{
    dsm_assert(priority > 0, "priority must be nonzero");
    auto me = static_cast<std::size_t>(p.id());
    co_await p.store(_request[me], priority);
    for (;;) {
        // A releasing holder may hand the (still held) lock directly
        // to us.
        if ((co_await p.load(_grant[me])).value != 0) {
            co_await p.store(_grant[me], 0);
            co_return; // the hand-off cleared our request word
        }
        // Fast path: take a free lock.
        if ((co_await p.load(_lock)).value == 0 &&
            co_await tryLock(p)) {
            co_await p.store(_request[me], 0);
            co_return;
        }
    }
}

CoTask<void>
PriorityLock::release(Proc &p)
{
    // Scan for the highest-priority waiter while still holding the
    // lock; nobody can slip in through the fast path.
    int winner = -1;
    Word best = 0;
    for (int i = 0; i < _sys.numProcs(); ++i) {
        Word prio = (co_await p.load(
                         _request[static_cast<std::size_t>(i)])).value;
        if (prio > best) {
            best = prio;
            winner = i;
        }
    }
    if (winner < 0) {
        // No waiters: free the lock.
        co_await p.store(_lock, 0);
        if (_sys.cfg().sync.use_drop_copy)
            co_await p.dropCopy(_lock);
        co_return;
    }
    // Direct hand-off: clear the winner's request, then grant.
    ++_handoffs;
    co_await p.store(_request[static_cast<std::size_t>(winner)], 0);
    co_await p.store(_grant[static_cast<std::size_t>(winner)], 1);
}

} // namespace dsm
