#include "sync/tts_lock.hh"

#include "cpu/system.hh"
#include "sync/backoff.hh"

namespace dsm {

TtsLock::TtsLock(System &sys, Primitive prim, Tick backoff_base,
                 Tick backoff_cap)
    : _sys(sys), _prim(prim), _addr(sys.allocSync()),
      _backoff_base(backoff_base), _backoff_cap(backoff_cap)
{
}

CoTask<void>
TtsLock::acquire(Proc &p)
{
    const SyncConfig &sc = _sys.cfg().sync;
    Backoff backoff(_backoff_base, _backoff_cap);

    for (;;) {
        // Test phase: spin on ordinary reads until the lock looks free.
        while ((co_await p.load(_addr)).value != 0) {
            // The read itself paces the loop (it takes at least a cache
            // hit, and a full round trip under UNC).
        }

        // Attempt phase with the configured primitive.
        bool got = false;
        switch (_prim) {
          case Primitive::FAP:
            got = (co_await p.testAndSet(_addr)).value == 0;
            break;
          case Primitive::CAS:
            if (sc.use_load_exclusive) {
                // Re-test with an exclusive read right before the CAS so
                // the CAS hits locally (Section 3).
                OpResult r = co_await p.loadExclusive(_addr);
                if (r.value != 0)
                    continue;
            }
            got = (co_await p.cas(_addr, 0, 1)).success;
            break;
          case Primitive::LLSC: {
            OpResult r = co_await p.ll(_addr);
            if (r.value != 0)
                continue;
            got = (co_await p.sc(_addr, 1)).success;
            break;
          }
        }

        if (got) {
            ++_acquisitions;
            co_return;
        }
        ++_failed_attempts;
        co_await p.compute(backoff.next(_sys.rng()));
    }
}

CoTask<void>
TtsLock::release(Proc &p)
{
    co_await p.store(_addr, 0);
    if (_sys.cfg().sync.use_drop_copy)
        co_await p.dropCopy(_addr);
}

} // namespace dsm
