/**
 * @file
 * Test-and-test-and-set lock with bounded exponential backoff
 * (Rudolph & Segall [23]; the lock the paper substitutes for the SPLASH
 * library locks and uses in its second synthetic application).
 *
 * The acquire attempt is made with the configured universal primitive:
 *  - FAP: test_and_set;
 *  - CAS: compare_and_swap(lock, 0, 1), optionally preceded by
 *    load_exclusive (Section 3);
 *  - LLSC: a load_linked/store_conditional attempt.
 *
 * Release is an ordinary store of 0; with drop_copy enabled the holder
 * drops its copy of the lock line after releasing.
 */

#ifndef DSM_SYNC_TTS_LOCK_HH
#define DSM_SYNC_TTS_LOCK_HH

#include <cstdint>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** TTS spin lock with bounded exponential backoff. */
class TtsLock
{
  public:
    /**
     * @param backoff_base First backoff delay (cycles).
     * @param backoff_cap Bound on the backoff delay (cycles).
     */
    TtsLock(System &sys, Primitive prim, Tick backoff_base = 16,
            Tick backoff_cap = 1024);

    Addr addr() const { return _addr; }

    /** Acquire the lock (spins until held). */
    CoTask<void> acquire(Proc &p);

    /** Release the lock. */
    CoTask<void> release(Proc &p);

    /** Failed acquire attempts (TAS/CAS/SC that did not take the lock). */
    std::uint64_t failedAttempts() const { return _failed_attempts; }
    /** Successful acquisitions. */
    std::uint64_t acquisitions() const { return _acquisitions; }

  private:
    System &_sys;
    Primitive _prim;
    Addr _addr;
    Tick _backoff_base;
    Tick _backoff_cap;
    std::uint64_t _failed_attempts = 0;
    std::uint64_t _acquisitions = 0;
};

} // namespace dsm

#endif // DSM_SYNC_TTS_LOCK_HH
