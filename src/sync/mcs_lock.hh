/**
 * @file
 * MCS queue-based spin lock (Mellor-Crummey & Scott [20]), the paper's
 * third synthetic application: "a counter protected by an MCS lock to
 * cover the case in which load_linked/store_conditional simulates
 * compare_and_swap".
 *
 * The lock tail is the synchronization variable; queue nodes are
 * ordinary shared data (each processor spins only on its own node).
 * Primitive mapping:
 *  - CAS: native fetch_and_store is unavailable at level 2 only in
 *    theory; here CAS simulates the swap with a load/CAS retry loop and
 *    performs the release compare directly;
 *  - LLSC: LL/SC simulates both the swap and the release CAS;
 *  - FAP: fetch_and_store is used for the swap, and the release uses the
 *    MCS variant that needs no compare_and_swap (the two-swap "usurper"
 *    protocol from [20]).
 */

#ifndef DSM_SYNC_MCS_LOCK_HH
#define DSM_SYNC_MCS_LOCK_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** MCS list-based queue lock. */
class McsLock
{
  public:
    /**
     * @param use_serial_sc With the LLSC primitive and an in-memory
     *        (UNC/UPD) policy, use serial-number LL/SC (Section 3.1):
     *        the release issues a *bare* store_conditional against the
     *        serial remembered from the acquire swap, saving one memory
     *        access -- the optimization the paper attributes to this
     *        scheme for "algorithms such as the MCS queue-based spin
     *        lock".
     */
    McsLock(System &sys, Primitive prim, bool use_serial_sc = false);

    Addr tailAddr() const { return _tail; }

    /** Enqueue and spin until the lock is held. */
    CoTask<void> acquire(Proc &p);

    /** Pass the lock to the successor (or free it). */
    CoTask<void> release(Proc &p);

    std::uint64_t acquisitions() const { return _acquisitions; }

  private:
    /** Atomic swap of the tail via the configured primitive. */
    CoTask<Word> swapTail(Proc &p, Word v);
    /** Atomic compare-and-swap of the tail via CAS or LL/SC. */
    CoTask<bool> casTail(Proc &p, Word expected, Word v);

    /** Queue-node encoding: node of processor i is the value i+1. */
    static Word encode(NodeId n) { return static_cast<Word>(n) + 1; }
    static NodeId decode(Word v) { return static_cast<NodeId>(v) - 1; }

    System &_sys;
    Primitive _prim;
    bool _use_serial_sc;
    Addr _tail;                 ///< sync variable
    std::vector<Addr> _next;    ///< per-processor qnode.next (ordinary)
    std::vector<Addr> _locked;  ///< per-processor qnode.locked (ordinary)
    /** Per-processor: tail serial right after our acquire swap. */
    std::vector<Word> _swap_serial;
    std::uint64_t _acquisitions = 0;
};

} // namespace dsm

#endif // DSM_SYNC_MCS_LOCK_HH
