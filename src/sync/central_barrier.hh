/**
 * @file
 * Central sense-reversing barrier built on fetch_and_add (or its CAS /
 * LL-SC simulations): the classic centralized counterpart of the MCS
 * tree barrier in [20]. All arrivals update one counter and all waiters
 * spin on one sense word, so it stresses exactly the hot-spot behaviour
 * the paper's contention experiments study.
 */

#ifndef DSM_SYNC_CENTRAL_BARRIER_HH
#define DSM_SYNC_CENTRAL_BARRIER_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Centralized sense-reversing barrier. */
class CentralBarrier
{
  public:
    CentralBarrier(System &sys, Primitive prim, int participants);

    /** Arrive and wait for all participants. */
    CoTask<void> arrive(Proc &p);

    std::uint64_t roundsCompleted() const { return _rounds; }

  private:
    /** fetch_and_add(count, 1) via the configured primitive. */
    CoTask<Word> bumpCount(Proc &p);

    System &_sys;
    Primitive _prim;
    int _n;
    Addr _count; ///< sync: arrivals this round
    Addr _sense; ///< sync: round number; waiters spin on it
    std::vector<Word> _local_sense; ///< per-processor round counter
    std::uint64_t _rounds = 0;
};

} // namespace dsm

#endif // DSM_SYNC_CENTRAL_BARRIER_HH
