#include "sync/mcs_lock.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

McsLock::McsLock(System &sys, Primitive prim, bool use_serial_sc)
    : _sys(sys), _prim(prim), _use_serial_sc(use_serial_sc),
      _tail(sys.allocSync()), _swap_serial(sys.numProcs(), 0)
{
    if (_use_serial_sc) {
        dsm_assert(prim == Primitive::LLSC,
                   "serial-number SC is an LL/SC-family primitive");
        dsm_assert(sys.cfg().sync.policy != SyncPolicy::INV,
                   "serial-number LL/SC is an in-memory primitive; the "
                   "lock needs the UNC or UPD policy");
    }
    int n = sys.numProcs();
    _next.reserve(n);
    _locked.reserve(n);
    for (int i = 0; i < n; ++i) {
        // One block per field per processor: each spins only on its own
        // node, and padding avoids false sharing between nodes.
        _next.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
        _locked.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
    }
}

CoTask<Word>
McsLock::swapTail(Proc &p, Word v)
{
    switch (_prim) {
      case Primitive::FAP:
        co_return (co_await p.fetchStore(_tail, v)).value;
      case Primitive::CAS: {
        const SyncConfig &sc = _sys.cfg().sync;
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_tail)
                             : co_await p.load(_tail);
            if ((co_await p.cas(_tail, r.value, v)).success)
                co_return r.value;
        }
      }
      case Primitive::LLSC: {
        if (_use_serial_sc) {
            for (;;) {
                OpResult r = co_await p.llSerial(_tail);
                OpResult s = co_await p.scSerial(_tail, v, r.serial);
                if (s.success) {
                    // Remember the serial our swap produced; the
                    // release's bare SC checks against it.
                    _swap_serial[static_cast<std::size_t>(p.id())] =
                        s.serial;
                    co_return r.value;
                }
            }
        }
        for (;;) {
            OpResult r = co_await p.ll(_tail);
            if ((co_await p.sc(_tail, v)).success)
                co_return r.value;
        }
      }
    }
    dsm_panic("unreachable");
}

CoTask<bool>
McsLock::casTail(Proc &p, Word expected, Word v)
{
    switch (_prim) {
      case Primitive::CAS:
        co_return (co_await p.cas(_tail, expected, v)).success;
      case Primitive::LLSC: {
        // LL/SC simulation of compare_and_swap (Section 2.2): retry only
        // on spurious store_conditional failure.
        for (;;) {
            OpResult r = co_await p.ll(_tail);
            if (r.value != expected)
                co_return false;
            if ((co_await p.sc(_tail, v)).success)
                co_return true;
        }
      }
      case Primitive::FAP:
        dsm_panic("fetch_and_Phi cannot simulate compare_and_swap "
                  "(Herlihy's hierarchy); use the swap-only release");
    }
    dsm_panic("unreachable");
}

CoTask<void>
McsLock::acquire(Proc &p)
{
    NodeId me = p.id();
    co_await p.store(_next[me], 0);
    Word pred = co_await swapTail(p, encode(me));
    if (pred != 0) {
        // Mark ourselves waiting *before* linking so the predecessor
        // cannot release us first.
        co_await p.store(_locked[me], 1);
        co_await p.store(_next[decode(pred)], encode(me));
        while ((co_await p.load(_locked[me])).value != 0) {
            // Spin on the local queue node (ordinary data).
        }
    }
    ++_acquisitions;
}

CoTask<void>
McsLock::release(Proc &p)
{
    NodeId me = p.id();
    Word succ = (co_await p.load(_next[me])).value;

    if (succ == 0) {
        if (_prim == Primitive::FAP) {
            // The swap-only release of [20]: detach the queue, then
            // splice any "usurper" that slipped in between the swaps.
            Word old_tail = co_await swapTail(p, 0);
            if (old_tail == encode(me))
                co_return; // truly no successor
            Word usurper = co_await swapTail(p, old_tail);
            while ((succ = (co_await p.load(_next[me])).value) == 0) {
                // Wait for the in-between enqueuer to link itself.
            }
            if (usurper != 0)
                co_await p.store(_next[decode(usurper)], succ);
            else
                co_await p.store(_locked[decode(succ)], 0);
        } else if (_use_serial_sc) {
            // A *bare* serial-number store_conditional releases the
            // lock in a single memory access: it succeeds iff the tail
            // serial is unchanged since our acquire swap, i.e. nobody
            // has enqueued behind us (Section 3.1).
            OpResult s = co_await p.scSerial(
                _tail, 0, _swap_serial[static_cast<std::size_t>(me)]);
            if (s.success)
                co_return; // no successor
            while ((succ = (co_await p.load(_next[me])).value) == 0) {
            }
            co_await p.store(_locked[decode(succ)], 0);
        } else {
            if (co_await casTail(p, encode(me), 0))
                co_return; // no successor
            // A successor is enqueuing; wait for the link, then pass.
            while ((succ = (co_await p.load(_next[me])).value) == 0) {
            }
            co_await p.store(_locked[decode(succ)], 0);
        }
    } else {
        co_await p.store(_locked[decode(succ)], 0);
    }

    if (_sys.cfg().sync.use_drop_copy)
        co_await p.dropCopy(_tail);
}

} // namespace dsm
