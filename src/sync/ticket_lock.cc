#include "sync/ticket_lock.hh"

#include "cpu/system.hh"

namespace dsm {

TicketLock::TicketLock(System &sys, Primitive prim)
    : _sys(sys), _prim(prim),
      _next_ticket(sys.allocSync()),
      _now_serving(sys.allocSync())
{
}

CoTask<Word>
TicketLock::takeTicket(Proc &p)
{
    const SyncConfig &sc = _sys.cfg().sync;
    switch (_prim) {
      case Primitive::FAP:
        co_return (co_await p.fetchAdd(_next_ticket, 1)).value;
      case Primitive::CAS:
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_next_ticket)
                             : co_await p.load(_next_ticket);
            if ((co_await p.cas(_next_ticket, r.value, r.value + 1))
                    .success)
                co_return r.value;
        }
      case Primitive::LLSC:
        for (;;) {
            OpResult r = co_await p.ll(_next_ticket);
            if ((co_await p.sc(_next_ticket, r.value + 1)).success)
                co_return r.value;
        }
    }
    co_return 0;
}

CoTask<Word>
TicketLock::acquire(Proc &p)
{
    Word ticket = co_await takeTicket(p);
    while ((co_await p.load(_now_serving)).value != ticket) {
        // Spin; under INV this hits the cached copy until released.
    }
    co_return ticket;
}

CoTask<void>
TicketLock::release(Proc &p, Word ticket)
{
    co_await p.store(_now_serving, ticket + 1);
    if (_sys.cfg().sync.use_drop_copy) {
        co_await p.dropCopy(_now_serving);
        co_await p.dropCopy(_next_ticket);
    }
}

} // namespace dsm
