/**
 * @file
 * Scalable tree barrier (Mellor-Crummey & Scott [20]), used by the
 * paper's Transitive Closure application for barrier synchronization.
 *
 * Arrival is a 4-ary tree, wakeup a binary tree, and every flag is
 * written by exactly one processor and spun on by exactly one processor,
 * using only ordinary loads and stores (no atomic primitives). Flags
 * carry monotonically increasing round numbers, which makes the barrier
 * trivially reusable without sense reversal.
 */

#ifndef DSM_SYNC_TREE_BARRIER_HH
#define DSM_SYNC_TREE_BARRIER_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** MCS-style tree barrier over processors 0 .. participants-1. */
class TreeBarrier
{
  public:
    TreeBarrier(System &sys, int participants);

    /** Arrive and wait until all participants have arrived. */
    CoTask<void> arrive(Proc &p);

    /** Completed rounds (all participants through). */
    std::uint64_t roundsCompleted() const { return _rounds_completed; }

  private:
    static constexpr int ARRIVAL_ARITY = 4;

    System &_sys;
    int _n;
    std::vector<Addr> _ready; ///< per-proc arrival flag (round number)
    std::vector<Addr> _wake;  ///< per-proc wakeup flag (round number)
    std::vector<Word> _round; ///< per-proc local round counter
    std::uint64_t _rounds_completed = 0;
};

} // namespace dsm

#endif // DSM_SYNC_TREE_BARRIER_HH
