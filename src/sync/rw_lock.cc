#include "sync/rw_lock.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sync/backoff.hh"

namespace dsm {

RwLock::RwLock(System &sys, Primitive prim)
    : _sys(sys), _prim(prim), _state(sys.allocSync())
{
}

CoTask<bool>
RwLock::casState(Proc &p, Word expected, Word desired)
{
    if (_prim == Primitive::CAS)
        co_return (co_await p.cas(_state, expected, desired)).success;
    dsm_assert(_prim == Primitive::LLSC, "casState needs CAS or LL/SC");
    for (;;) {
        OpResult r = co_await p.ll(_state);
        if (r.value != expected)
            co_return false;
        if ((co_await p.sc(_state, desired)).success)
            co_return true;
    }
}

CoTask<void>
RwLock::readerAcquire(Proc &p)
{
    Backoff backoff(8, 512);
    if (_prim == Primitive::FAP) {
        // Increment-and-compensate: no CAS needed.
        for (;;) {
            Word old = (co_await p.fetchAdd(_state, READER_UNIT)).value;
            if ((old & WRITER_BIT) == 0)
                co_return;
            co_await p.fetchAdd(_state, static_cast<Word>(-READER_UNIT));
            co_await p.compute(backoff.next(_sys.rng()));
        }
    }
    for (;;) {
        Word v = (co_await p.load(_state)).value;
        if ((v & WRITER_BIT) == 0 &&
            co_await casState(p, v, v + READER_UNIT))
            co_return;
        co_await p.compute(backoff.next(_sys.rng()));
    }
}

CoTask<void>
RwLock::readerRelease(Proc &p)
{
    if (_prim == Primitive::FAP) {
        co_await p.fetchAdd(_state, static_cast<Word>(-READER_UNIT));
        co_return;
    }
    for (;;) {
        Word v = (co_await p.load(_state)).value;
        if (co_await casState(p, v, v - READER_UNIT))
            co_return;
    }
}

CoTask<void>
RwLock::writerAcquire(Proc &p)
{
    Backoff backoff(8, 512);
    if (_prim == Primitive::FAP) {
        // Grab the writer bit with fetch_and_or, then wait for readers
        // to drain.
        for (;;) {
            Word old = (co_await p.fetchOr(_state, WRITER_BIT)).value;
            if ((old & WRITER_BIT) == 0)
                break;
            co_await p.compute(backoff.next(_sys.rng()));
        }
        while (((co_await p.load(_state)).value & ~WRITER_BIT) != 0) {
            // Wait for active readers to release.
        }
        co_return;
    }
    // CAS/LLSC: transition 0 -> WRITER_BIT.
    for (;;) {
        Word v = (co_await p.load(_state)).value;
        if (v == 0 && co_await casState(p, 0, WRITER_BIT))
            co_return;
        co_await p.compute(backoff.next(_sys.rng()));
    }
}

CoTask<void>
RwLock::writerRelease(Proc &p)
{
    if (_prim == Primitive::FAP) {
        // The writer bit is ours alone; clear it with a plain store
        // is unsafe while readers faa the word, so use fetch_and_add
        // of -1 (the bit is the low bit and reader units are even).
        co_await p.fetchAdd(_state, static_cast<Word>(-WRITER_BIT));
        co_return;
    }
    for (;;) {
        Word v = (co_await p.load(_state)).value;
        if (co_await casState(p, v, v & ~WRITER_BIT))
            co_return;
    }
}

} // namespace dsm
