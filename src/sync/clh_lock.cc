#include "sync/clh_lock.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

ClhLock::ClhLock(System &sys, Primitive prim)
    : _sys(sys), _prim(prim), _tail(sys.allocSync()),
      _my_node(sys.numProcs()), _my_pred(sys.numProcs(), -1)
{
    int n = sys.numProcs();
    // n + 1 nodes: one per processor plus the initial (unlocked) node.
    _node.reserve(n + 1);
    for (int i = 0; i <= n; ++i)
        _node.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
    for (int i = 0; i < n; ++i)
        _my_node[static_cast<std::size_t>(i)] = i;
    // The initial node (id n) is unlocked and is the initial tail.
    sys.writeInit(_tail, static_cast<Word>(n) + 1);
}

CoTask<Word>
ClhLock::swapTail(Proc &p, Word v)
{
    switch (_prim) {
      case Primitive::FAP:
        co_return (co_await p.fetchStore(_tail, v)).value;
      case Primitive::CAS: {
        const SyncConfig &sc = _sys.cfg().sync;
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_tail)
                             : co_await p.load(_tail);
            if ((co_await p.cas(_tail, r.value, v)).success)
                co_return r.value;
        }
      }
      case Primitive::LLSC: {
        for (;;) {
            OpResult r = co_await p.ll(_tail);
            if ((co_await p.sc(_tail, v)).success)
                co_return r.value;
        }
      }
    }
    dsm_panic("unreachable");
}

CoTask<void>
ClhLock::acquire(Proc &p)
{
    auto me = static_cast<std::size_t>(p.id());
    int mine = _my_node[me];
    // Mark our node locked, publish it as the tail, spin on the
    // predecessor's node.
    co_await p.store(_node[static_cast<std::size_t>(mine)], 1);
    Word pred = co_await swapTail(p, static_cast<Word>(mine) + 1);
    dsm_assert(pred != 0, "CLH tail was uninitialized");
    int pred_node = static_cast<int>(pred) - 1;
    _my_pred[me] = pred_node;
    while ((co_await p.load(
                _node[static_cast<std::size_t>(pred_node)])).value != 0) {
        // Spin on the predecessor's flag (ordinary cached data).
    }
    ++_acquisitions;
}

CoTask<void>
ClhLock::release(Proc &p)
{
    auto me = static_cast<std::size_t>(p.id());
    int mine = _my_node[me];
    // Unlock our node (the successor is or will be spinning on it) and
    // adopt the predecessor's node for our next acquire.
    co_await p.store(_node[static_cast<std::size_t>(mine)], 0);
    _my_node[me] = _my_pred[me];
    _my_pred[me] = -1;
    if (_sys.cfg().sync.use_drop_copy)
        co_await p.dropCopy(_tail);
}

} // namespace dsm
