#include "sync/treiber_stack.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

TreiberStack::TreiberStack(System &sys, Primitive prim, int pool_size)
    : _sys(sys), _prim(prim), _head(sys.allocSync())
{
    dsm_assert(prim != Primitive::FAP,
               "fetch_and_Phi cannot implement a lock-free stack");
    _next.reserve(pool_size);
    _value.reserve(pool_size);
    for (int i = 0; i < pool_size; ++i) {
        Addr block = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
        _next.push_back(block);
        _value.push_back(block + WORD_BYTES);
    }
}

Word
TreiberStack::nodeValue(int node_id) const
{
    return _sys.debugRead(_value[node_id]);
}

CoTask<void>
TreiberStack::push(Proc &p, int node_id, Word value)
{
    co_await p.store(_value[node_id], value);
    if (_prim == Primitive::CAS) {
        for (;;) {
            Word h = (co_await p.load(_head)).value;
            co_await p.store(_next[node_id], h);
            if ((co_await p.cas(_head, h, encode(node_id))).success)
                co_return;
        }
    }
    for (;;) {
        Word h = (co_await p.ll(_head)).value;
        co_await p.store(_next[node_id], h);
        if ((co_await p.sc(_head, encode(node_id))).success)
            co_return;
    }
}

CoTask<int>
TreiberStack::pop(Proc &p)
{
    if (_prim == Primitive::CAS) {
        for (;;) {
            Word h = (co_await p.load(_head)).value;
            if (h == 0)
                co_return -1;
            Word next = (co_await p.load(_next[decode(h)])).value;
            // ABA hazard: if the node was popped and pushed back between
            // the load and this CAS, the CAS wrongly succeeds with a
            // stale `next` (Section 2.2's pointer problem).
            if ((co_await p.cas(_head, h, next)).success)
                co_return decode(h);
        }
    }
    for (;;) {
        Word h = (co_await p.ll(_head)).value;
        if (h == 0)
            co_return -1;
        Word next = (co_await p.load(_next[decode(h)])).value;
        // The reservation protects us: any intervening write to the head
        // makes the store_conditional fail.
        if ((co_await p.sc(_head, next)).success)
            co_return decode(h);
    }
}

} // namespace dsm
