#include "sync/central_barrier.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

CentralBarrier::CentralBarrier(System &sys, Primitive prim,
                               int participants)
    : _sys(sys), _prim(prim), _n(participants),
      _count(sys.allocSync()), _sense(sys.allocSync()),
      _local_sense(sys.numProcs(), 0)
{
    dsm_assert(participants > 0 && participants <= sys.numProcs(),
               "bad participant count %d", participants);
}

CoTask<Word>
CentralBarrier::bumpCount(Proc &p)
{
    switch (_prim) {
      case Primitive::FAP:
        co_return (co_await p.fetchAdd(_count, 1)).value;
      case Primitive::CAS: {
        const SyncConfig &sc = _sys.cfg().sync;
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_count)
                             : co_await p.load(_count);
            if ((co_await p.cas(_count, r.value, r.value + 1)).success)
                co_return r.value;
        }
      }
      case Primitive::LLSC: {
        for (;;) {
            OpResult r = co_await p.ll(_count);
            if ((co_await p.sc(_count, r.value + 1)).success)
                co_return r.value;
        }
      }
    }
    dsm_panic("unreachable");
}

CoTask<void>
CentralBarrier::arrive(Proc &p)
{
    Word round = ++_local_sense[static_cast<std::size_t>(p.id())];
    Word arrivals = co_await bumpCount(p);
    if (arrivals + 1 == static_cast<Word>(_n)) {
        // Last arriver: reset the counter and release the round.
        ++_rounds;
        co_await p.store(_count, 0);
        co_await p.store(_sense, round);
    } else {
        while ((co_await p.load(_sense)).value < round) {
            // Spin on the shared sense word.
        }
    }
}

} // namespace dsm
