#include "sync/tree_barrier.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

TreeBarrier::TreeBarrier(System &sys, int participants)
    : _sys(sys), _n(participants), _round(participants, 0)
{
    dsm_assert(participants > 0 && participants <= sys.numProcs(),
               "bad participant count %d", participants);
    _ready.reserve(_n);
    _wake.reserve(_n);
    for (int i = 0; i < _n; ++i) {
        // Block-padded flags: each is written by one processor and spun
        // on by one other, so padding avoids false sharing.
        _ready.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
        _wake.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));
    }
}

CoTask<void>
TreeBarrier::arrive(Proc &p)
{
    int me = p.id();
    dsm_assert(me < _n, "processor %d is not a barrier participant", me);
    Word r = ++_round[me];

    // Arrival phase: wait for all 4-ary-tree children, then tell the
    // parent we (and our whole subtree) have arrived.
    for (int k = 0; k < ARRIVAL_ARITY; ++k) {
        int child = ARRIVAL_ARITY * me + k + 1;
        if (child >= _n)
            break;
        while ((co_await p.load(_ready[child])).value != r) {
            // Spin on the child's arrival flag.
        }
    }
    if (me != 0) {
        co_await p.store(_ready[me], r);
        // Wakeup phase: wait for our binary-tree parent's signal.
        while ((co_await p.load(_wake[me])).value != r) {
        }
    } else {
        ++_rounds_completed;
    }

    // Propagate the wakeup to our binary-tree children.
    for (int k = 1; k <= 2; ++k) {
        int child = 2 * me + k;
        if (child < _n)
            co_await p.store(_wake[child], r);
    }
}

} // namespace dsm
