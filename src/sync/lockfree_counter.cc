#include "sync/lockfree_counter.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "sync/backoff.hh"

namespace dsm {

namespace {

/**
 * Contention backoff for failed CAS/SC attempts, armed with the
 * serving layer (serve.nack_backoff): a failed attempt means another
 * processor won the word, so pausing before the retry sheds the
 * concurrency that made it fail — the same capped-exponential rule
 * the NACK retry path uses, with serve.backoff_cap doublings of
 * machine.retry_delay.
 */
Backoff
contentionBackoff(const Config &cfg)
{
    const ServeConfig &sv = cfg.serve;
    if (!sv.enabled || !sv.nack_backoff)
        return Backoff(0, 0); // currentBound() == 0: backoff off
    Tick base = cfg.machine.retry_delay;
    return Backoff(base, base << sv.backoff_cap);
}

} // namespace

LockFreeCounter::LockFreeCounter(System &sys, Primitive prim)
    : _sys(sys), _prim(prim), _addr(sys.allocSync())
{
}

LockFreeCounter::LockFreeCounter(System &sys, Primitive prim, Addr addr)
    : _sys(sys), _prim(prim), _addr(addr)
{
    dsm_assert(sys.isSync(addr),
               "LockFreeCounter address must be synchronization data");
}

void
LockFreeCounter::reset(Word v)
{
    _sys.writeInit(_addr, v);
}

CoTask<Word>
LockFreeCounter::fetchAdd(Proc &p, Word delta)
{
    const SyncConfig &sc = _sys.cfg().sync;
    Word old = 0;

    switch (_prim) {
      case Primitive::FAP: {
        old = (co_await p.fetchAdd(_addr, delta)).value;
        break;
      }
      case Primitive::CAS: {
        Backoff backoff = contentionBackoff(_sys.cfg());
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_addr)
                             : co_await p.load(_addr);
            OpResult c = co_await p.cas(_addr, r.value, r.value + delta);
            if (c.success) {
                old = r.value;
                break;
            }
            ++_failed_attempts;
            if (backoff.currentBound() > 0)
                co_await p.compute(backoff.next(_sys.rng()));
        }
        break;
      }
      case Primitive::LLSC: {
        Backoff backoff = contentionBackoff(_sys.cfg());
        for (;;) {
            OpResult r = co_await p.ll(_addr);
            OpResult s = co_await p.sc(_addr, r.value + delta);
            if (s.success) {
                old = r.value;
                break;
            }
            ++_failed_attempts;
            if (backoff.currentBound() > 0)
                co_await p.compute(backoff.next(_sys.rng()));
        }
        break;
      }
    }

    if (sc.use_drop_copy)
        co_await p.dropCopy(_addr);
    co_return old;
}

} // namespace dsm
