#include "sync/lockfree_counter.hh"

#include "cpu/system.hh"
#include "sim/logging.hh"

namespace dsm {

LockFreeCounter::LockFreeCounter(System &sys, Primitive prim)
    : _sys(sys), _prim(prim), _addr(sys.allocSync())
{
}

LockFreeCounter::LockFreeCounter(System &sys, Primitive prim, Addr addr)
    : _sys(sys), _prim(prim), _addr(addr)
{
    dsm_assert(sys.isSync(addr),
               "LockFreeCounter address must be synchronization data");
}

void
LockFreeCounter::reset(Word v)
{
    _sys.writeInit(_addr, v);
}

CoTask<Word>
LockFreeCounter::fetchAdd(Proc &p, Word delta)
{
    const SyncConfig &sc = _sys.cfg().sync;
    Word old = 0;

    switch (_prim) {
      case Primitive::FAP: {
        old = (co_await p.fetchAdd(_addr, delta)).value;
        break;
      }
      case Primitive::CAS: {
        for (;;) {
            OpResult r = sc.use_load_exclusive
                             ? co_await p.loadExclusive(_addr)
                             : co_await p.load(_addr);
            OpResult c = co_await p.cas(_addr, r.value, r.value + delta);
            if (c.success) {
                old = r.value;
                break;
            }
            ++_failed_attempts;
        }
        break;
      }
      case Primitive::LLSC: {
        for (;;) {
            OpResult r = co_await p.ll(_addr);
            OpResult s = co_await p.sc(_addr, r.value + delta);
            if (s.success) {
                old = r.value;
                break;
            }
            ++_failed_attempts;
        }
        break;
      }
    }

    if (sc.use_drop_copy)
        co_await p.dropCopy(_addr);
    co_return old;
}

} // namespace dsm
