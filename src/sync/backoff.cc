#include "sync/backoff.hh"

namespace dsm {

Tick
Backoff::next(Rng &rng)
{
    Tick bound = _cur;
    _cur = _cur * 2 > _cap ? _cap : _cur * 2;
    return rng.range(1, bound);
}

} // namespace dsm
