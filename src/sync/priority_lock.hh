/**
 * @file
 * Priority spin lock — one of the synchronization styles the paper
 * lists among those "easily and efficiently" supported by
 * general-purpose primitives ("read-write locks, priority locks,
 * etc.", Section 1).
 *
 * Design: waiters publish their priority in a per-processor request
 * word; the fast path acquires a free lock with the configured
 * primitive; release scans the request words and hands the (still
 * held) lock directly to the highest-priority waiter through a
 * per-processor grant word, so the lock word never becomes free while
 * waiters exist and priority inversion at hand-off is impossible.
 */

#ifndef DSM_SYNC_PRIORITY_LOCK_HH
#define DSM_SYNC_PRIORITY_LOCK_HH

#include <cstdint>
#include <vector>

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** Priority spin lock with direct hand-off. */
class PriorityLock
{
  public:
    PriorityLock(System &sys, Primitive prim);

    Addr lockAddr() const { return _lock; }

    /**
     * Acquire with the given priority (higher wins; must be nonzero).
     * Equal priorities are served in scan order.
     */
    CoTask<void> acquire(Proc &p, Word priority);

    /** Release; hands off to the highest-priority waiter, if any. */
    CoTask<void> release(Proc &p);

    /** Direct hand-offs performed (released-to-waiter transitions). */
    std::uint64_t handoffs() const { return _handoffs; }

  private:
    /** Try to take the free lock with the configured primitive. */
    CoTask<bool> tryLock(Proc &p);

    System &_sys;
    Primitive _prim;
    Addr _lock;                  ///< sync: 0 free, 1 held
    std::vector<Addr> _request;  ///< per-proc priority (ordinary)
    std::vector<Addr> _grant;    ///< per-proc hand-off flag (ordinary)
    std::uint64_t _handoffs = 0;
};

} // namespace dsm

#endif // DSM_SYNC_PRIORITY_LOCK_HH
