/**
 * @file
 * Lock-free shared counter, the paper's first synthetic application and
 * the work-distribution mechanism of its Transitive Closure program.
 *
 * The counter is updated with the configured universal primitive:
 *  - FAP: a single native fetch_and_add;
 *  - CAS: a load (or load_exclusive, Section 3) / compare_and_swap retry
 *    loop ("the case in which CAS simulates fetch_and_Phi");
 *  - LLSC: a load_linked / store_conditional retry loop.
 *
 * When the drop_copy auxiliary instruction is enabled, the cached copy is
 * dropped after each successful update (Section 4.3.1).
 */

#ifndef DSM_SYNC_LOCKFREE_COUNTER_HH
#define DSM_SYNC_LOCKFREE_COUNTER_HH

#include "cpu/co_task.hh"
#include "cpu/proc.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** A lock-free counter on one synchronization word. */
class LockFreeCounter
{
  public:
    /**
     * Allocate the counter as synchronization data.
     * @param prim The universal primitive used for updates.
     */
    LockFreeCounter(System &sys, Primitive prim);

    /** Wrap an existing sync address (must already be marked sync). */
    LockFreeCounter(System &sys, Primitive prim, Addr addr);

    Addr addr() const { return _addr; }

    /** Atomically add @p delta; returns the pre-update value. */
    CoTask<Word> fetchAdd(Proc &p, Word delta);

    /** fetchAdd(p, 1). */
    CoTask<Word> fetchInc(Proc &p) { return fetchAdd(p, 1); }

    /** Reset the stored value directly (between measurement phases). */
    void reset(Word v = 0);

    /** Number of failed CAS/SC attempts across all updates. */
    std::uint64_t failedAttempts() const { return _failed_attempts; }

  private:
    System &_sys;
    Primitive _prim;
    Addr _addr;
    std::uint64_t _failed_attempts = 0;
};

} // namespace dsm

#endif // DSM_SYNC_LOCKFREE_COUNTER_HH
