/**
 * @file
 * End-to-end transaction tracing.
 *
 * Every processor-issued operation becomes a *transaction*: it gets an
 * id at issue time that is stamped into every protocol message sent on
 * its behalf (request, forward, invalidation/update, ack, reply, NACK)
 * and propagated through the cache controller, mesh, and all three
 * protocol implementations. As the transaction's messages reach
 * milestones, the tracer partitions the requester's wait time
 * [issue, complete] into non-overlapping phase segments (TxnPhase), so
 * the per-phase sums of every transaction add up exactly to its
 * end-to-end latency.
 *
 * On completion each transaction is also validated against the paper's
 * Table 1: from the directory state the home observed when it serviced
 * the final attempt (plus fan-out targets and forwarding), the tracer
 * computes the analytic serialized-message chain length and compares it
 * with the chain count carried by the protocol messages themselves.
 * Divergences are counted and reported via proto/checker.
 *
 * Cost discipline: when tracing is off every hook is a single branch on
 * enabled() or on a zero txn id in the message.
 */

#ifndef DSM_TRACE_TXN_HH
#define DSM_TRACE_TXN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "stats/attribution.hh"

namespace dsm {

/** One contiguous phase segment of a transaction's lifetime. */
struct TxnSpan
{
    TxnPhase phase;
    Tick start = 0;
    Tick end = 0;
    /** Node at which the milestone ending this segment occurred. */
    NodeId node = INVALID_NODE;
};

/** Everything recorded about one transaction. */
struct TxnRecord
{
    std::uint64_t id = 0;
    NodeId proc = INVALID_NODE;
    AtomicOp op = AtomicOp::LOAD;
    Addr addr = 0;
    SyncPolicy policy = SyncPolicy::INV;
    /** Cache LineState of the block at issue time. */
    std::uint8_t line_state = 0;
    Tick issue = 0;
    Tick complete = 0;
    /** NACK-driven protocol retries of this transaction. */
    int retries = 0;
    /** Failed-attempt streak of the enclosing TAS / LL-SC / CAS loop. */
    int loop_iter = 0;
    /** Invalidations/updates sent on the final serviced attempt. */
    int fanout = 0;
    /** Total messages stamped with this transaction's id. */
    int messages = 0;
    /** Longest serialized chain observed in any received message. */
    int observed_chain = 0;
    /** Analytic Table 1 chain for the observed case (set on completion). */
    int expected_chain = 0;
    bool success = true;

    // Facts from the home directory servicing the final attempt; all
    // reset when the transaction is NACKed and retried.
    bool serviced = false;
    bool forwarded = false;
    NodeId home = INVALID_NODE;
    NodeId owner = INVALID_NODE;
    /** DirState the home observed before acting. */
    std::uint8_t dir_state = 0;
    /** Sharer count the home observed before acting. */
    int sharers = 0;
    /** Bitmask of nodes invalidated/updated on the final attempt. */
    std::uint64_t fanout_mask = 0;

    /** Exact per-phase cycle attribution (always complete). */
    Tick phase_sum[NUM_TXN_PHASES] = {};
    /** Phase segments for Perfetto export (may be truncated). */
    std::vector<TxnSpan> spans;
    bool spans_truncated = false;
};

class TxnTracer
{
  public:
    void configure(const TxnTraceConfig &cfg, int num_procs);

    /** Single-branch guard used by every hook. */
    bool enabled() const { return _enabled; }

    /**
     * Open a transaction for @p proc (one outstanding op per processor,
     * so this replaces any slot content). Returns the new id; ids are
     * never zero, and id % num_procs recovers the processor.
     */
    std::uint64_t begin(NodeId proc, AtomicOp op, Addr addr,
                        SyncPolicy pol, std::uint8_t line_state, Tick now);

    /** Id of @p proc's in-flight transaction (0 if none). */
    std::uint64_t activeId(NodeId proc) const;

    /**
     * Note that the *next* transaction issued by @p proc is attempt
     * number @p streak + 1 of a software retry loop (TAS spin, LL/SC
     * or CAS loop), as observed by the processor model.
     */
    void noteLoopIter(NodeId proc, int streak);

    /**
     * Note that the *next* transaction issued by @p proc serves an
     * open-loop arrival that entered the admission queue at
     * @p arrival. begin() consumes the note: it rebases the record's
     * issue time to the arrival tick and attributes [arrival, begin)
     * to TxnPhase::ADMIT, so the transaction's total becomes its
     * sojourn time (admission wait + service) and the phase-sum
     * invariant holds by construction.
     */
    void noteArrival(NodeId proc, Tick arrival);

    /**
     * Attribute [last milestone, @p now] to @p ph and advance the
     * milestone. Marks at out-of-order ticks are dropped and counted.
     */
    void mark(std::uint64_t id, TxnPhase ph, Tick now, NodeId node);

    /**
     * Home-arrival milestone triple: transit until @p arrive, queue
     * wait until @p svc_start, directory service until @p svc_end.
     * @p reply_leg selects REPLY_TRANSIT for the transit segment (used
     * when the arriving message is an owner reply, not the request).
     */
    void markService(std::uint64_t id, NodeId home, Tick arrive,
                     Tick svc_start, Tick svc_end, bool reply_leg);

    /**
     * Record the directory facts of a (non-NACK) service decision:
     * observed state/sharers, whether the request was forwarded to
     * @p owner, and the invalidation/update target mask. Last call
     * before completion wins.
     */
    void service(std::uint64_t id, NodeId home, std::uint8_t dir_state,
                 int sharers, bool forwarded, NodeId owner,
                 std::uint64_t fanout_mask);

    /** NACKed attempt is being retried now: close the RETRY_WAIT gap. */
    void retry(std::uint64_t id, Tick now);

    /** A message stamped with @p id entered the mesh. */
    void noteSend(std::uint64_t id);

    /** Complete a transaction: attribute the tail, aggregate, validate. */
    void complete(std::uint64_t id, Tick now, int observed_chain,
                  bool success);

    /**
     * Analytic Table 1 serialized chain length for the case @p r
     * observed: the longest of the reply path (requester -> home
     * [-> owner -> home] -> requester) and any invalidation/update
     * path (requester -> home -> sharer -> requester), counting only
     * inter-node messages. Unserviced (cache-hit / local) cases are 0.
     */
    static int expectedChain(const TxnRecord &r);

    const PhaseAttribution &attribution() const { return _attr; }

    /** Completed transactions whose full record was kept. */
    const std::vector<TxnRecord> &records() const { return _records; }

    /**
     * The exemplar reservoir: the cfg.exemplar_k slowest completed
     * transactions (end-to-end latency descending, ids breaking ties
     * ascending so the order is deterministic), with full span trees,
     * kept independently of the record capacity.
     */
    const std::vector<TxnRecord> &exemplars() const { return _exemplars; }

    /**
     * Exemplars as a compact JSON array (id, op, proc, addr, total,
     * issue/complete, retries, loop_iter, fanout, messages, and the
     * nonzero per-phase cycle sums). Full span trees are exported via
     * the Chrome/Perfetto array instead.
     */
    std::string exemplarsJson() const;

    std::uint64_t completed() const { return _attr.completed(); }
    std::uint64_t recordsDropped() const { return _dropped; }
    std::uint64_t phaseSumMismatches() const { return _mismatches; }
    std::uint64_t chainDivergences() const { return _divergences; }
    std::uint64_t markAnomalies() const { return _anomalies; }

    /** First few divergences, rendered for proto/checker. */
    const std::vector<std::string> &divergenceMessages() const
    {
        return _divergence_msgs;
    }

    /**
     * Render @p proc's in-flight transaction — header plus its phase
     * span tree so far — for watchdog/deadlock diagnoses. Returns ""
     * when tracing is off or the processor has no open transaction.
     */
    std::string describeActive(NodeId proc) const;

    // Stable pointers for StatsRegistry registration.
    const std::uint64_t *droppedCounter() const { return &_dropped; }
    const std::uint64_t *mismatchCounter() const { return &_mismatches; }
    const std::uint64_t *divergenceCounter() const { return &_divergences; }

    /**
     * Kept records as a complete Chrome trace-event JSON array
     * fragment: process/thread metadata, one root "X" slice per
     * transaction on the requester's track, nested "X" phase slices,
     * and s/t/f flow arrows linking request -> directory -> fan-out ->
     * reply milestones.
     */
    std::string chromeEventsJsonArray(int pid,
                                      const std::string &process_name) const;

    /** Standalone Perfetto-loadable document (single process). */
    std::string exportChromeJson() const;

    /** Write exportChromeJson() to @p path; returns false on error. */
    bool writeChromeJson(const std::string &path) const;

  private:
    struct Active
    {
        TxnRecord rec;
        Tick last_mark = 0;
        int pending_loop_iter = 0;
        Tick pending_arrival = 0;
        bool arrival_pending = false;
        bool live = false;
    };

    Active *find(std::uint64_t id);
    void noteExemplar(const TxnRecord &r);

    TxnTraceConfig _cfg;
    bool _enabled = false;
    int _num_procs = 0;
    std::vector<Active> _active;
    std::vector<TxnRecord> _records;
    std::vector<TxnRecord> _exemplars;
    std::vector<std::string> _divergence_msgs;
    PhaseAttribution _attr;
    std::uint64_t _seq = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _mismatches = 0;
    std::uint64_t _divergences = 0;
    std::uint64_t _anomalies = 0;
};

} // namespace dsm

#endif // DSM_TRACE_TXN_HH
