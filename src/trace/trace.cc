#include "trace/trace.hh"

#include <fstream>

#include "cache/cache.hh"
#include "mem/directory.hh"
#include "net/msg.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

const char *
toString(TraceCat cat)
{
    switch (cat) {
      case TraceCat::MSG_SEND: return "msg_send";
      case TraceCat::MSG_RECV: return "msg_recv";
      case TraceCat::DIR_STATE: return "dir_state";
      case TraceCat::LINE_STATE: return "line_state";
      case TraceCat::ATOMIC_START: return "atomic_start";
      case TraceCat::ATOMIC_COMPLETE: return "atomic_complete";
      case TraceCat::NACK: return "nack";
      case TraceCat::RETRY: return "retry";
      case TraceCat::RESV_SET: return "resv_set";
      case TraceCat::RESV_CLEAR: return "resv_clear";
      case TraceCat::LINK_FAULT: return "link_fault";
      default: return "unknown";
    }
}

void
Tracer::configure(const TraceConfig &cfg)
{
    _ring.assign(cfg.capacity, TraceEvent{});
    _head = 0;
    _wrapped = false;
    _total = 0;
    _mask = cfg.enabled && cfg.capacity > 0
                ? (cfg.categories & TRACE_ALL)
                : 0;
}

void
Tracer::setMask(std::uint32_t mask)
{
    mask &= TRACE_ALL;
    if (mask != 0 && _ring.empty()) {
        // Enabled without a prior configure(): give the ring a default
        // size so record() has somewhere to write.
        _ring.assign(TraceConfig{}.capacity, TraceEvent{});
        _head = 0;
        _wrapped = false;
    }
    _mask = mask;
}

void
Tracer::record(const TraceEvent &ev)
{
    if (_ring.empty())
        return;
    _ring[_head] = ev;
    if (++_head == _ring.size()) {
        _head = 0;
        _wrapped = true;
    }
    ++_total;
}

std::size_t
Tracer::size() const
{
    return _wrapped ? _ring.size() : _head;
}

std::uint64_t
Tracer::dropped() const
{
    return _total - size();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    if (_wrapped)
        for (std::size_t i = _head; i < _ring.size(); ++i)
            out.push_back(_ring[i]);
    for (std::size_t i = 0; i < _head; ++i)
        out.push_back(_ring[i]);
    return out;
}

void
Tracer::clear()
{
    _head = 0;
    _wrapped = false;
    _total = 0;
}

namespace {

/** Event-specific detail string for the text exporter. */
std::string
eventDetail(const TraceEvent &ev)
{
    switch (ev.cat) {
      case TraceCat::MSG_SEND:
      case TraceCat::MSG_RECV:
        return csprintf("%s peer=%d flow=%u",
                        toString(static_cast<MsgType>(ev.op)),
                        ev.peer, ev.flow);
      case TraceCat::DIR_STATE:
        return csprintf("%s -> %s",
                        toString(static_cast<DirState>(ev.arg_a)),
                        toString(static_cast<DirState>(ev.arg_b)));
      case TraceCat::LINE_STATE:
        return csprintf("%s -> %s",
                        toString(static_cast<LineState>(ev.arg_a)),
                        toString(static_cast<LineState>(ev.arg_b)));
      case TraceCat::ATOMIC_START:
        return csprintf("%s flow=%u",
                        toString(static_cast<AtomicOp>(ev.op)), ev.flow);
      case TraceCat::ATOMIC_COMPLETE:
        return csprintf("%s latency=%llu flow=%u",
                        toString(static_cast<AtomicOp>(ev.op)),
                        (unsigned long long)ev.value, ev.flow);
      case TraceCat::NACK:
        return csprintf("%s requester=%d",
                        toString(static_cast<MsgType>(ev.op)), ev.peer);
      case TraceCat::RETRY:
        return csprintf("%s attempt=%llu",
                        toString(static_cast<AtomicOp>(ev.op)),
                        (unsigned long long)ev.value);
      case TraceCat::RESV_SET:
      case TraceCat::RESV_CLEAR:
        return "";
      case TraceCat::LINK_FAULT:
        return csprintf("%s link=%d->%d %s",
                        toString(static_cast<MsgType>(ev.op)),
                        ev.node, ev.peer,
                        ev.value != 0 ? "quarantined" : "dropped");
      default:
        return "";
    }
}

/** Short human label used as the Chrome event name. */
std::string
eventName(const TraceEvent &ev)
{
    switch (ev.cat) {
      case TraceCat::MSG_SEND:
      case TraceCat::MSG_RECV:
      case TraceCat::NACK:
        return csprintf("%s:%s", toString(ev.cat),
                        toString(static_cast<MsgType>(ev.op)));
      case TraceCat::ATOMIC_START:
      case TraceCat::ATOMIC_COMPLETE:
        // Same name on the B and the E so slice pairing is clean.
        return csprintf("atomic:%s",
                        toString(static_cast<AtomicOp>(ev.op)));
      case TraceCat::RETRY:
        return csprintf("%s:%s", toString(ev.cat),
                        toString(static_cast<AtomicOp>(ev.op)));
      case TraceCat::DIR_STATE:
        return csprintf("dir:%s->%s",
                        toString(static_cast<DirState>(ev.arg_a)),
                        toString(static_cast<DirState>(ev.arg_b)));
      case TraceCat::LINE_STATE:
        return csprintf("line:%s->%s",
                        toString(static_cast<LineState>(ev.arg_a)),
                        toString(static_cast<LineState>(ev.arg_b)));
      case TraceCat::LINK_FAULT:
        return csprintf("%s:%d->%d",
                        ev.value != 0 ? "quarantine" : "drop",
                        ev.node, ev.peer);
      default:
        return toString(ev.cat);
    }
}

/** Common args object for Chrome events. */
void
writeArgs(JsonWriter &w, const TraceEvent &ev)
{
    w.key("args");
    w.beginObject();
    w.kv("addr", csprintf("0x%llx", (unsigned long long)ev.addr));
    w.kv("node", ev.node);
    if (ev.peer >= 0)
        w.kv("peer", ev.peer);
    if (ev.value != 0)
        w.kv("value", ev.value);
    if (ev.flow != 0)
        w.kv("flow", ev.flow);
    w.endObject();
}

/** Shared fields of every Chrome event record. */
void
beginChromeEvent(JsonWriter &w, const TraceEvent &ev, const char *ph)
{
    w.beginObject();
    w.kv("name", eventName(ev));
    w.kv("cat", toString(ev.cat));
    w.kv("ph", ph);
    w.kv("ts", ev.tick);
    w.kv("pid", 0);
    w.kv("tid", static_cast<int>(ev.node < 0 ? 0 : ev.node));
}

} // anonymous namespace

std::string
Tracer::exportText() const
{
    std::string out;
    for (const TraceEvent &ev : events()) {
        std::string detail = eventDetail(ev);
        out += csprintf("%10llu n%-3d %-15s 0x%-10llx %s\n",
                        (unsigned long long)ev.tick, ev.node,
                        toString(ev.cat),
                        (unsigned long long)ev.addr, detail.c_str());
    }
    return out;
}

std::string
Tracer::exportChromeJson() const
{
    std::vector<TraceEvent> evs = events();

    JsonWriter w;
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.beginArray();

    // Name one track per node that appears in the trace.
    std::uint64_t nodes_seen = 0;
    for (const TraceEvent &ev : evs)
        if (ev.node >= 0 && ev.node < 64)
            nodes_seen |= 1ull << ev.node;
    for (int n = 0; n < 64; ++n) {
        if (!(nodes_seen & (1ull << n)))
            continue;
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 0);
        w.kv("tid", n);
        w.key("args");
        w.beginObject();
        w.kv("name", csprintf("node%d", n));
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : evs) {
        switch (ev.cat) {
          case TraceCat::ATOMIC_START:
            beginChromeEvent(w, ev, "B");
            writeArgs(w, ev);
            w.endObject();
            break;
          case TraceCat::ATOMIC_COMPLETE:
            // Close the matching "B"; Perfetto pairs B/E per tid.
            beginChromeEvent(w, ev, "E");
            writeArgs(w, ev);
            w.endObject();
            break;
          case TraceCat::MSG_SEND:
            beginChromeEvent(w, ev, "i");
            w.kv("s", "t");
            writeArgs(w, ev);
            w.endObject();
            if (ev.flow != 0) {
                beginChromeEvent(w, ev, "s");
                w.kv("id", ev.flow);
                w.endObject();
            }
            break;
          case TraceCat::MSG_RECV:
            beginChromeEvent(w, ev, "i");
            w.kv("s", "t");
            writeArgs(w, ev);
            w.endObject();
            if (ev.flow != 0) {
                beginChromeEvent(w, ev, "f");
                w.kv("bp", "e");
                w.kv("id", ev.flow);
                w.endObject();
            }
            break;
          default:
            beginChromeEvent(w, ev, "i");
            w.kv("s", "t");
            writeArgs(w, ev);
            w.endObject();
            break;
        }
    }

    w.endArray();
    // Ring accounting footer: Perfetto ignores unknown top-level keys,
    // but a consumer (or a human) can see how much the bounded ring
    // silently overwrote.
    w.kv("dsm_recorded", totalRecorded());
    w.kv("dsm_dropped", dropped());
    w.endObject();
    return w.str();
}

namespace {

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

} // anonymous namespace

bool
Tracer::writeChromeJson(const std::string &path) const
{
    return writeFile(path, exportChromeJson());
}

bool
Tracer::writeText(const std::string &path) const
{
    return writeFile(path, exportText());
}

} // namespace dsm
