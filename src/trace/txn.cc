#include "trace/txn.hh"

#include <algorithm>
#include <fstream>

#include "cache/cache.hh"
#include "mem/directory.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

int
popcount64(std::uint64_t m)
{
    int n = 0;
    for (; m != 0; m &= m - 1)
        ++n;
    return n;
}

} // namespace

void
TxnTracer::configure(const TxnTraceConfig &cfg, int num_procs)
{
    _cfg = cfg;
    _enabled = cfg.enabled;
    _num_procs = num_procs;
    _active.clear();
    _records.clear();
    _exemplars.clear();
    _divergence_msgs.clear();
    _attr.configureTail(_enabled ? cfg.tail_capacity : 0);
    if (_enabled) {
        _active.resize(static_cast<std::size_t>(num_procs));
        _records.reserve(cfg.capacity < 4096 ? cfg.capacity : 4096);
        _exemplars.reserve(cfg.exemplar_k);
    }
}

std::uint64_t
TxnTracer::begin(NodeId proc, AtomicOp op, Addr addr, SyncPolicy pol,
                 std::uint8_t line_state, Tick now)
{
    Active &a = _active[static_cast<std::size_t>(proc)];
    std::uint64_t id = ++_seq * static_cast<std::uint64_t>(_num_procs) +
                       static_cast<std::uint64_t>(proc);
    a.rec = TxnRecord{};
    a.rec.id = id;
    a.rec.proc = proc;
    a.rec.op = op;
    a.rec.addr = addr;
    a.rec.policy = pol;
    a.rec.line_state = line_state;
    a.rec.issue = now;
    a.rec.loop_iter = a.pending_loop_iter;
    a.pending_loop_iter = 0;
    a.last_mark = now;
    if (a.arrival_pending) {
        // Open-loop op: rebase the lifetime to the admission-queue
        // arrival and attribute the wait to ADMIT, so the total is the
        // sojourn time and the phase sums still cover [issue, complete]
        // exactly.
        Tick arrival =
            a.pending_arrival <= now ? a.pending_arrival : now;
        a.arrival_pending = false;
        a.rec.issue = arrival;
        if (now > arrival) {
            a.rec.phase_sum[static_cast<int>(TxnPhase::ADMIT)] =
                now - arrival;
            if (a.rec.spans.size() < _cfg.max_spans)
                a.rec.spans.push_back(
                    {TxnPhase::ADMIT, arrival, now, proc});
            else
                a.rec.spans_truncated = true;
        }
    }
    a.live = true;
    return id;
}

std::uint64_t
TxnTracer::activeId(NodeId proc) const
{
    if (!_enabled || proc < 0 || proc >= _num_procs)
        return 0;
    const Active &a = _active[static_cast<std::size_t>(proc)];
    return a.live ? a.rec.id : 0;
}

void
TxnTracer::noteLoopIter(NodeId proc, int streak)
{
    if (!_enabled || proc < 0 || proc >= _num_procs)
        return;
    _active[static_cast<std::size_t>(proc)].pending_loop_iter = streak;
}

void
TxnTracer::noteArrival(NodeId proc, Tick arrival)
{
    if (!_enabled || proc < 0 || proc >= _num_procs)
        return;
    Active &a = _active[static_cast<std::size_t>(proc)];
    a.pending_arrival = arrival;
    a.arrival_pending = true;
}

TxnTracer::Active *
TxnTracer::find(std::uint64_t id)
{
    if (id == 0 || _num_procs == 0 || _active.empty())
        return nullptr;
    Active &a = _active[static_cast<std::size_t>(
        id % static_cast<std::uint64_t>(_num_procs))];
    return a.live && a.rec.id == id ? &a : nullptr;
}

void
TxnTracer::mark(std::uint64_t id, TxnPhase ph, Tick now, NodeId node)
{
    Active *a = find(id);
    if (a == nullptr)
        return;
    if (now < a->last_mark) {
        // Should be impossible: the requester is idle while waiting,
        // and the event queue fires in time order. Count, don't crash.
        ++_anomalies;
        return;
    }
    if (now == a->last_mark)
        return;
    a->rec.phase_sum[static_cast<int>(ph)] += now - a->last_mark;
    if (a->rec.spans.size() < _cfg.max_spans)
        a->rec.spans.push_back({ph, a->last_mark, now, node});
    else
        a->rec.spans_truncated = true;
    a->last_mark = now;
}

void
TxnTracer::markService(std::uint64_t id, NodeId home, Tick arrive,
                       Tick svc_start, Tick svc_end, bool reply_leg)
{
    mark(id, reply_leg ? TxnPhase::REPLY_TRANSIT : TxnPhase::REQ_TRANSIT,
         arrive, home);
    mark(id, TxnPhase::DIR_QUEUE, svc_start, home);
    mark(id, TxnPhase::DIR_SERVICE, svc_end, home);
}

void
TxnTracer::service(std::uint64_t id, NodeId home, std::uint8_t dir_state,
                   int sharers, bool forwarded, NodeId owner,
                   std::uint64_t fanout_mask)
{
    Active *a = find(id);
    if (a == nullptr)
        return;
    a->rec.serviced = true;
    a->rec.home = home;
    a->rec.dir_state = dir_state;
    a->rec.sharers = sharers;
    a->rec.forwarded = forwarded;
    a->rec.owner = owner;
    a->rec.fanout_mask = fanout_mask;
    a->rec.fanout = popcount64(fanout_mask);
}

void
TxnTracer::retry(std::uint64_t id, Tick now)
{
    Active *a = find(id);
    if (a == nullptr)
        return;
    mark(id, TxnPhase::RETRY_WAIT, now, a->rec.proc);
    ++a->rec.retries;
    // Only the final (serviced, completed) attempt is validated
    // against Table 1, so facts from the NACKed attempt are cleared.
    a->rec.serviced = false;
    a->rec.forwarded = false;
    a->rec.home = INVALID_NODE;
    a->rec.owner = INVALID_NODE;
    a->rec.dir_state = 0;
    a->rec.sharers = 0;
    a->rec.fanout_mask = 0;
    a->rec.fanout = 0;
}

void
TxnTracer::noteSend(std::uint64_t id)
{
    Active *a = find(id);
    if (a != nullptr)
        ++a->rec.messages;
}

int
TxnTracer::expectedChain(const TxnRecord &r)
{
    if (!r.serviced)
        return 0;
    auto hop = [](NodeId x, NodeId y) { return x == y ? 0 : 1; };
    int reply = hop(r.proc, r.home) + hop(r.home, r.proc);
    if (r.forwarded)
        reply += hop(r.home, r.owner) + hop(r.owner, r.home);
    int chain = reply;
    std::uint64_t m = r.fanout_mask;
    for (NodeId n = 0; m != 0; ++n, m >>= 1) {
        if ((m & 1) == 0)
            continue;
        int c = hop(r.proc, r.home) + hop(r.home, n) + hop(n, r.proc);
        if (c > chain)
            chain = c;
    }
    return chain;
}

void
TxnTracer::complete(std::uint64_t id, Tick now, int observed_chain,
                    bool success)
{
    Active *a = find(id);
    if (a == nullptr)
        return;
    // Whatever remains since the last milestone was spent in the local
    // cache controller (hit service, or post-reply line fill).
    mark(id, TxnPhase::CACHE, now, a->rec.proc);

    TxnRecord &r = a->rec;
    r.complete = now;
    r.observed_chain = observed_chain;
    r.success = success;
    r.expected_chain = expectedChain(r);

    Tick sum = 0;
    for (int ph = 0; ph < NUM_TXN_PHASES; ++ph)
        sum += r.phase_sum[ph];
    if (sum != now - r.issue)
        ++_mismatches;

    if (r.expected_chain != r.observed_chain) {
        ++_divergences;
        if (_divergence_msgs.size() < _cfg.max_divergences)
            _divergence_msgs.push_back(csprintf(
                "txn %llu: %s %s addr=%llx proc=%d home=%d dir=%u "
                "sharers=%d fanout=%d%s: observed chain %d, Table 1 "
                "expects %d",
                static_cast<unsigned long long>(r.id), toString(r.policy),
                toString(r.op), static_cast<unsigned long long>(r.addr),
                r.proc, r.home, static_cast<unsigned>(r.dir_state),
                r.sharers, r.fanout, r.forwarded ? " (forwarded)" : "",
                r.observed_chain, r.expected_chain));
    }

    _attr.sample(r.op, r.phase_sum, now - r.issue, r.retries, r.fanout,
                 observed_chain);
    if (_cfg.exemplar_k != 0)
        noteExemplar(r);
    if (_records.size() < _cfg.capacity)
        _records.push_back(std::move(r));
    else
        ++_dropped;
    a->live = false;
}

void
TxnTracer::noteExemplar(const TxnRecord &r)
{
    // Keep the reservoir sorted slowest-first; equal totals break ties
    // toward the smaller (earlier) id, so the contents and order are
    // deterministic for a given run.
    auto slower = [](const TxnRecord &x, const TxnRecord &y) {
        Tick tx = x.complete - x.issue;
        Tick ty = y.complete - y.issue;
        if (tx != ty)
            return tx > ty;
        return x.id < y.id;
    };
    if (_exemplars.size() == _cfg.exemplar_k &&
        !slower(r, _exemplars.back()))
        return;
    auto pos =
        std::lower_bound(_exemplars.begin(), _exemplars.end(), r, slower);
    _exemplars.insert(pos, r);
    if (_exemplars.size() > _cfg.exemplar_k)
        _exemplars.pop_back();
}

std::string
TxnTracer::exemplarsJson() const
{
    JsonWriter w;
    w.beginArray();
    for (const TxnRecord &r : _exemplars) {
        w.beginObject();
        w.kv("id", r.id);
        w.kv("op", toString(r.op));
        w.kv("proc", r.proc);
        w.kv("addr", r.addr);
        w.kv("total", static_cast<std::uint64_t>(r.complete - r.issue));
        w.kv("issue", static_cast<std::uint64_t>(r.issue));
        w.kv("complete", static_cast<std::uint64_t>(r.complete));
        w.kv("retries", r.retries);
        w.kv("loop_iter", r.loop_iter);
        w.kv("fanout", r.fanout);
        w.kv("messages", r.messages);
        w.key("phases");
        w.beginObject();
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
            if (r.phase_sum[ph] == 0)
                continue;
            w.kv(toString(static_cast<TxnPhase>(ph)),
                 static_cast<std::uint64_t>(r.phase_sum[ph]));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    return w.str();
}

std::string
TxnTracer::chromeEventsJsonArray(int pid,
                                 const std::string &process_name) const
{
    JsonWriter w;
    w.beginArray();

    auto metadata = [&](const char *what, int tid, const std::string &nm) {
        w.beginObject();
        w.key("name");
        w.value(what);
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(tid);
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(nm);
        w.endObject();
        w.endObject();
    };

    // Exemplars whose full record was dropped from _records still get
    // exported (that is the reservoir's purpose); ones that were kept
    // are re-categorized, not duplicated.
    std::vector<const TxnRecord *> extra_exemplars;
    for (const TxnRecord &e : _exemplars) {
        bool kept = std::any_of(
            _records.begin(), _records.end(),
            [&](const TxnRecord &r) { return r.id == e.id; });
        if (!kept)
            extra_exemplars.push_back(&e);
    }

    metadata("process_name", 0, process_name);
    std::vector<bool> seen(static_cast<std::size_t>(_num_procs), false);
    for (const TxnRecord &r : _records)
        if (r.proc >= 0 && r.proc < _num_procs)
            seen[static_cast<std::size_t>(r.proc)] = true;
    for (const TxnRecord *r : extra_exemplars)
        if (r->proc >= 0 && r->proc < _num_procs)
            seen[static_cast<std::size_t>(r->proc)] = true;
    for (int n = 0; n < _num_procs; ++n)
        if (seen[static_cast<std::size_t>(n)])
            metadata("thread_name", n, csprintf("node%d", n));

    auto isExemplar = [&](std::uint64_t id) {
        return std::any_of(
            _exemplars.begin(), _exemplars.end(),
            [&](const TxnRecord &e) { return e.id == id; });
    };

    auto flowEvent = [&](const char *ph, std::uint64_t id, Tick ts,
                         NodeId tid, bool enclosing) {
        w.beginObject();
        w.key("name");
        w.value("txn");
        w.key("cat");
        w.value("txn_flow");
        w.key("ph");
        w.value(ph);
        w.key("id");
        w.value(id);
        w.key("ts");
        w.value(ts);
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(tid);
        if (enclosing) {
            w.key("bp");
            w.value("e");
        }
        w.endObject();
    };

    auto emitRecord = [&](const TxnRecord &r, const char *cat) {
        w.beginObject();
        w.key("name");
        w.value(std::string("txn:") + toString(r.op));
        w.key("cat");
        w.value(cat);
        w.key("ph");
        w.value("X");
        w.key("ts");
        w.value(r.issue);
        w.key("dur");
        w.value(r.complete - r.issue);
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(r.proc);
        w.key("args");
        w.beginObject();
        w.key("id");
        w.value(r.id);
        w.key("addr");
        w.value(r.addr);
        w.key("policy");
        w.value(toString(r.policy));
        w.key("line_state");
        w.value(toString(static_cast<LineState>(r.line_state)));
        w.key("success");
        w.value(r.success);
        w.key("retries");
        w.value(r.retries);
        w.key("loop_iter");
        w.value(r.loop_iter);
        w.key("fanout");
        w.value(r.fanout);
        w.key("messages");
        w.value(r.messages);
        w.key("chain");
        w.value(r.observed_chain);
        w.key("expected_chain");
        w.value(r.expected_chain);
        if (r.serviced) {
            w.key("home");
            w.value(r.home);
            w.key("dir_state");
            w.value(toString(static_cast<DirState>(r.dir_state)));
            w.key("sharers");
            w.value(r.sharers);
            if (r.forwarded) {
                w.key("owner");
                w.value(r.owner);
            }
        }
        if (r.spans_truncated) {
            w.key("spans_truncated");
            w.value(true);
        }
        w.endObject();
        w.endObject();

        for (const TxnSpan &s : r.spans) {
            w.beginObject();
            w.key("name");
            w.value(toString(s.phase));
            w.key("cat");
            w.value("txn_phase");
            w.key("ph");
            w.value("X");
            w.key("ts");
            w.value(s.start);
            w.key("dur");
            w.value(s.end - s.start);
            w.key("pid");
            w.value(pid);
            w.key("tid");
            w.value(r.proc);
            w.key("args");
            w.beginObject();
            w.key("node");
            w.value(s.node);
            w.endObject();
            w.endObject();
        }

        // Flow arrows: request departure -> service milestones -> reply.
        int first_req = -1, last_reply = -1;
        for (std::size_t i = 0; i < r.spans.size(); ++i) {
            TxnPhase ph = r.spans[i].phase;
            if (ph == TxnPhase::REQ_TRANSIT && first_req < 0)
                first_req = static_cast<int>(i);
            if (ph == TxnPhase::REPLY_TRANSIT || ph == TxnPhase::FANOUT)
                last_reply = static_cast<int>(i);
        }
        if (first_req >= 0 && last_reply > first_req) {
            flowEvent("s", r.id, r.spans[static_cast<std::size_t>(
                                     first_req)].start,
                      r.proc, false);
            for (int i = first_req + 1; i < last_reply; ++i) {
                TxnPhase ph = r.spans[static_cast<std::size_t>(i)].phase;
                if (ph == TxnPhase::DIR_SERVICE || ph == TxnPhase::OWNER ||
                    ph == TxnPhase::FANOUT)
                    flowEvent("t", r.id,
                              r.spans[static_cast<std::size_t>(i)].start,
                              r.proc, false);
            }
            flowEvent("f", r.id,
                      r.spans[static_cast<std::size_t>(last_reply)].start,
                      r.proc, true);
        }
    };

    for (const TxnRecord &r : _records)
        emitRecord(r, isExemplar(r.id) ? "txn_exemplar" : "txn");
    for (const TxnRecord *r : extra_exemplars)
        emitRecord(*r, "txn_exemplar");

    w.endArray();
    return w.str();
}

std::string
TxnTracer::exportChromeJson() const
{
    return std::string("{\"displayTimeUnit\":\"ns\",\"traceEvents\":") +
           chromeEventsJsonArray(0, "dsm") + "}";
}

bool
TxnTracer::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << exportChromeJson() << '\n';
    return static_cast<bool>(out);
}

std::string
TxnTracer::describeActive(NodeId proc) const
{
    if (!_enabled || proc < 0 || proc >= _num_procs)
        return "";
    const Active &a = _active[static_cast<std::size_t>(proc)];
    if (!a.live)
        return "";
    const TxnRecord &r = a.rec;
    std::string out = csprintf(
        "    txn %llu %s %s addr=%#llx issue=%llu retries=%d "
        "messages=%d spans:\n",
        (unsigned long long)r.id, toString(r.policy), toString(r.op),
        (unsigned long long)r.addr, (unsigned long long)r.issue,
        r.retries, r.messages);
    for (const TxnSpan &s : r.spans)
        out += csprintf("      [%llu, %llu) %s @node %d\n",
                        (unsigned long long)s.start,
                        (unsigned long long)s.end, toString(s.phase),
                        s.node);
    if (r.spans_truncated)
        out += "      ...(spans truncated)\n";
    out += csprintf("      (last milestone at %llu)\n",
                    (unsigned long long)a.last_mark);
    return out;
}

} // namespace dsm
