/**
 * @file
 * Structured protocol event tracer.
 *
 * A bounded ring buffer of fixed-size typed records covering message
 * traffic, directory and cache-line state transitions, atomic operation
 * lifetimes, NACKs/retries, and LL reservation activity. Recording is
 * filtered per category at runtime; when tracing is disabled the cost
 * at every instrumentation site is a single branch on the category
 * mask. Captured traces export to human-readable text or to Chrome
 * trace-event JSON loadable in Perfetto (one track per node, flow
 * arrows linking message sends to receives).
 */

#ifndef DSM_TRACE_TRACE_HH
#define DSM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

/** Event categories; each can be filtered independently. */
enum class TraceCat : std::uint8_t
{
    MSG_SEND,        ///< message injected into the mesh
    MSG_RECV,        ///< message delivered to a controller
    DIR_STATE,       ///< directory entry state transition
    LINE_STATE,      ///< cache line state transition
    ATOMIC_START,    ///< processor began an atomic/memory operation
    ATOMIC_COMPLETE, ///< operation finished (value = latency)
    NACK,            ///< home NACKed a request
    RETRY,           ///< requester retried after NACK/failure
    RESV_SET,        ///< LL reservation established
    RESV_CLEAR,      ///< LL reservation cleared
    LINK_FAULT,      ///< message dropped on a link / link quarantined

    NUM_CATEGORIES
};

constexpr unsigned NUM_TRACE_CATEGORIES =
    static_cast<unsigned>(TraceCat::NUM_CATEGORIES);

const char *toString(TraceCat cat);

/** Mask bit for one category. */
constexpr std::uint32_t
traceBit(TraceCat cat)
{
    return 1u << static_cast<unsigned>(cat);
}

/** Mask enabling every category. */
constexpr std::uint32_t TRACE_ALL = (1u << NUM_TRACE_CATEGORIES) - 1;

/**
 * One trace record. Fixed-size POD; the category determines which
 * fields are meaningful:
 *
 *  - MSG_SEND/MSG_RECV: node=src-or-receiver, peer=other endpoint,
 *    op=MsgType, addr, flow=message trace_id.
 *  - DIR_STATE/LINE_STATE: node, addr, arg_a=old state, arg_b=new.
 *  - ATOMIC_START/ATOMIC_COMPLETE: node, op=AtomicOp, addr,
 *    value=latency on complete, flow=operation flow id.
 *  - NACK: node=home, peer=nacked requester, addr, op=request MsgType.
 *  - RETRY: node=requester, op=AtomicOp, addr, value=retry count.
 *  - RESV_SET/RESV_CLEAR: node=reserving node or home, addr.
 *  - LINK_FAULT: node=link source, peer=link destination, op=dropped
 *    message's MsgType, value=0 for a drop, 1 for quarantine.
 */
struct TraceEvent
{
    Tick tick = 0;
    Addr addr = 0;
    std::uint64_t value = 0;
    std::uint32_t flow = 0;
    std::int16_t node = -1;
    std::int16_t peer = -1;
    TraceCat cat = TraceCat::MSG_SEND;
    std::uint8_t op = 0;
    std::uint8_t arg_a = 0;
    std::uint8_t arg_b = 0;
};

/** Bounded ring buffer of TraceEvents with per-category filtering. */
class Tracer
{
  public:
    /** Apply a TraceConfig: sets the mask and (re)sizes the ring. */
    void configure(const TraceConfig &cfg);

    /** True if any category is enabled. */
    bool enabled() const { return _mask != 0; }

    /**
     * True if @p cat should be recorded. This is the hot-path guard:
     * with tracing off the mask is zero and the whole instrumentation
     * site reduces to this single branch.
     */
    bool on(TraceCat cat) const { return (_mask & traceBit(cat)) != 0; }

    /** Current category mask. */
    std::uint32_t mask() const { return _mask; }

    /** Enable exactly the categories in @p mask (ring must exist). */
    void setMask(std::uint32_t mask);

    /** Append a record, overwriting the oldest once the ring is full. */
    void record(const TraceEvent &ev);

    /** Fresh flow id for correlating related records. */
    std::uint32_t nextFlowId() { return ++_next_flow; }

    /** Ring capacity in records. */
    std::size_t capacity() const { return _ring.size(); }

    /** Records currently retained (<= capacity). */
    std::size_t size() const;

    /** Total record() calls, including overwritten ones. */
    std::uint64_t totalRecorded() const { return _total; }

    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const;

    /** Retained records, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Drop all retained records (keeps mask and capacity). */
    void clear();

    /** Render retained records as one line of text each. */
    std::string exportText() const;

    /**
     * Render retained records as Chrome trace-event JSON (Perfetto
     * loadable): one thread track per node, metadata names, instants
     * for point events, B/E durations for atomic ops, s/f flow arrows
     * for message send/receive pairs.
     */
    std::string exportChromeJson() const;

    /** exportChromeJson() to a file; false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

    /** exportText() to a file; false on I/O failure. */
    bool writeText(const std::string &path) const;

  private:
    std::uint32_t _mask = 0;
    std::vector<TraceEvent> _ring;
    std::size_t _head = 0;      ///< next write position
    bool _wrapped = false;      ///< ring has overwritten old records
    std::uint64_t _total = 0;   ///< lifetime record() count
    std::uint32_t _next_flow = 0;
};

} // namespace dsm

#endif // DSM_TRACE_TRACE_HH
