/**
 * @file
 * Remote-side transitions: invalidations, word updates, and requests
 * forwarded to this node as the exclusive owner of a line (including
 * the owner-side comparison of the INVd/INVs compare_and_swap
 * variants).
 */

#include "proto/transition_impl.hh"

#include "sim/logging.hh"
#include "stats/attribution.hh"

namespace dsm {
namespace tf {

namespace detail {

void
handleInv(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    // An invalidation clears any load_linked reservation covering the
    // block (Section 3) and drops the copy if still present (a silent
    // eviction may have removed it already; the ack is owed regardless).
    s.cache.clearReservationIfCovers(m.addr);
    const CacheLine *line = s.cache.peek(m.addr);
    if (line != nullptr) {
        dsm_assert(line->state == LineState::SHARED,
                   "invalidation hit an exclusive line at node %d",
                   env.self);
        ++s.cache.stats().invalidations_received;
        s.cache.invalidate(m.addr);
        emitTraceLine(o, m.addr, LineState::SHARED, LineState::INVALID);
    } else if (env.cfg->faults.reorderPossible() && s.txn.active &&
               s.txn.waiting && blockBase(s.txn.addr) == m.addr) {
        // The copy is absent but a fill for this very block is in
        // flight. Under FIFO delivery the grant would have arrived
        // first; with reordering armed, this invalidation may have
        // overtaken it — remember the race so the install does not
        // resurrect a copy the directory no longer tracks (an INV
        // supersedes any earlier UPDATE race: the directory has
        // dropped this node from the sharer list either way).
        s.txn.fill_raced = 1;
    }

    Msg ack;
    ack.type = MsgType::INV_ACK;
    ack.dst = m.requester;
    ack.requester = m.requester;
    ack.addr = m.addr;
    ack.word_addr = m.word_addr;
    ack.chain = chainNext(m.chain, env.self, m.requester);
    ack.txn_id = m.txn_id;
    ack.seq = m.seq;
    emitSend(o, ack, env.cfg->machine.cache_access_latency);
}

void
handleUpdate(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    // Word update under the UPD policy: refresh the copy if present.
    s.cache.clearReservationIfCovers(m.addr);
    CacheLine *line = s.cache.lookup(m.addr);
    if (line != nullptr) {
        dsm_assert(line->state == LineState::SHARED,
                   "update hit a non-shared line at node %d", env.self);
        line->writeWord(m.word_addr, m.result);
    } else if (env.cfg->faults.reorderPossible() && s.txn.active &&
               s.txn.waiting && blockBase(s.txn.addr) == m.addr) {
        // Same fill race as handleInv, UPD flavour: the in-flight
        // grant's data predates this word update, so the install must
        // not keep the copy — it would hold a stale word the directory
        // believes is current. The drop at install time stays silent;
        // the node simply refetches on its next access.
        s.txn.fill_raced = 1;
    }

    Msg ack;
    ack.type = MsgType::UPDATE_ACK;
    ack.dst = m.requester;
    ack.requester = m.requester;
    ack.addr = m.addr;
    ack.word_addr = m.word_addr;
    ack.chain = chainNext(m.chain, env.self, m.requester);
    ack.txn_id = m.txn_id;
    ack.seq = m.seq;
    emitSend(o, ack, env.cfg->machine.cache_access_latency);
}

void
handleFwd(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    NodeId home = env.homeOf(m.addr);
    Tick delay = env.cfg->machine.cache_access_latency;

    // The forwarded leg's transit ends here; the owner's cache access
    // (its reply departs `delay` from now) is attributed to OWNER.
    emitTxnMark(o, m.txn_id,
                static_cast<std::uint8_t>(TxnPhase::REQ_TRANSIT), 0,
                env.self);
    emitTxnMark(o, m.txn_id,
                static_cast<std::uint8_t>(TxnPhase::OWNER), delay,
                env.self);

    auto respond = [&](Msg r) {
        r.dst = home;
        r.requester = m.requester;
        r.addr = m.addr;
        r.word_addr = m.word_addr;
        r.chain = chainNext(m.chain, env.self, home);
        r.txn_id = m.txn_id;
        r.seq = m.seq;
        r.attempt = m.attempt;
        emitSend(o, r, delay);
    };

    // If this node's own transaction on the block is still collecting
    // its grant or acknowledgements, it cannot surrender the line yet.
    if (s.txn.active && s.txn.waiting &&
        blockBase(s.txn.addr) == m.addr) {
        Msg r;
        r.type = MsgType::FWD_NACK_RETRY;
        respond(r);
        return;
    }

    CacheLine *line = s.cache.lookup(m.addr);
    if (line == nullptr) {
        // The line was evicted or dropped; its write-back is in flight
        // (or already at home). This is the drop_copy race of
        // Section 4.3.1.
        Msg r;
        r.type = MsgType::FWD_NACK_WB;
        respond(r);
        return;
    }
    dsm_assert(line->state == LineState::EXCLUSIVE,
               "forwarded request at node %d found a %s line",
               env.self, toString(line->state));

    switch (m.type) {
      case MsgType::FWD_GET_S: {
        // Downgrade and keep a shared copy.
        line->state = LineState::SHARED;
        emitTraceLine(o, m.addr, LineState::EXCLUSIVE,
                      LineState::SHARED);
        Msg r;
        r.type = MsgType::OWNER_DATA_S;
        r.data = line->data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::FWD_GET_X: {
        Msg r;
        r.type = MsgType::OWNER_DATA_X;
        r.data = line->data;
        r.has_data = true;
        s.cache.invalidate(m.addr);
        emitTraceLine(o, m.addr, LineState::EXCLUSIVE,
                      LineState::INVALID);
        respond(r);
        break;
      }
      case MsgType::FWD_CAS: {
        Word old = line->readWord(m.word_addr);
        if (old == m.expected) {
            // Equality holds: behave like INV; surrender the line so the
            // requester acquires an exclusive copy and does the swap.
            Msg r;
            r.type = MsgType::OWNER_DATA_X;
            r.data = line->data;
            r.has_data = true;
            s.cache.invalidate(m.addr);
            emitTraceLine(o, m.addr, LineState::EXCLUSIVE,
                          LineState::INVALID);
            respond(r);
        } else if (env.cfg->sync.cas_variant == CasVariant::DENY) {
            // INVd: the failing request gets no copy; ours stays intact.
            Msg r;
            r.type = MsgType::CAS_OWNER_FAIL;
            r.result = old;
            respond(r);
        } else {
            // INVs: downgrade and give the requester a read-only copy.
            line->state = LineState::SHARED;
            emitTraceLine(o, m.addr, LineState::EXCLUSIVE,
                          LineState::SHARED);
            Msg r;
            r.type = MsgType::CAS_OWNER_FAIL_S;
            r.result = old;
            r.data = line->data;
            r.has_data = true;
            respond(r);
        }
        break;
      }
      default:
        dsm_panic("unexpected forwarded message %s", toString(m.type));
    }
}

} // namespace detail

} // namespace tf
} // namespace dsm
