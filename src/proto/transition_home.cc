/**
 * @file
 * Home-side transitions: the directory protocol and the in-memory
 * execution of atomic primitives (UNC and UPD implementations, and the
 * home-side comparisons of the INVd/INVs compare_and_swap variants).
 *
 * The memory-module queueing that serializes these actions is the
 * driver's job (Controller::homeEnqueue); by the time a transition
 * runs the message has already paid its memory latency.
 */

#include "proto/transition_impl.hh"

#include "mem/home_queue.hh"
#include "sim/logging.hh"

namespace dsm {
namespace tf {

using namespace detail;

namespace {

/** Bit mask for one node. */
std::uint64_t
bit(NodeId n)
{
    return 1ULL << n;
}

/** Facts helper for the unforwarded (home-serviced) cases. */
ServiceFacts
homeFacts(std::uint8_t dir_state, int sharers, std::uint64_t fanout_mask)
{
    ServiceFacts f;
    f.dir_state = dir_state;
    f.sharers = sharers;
    f.forwarded = false;
    f.owner = INVALID_NODE;
    f.fanout_mask = fanout_mask;
    return f;
}

/** Record the (possibly unchanged) entry — mirrors Directory::entry()
 *  creating the slot on first touch in the event-driven engine. */
void
dirWrite(Outcome &o, Addr addr, const DirEntry &e)
{
    o.dir_writes.push_back(DirWrite{addr, e});
}

void
sendInvalidations(const Env &env, CtrlState &s, Outcome &o,
                  std::uint64_t targets, const Msg &req)
{
    (void)s;
    for (NodeId n = 0; n < env.numProcs(); ++n) {
        if (!(targets & bit(n)))
            continue;
        ++o.stats.invalidations;
        emitLp(o, EffectKind::LP_INVALIDATION, req.addr);
        Msg inv;
        inv.type = MsgType::INV;
        inv.dst = n;
        inv.requester = req.src;
        inv.addr = req.addr;
        inv.word_addr = req.word_addr;
        inv.chain = chainNext(req.chain, env.self, n);
        inv.txn_id = req.txn_id;
        inv.seq = req.seq;
        emitSend(o, inv);
    }
}

void
homeGetS(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.busy) {
        sendNack(env, s, o, m);
        dirWrite(o, m.addr, e);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED:
      case DirState::SHARED: {
        emitTxnService(o, m.txn_id,
                       homeFacts(static_cast<std::uint8_t>(e.state),
                                 e.numSharers(), 0));
        setDirState(o, e, m.addr, DirState::SHARED);
        e.addSharer(m.src);
        emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
        Msg r;
        r.type = MsgType::DATA_S;
        r.data = env.ctx->memBlock(m.addr);
        r.has_data = true;
        reply(env, s, o, m, r);
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            // The owner's write-back is in flight; retry resolves it.
            sendNack(env, s, o, m);
            dirWrite(o, m.addr, e);
            return;
        }
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_GET_S;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.chain = chainNext(m.chain, env.self, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        emitSend(o, f);
        break;
      }
    }
    dirWrite(o, m.addr, e);
}

void
homeGetX(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.busy) {
        sendNack(env, s, o, m);
        dirWrite(o, m.addr, e);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED: {
        emitTxnService(o, m.txn_id,
                       homeFacts(static_cast<std::uint8_t>(e.state), 0,
                                 0));
        setDirState(o, e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        emitLp(o, EffectKind::LP_OWNER, m.addr, m.src);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = env.ctx->memBlock(m.addr);
        r.has_data = true;
        r.ack_count = 0;
        reply(env, s, o, m, r);
        break;
      }
      case DirState::SHARED: {
        std::uint64_t others = e.sharers & ~bit(m.src);
        emitTxnService(o, m.txn_id,
                       homeFacts(static_cast<std::uint8_t>(e.state),
                                 e.numSharers(), others));
        setDirState(o, e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        e.sharers = 0;
        emitLp(o, EffectKind::LP_OWNER, m.addr, m.src);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = env.ctx->memBlock(m.addr);
        r.has_data = true;
        r.ack_count = __builtin_popcountll(others);
        reply(env, s, o, m, r);
        sendInvalidations(env, s, o, others, m);
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            sendNack(env, s, o, m);
            dirWrite(o, m.addr, e);
            return;
        }
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_GET_X;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.chain = chainNext(m.chain, env.self, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        emitSend(o, f);
        break;
      }
    }
    dirWrite(o, m.addr, e);
}

void
homeUpgrade(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.busy || e.state != DirState::SHARED || !e.isSharer(m.src)) {
        // The requester's copy was (or is being) invalidated; it will
        // retry, re-inspect its cache, and fall back to GET_X.
        sendNack(env, s, o, m);
        dirWrite(o, m.addr, e);
        return;
    }
    std::uint64_t others = e.sharers & ~bit(m.src);
    emitTxnService(o, m.txn_id,
                   homeFacts(static_cast<std::uint8_t>(e.state),
                             e.numSharers(), others));
    setDirState(o, e, m.addr, DirState::EXCLUSIVE);
    e.owner = m.src;
    e.sharers = 0;
    emitLp(o, EffectKind::LP_OWNER, m.addr, m.src);
    Msg r;
    r.type = MsgType::UPG_ACK;
    r.ack_count = __builtin_popcountll(others);
    reply(env, s, o, m, r);
    sendInvalidations(env, s, o, others, m);
    dirWrite(o, m.addr, e);
}

void
homeCasHome(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    CasVariant variant = env.cfg->sync.cas_variant;
    dsm_assert(variant != CasVariant::PLAIN,
               "CAS_HOME under the plain INV variant");
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.busy) {
        sendNack(env, s, o, m);
        dirWrite(o, m.addr, e);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED:
      case DirState::SHARED: {
        // Memory holds the most up-to-date copy; compare here.
        std::uint8_t dir_before = static_cast<std::uint8_t>(e.state);
        int sharers_before = e.numSharers();
        Word old = env.ctx->memWord(m.word_addr);
        if (old == m.expected) {
            // Equality: behave like INV; grant an exclusive copy and let
            // the requester perform the swap locally.
            std::uint64_t others =
                e.state == DirState::SHARED ? e.sharers & ~bit(m.src) : 0;
            emitTxnService(o, m.txn_id,
                           homeFacts(dir_before, sharers_before, others));
            setDirState(o, e, m.addr, DirState::EXCLUSIVE);
            e.owner = m.src;
            e.sharers = 0;
            emitLp(o, EffectKind::LP_OWNER, m.addr, m.src);
            Msg r;
            r.type = MsgType::DATA_X;
            r.data = env.ctx->memBlock(m.addr);
            r.has_data = true;
            r.ack_count = __builtin_popcountll(others);
            r.success = true;
            reply(env, s, o, m, r);
            sendInvalidations(env, s, o, others, m);
        } else if (variant == CasVariant::DENY) {
            emitTxnService(o, m.txn_id,
                           homeFacts(dir_before, sharers_before, 0));
            Msg r;
            r.type = MsgType::CAS_FAIL;
            r.result = old;
            reply(env, s, o, m, r);
        } else { // CasVariant::SHARE
            emitTxnService(o, m.txn_id,
                           homeFacts(dir_before, sharers_before, 0));
            setDirState(o, e, m.addr, DirState::SHARED);
            e.addSharer(m.src);
            emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
            Msg r;
            r.type = MsgType::CAS_FAIL_S;
            r.result = old;
            r.data = env.ctx->memBlock(m.addr);
            r.has_data = true;
            reply(env, s, o, m, r);
        }
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            sendNack(env, s, o, m);
            dirWrite(o, m.addr, e);
            return;
        }
        // The owner has the most up-to-date copy; forward the comparison.
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_CAS;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.value = m.value;
        f.expected = m.expected;
        f.chain = chainNext(m.chain, env.self, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        emitSend(o, f);
        break;
      }
    }
    dirWrite(o, m.addr, e);
}

void
homeScReq(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.busy) {
        sendNack(env, s, o, m);
        dirWrite(o, m.addr, e);
        return;
    }
    if (e.state == DirState::SHARED && e.isSharer(m.src)) {
        // Success: the requester still holds a valid copy. Grant
        // exclusivity and invalidate the other holders (Section 3).
        std::uint64_t others = e.sharers & ~bit(m.src);
        emitTxnService(o, m.txn_id,
                       homeFacts(static_cast<std::uint8_t>(e.state),
                                 e.numSharers(), others));
        setDirState(o, e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        e.sharers = 0;
        emitLp(o, EffectKind::LP_OWNER, m.addr, m.src);
        if (e.reservations != 0)
            emitTraceResv(o, m.addr, true);
        e.clearReservations();
        e.bumpSerial();
        Msg r;
        r.type = MsgType::SC_RESP;
        r.success = true;
        r.ack_count = __builtin_popcountll(others);
        reply(env, s, o, m, r);
        sendInvalidations(env, s, o, others, m);
    } else {
        // Exclusive elsewhere or uncached: fail.
        emitTxnService(o, m.txn_id,
                       homeFacts(static_cast<std::uint8_t>(e.state),
                                 e.numSharers(), 0));
        Msg r;
        r.type = MsgType::SC_RESP;
        r.success = false;
        reply(env, s, o, m, r);
    }
    dirWrite(o, m.addr, e);
}

/** Outcome of a memory-executed operation. */
struct MemOpOut
{
    Word result = 0;
    bool success = true;
    /** Block write serial number after the operation. */
    Word serial = 0;
};

/**
 * Perform an operation on memory at the home (UNC/UPD execution of
 * atomic primitives), maintaining the in-memory reservation vector and
 * the block's write serial number. Memory writes go to @p o; @p e is
 * the caller's working copy of the directory entry.
 */
MemOpOut
memoryOp(const Env &env, DirEntry &e, Outcome &o, const Msg &m)
{
    Word old = readWordAfter(env, o, m.word_addr);
    Word result = old;
    bool success = true;
    bool wrote = false;

    auto writeWord = [&](Word v) {
        MemWrite mw;
        mw.addr = m.word_addr;
        mw.word = v;
        o.mem_writes.push_back(mw);
    };

    switch (m.op) {
      case AtomicOp::LOAD:
      case AtomicOp::LOAD_EXCL:
      case AtomicOp::LLS:
        // Serial-number load_linked needs no reservation: the serial
        // returned alongside the value does the job (Section 3.1).
        break;
      case AtomicOp::LL: {
        int limit = env.cfg->machine.max_memory_reservations;
        if (limit > 0 && !e.hasReservation(m.src) &&
            e.numReservations() >= limit) {
            // Beyond-the-limit: return a failure indicator instead of a
            // reservation (Section 3.1, option 3).
            success = false;
        } else {
            e.setReservation(m.src);
            emitTraceResv(o, m.addr, false);
        }
        break;
      }
      case AtomicOp::STORE:
        writeWord(m.value);
        wrote = true;
        result = 0;
        break;
      case AtomicOp::TAS:
        writeWord(1);
        wrote = true;
        break;
      case AtomicOp::FAA:
        writeWord(old + m.value);
        wrote = true;
        break;
      case AtomicOp::FAS:
        writeWord(m.value);
        wrote = true;
        break;
      case AtomicOp::FAO:
        writeWord(old | m.value);
        wrote = true;
        break;
      case AtomicOp::CAS:
        if (old == m.expected) {
            writeWord(m.value);
            wrote = true;
        } else {
            success = false;
        }
        break;
      case AtomicOp::SC:
        result = 0;
        if (e.hasReservation(m.src)) {
            writeWord(m.value);
            wrote = true;
        } else {
            success = false;
        }
        break;
      case AtomicOp::SCS:
        // Serial-number store_conditional, possibly "bare" (with no
        // preceding load_linked): succeeds iff the expected serial
        // matches the block's write counter.
        result = 0;
        if (e.serial == static_cast<std::uint32_t>(m.serial)) {
            writeWord(m.value);
            wrote = true;
        } else {
            success = false;
            result = old; // report the current value on failure
        }
        break;
      default:
        dsm_panic("memoryOp on %s", toString(m.op));
    }

    if (wrote) {
        // Any write or successful SC clears the reservation vector
        // (Section 3) and bumps the block's write serial number.
        if (e.reservations != 0)
            emitTraceResv(o, m.addr, true);
        e.clearReservations();
        e.bumpSerial();
    }
    return {result, success, e.serial};
}

void
homeUncReq(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    dsm_assert(e.state == DirState::UNCACHED && !e.busy,
               "UNC access to a block with cached copies");
    emitTxnService(o, m.txn_id,
                   homeFacts(static_cast<std::uint8_t>(e.state), 0, 0));
    MemOpOut out = memoryOp(env, e, o, m);
    Msg r;
    r.type = MsgType::UNC_RESP;
    r.result = out.result;
    r.success = out.success;
    r.serial = out.serial;
    reply(env, s, o, m, r);
    dirWrite(o, m.addr, e);
}

void
homeUpdReq(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    dsm_assert(e.state != DirState::EXCLUSIVE && !e.busy,
               "UPD region block is exclusive");
    std::uint8_t dir_before = static_cast<std::uint8_t>(e.state);
    int sharers_before = e.numSharers();
    Word before = readWordAfter(env, o, m.word_addr);
    MemOpOut out = memoryOp(env, e, o, m);
    Word newval = readWordAfter(env, o, m.word_addr);

    int nupdates = 0;
    std::uint64_t upd_mask = 0;
    // "Only successful writes cause updates" (Section 4.3.1): a write
    // that leaves the word unchanged (e.g. a failed test_and_set
    // storing 1 over 1) sends no update messages.
    if (effectiveWrite(m.op, out.success) && newval != before) {
        for (NodeId n = 0; n < env.numProcs(); ++n) {
            if (n == m.src || !e.isSharer(n))
                continue;
            ++o.stats.updates;
            ++nupdates;
            upd_mask |= bit(n);
            Msg u;
            u.type = MsgType::UPDATE;
            u.dst = n;
            u.requester = m.src;
            u.addr = m.addr;
            u.word_addr = m.word_addr;
            u.result = newval;
            u.chain = chainNext(m.chain, env.self, n);
            u.txn_id = m.txn_id;
            u.seq = m.seq;
            emitSend(o, u);
        }
    }
    emitTxnService(o, m.txn_id,
                   homeFacts(dir_before, sharers_before, upd_mask));

    // The requester retains (or obtains) a shared copy.
    setDirState(o, e, m.addr, DirState::SHARED);
    e.addSharer(m.src);
    emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);

    Msg r;
    r.type = MsgType::UPD_RESP;
    r.result = out.result;
    r.success = out.success;
    r.serial = out.serial;
    r.ack_count = nupdates;
    r.data = readBlockAfter(env, o, m.addr);
    r.has_data = true;
    reply(env, s, o, m, r);
    dirWrite(o, m.addr, e);
}

void
homeWbData(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    dsm_assert(e.state == DirState::EXCLUSIVE && e.owner == m.src,
               "write-back of %#llx from non-owner %d (state %s)",
               static_cast<unsigned long long>(m.addr), m.src,
               toString(e.state));
    MemWrite mw;
    mw.is_block = true;
    mw.addr = m.addr;
    mw.block = m.data;
    o.mem_writes.push_back(mw);
    if (!e.busy) {
        setDirState(o, e, m.addr, DirState::UNCACHED);
        e.owner = INVALID_NODE;
        dirWrite(o, m.addr, e);
        return;
    }
    // A forward to the (former) owner is outstanding; it will bounce
    // with FWD_NACK_WB. Remember that the data has arrived.
    e.wb_received = true;
    if (e.await_wb) {
        // The bounce already arrived; finish the transaction now.
        NodeId req = e.pending_requester;
        setDirState(o, e, m.addr, DirState::UNCACHED);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.await_wb = false;
        e.wb_received = false;
        e.pending_requester = INVALID_NODE;
        nackNode(env, s, o, req, m.addr);
    }
    dirWrite(o, m.addr, e);
}

void
homeDropNotify(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    (void)s;
    DirEntry e = env.ctx->dirEntry(m.addr);
    if (e.state == DirState::SHARED && e.isSharer(m.src)) {
        e.removeSharer(m.src);
        if (e.sharers == 0)
            setDirState(o, e, m.addr, DirState::UNCACHED);
    }
    // Otherwise the notification raced with a state change; ignore it.
    dirWrite(o, m.addr, e);
}

void
homeOwnerReply(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    DirEntry e = env.ctx->dirEntry(m.addr);
    dsm_assert(e.busy && e.state == DirState::EXCLUSIVE &&
               e.owner == m.src,
               "%s from %d out of protocol", toString(m.type), m.src);
    NodeId req = e.pending_requester;

    // A data-carrying owner reply means the forwarded case was
    // serviced: record the facts for Table 1 validation.
    if (m.type != MsgType::FWD_NACK_RETRY &&
        m.type != MsgType::FWD_NACK_WB) {
        ServiceFacts f;
        f.dir_state = static_cast<std::uint8_t>(DirState::EXCLUSIVE);
        f.sharers = 0;
        f.forwarded = true;
        f.owner = m.src;
        f.fanout_mask = 0;
        emitTxnService(o, m.txn_id, f);
    }

    auto respond = [&](Msg r) {
        r.dst = req;
        r.requester = req;
        r.addr = m.addr;
        r.word_addr = m.word_addr;
        r.chain = chainNext(m.chain, env.self, req);
        r.txn_id = m.txn_id;
        r.seq = m.seq;
        r.attempt = m.attempt;
        if (!s.dedup.empty() && m.seq != 0)
            captureReply(s, req, m.seq, r);
        emitSend(o, r);
    };

    switch (m.type) {
      case MsgType::OWNER_DATA_S: {
        MemWrite mw;
        mw.is_block = true;
        mw.addr = m.addr;
        mw.block = m.data;
        o.mem_writes.push_back(mw);
        setDirState(o, e, m.addr, DirState::SHARED);
        e.sharers = bit(m.src) | bit(req);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        // The former owner downgraded in place; only req is new.
        emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
        Msg r;
        r.type = MsgType::DATA_S;
        r.data = m.data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::OWNER_DATA_X: {
        e.owner = req;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        emitLp(o, EffectKind::LP_OWNER, m.addr, req);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = m.data;
        r.has_data = true;
        r.ack_count = 0;
        r.success = true;
        respond(r);
        break;
      }
      case MsgType::CAS_OWNER_FAIL: {
        // INVd: the owner keeps its exclusive copy.
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        Msg r;
        r.type = MsgType::CAS_FAIL;
        r.result = m.result;
        respond(r);
        break;
      }
      case MsgType::CAS_OWNER_FAIL_S: {
        // INVs: the owner downgraded; both nodes share the line.
        MemWrite mw;
        mw.is_block = true;
        mw.addr = m.addr;
        mw.block = m.data;
        o.mem_writes.push_back(mw);
        setDirState(o, e, m.addr, DirState::SHARED);
        e.sharers = bit(m.src) | bit(req);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
        Msg r;
        r.type = MsgType::CAS_FAIL_S;
        r.result = m.result;
        r.data = m.data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::FWD_NACK_RETRY: {
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        nackNode(env, s, o, req, m.addr);
        break;
      }
      case MsgType::FWD_NACK_WB: {
        if (e.wb_received) {
            setDirState(o, e, m.addr, DirState::UNCACHED);
            e.owner = INVALID_NODE;
            e.busy = false;
            e.wb_received = false;
            e.pending_requester = INVALID_NODE;
            nackNode(env, s, o, req, m.addr);
        } else {
            e.await_wb = true;
        }
        break;
      }
      default:
        dsm_panic("unexpected owner reply %s", toString(m.type));
    }
    dirWrite(o, m.addr, e);
}

} // namespace

Outcome
deliverCombined(const Env &env, CtrlState &s,
                const std::vector<Msg> &batch)
{
    Outcome o;
    dsm_assert(batch.size() >= 2,
               "a combined batch needs at least two members");
    const Msg &lead = batch.front();
    dsm_assert(env.homeOf(lead.addr) == env.self,
               "combined batch for block %#llx delivered to non-home "
               "node %d",
               static_cast<unsigned long long>(lead.addr), env.self);
    for (std::size_t i = 1; i < batch.size(); ++i)
        dsm_assert(HomeQueue::combinesWith(lead, batch[i]),
                   "batch member %zu does not combine with the leader",
                   i);

    switch (lead.type) {
      case MsgType::GET_S: {
        // k duplicate fills of one block share the single block read;
        // per-member facts/replies mirror sequential delivery exactly
        // (the working entry accumulates sharers between members).
        DirEntry e = env.ctx->dirEntry(lead.addr);
        dsm_assert(!e.busy && e.state != DirState::EXCLUSIVE,
                   "combined GET_S batch on a busy/exclusive line");
        for (const Msg &m : batch) {
            emitTxnService(o, m.txn_id,
                           homeFacts(static_cast<std::uint8_t>(e.state),
                                     e.numSharers(), 0));
            setDirState(o, e, m.addr, DirState::SHARED);
            e.addSharer(m.src);
            emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
            Msg r;
            r.type = MsgType::DATA_S;
            r.data = env.ctx->memBlock(m.addr);
            r.has_data = true;
            reply(env, s, o, m, r);
        }
        dirWrite(o, lead.addr, e);
        break;
      }

      case MsgType::UNC_REQ: {
        // k fetch&adds, one read-modify-write pass: memoryOp reads
        // through this outcome's pending writes (readWordAfter), so
        // sequential calls hand each member its exact prefix sum.
        DirEntry e = env.ctx->dirEntry(lead.addr);
        dsm_assert(e.state == DirState::UNCACHED && !e.busy,
                   "UNC access to a block with cached copies");
        for (const Msg &m : batch) {
            emitTxnService(o, m.txn_id,
                           homeFacts(static_cast<std::uint8_t>(e.state),
                                     0, 0));
            MemOpOut out = memoryOp(env, e, o, m);
            Msg r;
            r.type = MsgType::UNC_RESP;
            r.result = out.result;
            r.success = out.success;
            r.serial = out.serial;
            reply(env, s, o, m, r);
        }
        dirWrite(o, lead.addr, e);
        break;
      }

      case MsgType::UPD_REQ: {
        DirEntry e = env.ctx->dirEntry(lead.addr);
        dsm_assert(e.state != DirState::EXCLUSIVE && !e.busy,
                   "UPD region block is exclusive");
        std::uint8_t dir_before = static_cast<std::uint8_t>(e.state);
        int sharers_before = e.numSharers();
        Word before = readWordAfter(env, o, lead.word_addr);
        std::vector<MemOpOut> outs;
        outs.reserve(batch.size());
        for (const Msg &m : batch)
            outs.push_back(memoryOp(env, e, o, m));
        Word newval = readWordAfter(env, o, lead.word_addr);

        // One UPDATE fan-out for the whole batch, carrying the final
        // value, attributed to the leader (its chain/seq/acks). Batch
        // members are excluded: each gets the final block in its own
        // UPD_RESP. FAA is always an effective write, so only the
        // no-op case (adding zero) suppresses the fan-out.
        std::uint64_t member_mask = 0;
        for (const Msg &m : batch)
            member_mask |= bit(m.src);
        int nupdates = 0;
        std::uint64_t upd_mask = 0;
        if (newval != before) {
            for (NodeId n = 0; n < env.numProcs(); ++n) {
                if ((member_mask & bit(n)) != 0 || !e.isSharer(n))
                    continue;
                ++o.stats.updates;
                ++nupdates;
                upd_mask |= bit(n);
                Msg u;
                u.type = MsgType::UPDATE;
                u.dst = n;
                u.requester = lead.src;
                u.addr = lead.addr;
                u.word_addr = lead.word_addr;
                u.result = newval;
                u.chain = chainNext(lead.chain, env.self, n);
                u.txn_id = lead.txn_id;
                u.seq = lead.seq;
                emitSend(o, u);
            }
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Msg &m = batch[i];
            emitTxnService(o, m.txn_id,
                           homeFacts(dir_before, sharers_before,
                                     i == 0 ? upd_mask : 0));
            setDirState(o, e, m.addr, DirState::SHARED);
            e.addSharer(m.src);
            emitLp(o, EffectKind::LP_SHARER_JOIN, m.addr);
            Msg r;
            r.type = MsgType::UPD_RESP;
            r.result = outs[i].result;
            r.success = outs[i].success;
            r.serial = outs[i].serial;
            r.ack_count = i == 0 ? nupdates : 0;
            r.data = readBlockAfter(env, o, m.addr);
            r.has_data = true;
            reply(env, s, o, m, r);
        }
        dirWrite(o, lead.addr, e);
        break;
      }

      default:
        dsm_panic("deliverCombined on %s", toString(lead.type));
    }
    return o;
}

namespace detail {

void
nackNode(const Env &env, CtrlState &s, Outcome &o, NodeId n, Addr block)
{
    ++o.stats.nacks;
    emitLp(o, EffectKind::LP_NACK, block);
    emitTraceNack(o, n, block, MsgType::NACK);
    Msg r;
    r.type = MsgType::NACK;
    r.dst = n;
    r.requester = n;
    r.addr = block;
    r.word_addr = block;
    r.chain = 1;
    // The waiting requester has exactly one transaction in flight on
    // this block; stamp its id so the NACK closes the right phase.
    r.txn_id = env.ctx->activeTxnId(n);
    if (!s.dedup.empty()) {
        // Stamp the requester's in-progress seq (the forward that
        // bounced here carried it) and cache the NACK so a racing
        // retransmission replays it instead of re-entering the
        // directory.
        r.seq = s.dedup[static_cast<std::size_t>(n)].seq;
        captureReply(s, n, r.seq, r);
    }
    emitSend(o, r);
}

void
homeDispatch(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    dsm_assert(env.homeOf(m.addr) == env.self,
               "%s for block %#llx delivered to non-home node %d",
               toString(m.type), static_cast<unsigned long long>(m.addr),
               env.self);
    switch (m.type) {
      case MsgType::GET_S:
        homeGetS(env, s, o, m);
        break;
      case MsgType::GET_X:
        homeGetX(env, s, o, m);
        break;
      case MsgType::UPGRADE:
        homeUpgrade(env, s, o, m);
        break;
      case MsgType::CAS_HOME:
        homeCasHome(env, s, o, m);
        break;
      case MsgType::SC_REQ:
        homeScReq(env, s, o, m);
        break;
      case MsgType::UNC_REQ:
        homeUncReq(env, s, o, m);
        break;
      case MsgType::UPD_REQ:
        homeUpdReq(env, s, o, m);
        break;
      case MsgType::WB_DATA:
        homeWbData(env, s, o, m);
        break;
      case MsgType::DROP_NOTIFY:
        homeDropNotify(env, s, o, m);
        break;
      case MsgType::OWNER_DATA_S:
      case MsgType::OWNER_DATA_X:
      case MsgType::CAS_OWNER_FAIL:
      case MsgType::CAS_OWNER_FAIL_S:
      case MsgType::FWD_NACK_RETRY:
      case MsgType::FWD_NACK_WB:
        homeOwnerReply(env, s, o, m);
        break;
      default:
        dsm_panic("non-home message %s at home", toString(m.type));
    }
}

} // namespace detail

} // namespace tf
} // namespace dsm
