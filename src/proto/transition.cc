/**
 * @file
 * Transition-function core: shared emitters, message dispatch, the
 * recovery dedup preamble, the canonical pure step() wrapper, and
 * deterministic debug serialization.
 */

#include "proto/transition_impl.hh"

#include <cstdarg>
#include <cstdio>

#include "sim/logging.hh"

namespace dsm {
namespace tf {

namespace detail {

Word
applyOp(AtomicOp op, Word old, Word operand)
{
    switch (op) {
      case AtomicOp::STORE:
      case AtomicOp::FAS:
        return operand;
      case AtomicOp::TAS:
        return 1;
      case AtomicOp::FAA:
        return old + operand;
      case AtomicOp::FAO:
        return old | operand;
      default:
        dsm_panic("applyOp on non-modifying op %s", toString(op));
    }
}

bool
effectiveWrite(AtomicOp op, bool success)
{
    switch (op) {
      case AtomicOp::STORE:
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO:
        return true;
      case AtomicOp::CAS:
      case AtomicOp::SC:
      case AtomicOp::SCS:
        return success;
      default:
        return false;
    }
}

void
emitSend(Outcome &o, const Msg &m, Tick delay)
{
    Effect ef;
    ef.kind = EffectKind::SEND;
    ef.msg = m;
    ef.delay = delay;
    o.effects.push_back(ef);
}

void
emitTraceLine(Outcome &o, Addr block, LineState from, LineState to)
{
    if (from == to)
        return;
    Effect ef;
    ef.kind = EffectKind::TRACE_LINE;
    ef.addr = block;
    ef.a = static_cast<std::uint8_t>(from);
    ef.b = static_cast<std::uint8_t>(to);
    o.effects.push_back(ef);
}

void
emitTraceResv(Outcome &o, Addr block, bool clear)
{
    Effect ef;
    ef.kind = EffectKind::TRACE_RESV;
    ef.addr = block;
    ef.a = clear ? 1 : 0;
    o.effects.push_back(ef);
}

void
emitTraceNack(Outcome &o, NodeId victim, Addr block, MsgType req_type)
{
    Effect ef;
    ef.kind = EffectKind::TRACE_NACK;
    ef.addr = block;
    ef.node = victim;
    ef.a = static_cast<std::uint8_t>(req_type);
    o.effects.push_back(ef);
}

void
emitLp(Outcome &o, EffectKind kind, Addr block, NodeId node)
{
    Effect ef;
    ef.kind = kind;
    ef.addr = block;
    ef.node = node;
    o.effects.push_back(ef);
}

void
emitTxnMark(Outcome &o, std::uint64_t id, std::uint8_t phase,
            Tick delay, NodeId node)
{
    if (id == 0)
        return;
    Effect ef;
    ef.kind = EffectKind::TXN_MARK;
    ef.id = id;
    ef.a = phase;
    ef.delay = delay;
    ef.node = node;
    o.effects.push_back(ef);
}

void
emitTxnService(Outcome &o, std::uint64_t id, const ServiceFacts &facts)
{
    if (id == 0)
        return;
    Effect ef;
    ef.kind = EffectKind::TXN_SERVICE;
    ef.id = id;
    ef.facts = facts;
    o.effects.push_back(ef);
}

void
emitComplete(Outcome &o, Tick delay, Word value, bool success,
             Word serial)
{
    Effect ef;
    ef.kind = EffectKind::COMPLETE;
    ef.delay = delay;
    ef.value = value;
    ef.flag = success;
    ef.serial = serial;
    o.effects.push_back(ef);
}

void
emitRetry(Outcome &o)
{
    Effect ef;
    ef.kind = EffectKind::RETRY;
    o.effects.push_back(ef);
}

void
emitArmTimer(Outcome &o)
{
    Effect ef;
    ef.kind = EffectKind::ARM_TIMER;
    o.effects.push_back(ef);
}

void
setDirState(Outcome &o, DirEntry &e, Addr block, DirState to)
{
    DirState from = e.state;
    e.state = to;
    if (from == to)
        return;
    Effect ef;
    ef.kind = EffectKind::TRACE_DIR;
    ef.addr = block;
    ef.a = static_cast<std::uint8_t>(from);
    ef.b = static_cast<std::uint8_t>(to);
    o.effects.push_back(ef);
}

void
captureReply(CtrlState &s, NodeId requester, std::uint64_t seq,
             const Msg &resp)
{
    DedupEntry &de = s.dedup[static_cast<std::size_t>(requester)];
    if (de.seq != seq)
        return; // a newer request already owns the slot
    de.has_reply = true;
    de.reply = resp;
}

void
reply(const Env &env, CtrlState &s, Outcome &o, const Msg &req,
      Msg resp)
{
    resp.dst = req.src;
    resp.requester = req.src;
    resp.addr = req.addr;
    resp.word_addr = req.word_addr;
    resp.chain = chainNext(req.chain, env.self, req.src);
    resp.txn_id = req.txn_id;
    resp.seq = req.seq;
    resp.attempt = req.attempt;
    if (!s.dedup.empty() && recoverableRequest(req.type) && req.seq != 0)
        captureReply(s, req.src, req.seq, resp);
    emitSend(o, resp);
}

void
sendNack(const Env &env, CtrlState &s, Outcome &o, const Msg &req)
{
    ++o.stats.nacks;
    emitLp(o, EffectKind::LP_NACK, req.addr);
    emitTraceNack(o, req.src, req.addr, req.type);
    Msg n;
    n.type = MsgType::NACK;
    reply(env, s, o, req, n);
}

void
evictVictim(const Env &env, CtrlState &s, Outcome &o, const Victim &v)
{
    (void)s;
    if (v.state != LineState::EXCLUSIVE)
        return; // shared lines are dropped silently (DASH-style)
    ++o.stats.writebacks;
    Msg wb;
    wb.type = MsgType::WB_DATA;
    wb.dst = env.homeOf(v.base);
    wb.requester = env.self;
    wb.addr = v.base;
    wb.word_addr = v.base;
    wb.data = v.data;
    wb.has_data = true;
    wb.chain = 1;
    emitSend(o, wb);
}

CacheLine *
installLine(const Env &env, CtrlState &s, Outcome &o, Addr addr,
            LineState state, const std::array<Word, BLOCK_WORDS> &data)
{
    Addr base = blockBase(addr);
    CacheLine *line = s.cache.lookup(base);
    LineState prev = LineState::INVALID;
    if (line == nullptr) {
        Victim victim;
        line = s.cache.allocate(base, &victim);
        if (victim.valid)
            evictVictim(env, s, o, victim);
    } else {
        prev = line->state;
    }
    line->state = state;
    line->data = data;
    emitTraceLine(o, base, prev, state);
    return line;
}

Word
readWordAfter(const Env &env, const Outcome &o, Addr a)
{
    Word v = env.ctx->memWord(a);
    for (const MemWrite &mw : o.mem_writes) {
        if (mw.is_block) {
            if (mw.addr == blockBase(a))
                v = mw.block[wordInBlock(a)];
        } else if (mw.addr == a) {
            v = mw.word;
        }
    }
    return v;
}

std::array<Word, BLOCK_WORDS>
readBlockAfter(const Env &env, const Outcome &o, Addr block)
{
    std::array<Word, BLOCK_WORDS> b = env.ctx->memBlock(block);
    for (const MemWrite &mw : o.mem_writes) {
        if (mw.is_block) {
            if (mw.addr == block)
                b = mw.block;
        } else if (blockBase(mw.addr) == block) {
            b[wordInBlock(mw.addr)] = mw.word;
        }
    }
    return b;
}

} // namespace detail

using namespace detail;

bool
tryDedup(const Env &env, CtrlState &s, const Msg &m, Outcome &o)
{
    if (m.replayed) {
        // Injection-flagged duplicate delivery. The mesh replays
        // strictly after the original, so the original has already
        // been delivered and (re)claimed the dedup slot — whatever
        // branch this copy would take, the requester is answered by
        // the original's reply or by the retransmission machinery.
        // Absorb silently, attributed to the injection ledger rather
        // than the organic dup counters so the NACK-balance invariant
        // survives duplication faults.
        ++o.stats.dups_absorbed;
        return true;
    }
    DedupEntry &de = s.dedup[static_cast<std::size_t>(m.src)];
    if (m.seq > de.seq) {
        // New request: the requester is done with every older seq, so
        // the slot (and any cached reply) can be recycled.
        de = DedupEntry{};
        de.seq = m.seq;
        return false;
    }
    ++o.stats.dup_requests;
    if (m.seq < de.seq) {
        // Stale retransmission of a seq the requester already retired;
        // nothing references it anymore.
        ++o.stats.dup_stale;
        return true;
    }
    if (!de.has_reply) {
        // Original still in service (typically forwarded to the owner);
        // its reply will answer the requester.
        ++o.stats.dup_in_progress;
        return true;
    }
    // Shared grants cannot be replayed: a third party's invalidation
    // may have removed the requester from the sharer set since the
    // cached reply was built, and replaying it would install a stale,
    // untracked copy. Failed CAS verdicts are re-evaluated for the
    // same reason (CAS_FAIL_S grants a shared copy; a fresh verdict is
    // linearizable because a failure wrote nothing). Everything else —
    // notably granted exclusive replies, which the directory pins to
    // this requester until it answers (handleFwd NACKs forwards while
    // the local transaction waits) — is replayed verbatim.
    bool reexec =
        m.type == MsgType::GET_S ||
        (m.type == MsgType::CAS_HOME &&
         (de.reply.type == MsgType::CAS_FAIL ||
          de.reply.type == MsgType::CAS_FAIL_S));
    if (reexec && de.reply.type != MsgType::NACK) {
        ++o.stats.dup_reprocessed;
        de.has_reply = false; // re-execution re-captures the reply
        return false;
    }
    ++o.stats.dup_replayed;
    if (de.reply.type == MsgType::NACK)
        ++o.stats.nacks_replayed;
    Msg r = de.reply;
    // UPD copies track memory: refresh the block payload so the replay
    // carries any updates the requester's dead original missed. The
    // result word stays — it is the operation's execution-time value.
    if (r.type == MsgType::UPD_RESP && r.has_data)
        r.data = env.ctx->memBlock(r.addr);
    r.attempt = m.attempt;
    emitSend(o, r);
    return true;
}

Outcome
injectNack(const Env &env, CtrlState &s, const Msg &m)
{
    Outcome o;
    sendNack(env, s, o, m);
    return o;
}

Outcome
deliver(const Env &env, CtrlState &s, const Msg &m)
{
    dsm_assert(m.dst == env.self, "message for node %d delivered to %d",
               m.dst, env.self);
    Outcome o;
    switch (m.type) {
      // Home-targeted messages (post memory-module queue).
      case MsgType::GET_S:
      case MsgType::GET_X:
      case MsgType::UPGRADE:
      case MsgType::CAS_HOME:
      case MsgType::SC_REQ:
      case MsgType::UNC_REQ:
      case MsgType::UPD_REQ:
      case MsgType::WB_DATA:
      case MsgType::DROP_NOTIFY:
      case MsgType::OWNER_DATA_S:
      case MsgType::OWNER_DATA_X:
      case MsgType::CAS_OWNER_FAIL:
      case MsgType::CAS_OWNER_FAIL_S:
      case MsgType::FWD_NACK_RETRY:
      case MsgType::FWD_NACK_WB:
        homeDispatch(env, s, o, m);
        break;

      // Responses addressed to this node as the requester.
      case MsgType::DATA_S:
      case MsgType::DATA_X:
      case MsgType::UPG_ACK:
      case MsgType::NACK:
      case MsgType::CAS_FAIL:
      case MsgType::CAS_FAIL_S:
      case MsgType::UNC_RESP:
      case MsgType::UPD_RESP:
      case MsgType::SC_RESP:
      case MsgType::INV_ACK:
      case MsgType::UPDATE_ACK:
        cpuResponse(env, s, o, m);
        break;

      // Third-party coherence actions.
      case MsgType::INV:
        handleInv(env, s, o, m);
        break;
      case MsgType::UPDATE:
        handleUpdate(env, s, o, m);
        break;
      case MsgType::FWD_GET_S:
      case MsgType::FWD_GET_X:
      case MsgType::FWD_CAS:
        handleFwd(env, s, o, m);
        break;
    }
    return o;
}

StepResult
step(const Env &env, const CtrlState &s, const Msg &m)
{
    StepResult r{s, Outcome{}};
    bool home_req = recoverableRequest(m.type);
    if (home_req && !r.next.dedup.empty() && m.seq != 0 &&
        tryDedup(env, r.next, m, r.out))
        return r;
    Outcome d = deliver(env, r.next, m);
    // Merge after a dedup miss (re-execution path keeps its counters).
    for (auto &mw : d.mem_writes)
        r.out.mem_writes.push_back(mw);
    for (auto &dw : d.dir_writes)
        r.out.dir_writes.push_back(dw);
    const StatDelta &a = d.stats;
    StatDelta &b = r.out.stats;
    b.nacks += a.nacks;
    b.retries += a.retries;
    b.invalidations += a.invalidations;
    b.updates += a.updates;
    b.writebacks += a.writebacks;
    b.drop_notifies += a.drop_notifies;
    b.sc_local_failures += a.sc_local_failures;
    b.dup_requests += a.dup_requests;
    b.dup_stale += a.dup_stale;
    b.dup_in_progress += a.dup_in_progress;
    b.dup_reprocessed += a.dup_reprocessed;
    b.dup_replayed += a.dup_replayed;
    b.nacks_replayed += a.nacks_replayed;
    b.nacks_stale += a.nacks_stale;
    b.stale_replies += a.stale_replies;
    b.dups_absorbed += a.dups_absorbed;
    for (auto &ef : d.effects)
        r.out.effects.push_back(ef);
    return r;
}

namespace {

void
append(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
debugString(const Msg &m)
{
    std::string out;
    append(out, "%s src=%d dst=%d req=%d addr=%#llx w=%#llx op=%s "
                "val=%llu exp=%llu res=%llu ok=%d serial=%llu acks=%d "
                "chain=%d seq=%llu att=%d",
           toString(m.type), m.src, m.dst, m.requester,
           static_cast<unsigned long long>(m.addr),
           static_cast<unsigned long long>(m.word_addr), toString(m.op),
           static_cast<unsigned long long>(m.value),
           static_cast<unsigned long long>(m.expected),
           static_cast<unsigned long long>(m.result), m.success ? 1 : 0,
           static_cast<unsigned long long>(m.serial), m.ack_count,
           m.chain, static_cast<unsigned long long>(m.seq), m.attempt);
    if (m.replayed)
        out += " replayed";
    if (m.reordered)
        out += " reordered";
    if (m.has_data) {
        out += " data=[";
        for (std::size_t i = 0; i < m.data.size(); ++i)
            append(out, i ? ",%llu" : "%llu",
                   static_cast<unsigned long long>(m.data[i]));
        out += "]";
    }
    return out;
}

std::string
debugString(const CtrlState &s)
{
    std::string out;
    const TxnState &t = s.txn;
    append(out, "txn{active=%d op=%s addr=%#llx val=%llu exp=%llu "
                "wait=%d resp=%d acks=%d/%d rv=%llu rs=%d rser=%llu "
                "chain=%d retries=%d seq=%llu att=%d req=%s "
                "amask=%#llx}\n",
           t.active ? 1 : 0, toString(t.op),
           static_cast<unsigned long long>(t.addr),
           static_cast<unsigned long long>(t.value),
           static_cast<unsigned long long>(t.expected),
           t.waiting ? 1 : 0, t.resp_seen ? 1 : 0, t.acks_got,
           t.acks_needed, static_cast<unsigned long long>(t.resp_value),
           t.resp_success ? 1 : 0,
           static_cast<unsigned long long>(t.resp_serial), t.max_chain,
           t.retries, static_cast<unsigned long long>(t.seq), t.attempt,
           toString(t.req_type),
           static_cast<unsigned long long>(t.acks_mask));
    for (const CacheLine &l : s.cache.lines()) {
        if (!l.valid())
            continue;
        append(out, "line{base=%#llx state=%d data=[",
               static_cast<unsigned long long>(l.base),
               static_cast<int>(l.state));
        for (std::size_t i = 0; i < l.data.size(); ++i)
            append(out, i ? ",%llu" : "%llu",
                   static_cast<unsigned long long>(l.data[i]));
        out += "]}\n";
    }
    if (s.cache.reservationValid())
        append(out, "resv{addr=%#llx}\n",
               static_cast<unsigned long long>(s.cache.reservationAddr()));
    append(out, "next_seq=%llu resv_denied=%d block=%#llx\n",
           static_cast<unsigned long long>(s.next_seq),
           s.resv_denied ? 1 : 0,
           static_cast<unsigned long long>(s.resv_denied_block));
    for (std::size_t n = 0; n < s.dedup.size(); ++n) {
        const DedupEntry &de = s.dedup[n];
        if (de.seq == 0 && !de.has_reply)
            continue;
        append(out, "dedup[%zu]{seq=%llu has_reply=%d", n,
               static_cast<unsigned long long>(de.seq),
               de.has_reply ? 1 : 0);
        if (de.has_reply)
            out += " reply=" + debugString(de.reply);
        out += "}\n";
    }
    return out;
}

std::string
debugString(const Outcome &o)
{
    std::string out;
    for (const MemWrite &mw : o.mem_writes) {
        if (mw.is_block) {
            append(out, "mem{block=%#llx data=[",
                   static_cast<unsigned long long>(mw.addr));
            for (std::size_t i = 0; i < mw.block.size(); ++i)
                append(out, i ? ",%llu" : "%llu",
                       static_cast<unsigned long long>(mw.block[i]));
            out += "]}\n";
        } else {
            append(out, "mem{word=%#llx val=%llu}\n",
                   static_cast<unsigned long long>(mw.addr),
                   static_cast<unsigned long long>(mw.word));
        }
    }
    for (const DirWrite &dw : o.dir_writes) {
        const DirEntry &e = dw.entry;
        append(out, "dir{addr=%#llx state=%d sharers=%#llx owner=%d "
                    "busy=%d pend=%d wb=%d await=%d resv=%#llx "
                    "serial=%lu}\n",
               static_cast<unsigned long long>(dw.addr),
               static_cast<int>(e.state),
               static_cast<unsigned long long>(e.sharers), e.owner,
               e.busy ? 1 : 0, e.pending_requester, e.wb_received ? 1 : 0,
               e.await_wb ? 1 : 0,
               static_cast<unsigned long long>(e.reservations),
               static_cast<unsigned long>(e.serial));
    }
    const StatDelta &d = o.stats;
    append(out, "stats{nacks=%u retries=%u inv=%u upd=%u wb=%u drop=%u "
                "sclf=%u dup=%u/%u/%u/%u/%u nrep=%u nstale=%u stale=%u "
                "dabs=%u}\n",
           d.nacks, d.retries, d.invalidations, d.updates, d.writebacks,
           d.drop_notifies, d.sc_local_failures, d.dup_requests,
           d.dup_stale, d.dup_in_progress, d.dup_reprocessed,
           d.dup_replayed, d.nacks_replayed, d.nacks_stale,
           d.stale_replies, d.dups_absorbed);
    for (const Effect &ef : o.effects) {
        append(out, "effect{kind=%d delay=%llu addr=%#llx node=%d "
                    "a=%u b=%u id=%llu val=%llu ok=%d serial=%llu",
               static_cast<int>(ef.kind),
               static_cast<unsigned long long>(ef.delay),
               static_cast<unsigned long long>(ef.addr), ef.node, ef.a,
               ef.b, static_cast<unsigned long long>(ef.id),
               static_cast<unsigned long long>(ef.value),
               ef.flag ? 1 : 0,
               static_cast<unsigned long long>(ef.serial));
        if (ef.kind == EffectKind::SEND)
            out += " msg=" + debugString(ef.msg);
        if (ef.kind == EffectKind::TXN_SERVICE)
            append(out, " facts{ds=%u sh=%d fwd=%d own=%d mask=%#llx}",
                   ef.facts.dir_state, ef.facts.sharers,
                   ef.facts.forwarded ? 1 : 0, ef.facts.owner,
                   static_cast<unsigned long long>(ef.facts.fanout_mask));
        out += "}\n";
    }
    return out;
}

} // namespace tf
} // namespace dsm
