/**
 * @file
 * Whole-system coherence invariant checker.
 *
 * Intended to run on a quiesced system (no in-flight protocol traffic:
 * after System::run() completes all tasks, the run loop drains the
 * event queue). Verifies the classic single-writer/multiple-reader
 * invariants plus the directory/cache agreement this protocol promises:
 *
 *  - at most one EXCLUSIVE copy of any block exists, and the home
 *    directory names exactly that node as owner;
 *  - SHARED copies only exist for blocks the directory has SHARED, on
 *    nodes in the sharer vector, with data identical to memory;
 *  - UNCACHED blocks have no cached copies at all;
 *  - no directory entry is left busy;
 *  - UNC-policy synchronization blocks are never cached anywhere.
 */

#ifndef DSM_PROTO_CHECKER_HH
#define DSM_PROTO_CHECKER_HH

#include <string>
#include <vector>

namespace dsm {

class System;

/**
 * Check every coherence invariant on a quiesced system.
 * @return a description of each violation; empty means coherent.
 */
std::vector<std::string> checkCoherence(System &sys);

/**
 * Report the transaction tracer's Table 1 chain divergences: completed
 * operations whose observed serialized-message chain differs from the
 * analytic count for their (policy, op, directory state) case. Requires
 * Config::txn_trace.enabled; with tracing off the result is empty.
 * @return a description of each divergence; empty means all chains match.
 */
std::vector<std::string> checkChains(System &sys);

/**
 * Reconcile the fault injector's counters with the protocol statistics
 * they must agree with:
 *
 *  - with fault injection disabled every fault.* and recovery.*
 *    counter is zero (the zero-cost-when-off promise);
 *  - injected NACKs are a subset of all NACKs sent;
 *  - on a quiesced system (no tasks pending) every NACK — injected or
 *    organic — produced exactly one retry, so total retries equal
 *    total NACKs; under message loss the identity is corrected for
 *    NACKs lost in the mesh, discarded as stale by the requester
 *    guard, or replayed from the home's reply cache;
 *  - with the recovery layer armed the drop ledger reconciles: the
 *    injector's msg_drops + flaky_drops equal the ledger's drops, the
 *    request/reply split partitions them, and on a quiesced system
 *    every drop is covered by a retransmission or a link quarantine
 *    (a silently-lost message is a violation, not a hang).
 *
 * Counters are compared over the same window: System::clearStats()
 * resets the fault counters together with the protocol counters.
 * @return a description of each mismatch; empty means reconciled.
 */
std::vector<std::string> checkFaultAccounting(System &sys);

} // namespace dsm

#endif // DSM_PROTO_CHECKER_HH
