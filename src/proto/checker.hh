/**
 * @file
 * Coherence / Table 1 / fault-accounting invariant checkers.
 *
 * The core invariants run over *snapshots* (CoherenceView) and *facts*
 * (ChainFact), not over a live System: the event-driven simulator and
 * the exhaustive model checker (mc/explorer.cc) build the same
 * structures from their own worlds and share one checking code path.
 * No checker peeks into controller internals — everything it consumes
 * is public transition-function state (tf::CtrlState via
 * Controller::state()) or data carried by tf::Outcome records
 * (ServiceFacts from TXN_SERVICE effects, chains from messages).
 *
 * Coherence invariants (quiesced system, no in-flight traffic):
 *
 *  - at most one EXCLUSIVE copy of any block exists, and the home
 *    directory names exactly that node as owner;
 *  - SHARED copies only exist for blocks the directory has SHARED, on
 *    nodes in the sharer vector, with data identical to memory;
 *  - UNCACHED blocks have no cached copies at all;
 *  - no directory entry is left busy;
 *  - UNC-policy synchronization blocks are never cached anywhere.
 */

#ifndef DSM_PROTO_CHECKER_HH
#define DSM_PROTO_CHECKER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "mem/directory.hh"
#include "net/msg.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/** One node's cached copy of a block (snapshot). */
struct CopyView
{
    NodeId node = INVALID_NODE;
    LineState state = LineState::INVALID;
    std::array<Word, BLOCK_WORDS> data{};
};

/** Snapshot of everything known about one block. */
struct BlockView
{
    Addr block = 0;
    bool has_dir = false;       ///< a directory entry exists at the home
    DirEntry dir;               ///< valid when has_dir
    std::vector<CopyView> copies;
    std::array<Word, BLOCK_WORDS> mem{};
    /** The block is UNC-policy synchronization data (never cacheable). */
    bool unc_sync = false;
};

/**
 * A full-system coherence snapshot: per-block views plus structural
 * complaints collected while building it (e.g. a directory entry found
 * at a non-home node).
 */
struct CoherenceView
{
    std::vector<BlockView> blocks;
    std::vector<std::string> structural;
};

/** Build the snapshot of a (quiesced) simulated system. */
CoherenceView coherenceView(System &sys);

/**
 * Check every coherence invariant on a snapshot.
 * @return a description of each violation; empty means coherent.
 */
std::vector<std::string> checkCoherenceView(const CoherenceView &v);

/**
 * checkCoherenceView(coherenceView(sys)) — the simulator entry point.
 */
std::vector<std::string> checkCoherence(System &sys);

/**
 * Everything needed to validate one completed operation against the
 * paper's Table 1 serialized-message chains. The model checker fills
 * these directly from tf::Outcome records: the ServiceFacts of the
 * last TXN_SERVICE effect the home emitted for the operation, and the
 * observed chain at its COMPLETE effect.
 */
struct ChainFact
{
    AtomicOp op = AtomicOp::LOAD;
    NodeId requester = INVALID_NODE;
    NodeId home = INVALID_NODE;
    /** A home directory serviced the final attempt (misses only). */
    bool serviced = false;
    bool forwarded = false;
    NodeId owner = INVALID_NODE;
    std::uint64_t fanout_mask = 0;
    /** Longest serialized chain carried by any received message. */
    int observed_chain = 0;
};

/**
 * Analytic Table 1 serialized chain length for the case @p f observed:
 * the longest of the reply path (requester -> home [-> owner -> home]
 * -> requester) and any invalidation/update path (requester -> home ->
 * target -> requester), counting only inter-node messages. Unserviced
 * (cache-hit / local) cases are 0. Shares TxnTracer::expectedChain's
 * arithmetic.
 */
int expectedChain(const ChainFact &f);

/**
 * Check each fact's observed chain against its Table 1 expectation.
 * @return a description of each divergence; empty means all match.
 */
std::vector<std::string> checkChainFacts(
    const std::vector<ChainFact> &facts);

/**
 * Report the transaction tracer's Table 1 chain divergences: completed
 * operations whose observed serialized-message chain differs from the
 * analytic count for their (policy, op, directory state) case. Requires
 * Config::txn_trace.enabled; with tracing off the result is empty.
 * @return a description of each divergence; empty means all chains match.
 */
std::vector<std::string> checkChains(System &sys);

/**
 * Reconcile the fault injector's counters with the protocol statistics
 * they must agree with:
 *
 *  - with fault injection disabled every fault.* and recovery.*
 *    counter is zero (the zero-cost-when-off promise);
 *  - injected NACKs are a subset of all NACKs sent;
 *  - on a quiesced system (no tasks pending) every NACK — injected or
 *    organic — produced exactly one retry, so total retries equal
 *    total NACKs; under message loss the identity is corrected for
 *    NACKs lost in the mesh, discarded as stale by the requester
 *    guard, or replayed from the home's reply cache;
 *  - with the recovery layer armed the drop ledger reconciles: the
 *    injector's msg_drops + flaky_drops equal the ledger's drops, the
 *    request/reply split partitions them, and on a quiesced system
 *    every drop is covered by a retransmission or a link quarantine
 *    (a silently-lost message is a violation, not a hang).
 *
 * Counters are compared over the same window: System::clearStats()
 * resets the fault counters together with the protocol counters.
 * @return a description of each mismatch; empty means reconciled.
 */
std::vector<std::string> checkFaultAccounting(System &sys);

} // namespace dsm

#endif // DSM_PROTO_CHECKER_HH
