/**
 * @file
 * Home side of the controller: the directory protocol and the in-memory
 * execution of atomic primitives (UNC and UPD implementations, and the
 * home-side comparisons of the INVd/INVs compare_and_swap variants).
 *
 * Every home-targeted message queues behind the node's memory module,
 * which both models memory contention ("queued memory") and serializes
 * all directory mutations at this node.
 */

#include "cpu/system.hh"
#include "proto/controller.hh"
#include "sim/logging.hh"

namespace dsm {

void
Controller::homeEnqueue(const Msg &m)
{
    dsm_assert(_sys.homeOf(m.addr) == _id,
               "%s for block %#llx delivered to non-home node %d",
               toString(m.type), static_cast<unsigned long long>(m.addr),
               _id);
    Tick when = _sys.mem(_id).access(now());
    // Telemetry: attribute this request and its full home cost (memory
    // queueing plus service) to the block it targets.
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteService(m.addr, when - now());
    if (m.txn_id != 0) {
        // Owner replies re-enter the home queue: their transit leg
        // belongs to the reply path, not the request path.
        bool reply_leg = m.type == MsgType::OWNER_DATA_S ||
                         m.type == MsgType::OWNER_DATA_X ||
                         m.type == MsgType::CAS_OWNER_FAIL ||
                         m.type == MsgType::CAS_OWNER_FAIL_S ||
                         m.type == MsgType::FWD_NACK_RETRY ||
                         m.type == MsgType::FWD_NACK_WB;
        _sys.txns().markService(m.txn_id, _id, now(),
                                when - _sys.cfg().machine.mem_service_time,
                                when, reply_leg);
    }
    Msg copy = m;
    _sys.eq().schedule(when, [this, copy] { homeProcess(copy); });
}

void
Controller::homeProcess(const Msg &m)
{
    // Recovery layer: filter duplicate requests (timeout
    // retransmissions) before any directory action or fault hook, so a
    // request is never serviced twice unless re-execution is provably
    // idempotent. Runs after the memory-queue delay on purpose — a
    // duplicate costs real memory bandwidth, like any other request.
    if (!_dedup.empty() && recoverableRequest(m.type) && m.seq != 0 &&
        dedupRequest(m))
        return;
    // Fault injection: an extra NACK round for request types that
    // already carry retry machinery. Never for write-backs, drop
    // notifications, or owner replies — those have no retry path and
    // NACKing them would wedge the directory's busy-state machine.
    FaultPlan *fp = _sys.faults();
    if (fp != nullptr) {
        switch (m.type) {
          case MsgType::GET_S:
          case MsgType::GET_X:
          case MsgType::UPGRADE:
          case MsgType::CAS_HOME:
          case MsgType::SC_REQ:
          case MsgType::UNC_REQ:
          case MsgType::UPD_REQ:
            if (fp->injectNack(m.src)) {
                sendNack(m);
                return;
            }
            break;
          default:
            break;
        }
    }
    switch (m.type) {
      case MsgType::GET_S:
        homeGetS(m);
        break;
      case MsgType::GET_X:
        homeGetX(m);
        break;
      case MsgType::UPGRADE:
        homeUpgrade(m);
        break;
      case MsgType::CAS_HOME:
        homeCasHome(m);
        break;
      case MsgType::SC_REQ:
        homeScReq(m);
        break;
      case MsgType::UNC_REQ:
        homeUncReq(m);
        break;
      case MsgType::UPD_REQ:
        homeUpdReq(m);
        break;
      case MsgType::WB_DATA:
        homeWbData(m);
        break;
      case MsgType::DROP_NOTIFY:
        homeDropNotify(m);
        break;
      case MsgType::OWNER_DATA_S:
      case MsgType::OWNER_DATA_X:
      case MsgType::CAS_OWNER_FAIL:
      case MsgType::CAS_OWNER_FAIL_S:
      case MsgType::FWD_NACK_RETRY:
      case MsgType::FWD_NACK_WB:
        homeOwnerReply(m);
        break;
      default:
        dsm_panic("non-home message %s at home", toString(m.type));
    }
}

namespace {

/** Bit mask for one node. */
std::uint64_t
bit(NodeId n)
{
    return 1ULL << n;
}

} // namespace

void
Controller::homeGetS(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.busy) {
        sendNack(m);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED:
      case DirState::SHARED: {
        if (m.txn_id != 0)
            _sys.txns().service(m.txn_id, _id,
                                static_cast<std::uint8_t>(e.state),
                                e.numSharers(), false, INVALID_NODE, 0);
        setDirState(e, m.addr, DirState::SHARED);
        e.addSharer(m.src);
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteSharerJoin(m.addr);
        Msg r;
        r.type = MsgType::DATA_S;
        r.data = _sys.store().readBlock(m.addr);
        r.has_data = true;
        reply(m, r);
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            // The owner's write-back is in flight; retry resolves it.
            sendNack(m);
            return;
        }
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_GET_S;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.chain = chainNext(m.chain, _id, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        send(f);
        break;
      }
    }
}

void
Controller::homeGetX(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.busy) {
        sendNack(m);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED: {
        if (m.txn_id != 0)
            _sys.txns().service(m.txn_id, _id,
                                static_cast<std::uint8_t>(e.state), 0,
                                false, INVALID_NODE, 0);
        setDirState(e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteOwner(m.addr, m.src);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = _sys.store().readBlock(m.addr);
        r.has_data = true;
        r.ack_count = 0;
        reply(m, r);
        break;
      }
      case DirState::SHARED: {
        std::uint64_t others = e.sharers & ~bit(m.src);
        if (m.txn_id != 0)
            _sys.txns().service(m.txn_id, _id,
                                static_cast<std::uint8_t>(e.state),
                                e.numSharers(), false, INVALID_NODE,
                                others);
        setDirState(e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        e.sharers = 0;
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteOwner(m.addr, m.src);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = _sys.store().readBlock(m.addr);
        r.has_data = true;
        r.ack_count = __builtin_popcountll(others);
        reply(m, r);
        sendInvalidations(others, m);
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            sendNack(m);
            return;
        }
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_GET_X;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.chain = chainNext(m.chain, _id, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        send(f);
        break;
      }
    }
}

void
Controller::sendInvalidations(std::uint64_t targets, const Msg &req)
{
    LineProfiler *lp = _sys.lineProfiler();
    for (NodeId n = 0; n < _sys.numProcs(); ++n) {
        if (!(targets & bit(n)))
            continue;
        ++_sys.stats(_id).invalidations;
        if (lp != nullptr)
            lp->noteInvalidation(req.addr);
        Msg inv;
        inv.type = MsgType::INV;
        inv.dst = n;
        inv.requester = req.src;
        inv.addr = req.addr;
        inv.word_addr = req.word_addr;
        inv.chain = chainNext(req.chain, _id, n);
        inv.txn_id = req.txn_id;
        inv.seq = req.seq;
        send(inv);
    }
}

void
Controller::homeUpgrade(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.busy || e.state != DirState::SHARED || !e.isSharer(m.src)) {
        // The requester's copy was (or is being) invalidated; it will
        // retry, re-inspect its cache, and fall back to GET_X.
        sendNack(m);
        return;
    }
    std::uint64_t others = e.sharers & ~bit(m.src);
    if (m.txn_id != 0)
        _sys.txns().service(m.txn_id, _id,
                            static_cast<std::uint8_t>(e.state),
                            e.numSharers(), false, INVALID_NODE, others);
    setDirState(e, m.addr, DirState::EXCLUSIVE);
    e.owner = m.src;
    e.sharers = 0;
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteOwner(m.addr, m.src);
    Msg r;
    r.type = MsgType::UPG_ACK;
    r.ack_count = __builtin_popcountll(others);
    reply(m, r);
    sendInvalidations(others, m);
}

void
Controller::homeCasHome(const Msg &m)
{
    CasVariant variant = _sys.cfg().sync.cas_variant;
    dsm_assert(variant != CasVariant::PLAIN,
               "CAS_HOME under the plain INV variant");
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.busy) {
        sendNack(m);
        return;
    }
    switch (e.state) {
      case DirState::UNCACHED:
      case DirState::SHARED: {
        // Memory holds the most up-to-date copy; compare here.
        std::uint8_t dir_before = static_cast<std::uint8_t>(e.state);
        int sharers_before = e.numSharers();
        Word old = _sys.store().readWord(m.word_addr);
        if (old == m.expected) {
            // Equality: behave like INV; grant an exclusive copy and let
            // the requester perform the swap locally.
            std::uint64_t others =
                e.state == DirState::SHARED ? e.sharers & ~bit(m.src) : 0;
            if (m.txn_id != 0)
                _sys.txns().service(m.txn_id, _id, dir_before,
                                    sharers_before, false, INVALID_NODE,
                                    others);
            setDirState(e, m.addr, DirState::EXCLUSIVE);
            e.owner = m.src;
            e.sharers = 0;
            if (LineProfiler *lp = _sys.lineProfiler())
                lp->noteOwner(m.addr, m.src);
            Msg r;
            r.type = MsgType::DATA_X;
            r.data = _sys.store().readBlock(m.addr);
            r.has_data = true;
            r.ack_count = __builtin_popcountll(others);
            r.success = true;
            reply(m, r);
            sendInvalidations(others, m);
        } else if (variant == CasVariant::DENY) {
            if (m.txn_id != 0)
                _sys.txns().service(m.txn_id, _id, dir_before,
                                    sharers_before, false, INVALID_NODE,
                                    0);
            Msg r;
            r.type = MsgType::CAS_FAIL;
            r.result = old;
            reply(m, r);
        } else { // CasVariant::SHARE
            if (m.txn_id != 0)
                _sys.txns().service(m.txn_id, _id, dir_before,
                                    sharers_before, false, INVALID_NODE,
                                    0);
            setDirState(e, m.addr, DirState::SHARED);
            e.addSharer(m.src);
            if (LineProfiler *lp = _sys.lineProfiler())
                lp->noteSharerJoin(m.addr);
            Msg r;
            r.type = MsgType::CAS_FAIL_S;
            r.result = old;
            r.data = _sys.store().readBlock(m.addr);
            r.has_data = true;
            reply(m, r);
        }
        break;
      }
      case DirState::EXCLUSIVE: {
        if (e.owner == m.src) {
            sendNack(m);
            return;
        }
        // The owner has the most up-to-date copy; forward the comparison.
        e.busy = true;
        e.pending_requester = m.src;
        Msg f;
        f.type = MsgType::FWD_CAS;
        f.dst = e.owner;
        f.requester = m.src;
        f.addr = m.addr;
        f.word_addr = m.word_addr;
        f.value = m.value;
        f.expected = m.expected;
        f.chain = chainNext(m.chain, _id, e.owner);
        f.txn_id = m.txn_id;
        f.seq = m.seq;
        f.attempt = m.attempt;
        send(f);
        break;
      }
    }
}

void
Controller::homeScReq(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.busy) {
        sendNack(m);
        return;
    }
    if (e.state == DirState::SHARED && e.isSharer(m.src)) {
        // Success: the requester still holds a valid copy. Grant
        // exclusivity and invalidate the other holders (Section 3).
        std::uint64_t others = e.sharers & ~bit(m.src);
        if (m.txn_id != 0)
            _sys.txns().service(m.txn_id, _id,
                                static_cast<std::uint8_t>(e.state),
                                e.numSharers(), false, INVALID_NODE,
                                others);
        setDirState(e, m.addr, DirState::EXCLUSIVE);
        e.owner = m.src;
        e.sharers = 0;
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteOwner(m.addr, m.src);
        if (e.reservations != 0)
            traceResv(TraceCat::RESV_CLEAR, m.addr);
        e.clearReservations();
        e.bumpSerial();
        Msg r;
        r.type = MsgType::SC_RESP;
        r.success = true;
        r.ack_count = __builtin_popcountll(others);
        reply(m, r);
        sendInvalidations(others, m);
    } else {
        // Exclusive elsewhere or uncached: fail.
        if (m.txn_id != 0)
            _sys.txns().service(m.txn_id, _id,
                                static_cast<std::uint8_t>(e.state),
                                e.numSharers(), false, INVALID_NODE, 0);
        Msg r;
        r.type = MsgType::SC_RESP;
        r.success = false;
        reply(m, r);
    }
}

Controller::MemOpOut
Controller::memoryOp(const Msg &m)
{
    BackingStore &st = _sys.store();
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    Word old = st.readWord(m.word_addr);
    Word result = old;
    bool success = true;
    bool wrote = false;

    switch (m.op) {
      case AtomicOp::LOAD:
      case AtomicOp::LOAD_EXCL:
      case AtomicOp::LLS:
        // Serial-number load_linked needs no reservation: the serial
        // returned alongside the value does the job (Section 3.1).
        break;
      case AtomicOp::LL: {
        int limit = _sys.cfg().machine.max_memory_reservations;
        if (limit > 0 && !e.hasReservation(m.src) &&
            e.numReservations() >= limit) {
            // Beyond-the-limit: return a failure indicator instead of a
            // reservation (Section 3.1, option 3).
            success = false;
        } else {
            e.setReservation(m.src);
            traceResv(TraceCat::RESV_SET, m.addr);
        }
        break;
      }
      case AtomicOp::STORE:
        st.writeWord(m.word_addr, m.value);
        wrote = true;
        result = 0;
        break;
      case AtomicOp::TAS:
        st.writeWord(m.word_addr, 1);
        wrote = true;
        break;
      case AtomicOp::FAA:
        st.writeWord(m.word_addr, old + m.value);
        wrote = true;
        break;
      case AtomicOp::FAS:
        st.writeWord(m.word_addr, m.value);
        wrote = true;
        break;
      case AtomicOp::FAO:
        st.writeWord(m.word_addr, old | m.value);
        wrote = true;
        break;
      case AtomicOp::CAS:
        if (old == m.expected) {
            st.writeWord(m.word_addr, m.value);
            wrote = true;
        } else {
            success = false;
        }
        break;
      case AtomicOp::SC:
        result = 0;
        if (e.hasReservation(m.src)) {
            st.writeWord(m.word_addr, m.value);
            wrote = true;
        } else {
            success = false;
        }
        break;
      case AtomicOp::SCS:
        // Serial-number store_conditional, possibly "bare" (with no
        // preceding load_linked): succeeds iff the expected serial
        // matches the block's write counter.
        result = 0;
        if (e.serial == static_cast<std::uint32_t>(m.serial)) {
            st.writeWord(m.word_addr, m.value);
            wrote = true;
        } else {
            success = false;
            result = old; // report the current value on failure
        }
        break;
      default:
        dsm_panic("memoryOp on %s", toString(m.op));
    }

    if (wrote) {
        // Any write or successful SC clears the reservation vector
        // (Section 3) and bumps the block's write serial number.
        if (e.reservations != 0)
            traceResv(TraceCat::RESV_CLEAR, m.addr);
        e.clearReservations();
        e.bumpSerial();
    }
    return {result, success, e.serial};
}

void
Controller::homeUncReq(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    dsm_assert(e.state == DirState::UNCACHED && !e.busy,
               "UNC access to a block with cached copies");
    if (m.txn_id != 0)
        _sys.txns().service(m.txn_id, _id,
                            static_cast<std::uint8_t>(e.state), 0, false,
                            INVALID_NODE, 0);
    MemOpOut out = memoryOp(m);
    Msg r;
    r.type = MsgType::UNC_RESP;
    r.result = out.result;
    r.success = out.success;
    r.serial = out.serial;
    reply(m, r);
}

void
Controller::homeUpdReq(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    dsm_assert(e.state != DirState::EXCLUSIVE && !e.busy,
               "UPD region block is exclusive");
    std::uint8_t dir_before = static_cast<std::uint8_t>(e.state);
    int sharers_before = e.numSharers();
    Word before = _sys.store().readWord(m.word_addr);
    MemOpOut out = memoryOp(m);
    Word newval = _sys.store().readWord(m.word_addr);

    int nupdates = 0;
    std::uint64_t upd_mask = 0;
    // "Only successful writes cause updates" (Section 4.3.1): a write
    // that leaves the word unchanged (e.g. a failed test_and_set
    // storing 1 over 1) sends no update messages.
    if (effectiveWrite(m.op, out.success) && newval != before) {
        for (NodeId n = 0; n < _sys.numProcs(); ++n) {
            if (n == m.src || !e.isSharer(n))
                continue;
            ++_sys.stats(_id).updates;
            ++nupdates;
            upd_mask |= bit(n);
            Msg u;
            u.type = MsgType::UPDATE;
            u.dst = n;
            u.requester = m.src;
            u.addr = m.addr;
            u.word_addr = m.word_addr;
            u.result = newval;
            u.chain = chainNext(m.chain, _id, n);
            u.txn_id = m.txn_id;
            u.seq = m.seq;
            send(u);
        }
    }
    if (m.txn_id != 0)
        _sys.txns().service(m.txn_id, _id, dir_before, sharers_before,
                            false, INVALID_NODE, upd_mask);

    // The requester retains (or obtains) a shared copy.
    setDirState(e, m.addr, DirState::SHARED);
    e.addSharer(m.src);
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteSharerJoin(m.addr);

    Msg r;
    r.type = MsgType::UPD_RESP;
    r.result = out.result;
    r.success = out.success;
    r.serial = out.serial;
    r.ack_count = nupdates;
    r.data = _sys.store().readBlock(m.addr);
    r.has_data = true;
    reply(m, r);
}

void
Controller::homeWbData(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    dsm_assert(e.state == DirState::EXCLUSIVE && e.owner == m.src,
               "write-back of %#llx from non-owner %d (state %s)",
               static_cast<unsigned long long>(m.addr), m.src,
               toString(e.state));
    _sys.store().writeBlock(m.addr, m.data);
    if (!e.busy) {
        setDirState(e, m.addr, DirState::UNCACHED);
        e.owner = INVALID_NODE;
        return;
    }
    // A forward to the (former) owner is outstanding; it will bounce
    // with FWD_NACK_WB. Remember that the data has arrived.
    e.wb_received = true;
    if (e.await_wb) {
        // The bounce already arrived; finish the transaction now.
        NodeId req = e.pending_requester;
        setDirState(e, m.addr, DirState::UNCACHED);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.await_wb = false;
        e.wb_received = false;
        e.pending_requester = INVALID_NODE;
        nackNode(req, m.addr);
    }
}

void
Controller::nackNode(NodeId n, Addr block)
{
    ++_sys.stats(_id).nacks;
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteNack(block);
    traceNack(n, block, MsgType::NACK);
    Msg r;
    r.type = MsgType::NACK;
    r.dst = n;
    r.requester = n;
    r.addr = block;
    r.word_addr = block;
    r.chain = 1;
    // The waiting requester has exactly one transaction in flight on
    // this block; stamp its id so the NACK closes the right phase.
    if (_sys.txns().enabled())
        r.txn_id = _sys.txns().activeId(n);
    if (!_dedup.empty()) {
        // Stamp the requester's in-progress seq (the forward that
        // bounced here carried it) and cache the NACK so a racing
        // retransmission replays it instead of re-entering the
        // directory.
        r.seq = _dedup[static_cast<std::size_t>(n)].seq;
        captureReply(n, r.seq, r);
    }
    send(r);
}

void
Controller::homeDropNotify(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    if (e.state == DirState::SHARED && e.isSharer(m.src)) {
        e.removeSharer(m.src);
        if (e.sharers == 0)
            setDirState(e, m.addr, DirState::UNCACHED);
    }
    // Otherwise the notification raced with a state change; ignore it.
}

void
Controller::homeOwnerReply(const Msg &m)
{
    DirEntry &e = _sys.dir(_id).entry(m.addr);
    dsm_assert(e.busy && e.state == DirState::EXCLUSIVE &&
               e.owner == m.src,
               "%s from %d out of protocol", toString(m.type), m.src);
    NodeId req = e.pending_requester;

    // A data-carrying owner reply means the forwarded case was
    // serviced: record the facts for Table 1 validation.
    if (m.txn_id != 0 && m.type != MsgType::FWD_NACK_RETRY &&
        m.type != MsgType::FWD_NACK_WB)
        _sys.txns().service(m.txn_id, _id,
                            static_cast<std::uint8_t>(DirState::EXCLUSIVE),
                            0, true, m.src, 0);

    auto respond = [&](Msg r) {
        r.dst = req;
        r.requester = req;
        r.addr = m.addr;
        r.word_addr = m.word_addr;
        r.chain = chainNext(m.chain, _id, req);
        r.txn_id = m.txn_id;
        r.seq = m.seq;
        r.attempt = m.attempt;
        if (!_dedup.empty() && m.seq != 0)
            captureReply(req, m.seq, r);
        send(r);
    };

    switch (m.type) {
      case MsgType::OWNER_DATA_S: {
        _sys.store().writeBlock(m.addr, m.data);
        setDirState(e, m.addr, DirState::SHARED);
        e.sharers = bit(m.src) | bit(req);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        // The former owner downgraded in place; only req is new.
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteSharerJoin(m.addr);
        Msg r;
        r.type = MsgType::DATA_S;
        r.data = m.data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::OWNER_DATA_X: {
        e.owner = req;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteOwner(m.addr, req);
        Msg r;
        r.type = MsgType::DATA_X;
        r.data = m.data;
        r.has_data = true;
        r.ack_count = 0;
        r.success = true;
        respond(r);
        break;
      }
      case MsgType::CAS_OWNER_FAIL: {
        // INVd: the owner keeps its exclusive copy.
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        Msg r;
        r.type = MsgType::CAS_FAIL;
        r.result = m.result;
        respond(r);
        break;
      }
      case MsgType::CAS_OWNER_FAIL_S: {
        // INVs: the owner downgraded; both nodes share the line.
        _sys.store().writeBlock(m.addr, m.data);
        setDirState(e, m.addr, DirState::SHARED);
        e.sharers = bit(m.src) | bit(req);
        e.owner = INVALID_NODE;
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        if (LineProfiler *lp = _sys.lineProfiler())
            lp->noteSharerJoin(m.addr);
        Msg r;
        r.type = MsgType::CAS_FAIL_S;
        r.result = m.result;
        r.data = m.data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::FWD_NACK_RETRY: {
        e.busy = false;
        e.pending_requester = INVALID_NODE;
        nackNode(req, m.addr);
        break;
      }
      case MsgType::FWD_NACK_WB: {
        if (e.wb_received) {
            setDirState(e, m.addr, DirState::UNCACHED);
            e.owner = INVALID_NODE;
            e.busy = false;
            e.wb_received = false;
            e.pending_requester = INVALID_NODE;
            nackNode(req, m.addr);
        } else {
            e.await_wb = true;
        }
        break;
      }
      default:
        dsm_panic("unexpected owner reply %s", toString(m.type));
    }
}

} // namespace dsm
