/**
 * @file
 * Per-node coherence/synchronization controller.
 *
 * Each processing node has one Controller that plays three roles:
 *
 * 1. **CPU side** — services the local processor's (single outstanding)
 *    memory or synchronization operation: cache hits complete locally;
 *    misses launch a protocol transaction and complete when the response
 *    (plus any invalidation/update acknowledgements) arrives. Atomic
 *    primitives execute here for the INV implementations (computational
 *    power in the cache controllers, Section 3).
 *
 * 2. **Home side** — owns the directory and memory module for the blocks
 *    whose home is this node. Atomic primitives execute here for the UNC
 *    and UPD implementations (computational power in the memory), and the
 *    INVd/INVs compare_and_swap comparisons happen here when memory has
 *    the most up-to-date copy.
 *
 * 3. **Remote side** — answers invalidations, word updates, and requests
 *    forwarded to this node as the exclusive owner of a line (including
 *    the INVd/INVs comparison when the owner has the up-to-date copy).
 *
 * The protocol is DASH-style: requests to a busy directory entry are
 * NACKed and retried; invalidation acknowledgements are collected by the
 * requester. The serialized-message counts of Table 1 fall out of these
 * flows and are checked by tests/bench via the Msg::chain field.
 */

#ifndef DSM_PROTO_CONTROLLER_HH
#define DSM_PROTO_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache.hh"
#include "mem/directory.hh"
#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace dsm {

class System;

/** Result of a completed processor operation. */
struct OpResult
{
    /**
     * For loads and fetch_and_Phi: the value read (the original value).
     * For compare_and_swap: the original value of the destination.
     * For stores and store_conditional: 0.
     */
    Word value = 0;
    /** For compare_and_swap / store_conditional: the verdict. */
    bool success = true;
    /**
     * The block's write serial number (Section 3.1), reported by every
     * memory-executed operation (UNC/UPD policies). Consumed by the
     * serial-number load_linked/store_conditional primitives.
     */
    Word serial = 0;
};

/** One node's cache/directory controller. */
class Controller
{
  public:
    using DoneFn = std::function<void(OpResult)>;

    Controller(System &sys, NodeId id);

    Controller(const Controller &) = delete;
    Controller &operator=(const Controller &) = delete;

    /**
     * Issue a processor operation. Exactly one operation may be
     * outstanding; the processor model enforces this by blocking.
     * @param done Invoked once, at the operation's completion tick.
     */
    void cpuRequest(AtomicOp op, Addr addr, Word value, Word expected,
                    DoneFn done);

    /** True while a processor operation is in flight. */
    bool cpuBusy() const { return _txn.active; }

    /** @name Active-transaction introspection (watchdogs, failure
     *  dumps). Meaningful only while cpuBusy(). @{ */
    AtomicOp cpuOp() const { return _txn.op; }
    Addr cpuAddr() const { return _txn.addr; }
    Tick cpuStart() const { return _txn.start; }
    int cpuRetries() const { return _txn.retries; }
    bool cpuWaiting() const { return _txn.waiting; }
    int cpuAttempt() const { return _txn.attempt; }
    /** @} */

    /**
     * The request seq this node currently awaits a reply for, or 0
     * when none is outstanding (recovery layer; see fault/recovery.hh).
     */
    std::uint64_t
    cpuAwaitedSeq() const
    {
        return _txn.active && _txn.waiting ? _txn.seq : 0;
    }

    /** Network/local message delivery entry point. */
    void handleMsg(const Msg &m);

    /** The node's cache (exposed for tests and debug reads). */
    Cache &cache() { return _cache; }
    const Cache &cache() const { return _cache; }

    NodeId id() const { return _id; }

  private:
    /** State of the single outstanding CPU-side transaction. */
    struct Txn
    {
        bool active = false;
        AtomicOp op = AtomicOp::LOAD;
        Addr addr = 0;      ///< word address of the operand
        Word value = 0;     ///< operand / new value
        Word expected = 0;  ///< CAS expected value
        DoneFn done;
        Tick start = 0;

        bool waiting = false;    ///< a network request is outstanding
        bool resp_seen = false;  ///< primary response arrived
        int acks_needed = 0;
        int acks_got = 0;
        Word resp_value = 0;
        bool resp_success = false;
        Word resp_serial = 0;
        int max_chain = 0;       ///< longest serialized message chain
        int retries = 0;
        std::uint32_t trace_flow = 0; ///< tracer flow id for this op
        std::uint64_t txn_id = 0;     ///< transaction-tracer id (0 = off)

        /** @name Recovery layer (meaningful only when it is armed). @{ */
        std::uint64_t seq = 0;   ///< seq of the outstanding request
        int attempt = 1;         ///< retransmission attempt for seq
        MsgType req_type = MsgType::NACK; ///< outstanding request type
        /** @} */
    };

    /**
     * Home-side recovery state for one requester: the highest request
     * seq seen and, once sent, a copy of its reply. One slot per
     * requester suffices — each CPU has a single outstanding operation
     * and per-destination delivery is FIFO, so a request with a newer
     * seq proves every older seq is finished with.
     */
    struct DedupEntry
    {
        std::uint64_t seq = 0;
        bool has_reply = false;
        Msg reply;
    };

    // ===================== CPU side (controller_cpu.cc) ==================

    /** (Re)dispatch the active transaction from current cache state. */
    void beginTxn();
    void beginInv();
    void beginUnc();
    void beginUpd();

    /** Complete the active transaction now. */
    void finishTxn(Word value, bool success, Word serial = 0);
    /** Complete after @p delay cycles (used for cache hits). */
    void finishTxnAfter(Tick delay, Word value, bool success,
                        Word serial = 0);
    /** Schedule a retry of the active transaction after a NACK. */
    void retryTxn();

    /** Send a CPU-side request to the home node of the txn address. */
    void sendReq(MsgType t);
    /** Build the network request message for the active transaction. */
    Msg buildReq(MsgType t) const;
    /** Schedule the loss-recovery retransmission timer (recovery on). */
    void armRecoveryTimer();
    /** Timer body: retransmit if (seq, attempt) is still outstanding. */
    void recoveryTimeout(std::uint64_t seq, int attempt);

    /** Handle a response addressed to this node as requester. */
    void cpuResponse(const Msg &m);
    /** Exclusive grant complete: run the deferred local operation. */
    void completeExclusive();
    /** UPD response complete (response + update acks). */
    void completeUpd();
    /** Track limited-reservation denials from LL responses. */
    void noteReservationVerdict(const Msg &m);
    /** Try to complete an ack-gated transaction. */
    void maybeComplete();

    /** Install a block in the cache, handling victim write-back. */
    CacheLine *installLine(Addr addr, LineState state,
                           const std::array<Word, BLOCK_WORDS> &data);
    /** Write back / drop an evicted line. */
    void evictVictim(const Victim &v);

    /** New value of a fetch_and_Phi/store on @p old with @p operand. */
    static Word applyOp(AtomicOp op, Word old, Word operand);
    /** True if @p op (with verdict @p success) wrote memory. */
    static bool effectiveWrite(AtomicOp op, bool success);

    // ===================== Home side (controller_home.cc) ================

    /** Queue a home-targeted message behind the memory module. */
    void homeEnqueue(const Msg &m);
    /** Process a home-targeted message after the memory access. */
    void homeProcess(const Msg &m);

    void homeGetS(const Msg &m);
    void homeGetX(const Msg &m);
    void homeUpgrade(const Msg &m);
    void homeCasHome(const Msg &m);
    void homeScReq(const Msg &m);
    void homeUncReq(const Msg &m);
    void homeUpdReq(const Msg &m);
    void homeWbData(const Msg &m);
    void homeDropNotify(const Msg &m);
    void homeOwnerReply(const Msg &m);

    /** Outcome of a memory-executed operation. */
    struct MemOpOut
    {
        Word result = 0;
        bool success = true;
        /** Block write serial number after the operation. */
        Word serial = 0;
    };

    /**
     * Perform an operation on memory at the home (UNC/UPD execution of
     * atomic primitives), maintaining the in-memory reservation vector
     * and the block's write serial number.
     */
    MemOpOut memoryOp(const Msg &m);

    /**
     * Recovery-layer request dedup, run before any directory action.
     * Returns true when the message was fully handled here (stale or
     * in-progress duplicate dropped, or a cached reply replayed) and
     * homeProcess must not act on it.
     */
    bool dedupRequest(const Msg &m);
    /** Cache @p resp as the reply to @p requester's seq @p seq. */
    void captureReply(NodeId requester, std::uint64_t seq,
                      const Msg &resp);

    /** Send a NACK for a request. */
    void sendNack(const Msg &req);
    /** Send a NACK to a node that is not the direct message source. */
    void nackNode(NodeId n, Addr block);
    /** Reply to a request (fills src/dst/requester/addr/chain). */
    void reply(const Msg &req, Msg resp);
    /** Send INV to every node in the @p targets bit mask. */
    void sendInvalidations(std::uint64_t targets, const Msg &req);

    // ===================== Remote side (controller_net.cc) ===============

    void handleInv(const Msg &m);
    void handleUpdate(const Msg &m);
    void handleFwd(const Msg &m);

    // ===================== Common helpers =================================

    void send(Msg m);
    Tick now() const;

    // ===================== Trace hooks ====================================

    /** Record a cache-line state transition (LINE_STATE category). */
    void traceLineState(Addr block, LineState from, LineState to);
    /** Change a directory entry's stable state, counting + tracing. */
    void setDirState(DirEntry &e, Addr block, DirState to);
    /** Record an LL reservation set/clear at this node. */
    void traceResv(TraceCat cat, Addr block);
    /** Record a NACK aimed at @p victim. */
    void traceNack(NodeId victim, Addr block, MsgType req_type);

    /** Chain length of a message sent with parent chain @p parent. */
    static int
    chainNext(int parent, NodeId src, NodeId dst)
    {
        return parent + (src != dst ? 1 : 0);
    }

    System &_sys;
    NodeId _id;
    Cache _cache;
    Txn _txn;

    /** Next request seq for this node (recovery layer; 0 = unused). */
    std::uint64_t _next_seq = 0;
    /** Per-requester dedup table; empty when the recovery layer is off. */
    std::vector<DedupEntry> _dedup;

    /**
     * Set when an in-memory load_linked was denied a reservation
     * (limited-reservation option, Section 3.1): the matching
     * store_conditional fails locally without network traffic.
     */
    bool _resv_denied = false;
    Addr _resv_denied_block = 0;
};

} // namespace dsm

#endif // DSM_PROTO_CONTROLLER_HH
