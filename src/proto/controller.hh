/**
 * @file
 * Per-node coherence/synchronization controller — the event-driven
 * *driver* over the pure transition functions in proto/transition.hh.
 *
 * Each processing node has one Controller that plays three roles
 * (CPU side, home directory side, remote side; see transition_*.cc for
 * the protocol itself). The driver owns everything a pure transition
 * cannot: the event queue, the mesh, the memory-module queue, RNG draws
 * (retry backoff jitter), fault injection, the completion callback, and
 * the Tracer/TxnTracer/LineProfiler/Recovery hook sinks bundled in a
 * ProtoHooks. A delivered message becomes a tf::deliver() call whose
 * Outcome is then committed: memory and directory writes applied, stat
 * deltas folded in, and effects walked in order (sends scheduled,
 * trace records emitted, completions/retries/timers armed).
 *
 * The protocol is DASH-style: requests to a busy directory entry are
 * NACKed and retried; invalidation acknowledgements are collected by the
 * requester. The serialized-message counts of Table 1 fall out of these
 * flows and are checked by tests/bench via the Msg::chain field.
 */

#ifndef DSM_PROTO_CONTROLLER_HH
#define DSM_PROTO_CONTROLLER_HH

#include <cstdint>
#include <functional>

#include "cache/cache.hh"
#include "net/msg.hh"
#include "proto/transition.hh"
#include "sim/types.hh"

namespace dsm {

class System;
struct ProtoHooks;

/** Result of a completed processor operation. */
struct OpResult
{
    /**
     * For loads and fetch_and_Phi: the value read (the original value).
     * For compare_and_swap: the original value of the destination.
     * For stores and store_conditional: 0.
     */
    Word value = 0;
    /** For compare_and_swap / store_conditional: the verdict. */
    bool success = true;
    /**
     * The block's write serial number (Section 3.1), reported by every
     * memory-executed operation (UNC/UPD policies). Consumed by the
     * serial-number load_linked/store_conditional primitives.
     */
    Word serial = 0;
};

/** One node's cache/directory controller (transition-function driver). */
class Controller : private tf::StepCtx
{
  public:
    using DoneFn = std::function<void(OpResult)>;

    Controller(System &sys, NodeId id);

    Controller(const Controller &) = delete;
    Controller &operator=(const Controller &) = delete;

    /**
     * Issue a processor operation. Exactly one operation may be
     * outstanding; the processor model enforces this by blocking.
     * @param done Invoked once, at the operation's completion tick.
     */
    void cpuRequest(AtomicOp op, Addr addr, Word value, Word expected,
                    DoneFn done);

    /** True while a processor operation is in flight. */
    bool cpuBusy() const { return _st.txn.active; }

    /** @name Active-transaction introspection (watchdogs, failure
     *  dumps). Meaningful only while cpuBusy(). @{ */
    AtomicOp cpuOp() const { return _st.txn.op; }
    Addr cpuAddr() const { return _st.txn.addr; }
    Tick cpuStart() const { return _st.txn.start; }
    int cpuRetries() const { return _st.txn.retries; }
    bool cpuWaiting() const { return _st.txn.waiting; }
    int cpuAttempt() const { return _st.txn.attempt; }
    /** @} */

    /**
     * The request seq this node currently awaits a reply for, or 0
     * when none is outstanding (recovery layer; see fault/recovery.hh).
     */
    std::uint64_t
    cpuAwaitedSeq() const
    {
        return _st.txn.active && _st.txn.waiting ? _st.txn.seq : 0;
    }

    /** @name Overload-protection park state (serve.*). A transaction
     *  deliberately waiting out a contention backoff or a credit
     *  throttle is parked, not livelocked; the Watchdog classifies it
     *  as `throttled` instead of tripping. @{ */
    enum class ParkKind { NONE, BACKOFF, THROTTLED };
    ParkKind cpuParkKind() const { return _park_kind; }
    Tick cpuParkedUntil() const { return _park_until; }
    /** Cycles this transaction has spent deliberately parked. */
    Tick cpuParkedCycles() const { return _parked_total; }
    /** @} */

    /** Network/local message delivery entry point. */
    void handleMsg(const Msg &m);

    /** The node's cache (exposed for tests and debug reads). */
    Cache &cache() { return _st.cache; }
    const Cache &cache() const { return _st.cache; }

    /** The full protocol-visible state (transition-function view). */
    const tf::CtrlState &state() const { return _st; }

    NodeId id() const { return _id; }

  private:
    /** @name tf::StepCtx — the transitions' read-only world view. @{ */
    bool isSync(Addr a) const override;
    DirEntry dirEntry(Addr block) const override;
    Word memWord(Addr a) const override;
    std::array<Word, BLOCK_WORDS> memBlock(Addr block) const override;
    std::uint64_t activeTxnId(NodeId n) const override;
    /** @} */

    /** Per-call environment handed to every transition function. */
    tf::Env env() const;

    /** The hook sink bundle for this node (see proto/hooks.hh). */
    ProtoHooks hooks();

    /**
     * Commit one transition outcome: apply memory writes, directory
     * writes, and the stat delta, then walk the effects in order —
     * trace/profiler/txn records go through ProtoHooks; SEND, COMPLETE,
     * RETRY, and ARM_TIMER are driver-owned (scheduling, RNG, the
     * completion callback).
     */
    void commit(tf::Outcome o);

    /** Complete the active transaction now (COMPLETE effect body). */
    void finishNow(Word value, bool success, Word serial);

    /** RETRY effect body: watchdog/trace/backoff + scheduled redispatch. */
    void driverRetry();

    /** Schedule the loss-recovery retransmission timer (recovery on). */
    void armRecoveryTimer();
    /** Timer body: retransmit if (seq, attempt) is still outstanding. */
    void recoveryTimeout(std::uint64_t seq, int attempt);

    /** Queue a home-targeted message behind the memory module. */
    void homeEnqueue(const Msg &m);
    /** Home service after the memory access: dedup, faults, deliver. */
    void homeService(const Msg &m);

    /** @name Overload-protection serving (serve.enabled). @{ */
    /** Reserve the next memory service slot when work is queued. */
    void homePump();
    /** Slot body: pick a head, form a combining batch, serve it. */
    void homeServiceSlot(Tick when);
    /** Late service marks for a queued request served at @p when. */
    void noteHomeService(const Msg &m, Tick enq, Tick when);
    /** Credit feedback from a reply: enter/extend the throttle. */
    void noteCredit(int qdepth);
    /** @} */

    /** Stamp src and inject into the mesh. */
    void send(Msg m);
    Tick now() const;

    System &_sys;
    NodeId _id;
    tf::CtrlState _st;

    /** Completion callback of the outstanding operation (driver-only). */
    DoneFn _done;
    /** Tracer flow id of the outstanding operation (driver-only). */
    std::uint32_t _trace_flow = 0;

    /** @name Overload-protection driver state (serve.enabled only). @{ */
    /** A memory service slot is reserved for this home's queue. */
    bool _slot_scheduled = false;
    /** This requester is credit-throttled until this tick. */
    Tick _throttled_until = 0;
    /** Park state of the active transaction (watchdog classification). */
    Tick _park_until = 0;
    ParkKind _park_kind = ParkKind::NONE;
    /** Total parked cycles of the active transaction. */
    Tick _parked_total = 0;
    /** @} */
};

} // namespace dsm

#endif // DSM_PROTO_CONTROLLER_HH
