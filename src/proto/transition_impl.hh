/**
 * @file
 * Internal helpers shared by the transition-function implementation
 * files (transition.cc, transition_cpu.cc, transition_home.cc,
 * transition_net.cc). Not part of the public API.
 */

#ifndef DSM_PROTO_TRANSITION_IMPL_HH
#define DSM_PROTO_TRANSITION_IMPL_HH

#include "proto/transition.hh"

namespace dsm {
namespace tf {
namespace detail {

/** Chain length of a message sent with parent chain @p parent. */
inline int
chainNext(int parent, NodeId src, NodeId dst)
{
    return parent + (src != dst ? 1 : 0);
}

/** New value of a fetch_and_Phi/store on @p old with @p operand. */
Word applyOp(AtomicOp op, Word old, Word operand);
/** True if @p op (with verdict @p success) wrote memory. */
bool effectiveWrite(AtomicOp op, bool success);

/** @name Effect emitters (append to o.effects in call order). @{ */
void emitSend(Outcome &o, const Msg &m, Tick delay = 0);
void emitTraceLine(Outcome &o, Addr block, LineState from, LineState to);
void emitTraceResv(Outcome &o, Addr block, bool clear);
void emitTraceNack(Outcome &o, NodeId victim, Addr block,
                   MsgType req_type);
void emitLp(Outcome &o, EffectKind kind, Addr block,
            NodeId node = INVALID_NODE);
void emitTxnMark(Outcome &o, std::uint64_t id, std::uint8_t phase,
                 Tick delay, NodeId node);
void emitTxnService(Outcome &o, std::uint64_t id,
                    const ServiceFacts &facts);
void emitComplete(Outcome &o, Tick delay, Word value, bool success,
                  Word serial = 0);
void emitRetry(Outcome &o);
void emitArmTimer(Outcome &o);
/** @} */

/** Change a directory entry's stable state, emitting the transition. */
void setDirState(Outcome &o, DirEntry &e, Addr block, DirState to);

/** Reply to a request (fills src-independent routing + dedup capture). */
void reply(const Env &env, CtrlState &s, Outcome &o, const Msg &req,
           Msg resp);
/** Cache @p resp as the reply to @p requester's seq @p seq. */
void captureReply(CtrlState &s, NodeId requester, std::uint64_t seq,
                  const Msg &resp);
/** NACK a request (stat + profiler + trace + reply). */
void sendNack(const Env &env, CtrlState &s, Outcome &o, const Msg &req);
/** NACK a node that is not the direct message source. */
void nackNode(const Env &env, CtrlState &s, Outcome &o, NodeId n,
              Addr block);

/** Install a block in the cache, handling victim write-back. */
CacheLine *installLine(const Env &env, CtrlState &s, Outcome &o,
                       Addr addr, LineState state,
                       const std::array<Word, BLOCK_WORDS> &data);
/** Write back / drop an evicted line. */
void evictVictim(const Env &env, CtrlState &s, Outcome &o,
                 const Victim &v);

/** Build the network request message for the active transaction. */
Msg buildReq(const Env &env, const CtrlState &s, MsgType t);

/** Read a home-memory word/block honoring writes already in @p o. */
Word readWordAfter(const Env &env, const Outcome &o, Addr a);
std::array<Word, BLOCK_WORDS> readBlockAfter(const Env &env,
                                             const Outcome &o,
                                             Addr block);

/** @name Per-role delivery bodies (dispatched by deliver()). @{ */
void cpuResponse(const Env &env, CtrlState &s, Outcome &o, const Msg &m);
void homeDispatch(const Env &env, CtrlState &s, Outcome &o,
                  const Msg &m);
void handleInv(const Env &env, CtrlState &s, Outcome &o, const Msg &m);
void handleUpdate(const Env &env, CtrlState &s, Outcome &o,
                  const Msg &m);
void handleFwd(const Env &env, CtrlState &s, Outcome &o, const Msg &m);
/** @} */

} // namespace detail
} // namespace tf
} // namespace dsm

#endif // DSM_PROTO_TRANSITION_IMPL_HH
