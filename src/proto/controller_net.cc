/**
 * @file
 * Remote side of the controller: invalidations, word updates, and
 * requests forwarded to this node as the exclusive owner of a line
 * (including the owner-side comparison of the INVd/INVs
 * compare_and_swap variants).
 */

#include "cpu/system.hh"
#include "proto/controller.hh"
#include "sim/logging.hh"

namespace dsm {

void
Controller::handleInv(const Msg &m)
{
    // An invalidation clears any load_linked reservation covering the
    // block (Section 3) and drops the copy if still present (a silent
    // eviction may have removed it already; the ack is owed regardless).
    _cache.clearReservationIfCovers(m.addr);
    const CacheLine *line = _cache.peek(m.addr);
    if (line != nullptr) {
        dsm_assert(line->state == LineState::SHARED,
                   "invalidation hit an exclusive line at node %d", _id);
        ++_cache.stats().invalidations_received;
        _cache.invalidate(m.addr);
        traceLineState(m.addr, LineState::SHARED, LineState::INVALID);
    }

    Msg ack;
    ack.type = MsgType::INV_ACK;
    ack.dst = m.requester;
    ack.requester = m.requester;
    ack.addr = m.addr;
    ack.word_addr = m.word_addr;
    ack.chain = chainNext(m.chain, _id, m.requester);
    ack.txn_id = m.txn_id;
    ack.seq = m.seq;
    Tick delay = _sys.cfg().machine.cache_access_latency;
    _sys.eq().scheduleIn(delay, [this, ack] { send(ack); });
}

void
Controller::handleUpdate(const Msg &m)
{
    // Word update under the UPD policy: refresh the copy if present.
    _cache.clearReservationIfCovers(m.addr);
    CacheLine *line = _cache.lookup(m.addr);
    if (line != nullptr) {
        dsm_assert(line->state == LineState::SHARED,
                   "update hit a non-shared line at node %d", _id);
        line->writeWord(m.word_addr, m.result);
    }

    Msg ack;
    ack.type = MsgType::UPDATE_ACK;
    ack.dst = m.requester;
    ack.requester = m.requester;
    ack.addr = m.addr;
    ack.word_addr = m.word_addr;
    ack.chain = chainNext(m.chain, _id, m.requester);
    ack.txn_id = m.txn_id;
    ack.seq = m.seq;
    Tick delay = _sys.cfg().machine.cache_access_latency;
    _sys.eq().scheduleIn(delay, [this, ack] { send(ack); });
}

void
Controller::handleFwd(const Msg &m)
{
    NodeId home = _sys.homeOf(m.addr);
    Tick delay = _sys.cfg().machine.cache_access_latency;

    // The forwarded leg's transit ends here; the owner's cache access
    // (its reply departs `delay` from now) is attributed to OWNER.
    if (m.txn_id != 0) {
        _sys.txns().mark(m.txn_id, TxnPhase::REQ_TRANSIT, now(), _id);
        _sys.txns().mark(m.txn_id, TxnPhase::OWNER, now() + delay, _id);
    }

    auto respond = [this, home, delay, &m](Msg r) {
        r.dst = home;
        r.requester = m.requester;
        r.addr = m.addr;
        r.word_addr = m.word_addr;
        r.chain = chainNext(m.chain, _id, home);
        r.txn_id = m.txn_id;
        r.seq = m.seq;
        r.attempt = m.attempt;
        _sys.eq().scheduleIn(delay, [this, r] { send(r); });
    };

    // If this node's own transaction on the block is still collecting
    // its grant or acknowledgements, it cannot surrender the line yet.
    if (_txn.active && _txn.waiting &&
        blockBase(_txn.addr) == m.addr) {
        Msg r;
        r.type = MsgType::FWD_NACK_RETRY;
        respond(r);
        return;
    }

    CacheLine *line = _cache.lookup(m.addr);
    if (line == nullptr) {
        // The line was evicted or dropped; its write-back is in flight
        // (or already at home). This is the drop_copy race of
        // Section 4.3.1.
        Msg r;
        r.type = MsgType::FWD_NACK_WB;
        respond(r);
        return;
    }
    dsm_assert(line->state == LineState::EXCLUSIVE,
               "forwarded request at node %d found a %s line",
               _id, toString(line->state));

    switch (m.type) {
      case MsgType::FWD_GET_S: {
        // Downgrade and keep a shared copy.
        line->state = LineState::SHARED;
        traceLineState(m.addr, LineState::EXCLUSIVE, LineState::SHARED);
        Msg r;
        r.type = MsgType::OWNER_DATA_S;
        r.data = line->data;
        r.has_data = true;
        respond(r);
        break;
      }
      case MsgType::FWD_GET_X: {
        Msg r;
        r.type = MsgType::OWNER_DATA_X;
        r.data = line->data;
        r.has_data = true;
        _cache.invalidate(m.addr);
        traceLineState(m.addr, LineState::EXCLUSIVE, LineState::INVALID);
        respond(r);
        break;
      }
      case MsgType::FWD_CAS: {
        Word old = line->readWord(m.word_addr);
        if (old == m.expected) {
            // Equality holds: behave like INV; surrender the line so the
            // requester acquires an exclusive copy and does the swap.
            Msg r;
            r.type = MsgType::OWNER_DATA_X;
            r.data = line->data;
            r.has_data = true;
            _cache.invalidate(m.addr);
            traceLineState(m.addr, LineState::EXCLUSIVE,
                           LineState::INVALID);
            respond(r);
        } else if (_sys.cfg().sync.cas_variant == CasVariant::DENY) {
            // INVd: the failing request gets no copy; ours stays intact.
            Msg r;
            r.type = MsgType::CAS_OWNER_FAIL;
            r.result = old;
            respond(r);
        } else {
            // INVs: downgrade and give the requester a read-only copy.
            line->state = LineState::SHARED;
            traceLineState(m.addr, LineState::EXCLUSIVE,
                           LineState::SHARED);
            Msg r;
            r.type = MsgType::CAS_OWNER_FAIL_S;
            r.result = old;
            r.data = line->data;
            r.has_data = true;
            respond(r);
        }
        break;
      }
      default:
        dsm_panic("unexpected forwarded message %s", toString(m.type));
    }
}

} // namespace dsm
