/**
 * @file
 * CPU-side transitions: dispatch of processor operations under the
 * three coherence policies (Section 3), response handling, and local
 * execution of atomic primitives for the INV implementations.
 */

#include "proto/transition_impl.hh"

#include "sim/logging.hh"
#include "stats/attribution.hh"

namespace dsm {
namespace tf {

using namespace detail;

namespace {

Tick
hitLatency(const Env &env)
{
    return env.cfg->machine.cache_hit_latency;
}

void
sendReq(const Env &env, CtrlState &s, Outcome &o, MsgType t)
{
    if (env.recoveryOn()) {
        // Every *new* network request (a NACK-and-retry included) gets
        // a fresh seq; only timeout retransmissions reuse one.
        s.txn.seq = ++s.next_seq;
        s.txn.attempt = 1;
        s.txn.req_type = t;
        s.txn.acks_mask = 0;
    }
    s.txn.fill_raced = 0;
    s.txn.waiting = true;
    emitSend(o, buildReq(env, s, t));
    if (env.recoveryOn())
        emitArmTimer(o);
}

/**
 * Resolve a fill race recorded by handleInv/handleUpdate (see
 * TxnState::fill_raced): the just-installed copy predates a
 * third-party invalidation or update that was delivered first
 * (reordering skew), so the operation completes with the granted data
 * — the read is ordered before the racing write — but the copy is not
 * retained. The drop is deliberately silent in both flavours: after
 * an INV the home already removed this node, and after an UPDATE a
 * stale sharer entry is harmless (a spurious UPDATE to an absent line
 * is acked and ignored — the same tolerance silent evictions require)
 * whereas announcing it with DROP_NOTIFY would race the node's own
 * next sequence-guarded request, which reordering can deliver first,
 * making the home un-track a freshly granted copy. Returns true when
 * a race was resolved (the caller must then skip anything that
 * assumes the line stayed resident, e.g. setting an LL reservation).
 */
bool
dropRacedFill(const Env &env, CtrlState &s, Outcome &o, Addr base)
{
    (void)env;
    if (s.txn.fill_raced == 0)
        return false;
    s.txn.fill_raced = 0;
    s.cache.clearReservationIfCovers(base);
    s.cache.invalidate(base);
    emitTraceLine(o, base, LineState::SHARED, LineState::INVALID);
    return true;
}

void
retryTxn(CtrlState &s, Outcome &o)
{
    dsm_assert(s.txn.active, "retry without an active transaction");
    ++s.txn.retries;
    ++o.stats.retries;
    s.txn.waiting = false;
    s.txn.resp_seen = false;
    s.txn.acks_needed = 0;
    s.txn.acks_got = 0;
    s.txn.acks_mask = 0;
    s.txn.max_chain = 0;
    emitRetry(o);
}

void
beginInv(const Env &env, CtrlState &s, Outcome &o)
{
    const Tick hit = hitLatency(env);
    Addr a = s.txn.addr;
    CacheLine *line = s.cache.lookup(a);

    switch (s.txn.op) {
      case AtomicOp::LOAD:
        if (line != nullptr) {
            ++s.cache.stats().hits;
            emitComplete(o, hit, line->readWord(a), true);
        } else {
            ++s.cache.stats().misses;
            sendReq(env, s, o, MsgType::GET_S);
        }
        break;

      case AtomicOp::LL:
        // load_linked obtains a *shared* copy; an exclusive load_linked
        // would invite livelock (Section 4.3.2).
        if (line != nullptr) {
            ++s.cache.stats().hits;
            s.cache.setReservation(a, s.txn.start);
            emitTraceResv(o, blockBase(a), false);
            emitComplete(o, hit, line->readWord(a), true);
        } else {
            ++s.cache.stats().misses;
            sendReq(env, s, o, MsgType::GET_S);
        }
        break;

      case AtomicOp::LOAD_EXCL:
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++s.cache.stats().hits;
            emitComplete(o, hit, line->readWord(a), true);
        } else if (line != nullptr) {
            sendReq(env, s, o, MsgType::UPGRADE);
        } else {
            ++s.cache.stats().misses;
            sendReq(env, s, o, MsgType::GET_X);
        }
        break;

      case AtomicOp::STORE:
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO:
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++s.cache.stats().hits;
            Word old = line->readWord(a);
            line->writeWord(a, applyOp(s.txn.op, old, s.txn.value));
            emitComplete(o, hit,
                         s.txn.op == AtomicOp::STORE ? 0 : old, true);
        } else if (line != nullptr) {
            sendReq(env, s, o, MsgType::UPGRADE);
        } else {
            ++s.cache.stats().misses;
            sendReq(env, s, o, MsgType::GET_X);
        }
        break;

      case AtomicOp::CAS: {
        // Ordinary (non-sync) data always uses the plain INV flavour.
        CasVariant variant = env.ctx->isSync(a)
                                 ? env.cfg->sync.cas_variant
                                 : CasVariant::PLAIN;
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++s.cache.stats().hits;
            Word old = line->readWord(a);
            bool ok = old == s.txn.expected;
            if (ok)
                line->writeWord(a, s.txn.value);
            emitComplete(o, hit, old, ok);
        } else if (variant == CasVariant::PLAIN) {
            if (line != nullptr) {
                sendReq(env, s, o, MsgType::UPGRADE);
            } else {
                ++s.cache.stats().misses;
                sendReq(env, s, o, MsgType::GET_X);
            }
        } else {
            // INVd/INVs: the comparison happens at the home or owner.
            sendReq(env, s, o, MsgType::CAS_HOME);
        }
        break;
      }

      case AtomicOp::SC: {
        bool reserved = s.cache.reservationValid() &&
                        s.cache.reservationAddr() == blockBase(a);
        // Age-bounded reservations (faults.resv_max_age): a reservation
        // older than the bound — measured from the load_linked's issue
        // tick — is treated as lost, so the store_conditional fails
        // locally instead of trusting arbitrarily stale linkage.
        Tick age_limit = env.cfg->faults.resv_max_age;
        if (reserved && age_limit != 0 &&
            s.txn.start - s.cache.reservationTick() > age_limit) {
            reserved = false;
            s.cache.clearReservation();
            emitTraceResv(o, blockBase(a), true);
        }
        if (!reserved) {
            // Fails locally without causing any network traffic.
            ++o.stats.sc_local_failures;
            emitComplete(o, hit, 0, false);
        } else if (line != nullptr &&
                   line->state == LineState::EXCLUSIVE) {
            ++s.cache.stats().hits;
            line->writeWord(a, s.txn.value);
            s.cache.clearReservation();
            emitTraceResv(o, blockBase(a), true);
            emitComplete(o, hit, 0, true);
        } else {
            dsm_assert(line != nullptr,
                       "valid reservation without a cached line");
            sendReq(env, s, o, MsgType::SC_REQ);
        }
        break;
      }

      case AtomicOp::LLS:
      case AtomicOp::SCS:
        dsm_fatal("serial-number load_linked/store_conditional is an "
                  "in-memory primitive (Section 3.1); the block must use "
                  "the UNC or UPD policy");
        break;

      case AtomicOp::DROP_COPY:
        if (line != nullptr) {
            Victim v;
            v.valid = true;
            v.base = blockBase(a);
            v.state = line->state;
            v.data = line->data;
            if (line->state == LineState::SHARED) {
                ++o.stats.drop_notifies;
                Msg d;
                d.type = MsgType::DROP_NOTIFY;
                d.dst = env.homeOf(a);
                d.requester = env.self;
                d.addr = blockBase(a);
                d.word_addr = a;
                d.chain = 1;
                emitSend(o, d);
            } else {
                evictVictim(env, s, o, v); // sends the write-back
            }
            s.cache.invalidate(a);
        }
        emitComplete(o, hit, 0, true);
        break;
    }
}

void
beginUnc(const Env &env, CtrlState &s, Outcome &o)
{
    if (s.txn.op == AtomicOp::DROP_COPY) {
        // Nothing is ever cached under UNC.
        emitComplete(o, hitLatency(env), 0, true);
        return;
    }
    if (s.txn.op == AtomicOp::SC && s.resv_denied &&
        s.resv_denied_block == blockBase(s.txn.addr)) {
        // The load_linked was denied a reservation (limited-reservation
        // option): the store_conditional is doomed, so it fails locally
        // without causing any network traffic (Section 3.1).
        s.resv_denied = false;
        ++o.stats.sc_local_failures;
        emitComplete(o, hitLatency(env), 0, false);
        return;
    }
    // Every access goes to the memory at the home node.
    sendReq(env, s, o, MsgType::UNC_REQ);
}

void
beginUpd(const Env &env, CtrlState &s, Outcome &o)
{
    const Tick hit = hitLatency(env);
    Addr a = s.txn.addr;
    CacheLine *line = s.cache.lookup(a);

    switch (s.txn.op) {
      case AtomicOp::LOAD:
      case AtomicOp::LOAD_EXCL:
        // UPD lines are only ever shared; load_exclusive degenerates to
        // an ordinary load.
        if (line != nullptr) {
            ++s.cache.stats().hits;
            emitComplete(o, hit, line->readWord(a), true);
        } else {
            ++s.cache.stats().misses;
            sendReq(env, s, o, MsgType::GET_S);
        }
        break;

      case AtomicOp::DROP_COPY:
        if (line != nullptr) {
            ++o.stats.drop_notifies;
            Msg d;
            d.type = MsgType::DROP_NOTIFY;
            d.dst = env.homeOf(a);
            d.requester = env.self;
            d.addr = blockBase(a);
            d.word_addr = a;
            d.chain = 1;
            emitSend(o, d);
            s.cache.invalidate(a);
        }
        emitComplete(o, hit, 0, true);
        break;

      case AtomicOp::SC:
        if (s.resv_denied && s.resv_denied_block == blockBase(a)) {
            s.resv_denied = false;
            ++o.stats.sc_local_failures;
            emitComplete(o, hit, 0, false);
            break;
        }
        sendReq(env, s, o, MsgType::UPD_REQ);
        break;

      default:
        // All writes and atomic operations -- and load_linked, which must
        // set its reservation at the memory -- go to the home node.
        sendReq(env, s, o, MsgType::UPD_REQ);
        break;
    }
}

void
dispatchInto(const Env &env, CtrlState &s, Outcome &o)
{
    switch (env.policyOf(s.txn.addr)) {
      case SyncPolicy::INV:
        beginInv(env, s, o);
        break;
      case SyncPolicy::UNC:
        beginUnc(env, s, o);
        break;
      case SyncPolicy::UPD:
        beginUpd(env, s, o);
        break;
    }
}

void
noteReservationVerdict(CtrlState &s, const Msg &m)
{
    if (s.txn.op != AtomicOp::LL)
        return;
    if (m.success) {
        if (s.resv_denied && s.resv_denied_block == m.addr)
            s.resv_denied = false;
    } else {
        // Beyond-the-limit load_linked: remember that the matching
        // store_conditional is doomed (Section 3.1, option 3).
        s.resv_denied = true;
        s.resv_denied_block = m.addr;
    }
}

void
completeUpd(CtrlState &s, Outcome &o)
{
    emitComplete(o, 0, s.txn.resp_value, s.txn.resp_success,
                 s.txn.resp_serial);
}

void
completeExclusive(CtrlState &s, Outcome &o)
{
    Addr a = s.txn.addr;
    CacheLine *line = s.cache.lookup(a);
    dsm_assert(line != nullptr && line->state == LineState::EXCLUSIVE,
               "exclusive completion without an exclusive line");

    switch (s.txn.op) {
      case AtomicOp::LOAD_EXCL:
        emitComplete(o, 0, line->readWord(a), true);
        break;
      case AtomicOp::STORE:
        line->writeWord(a, s.txn.value);
        emitComplete(o, 0, 0, true);
        break;
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO: {
        Word old = line->readWord(a);
        line->writeWord(a, applyOp(s.txn.op, old, s.txn.value));
        emitComplete(o, 0, old, true);
        break;
      }
      case AtomicOp::CAS: {
        // For the INVd/INVs paths the home/owner already verified
        // equality, so this local comparison succeeds; for plain INV it
        // decides the verdict.
        Word old = line->readWord(a);
        bool ok = old == s.txn.expected;
        if (ok)
            line->writeWord(a, s.txn.value);
        emitComplete(o, 0, old, ok);
        break;
      }
      case AtomicOp::SC:
        line->writeWord(a, s.txn.value);
        s.cache.clearReservation();
        emitTraceResv(o, blockBase(a), true);
        emitComplete(o, 0, 0, true);
        break;
      default:
        dsm_panic("unexpected exclusive completion for %s",
                  toString(s.txn.op));
    }
}

void
maybeComplete(const Env &env, CtrlState &s, Outcome &o)
{
    if (!s.txn.resp_seen || s.txn.acks_got < s.txn.acks_needed)
        return;
    // The network request is answered: clear waiting so a duplicated
    // or reordered late copy of the reply hits the stale guard instead
    // of re-executing the completion (and so cpuAwaitedSeq()/the
    // retransmission timer see a finished transaction).
    s.txn.waiting = false;
    if (env.policyOf(s.txn.addr) == SyncPolicy::UPD)
        completeUpd(s, o);
    else
        completeExclusive(s, o);
}

} // namespace

namespace detail {

Msg
buildReq(const Env &env, const CtrlState &s, MsgType t)
{
    Msg m;
    m.type = t;
    m.dst = env.homeOf(s.txn.addr);
    m.requester = env.self;
    m.addr = blockBase(s.txn.addr);
    m.word_addr = s.txn.addr;
    m.op = s.txn.op;
    m.value = s.txn.value;
    m.expected = s.txn.expected;
    // Serial-number SC carries the expected serial in the same field a
    // CAS uses for its expected value.
    m.serial = s.txn.expected;
    m.chain = chainNext(0, env.self, m.dst);
    m.txn_id = s.txn.txn_id;
    m.seq = s.txn.seq;
    m.attempt = s.txn.attempt;
    // Overload-protection priority: a NACK-retried or timeout-
    // retransmitted request yields to first-attempt traffic at the
    // home's two-level queue (serve.priority).
    if (env.cfg->serve.enabled && env.cfg->serve.priority &&
        (s.txn.retries > 0 || s.txn.attempt > 1))
        m.prio = 1;
    return m;
}

void
cpuResponse(const Env &env, CtrlState &s, Outcome &o, const Msg &m)
{
    if (m.replayed) {
        // Injection-flagged duplicate: the original copy answers (or
        // already answered) the transaction, so the replay is absorbed
        // unconditionally — never re-driving the state machine even if
        // a scheduler delivers it first. Attributed to the injection
        // ledger, not the organic stale counters, so the NACK-balance
        // invariant survives duplication faults.
        ++o.stats.dups_absorbed;
        return;
    }
    if (env.recoveryOn()) {
        // Replies to a retired or retransmitted seq are duplicates the
        // recovery machinery manufactured; drop them at the door. A
        // primary reply after resp_seen is the same thing (the original
        // and a retransmission-induced copy both arrived).
        bool is_ack = m.type == MsgType::INV_ACK ||
                      m.type == MsgType::UPDATE_ACK;
        bool current = s.txn.active && s.txn.waiting &&
                       m.seq == s.txn.seq &&
                       blockBase(s.txn.addr) == m.addr;
        if (!current || (s.txn.resp_seen && !is_ack)) {
            if (m.type == MsgType::NACK)
                ++o.stats.nacks_stale;
            else
                ++o.stats.stale_replies;
            return;
        }
    }
    dsm_assert(s.txn.active && s.txn.waiting,
               "node %d got %s with no transaction waiting",
               env.self, toString(m.type));
    dsm_assert(blockBase(s.txn.addr) == m.addr,
               "response block %#llx does not match transaction %#llx",
               static_cast<unsigned long long>(m.addr),
               static_cast<unsigned long long>(s.txn.addr));
    if (m.chain > s.txn.max_chain)
        s.txn.max_chain = m.chain;
    if (m.txn_id != 0) {
        TxnPhase ph = (m.type == MsgType::INV_ACK ||
                       m.type == MsgType::UPDATE_ACK)
                          ? TxnPhase::FANOUT
                          : TxnPhase::REPLY_TRANSIT;
        emitTxnMark(o, m.txn_id, static_cast<std::uint8_t>(ph), 0,
                    env.self);
    }

    switch (m.type) {
      case MsgType::NACK:
        retryTxn(s, o);
        break;

      case MsgType::DATA_S: {
        CacheLine *line =
            installLine(env, s, o, m.addr, LineState::SHARED, m.data);
        Word w = line->readWord(s.txn.addr);
        if (!dropRacedFill(env, s, o, m.addr) &&
            s.txn.op == AtomicOp::LL) {
            // The reservation's age is measured from the load_linked's
            // issue tick (the miss latency counts against the bound).
            // A raced fill keeps neither the copy nor a reservation:
            // the matching store_conditional fails locally and the
            // retry refetches a tracked copy.
            s.cache.setReservation(s.txn.addr, s.txn.start);
            emitTraceResv(o, m.addr, false);
        }
        s.txn.waiting = false;
        emitComplete(o, 0, w, true);
        break;
      }

      case MsgType::DATA_X:
        installLine(env, s, o, m.addr, LineState::EXCLUSIVE, m.data);
        s.txn.resp_seen = true;
        s.txn.acks_needed = m.ack_count;
        maybeComplete(env, s, o);
        break;

      case MsgType::UPG_ACK: {
        CacheLine *line = s.cache.lookup(s.txn.addr);
        dsm_assert(line != nullptr && line->state == LineState::SHARED,
                   "upgrade granted without a shared copy");
        line->state = LineState::EXCLUSIVE;
        emitTraceLine(o, m.addr, LineState::SHARED,
                      LineState::EXCLUSIVE);
        s.txn.resp_seen = true;
        s.txn.acks_needed = m.ack_count;
        maybeComplete(env, s, o);
        break;
      }

      case MsgType::SC_RESP:
        if (!m.success) {
            s.cache.clearReservation();
            emitTraceResv(o, m.addr, true);
            s.txn.waiting = false;
            emitComplete(o, 0, 0, false);
        } else {
            CacheLine *line = s.cache.lookup(s.txn.addr);
            dsm_assert(line != nullptr &&
                       line->state == LineState::SHARED,
                       "SC success without a shared copy");
            line->state = LineState::EXCLUSIVE;
            emitTraceLine(o, m.addr, LineState::SHARED,
                          LineState::EXCLUSIVE);
            s.txn.resp_seen = true;
            s.txn.acks_needed = m.ack_count;
            maybeComplete(env, s, o);
        }
        break;

      case MsgType::CAS_FAIL:
        s.txn.waiting = false;
        emitComplete(o, 0, m.result, false);
        break;

      case MsgType::CAS_FAIL_S:
        installLine(env, s, o, m.addr, LineState::SHARED, m.data);
        dropRacedFill(env, s, o, m.addr);
        s.txn.waiting = false;
        emitComplete(o, 0, m.result, false);
        break;

      case MsgType::UNC_RESP:
        noteReservationVerdict(s, m);
        s.txn.waiting = false;
        emitComplete(o, 0, m.result, m.success, m.serial);
        break;

      case MsgType::UPD_RESP:
        noteReservationVerdict(s, m);
        installLine(env, s, o, m.addr, LineState::SHARED, m.data);
        dropRacedFill(env, s, o, m.addr);
        s.txn.resp_seen = true;
        s.txn.acks_needed = m.ack_count;
        s.txn.resp_value = m.result;
        s.txn.resp_success = m.success;
        s.txn.resp_serial = m.serial;
        maybeComplete(env, s, o);
        break;

      case MsgType::INV_ACK:
      case MsgType::UPDATE_ACK:
        if (env.recoveryOn()) {
            // Per-sharer dedup: a duplicated or reordered second copy
            // of the same node's acknowledgement for this seq must not
            // double-count toward acks_needed.
            std::uint64_t bit = 1ULL << static_cast<unsigned>(m.src);
            if ((s.txn.acks_mask & bit) != 0) {
                ++o.stats.stale_replies;
                break;
            }
            s.txn.acks_mask |= bit;
        }
        ++s.txn.acks_got;
        maybeComplete(env, s, o);
        break;

      default:
        dsm_panic("unexpected CPU response %s", toString(m.type));
    }
}

} // namespace detail

Outcome
issue(const Env &env, CtrlState &s, const OpReq &req)
{
    dsm_assert(!s.txn.active,
               "processor %d issued %s with a transaction outstanding",
               env.self, toString(req.op));
    dsm_assert(req.addr == wordBase(req.addr),
               "unaligned operand address %#llx",
               static_cast<unsigned long long>(req.addr));
    s.txn = TxnState{};
    s.txn.active = true;
    s.txn.op = req.op;
    s.txn.addr = req.addr;
    s.txn.value = req.value;
    s.txn.expected = req.expected;
    s.txn.start = req.start;
    s.txn.txn_id = req.txn_id;
    Outcome o;
    dispatchInto(env, s, o);
    return o;
}

Outcome
dispatch(const Env &env, CtrlState &s)
{
    dsm_assert(s.txn.active, "dispatch without an active transaction");
    Outcome o;
    dispatchInto(env, s, o);
    return o;
}

Outcome
retransmit(const Env &env, CtrlState &s)
{
    Outcome o;
    emitTxnMark(o, s.txn.txn_id,
                static_cast<std::uint8_t>(TxnPhase::RECOVERY), 0,
                env.self);
    ++s.txn.attempt;
    emitSend(o, buildReq(env, s, s.txn.req_type));
    emitArmTimer(o);
    return o;
}

} // namespace tf
} // namespace dsm
