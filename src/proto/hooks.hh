/**
 * @file
 * ProtoHooks: the unified observability/bookkeeping sink bundle the
 * driver commits transition outcomes against. Before the transition
 * refactor each of the three controller implementation files carried
 * its own ad-hoc Tracer/TxnTracer/LineProfiler/stat call plumbing;
 * now every hook fires in exactly one place (applyEffect/applyStats),
 * driven by the effect records a pure transition emitted.
 */

#ifndef DSM_PROTO_HOOKS_HH
#define DSM_PROTO_HOOKS_HH

#include "proto/transition.hh"
#include "sim/types.hh"

namespace dsm {

class Tracer;
class TxnTracer;
class LineProfiler;
class Directory;
class Recovery;
struct SysStats;

/**
 * Hook sinks for one node. Null pointers are skipped (the tracer and
 * txn tracer are always present but cheap when off; the profiler and
 * recovery ledger exist only when their feature is enabled).
 */
struct ProtoHooks
{
    SysStats *stats = nullptr;
    Tracer *tracer = nullptr;
    TxnTracer *txns = nullptr;
    LineProfiler *lp = nullptr;
    Directory *dir = nullptr;
    Recovery *recovery = nullptr;

    /** Fold a transition's stat delta into the node/recovery counters. */
    void applyStats(const tf::StatDelta &d) const;

    /**
     * Apply one trace/profiler/txn-tracer effect at tick @p now for
     * node @p self.
     * @return true when the effect was consumed here; false for the
     *         driver-owned kinds (SEND, COMPLETE, RETRY, ARM_TIMER).
     */
    bool applyEffect(const tf::Effect &ef, NodeId self, Tick now) const;
};

} // namespace dsm

#endif // DSM_PROTO_HOOKS_HH
