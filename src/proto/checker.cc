#include "proto/checker.hh"

#include <algorithm>
#include <map>

#include "cpu/system.hh"
#include "sim/logging.hh"
#include "trace/txn.hh"

namespace dsm {

CoherenceView
coherenceView(System &sys)
{
    CoherenceView v;

    // Gather every cached copy, per block, from the controllers'
    // transition-function state.
    std::map<Addr, std::vector<CopyView>> copies;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        for (const CacheLine &line : sys.ctrl(n).state().cache.lines()) {
            if (line.valid())
                copies[line.base].push_back(
                    CopyView{n, line.state, line.data});
        }
    }

    // Gather every directory entry, per block.
    std::map<Addr, DirEntry> dirs;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        for (const auto &kv : sys.dir(n).entries()) {
            if (sys.homeOf(kv.first) != n) {
                v.structural.push_back(
                    csprintf("directory entry for block %#llx at "
                             "non-home node %d",
                             (unsigned long long)kv.first, n));
                continue;
            }
            dirs[kv.first] = kv.second;
        }
    }

    std::map<Addr, BlockView> blocks;
    for (auto &kv : dirs) {
        BlockView &b = blocks[kv.first];
        b.block = kv.first;
        b.has_dir = true;
        b.dir = kv.second;
    }
    for (auto &kv : copies) {
        BlockView &b = blocks[kv.first];
        b.block = kv.first;
        b.copies = std::move(kv.second);
    }
    for (auto &kv : blocks) {
        kv.second.mem = sys.store().readBlock(kv.first);
        kv.second.unc_sync = sys.isSync(kv.first) &&
                             sys.cfg().sync.policy == SyncPolicy::UNC;
        v.blocks.push_back(std::move(kv.second));
    }
    return v;
}

std::vector<std::string>
checkCoherenceView(const CoherenceView &v)
{
    std::vector<std::string> violations = v.structural;
    auto complain = [&violations](std::string s) {
        violations.push_back(std::move(s));
    };

    for (const BlockView &b : v.blocks) {
        Addr block = b.block;

        if (!b.has_dir) {
            if (!b.copies.empty())
                complain(csprintf("block %#llx cached with no directory "
                                  "entry",
                                  (unsigned long long)block));
            continue;
        }
        if (b.dir.busy)
            complain(csprintf("block %#llx left busy after quiesce",
                              (unsigned long long)block));

        int exclusives = 0, shareds = 0;
        for (const CopyView &c : b.copies) {
            if (c.state == LineState::EXCLUSIVE)
                ++exclusives;
            else
                ++shareds;
        }
        if (exclusives > 1)
            complain(csprintf("block %#llx has %d exclusive copies",
                              (unsigned long long)block, exclusives));
        if (exclusives == 1 && shareds > 0)
            complain(csprintf("block %#llx mixes exclusive and shared "
                              "copies",
                              (unsigned long long)block));

        switch (b.dir.state) {
          case DirState::UNCACHED:
            if (!b.copies.empty())
                complain(csprintf("block %#llx cached while directory "
                                  "says uncached",
                                  (unsigned long long)block));
            break;
          case DirState::EXCLUSIVE: {
            if (exclusives != 1) {
                complain(csprintf("block %#llx: directory exclusive at "
                                  "%d but %d exclusive copies exist",
                                  (unsigned long long)block, b.dir.owner,
                                  exclusives));
                break;
            }
            const CopyView &owner_copy = *std::find_if(
                b.copies.begin(), b.copies.end(), [](const CopyView &c) {
                    return c.state == LineState::EXCLUSIVE;
                });
            if (owner_copy.node != b.dir.owner)
                complain(csprintf("block %#llx: directory owner %d but "
                                  "node %d holds it exclusively",
                                  (unsigned long long)block, b.dir.owner,
                                  owner_copy.node));
            break;
          }
          case DirState::SHARED: {
            if (exclusives != 0)
                complain(csprintf("block %#llx: exclusive copy while "
                                  "directory says shared",
                                  (unsigned long long)block));
            for (const CopyView &c : b.copies) {
                if (!b.dir.isSharer(c.node))
                    complain(csprintf("block %#llx: node %d holds a "
                                      "copy but is not a sharer",
                                      (unsigned long long)block,
                                      c.node));
                if (c.data != b.mem)
                    complain(csprintf("block %#llx: node %d's shared "
                                      "copy differs from memory",
                                      (unsigned long long)block,
                                      c.node));
            }
            break;
          }
        }

        // UNC synchronization data must never be cached.
        if (b.unc_sync && !b.copies.empty())
            complain(csprintf("UNC sync block %#llx is cached",
                              (unsigned long long)block));
    }

    return violations;
}

std::vector<std::string>
checkCoherence(System &sys)
{
    return checkCoherenceView(coherenceView(sys));
}

int
expectedChain(const ChainFact &f)
{
    // Delegate to the transaction tracer's analytic model so the
    // simulator and the model checker validate against one formula.
    TxnRecord r;
    r.proc = f.requester;
    r.serviced = f.serviced;
    r.forwarded = f.forwarded;
    r.home = f.home;
    r.owner = f.owner;
    r.fanout_mask = f.fanout_mask;
    return TxnTracer::expectedChain(r);
}

std::vector<std::string>
checkChainFacts(const std::vector<ChainFact> &facts)
{
    std::vector<std::string> out;
    for (const ChainFact &f : facts) {
        int expect = expectedChain(f);
        if (f.observed_chain != expect)
            out.push_back(csprintf(
                "%s at proc %d (home %d%s%s): observed chain %d, "
                "Table 1 expects %d",
                toString(f.op), f.requester, f.home,
                f.forwarded ? ", forwarded" : "",
                f.serviced ? "" : ", unserviced",
                f.observed_chain, expect));
    }
    return out;
}

std::vector<std::string>
checkChains(System &sys)
{
    const TxnTracer &tx = sys.txns();
    std::vector<std::string> out = tx.divergenceMessages();
    std::uint64_t total = tx.chainDivergences();
    if (total > out.size())
        out.push_back(csprintf("...and %llu more chain divergences",
                               (unsigned long long)(total - out.size())));
    return out;
}

std::vector<std::string>
checkFaultAccounting(System &sys)
{
    std::vector<std::string> out;
    const FaultPlan::Counters &fc = sys.faultPlan().counters();
    const Recovery::Counters &rc = sys.recoveryState().counters();
    SysStats agg = sys.stats();
    bool quiesced = sys.tasksPending() == 0;

    if (!sys.cfg().faults.enabled) {
        std::uint64_t sum = fc.jitter_applied + fc.jitter_cycles +
                            fc.resv_drops + fc.forced_evictions +
                            fc.nacks_injected + fc.msg_drops +
                            fc.flaky_drops + fc.msg_reorders +
                            fc.msg_dups + fc.msg_corruptions;
        if (sum != 0)
            out.push_back(csprintf("fault injection is disabled but "
                                   "fault counters are nonzero "
                                   "(sum %llu)",
                                   (unsigned long long)sum));
        std::uint64_t rsum = rc.drops + rc.retransmits +
                             rc.stale_replies + rc.dup_requests +
                             rc.links_quarantined + rc.corrupt_detected +
                             rc.dups_absorbed + rc.reorders_delivered;
        if (rsum != 0)
            out.push_back(csprintf("fault injection is disabled but "
                                   "recovery counters are nonzero "
                                   "(sum %llu)",
                                   (unsigned long long)rsum));
        return out;
    }

    if (fc.nacks_injected > agg.nacks)
        out.push_back(csprintf("injected NACKs (%llu) exceed total "
                               "NACKs sent (%llu)",
                               (unsigned long long)fc.nacks_injected,
                               (unsigned long long)agg.nacks));

    if (!sys.cfg().faults.recoveryEnabled()) {
        // On a quiesced system every NACK was delivered and scheduled
        // exactly one retry, so the totals must agree; a gap means a
        // NACK was lost or a retry was manufactured.
        if (quiesced && agg.retries != agg.nacks)
            out.push_back(csprintf("quiesced but retries (%llu) != "
                                   "NACKs (%llu)",
                                   (unsigned long long)agg.retries,
                                   (unsigned long long)agg.nacks));
        return out;
    }

    // Under message loss a NACK counts one retry only if the requester
    // consumed it: subtract NACKs lost in the mesh and those discarded
    // as stale duplicates, add NACKs the home replayed from its reply
    // cache (extra deliveries the nacks counter never saw). Compared as
    // sums to stay in unsigned arithmetic.
    if (quiesced && agg.retries + rc.nacks_lost + rc.nacks_stale !=
                        agg.nacks + rc.nacks_replayed)
        out.push_back(csprintf(
            "quiesced but retries (%llu) + nacks_lost (%llu) + "
            "nacks_stale (%llu) != NACKs (%llu) + nacks_replayed (%llu)",
            (unsigned long long)agg.retries,
            (unsigned long long)rc.nacks_lost,
            (unsigned long long)rc.nacks_stale,
            (unsigned long long)agg.nacks,
            (unsigned long long)rc.nacks_replayed));

    // The drop ledger: the injector and the recovery layer must agree
    // on what was lost, the request/reply split must partition it, and
    // on a quiesced system every drop is covered — by a retransmission
    // or by the quarantine of its link. An uncovered drop would be a
    // silently-lost message.
    if (fc.msg_drops + fc.flaky_drops + fc.msg_corruptions != rc.drops)
        out.push_back(csprintf("injector drops (%llu msg + %llu flaky + "
                               "%llu corrupt) != recovery ledger drops "
                               "(%llu)",
                               (unsigned long long)fc.msg_drops,
                               (unsigned long long)fc.flaky_drops,
                               (unsigned long long)fc.msg_corruptions,
                               (unsigned long long)rc.drops));
    if (rc.req_drops + rc.reply_drops != rc.drops)
        out.push_back(csprintf("drop split (%llu req + %llu reply) != "
                               "total drops (%llu)",
                               (unsigned long long)rc.req_drops,
                               (unsigned long long)rc.reply_drops,
                               (unsigned long long)rc.drops));
    if (quiesced) {
        std::uint64_t pending = sys.recoveryState().pendingDrops();
        if (pending != 0)
            out.push_back(csprintf("quiesced but %llu drops are still "
                                   "pending in the recovery ledger",
                                   (unsigned long long)pending));
        if (rc.drops !=
            rc.retransmit_covered + rc.quarantine_covered)
            out.push_back(csprintf(
                "quiesced but drops (%llu) != retransmit-covered "
                "(%llu) + quarantine-covered (%llu)",
                (unsigned long long)rc.drops,
                (unsigned long long)rc.retransmit_covered,
                (unsigned long long)rc.quarantine_covered));
    }

    // Faulty-channel ledger. Every corruption must be caught at the
    // ejection checksum verify — a gap here is an undetected corruption
    // that delivered a mangled payload. Detection is synchronous with
    // injection, so this holds even mid-run.
    if (rc.corrupt_detected != fc.msg_corruptions)
        out.push_back(csprintf("undetected payload corruptions: "
                               "injected %llu, detected %llu",
                               (unsigned long long)fc.msg_corruptions,
                               (unsigned long long)rc.corrupt_detected));
    if (quiesced) {
        // Replays and skewed deliveries are deferred, so they reconcile
        // only once the event queue has drained: every injected
        // duplicate was absorbed by a sequence guard and every skewed
        // message was eventually delivered.
        if (rc.dups_absorbed != fc.msg_dups)
            out.push_back(csprintf("quiesced but duplicates absorbed "
                                   "(%llu) != duplicates injected (%llu)",
                                   (unsigned long long)rc.dups_absorbed,
                                   (unsigned long long)fc.msg_dups));
        if (rc.reorders_delivered != fc.msg_reorders)
            out.push_back(csprintf("quiesced but reorders delivered "
                                   "(%llu) != reorders injected (%llu)",
                                   (unsigned long long)rc.reorders_delivered,
                                   (unsigned long long)fc.msg_reorders));
    }
    return out;
}

} // namespace dsm
