/**
 * @file
 * Controller driver: feeds delivered messages and processor requests to
 * the pure transition functions (proto/transition.hh) and commits their
 * outcomes — memory/directory writes, stat deltas, and ordered effects
 * (sends, trace records via ProtoHooks, completions, retries, recovery
 * timers). Everything impure lives here: the event queue, the mesh, the
 * memory-module queue, RNG draws, fault injection, and the completion
 * callback.
 */

#include "proto/controller.hh"

#include <cstdio>
#include <cstdlib>

#include "cpu/admission.hh"
#include "cpu/system.hh"
#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "fault/watchdog.hh"
#include "mem/home_queue.hh"
#include "proto/hooks.hh"
#include "proto/transition_impl.hh"
#include "sim/logging.hh"
#include "stats/attribution.hh"

namespace dsm {

namespace {

/** Message tracing for protocol debugging, enabled by DSM_TRACE=1. */
bool
traceEnabled()
{
    static const bool on = std::getenv("DSM_TRACE") != nullptr;
    return on;
}

} // namespace

Controller::Controller(System &sys, NodeId id)
    : _sys(sys), _id(id),
      _st(sys.cfg().machine.cache_sets, sys.cfg().machine.cache_ways)
{
    if (sys.cfg().faults.recoveryEnabled())
        _st.dedup.resize(
            static_cast<std::size_t>(sys.cfg().machine.num_procs));
}

Tick
Controller::now() const
{
    return _sys.eq().now();
}

void
Controller::send(Msg m)
{
    m.src = _id;
    // Credit-based backpressure: replies (and NACKs) from a serving
    // home carry its request-queue depth so requesters can throttle
    // before the mesh fills (serve.backpressure).
    if (HomeQueue *hq = _sys.homeQueue(_id)) {
        if (_sys.cfg().serve.backpressure && recoverableReply(m.type))
            m.qdepth = static_cast<int>(hq->depth());
    }
    _sys.mesh().send(m);
}

// ===================== StepCtx world view ================================

bool
Controller::isSync(Addr a) const
{
    return _sys.isSync(a);
}

DirEntry
Controller::dirEntry(Addr block) const
{
    const DirEntry *e = _sys.dir(_id).find(block);
    return e != nullptr ? *e : DirEntry{};
}

Word
Controller::memWord(Addr a) const
{
    return _sys.store().readWord(a);
}

std::array<Word, BLOCK_WORDS>
Controller::memBlock(Addr block) const
{
    return _sys.store().readBlock(block);
}

std::uint64_t
Controller::activeTxnId(NodeId n) const
{
    return _sys.txns().enabled() ? _sys.txns().activeId(n) : 0;
}

tf::Env
Controller::env() const
{
    tf::Env e;
    e.cfg = &_sys.cfg();
    e.self = _id;
    e.ctx = this;
    return e;
}

ProtoHooks
Controller::hooks()
{
    ProtoHooks h;
    h.stats = &_sys.stats(_id);
    h.tracer = &_sys.tracer();
    h.txns = &_sys.txns();
    h.lp = _sys.lineProfiler();
    h.dir = &_sys.dir(_id);
    h.recovery = _sys.recovery();
    return h;
}

// ===================== Outcome commit ====================================

void
Controller::commit(tf::Outcome o)
{
    for (const tf::MemWrite &mw : o.mem_writes) {
        if (mw.is_block)
            _sys.store().writeBlock(mw.addr, mw.block);
        else
            _sys.store().writeWord(mw.addr, mw.word);
    }
    for (const tf::DirWrite &dw : o.dir_writes)
        _sys.dir(_id).entry(dw.addr) = dw.entry;
    ProtoHooks h = hooks();
    h.applyStats(o.stats);
    for (const tf::Effect &ef : o.effects) {
        if (h.applyEffect(ef, _id, now()))
            continue;
        switch (ef.kind) {
          case tf::EffectKind::SEND:
            if (ef.delay == 0) {
                send(ef.msg);
            } else {
                Msg m = ef.msg;
                _sys.eq().scheduleIn(ef.delay, [this, m] { send(m); });
            }
            break;
          case tf::EffectKind::COMPLETE:
            if (ef.delay == 0) {
                finishNow(ef.value, ef.flag, ef.serial);
            } else {
                Word value = ef.value;
                bool success = ef.flag;
                Word serial = ef.serial;
                _sys.eq().scheduleIn(ef.delay,
                                     [this, value, success, serial] {
                                         finishNow(value, success, serial);
                                     });
            }
            break;
          case tf::EffectKind::RETRY:
            driverRetry();
            break;
          case tf::EffectKind::ARM_TIMER:
            armRecoveryTimer();
            break;
          default:
            dsm_panic("unhandled effect kind %d",
                      static_cast<int>(ef.kind));
        }
    }
}

// ===================== CPU side ==========================================

void
Controller::cpuRequest(AtomicOp op, Addr addr, Word value, Word expected,
                       DoneFn done)
{
    dsm_assert(!_st.txn.active,
               "processor %d issued %s with a transaction outstanding",
               _id, toString(op));
    dsm_assert(addr == wordBase(addr),
               "unaligned operand address %#llx",
               static_cast<unsigned long long>(addr));
    // Fault injection, at issue time only (never mid-transaction, so
    // the protocol's in-flight invariants are preserved): model a
    // context switch clearing the load_linked reservation and/or a
    // conflict miss evicting the target block just before the
    // operation starts. Both are events the paper's protocols must
    // already survive; the injector just makes them frequent.
    FaultPlan *fp = _sys.faults();
    if (fp != nullptr) {
        if (_st.cache.reservationValid() && fp->dropReservation())
            _st.cache.clearReservation();
        const CacheLine *line = _st.cache.peek(addr);
        if (line != nullptr && fp->forceEviction()) {
            Victim v;
            v.valid = true;
            v.base = blockBase(addr);
            v.state = line->state;
            v.data = line->data;
            ++_st.cache.stats().evictions;
            _st.cache.invalidate(addr);
            tf::Outcome evict;
            tf::detail::emitTraceLine(evict, v.base, v.state,
                                      LineState::INVALID);
            tf::detail::evictVictim(env(), _st, evict, v);
            commit(std::move(evict));
        }
    }
    _done = std::move(done);
    _trace_flow = 0;
    _parked_total = 0;
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::ATOMIC_START)) {
        _trace_flow = tr.nextFlowId();
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::ATOMIC_START;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(op);
        ev.addr = addr;
        ev.flow = _trace_flow;
        tr.record(ev);
    }
    std::uint64_t txn_id = 0;
    TxnTracer &tx = _sys.txns();
    if (tx.enabled())
        txn_id = tx.begin(
            _id, op, addr, _sys.policyOf(addr),
            static_cast<std::uint8_t>(_st.cache.stateOf(addr)), now());
    tf::OpReq req;
    req.op = op;
    req.addr = addr;
    req.value = value;
    req.expected = expected;
    req.txn_id = txn_id;
    req.start = now();
    commit(tf::issue(env(), _st, req));
}

void
Controller::finishNow(Word value, bool success, Word serial)
{
    dsm_assert(_st.txn.active, "finish without an active transaction");
    SysStats &st = _sys.stats(_id);
    st.sampleOp(_st.txn.op, now() - _st.txn.start, _st.txn.max_chain);
    if (_st.txn.txn_id != 0)
        _sys.txns().complete(_st.txn.txn_id, now(), _st.txn.max_chain,
                             success);
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::ATOMIC_COMPLETE)) {
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::ATOMIC_COMPLETE;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(_st.txn.op);
        ev.addr = _st.txn.addr;
        ev.value = now() - _st.txn.start;
        ev.flow = _trace_flow;
        tr.record(ev);
    }
    if (_st.txn.op == AtomicOp::CAS) {
        if (success)
            ++st.cas_successes;
        else
            ++st.cas_failures;
    } else if (_st.txn.op == AtomicOp::SC ||
               _st.txn.op == AtomicOp::SCS) {
        if (success)
            ++st.sc_successes;
        else
            ++st.sc_failures;
    }
    DoneFn done = std::move(_done);
    _st.txn.active = false;
    Recovery *rc = _sys.recovery();
    if (rc != nullptr) {
        // The seq is retired: any still-uncovered drops charged to it
        // can no longer need recovery.
        rc->coverRequester(_id);
    }
    done(OpResult{value, success, serial});
}

void
Controller::driverRetry()
{
    // The transition already bumped txn.retries / the retry stat and
    // reset the per-attempt response state; the driver owns the
    // watchdog hook, the trace record, ledger coverage, and the
    // backoff RNG draw.
    Watchdog *wd = _sys.watchdog();
    if (wd != nullptr)
        wd->onRetry(_sys, _id, _st.txn.op, _st.txn.addr,
                    _st.txn.retries);
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::RETRY)) {
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::RETRY;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(_st.txn.op);
        ev.addr = _st.txn.addr;
        ev.value = static_cast<std::uint64_t>(_st.txn.retries);
        ev.flow = _trace_flow;
        tr.record(ev);
    }
    Recovery *rc = _sys.recovery();
    if (rc != nullptr) {
        // The NACK retires this seq (the retry will draw a fresh one),
        // so cover any drops still charged to it.
        rc->coverRequester(_id);
    }
    const MachineConfig &mc = _sys.cfg().machine;
    const ServeConfig &sv = _sys.cfg().serve;
    // Capped exponential backoff on retries: under heavy contention a
    // fixed retry delay floods the home memory module with requests
    // that will only be NACKed again. serve.nack_backoff raises the
    // cap from the built-in 4 doublings so retry pressure keeps
    // halving deep into overload instead of plateauing.
    int cap = sv.enabled && sv.nack_backoff ? sv.backoff_cap : 4;
    int shift = _st.txn.retries - 1 < cap ? _st.txn.retries - 1 : cap;
    Tick delay = (mc.retry_delay << shift) *
                 _sys.rng().range(1, mc.retry_jitter);
    if (sv.enabled) {
        if (sv.nack_backoff && shift == cap && cap > 4)
            ++_sys.serveStats().backoff_capped;
        _park_kind = ParkKind::BACKOFF;
        // A credit-throttled requester holds its retry until the
        // throttle lapses: retrying into a backlogged home just burns
        // a NACK round trip.
        if (sv.backpressure && _throttled_until > now() + delay) {
            delay = _throttled_until - now();
            _park_kind = ParkKind::THROTTLED;
        }
        _park_until = now() + delay;
        // The park is deliberate waiting with a scheduled wake-up, so
        // it must not count toward the watchdog's livelock age.
        _parked_total += delay;
    }
    _sys.eq().scheduleIn(delay, [this] {
        dsm_assert(_st.txn.active, "retry fired without a transaction");
        _park_kind = ParkKind::NONE;
        _park_until = 0;
        if (_st.txn.txn_id != 0)
            _sys.txns().retry(_st.txn.txn_id, now());
        commit(tf::dispatch(env(), _st));
    });
}

void
Controller::armRecoveryTimer()
{
    // Capped exponential backoff, mirroring driverRetry()'s idiom but
    // without jitter: the timeout must be deterministic so a fault-free
    // run with recovery armed never consumes RNG draws.
    Tick base = _sys.cfg().faults.req_timeout;
    int shift = _st.txn.attempt < 5 ? _st.txn.attempt - 1 : 4;
    std::uint64_t s = _st.txn.seq;
    int a = _st.txn.attempt;
    _sys.eq().scheduleIn(base << shift, [this, s, a] {
        recoveryTimeout(s, a);
    });
}

void
Controller::recoveryTimeout(std::uint64_t seq, int attempt)
{
    // Stale timer: the reply arrived (or the txn moved on) first.
    if (!_st.txn.active || !_st.txn.waiting || _st.txn.resp_seen ||
        _st.txn.seq != seq || _st.txn.attempt != attempt)
        return;
    Recovery *rc = _sys.recovery();
    ++rc->counters().retransmits;
    // A retransmission is the recovery event that covers every drop
    // charged to this seq so far (the resend supersedes them all).
    rc->coverRequester(_id);
    commit(tf::retransmit(env(), _st));
}

// ===================== Message delivery ==================================

void
Controller::handleMsg(const Msg &m)
{
    dsm_assert(m.dst == _id, "message for node %d delivered to %d",
               m.dst, _id);
    if (traceEnabled()) {
        std::fprintf(stderr,
                     "[%8llu] %2d<-%-2d %-14s blk=%#llx w=%#llx "
                     "val=%llu exp=%llu res=%llu ok=%d acks=%d ch=%d\n",
                     static_cast<unsigned long long>(now()), m.dst,
                     m.src, toString(m.type),
                     static_cast<unsigned long long>(m.addr),
                     static_cast<unsigned long long>(m.word_addr),
                     static_cast<unsigned long long>(m.value),
                     static_cast<unsigned long long>(m.expected),
                     static_cast<unsigned long long>(m.result),
                     m.success ? 1 : 0, m.ack_count, m.chain);
        if (m.has_data)
            std::fprintf(stderr, "           data0=%llu\n",
                         static_cast<unsigned long long>(m.data[0]));
    }
    switch (m.type) {
      // Home-targeted messages queue behind the memory module.
      case MsgType::GET_S:
      case MsgType::GET_X:
      case MsgType::UPGRADE:
      case MsgType::CAS_HOME:
      case MsgType::SC_REQ:
      case MsgType::UNC_REQ:
      case MsgType::UPD_REQ:
      case MsgType::WB_DATA:
      case MsgType::DROP_NOTIFY:
      case MsgType::OWNER_DATA_S:
      case MsgType::OWNER_DATA_X:
      case MsgType::CAS_OWNER_FAIL:
      case MsgType::CAS_OWNER_FAIL_S:
      case MsgType::FWD_NACK_RETRY:
      case MsgType::FWD_NACK_WB:
        homeEnqueue(m);
        break;

      // Everything else acts immediately at this node (responses to
      // the local requester, invalidations, updates, forwards).
      default:
        if (m.qdepth >= 0 && _sys.cfg().serve.backpressure)
            noteCredit(m.qdepth);
        commit(tf::deliver(env(), _st, m));
        break;
    }
}

void
Controller::noteCredit(int qdepth)
{
    const ServeConfig &sv = _sys.cfg().serve;
    // serve.credit_threshold=auto: track the threshold the telemetry
    // layer derives from recent home-queue depth windows instead of the
    // static configured value.
    int threshold = sv.credit_auto ? _sys.adaptiveCreditThreshold()
                                   : sv.credit_threshold;
    if (qdepth <= threshold)
        return;
    // Deterministic throttle duration: the backlog beyond the credit
    // threshold, in service times — roughly how long the home needs to
    // drain back under it. No RNG, so feature-off runs draw nothing.
    Tick dur = static_cast<Tick>(qdepth - threshold) *
               _sys.cfg().machine.mem_service_time;
    Tick until = now() + dur;
    if (until <= _throttled_until)
        return;
    ServeStats &st = _sys.serveStats();
    ++st.throttle_events;
    st.throttle_cycles +=
        until - (_throttled_until > now() ? _throttled_until : now());
    _throttled_until = until;
    // Propagate to the edge: the open-loop admission queue sheds
    // arrivals outright while this node is throttled, so overload is
    // rejected cheaply instead of queueing into the mesh.
    if (AdmissionQueues *adm = _sys.admission())
        adm->setThrottledUntil(_id, until);
}

void
Controller::homeEnqueue(const Msg &m)
{
    dsm_assert(_sys.homeOf(m.addr) == _id,
               "%s for block %#llx delivered to non-home node %d",
               toString(m.type), static_cast<unsigned long long>(m.addr),
               _id);
    if (HomeQueue *hq = _sys.homeQueue(_id)) {
        // Overload-protection path (serve.enabled): buffer in the
        // explicit two-level queue and pump one memory service slot at
        // a time, so a slot can serve a whole combining batch and the
        // scheduler can prefer foreground over retry traffic. Only
        // retryable requests may ride low: write-backs, drop notices,
        // and owner replies resolve directory busy states and must
        // never wait behind foreground traffic.
        bool low = m.prio == 1 && recoverableRequest(m.type);
        hq->push(m, now(), low);
        homePump();
        return;
    }
    Tick when = _sys.mem(_id).access(now());
    noteHomeService(m, now(), when);
    Msg copy = m;
    _sys.eq().schedule(when, [this, copy] { homeService(copy); });
}

void
Controller::noteHomeService(const Msg &m, Tick enq, Tick when)
{
    // Telemetry: attribute this request and its full home cost (queue
    // wait plus service) to the block it targets.
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteService(m.addr, when - enq);
    // An injected duplicate replay still burns the bank slot (hence
    // the line-profiler attribution above), but its transaction has
    // already been serviced by the original delivery — a second
    // SERVICE mark would break the tracer's phase partition.
    if (m.txn_id != 0 && !m.replayed) {
        // Owner replies re-enter the home queue: their transit leg
        // belongs to the reply path, not the request path.
        bool reply_leg = m.type == MsgType::OWNER_DATA_S ||
                         m.type == MsgType::OWNER_DATA_X ||
                         m.type == MsgType::CAS_OWNER_FAIL ||
                         m.type == MsgType::CAS_OWNER_FAIL_S ||
                         m.type == MsgType::FWD_NACK_RETRY ||
                         m.type == MsgType::FWD_NACK_WB;
        _sys.txns().markService(m.txn_id, _id, enq,
                                when - _sys.cfg().machine.mem_service_time,
                                when, reply_leg);
    }
}

void
Controller::homePump()
{
    HomeQueue *hq = _sys.homeQueue(_id);
    if (_slot_scheduled || hq->empty())
        return;
    // Reserve the slot now (the bank is busy for it either way) but
    // defer head selection and batch formation to the slot itself:
    // requests arriving while the bank drains can still join a
    // combining batch or overtake a lower class.
    _slot_scheduled = true;
    Tick when = _sys.mem(_id).access(now());
    ++_sys.serveStats().slots;
    _sys.eq().schedule(when, [this, when] { homeServiceSlot(when); });
}

void
Controller::homeServiceSlot(Tick when)
{
    _slot_scheduled = false;
    HomeQueue *hq = _sys.homeQueue(_id);
    dsm_assert(hq != nullptr && !hq->empty(),
               "home service slot fired with an empty queue");
    ServeStats &sst = _sys.serveStats();
    const ServeConfig &sv = _sys.cfg().serve;
    HomeQueue::Entry lead = hq->pop(now(), sst);
    noteHomeService(lead.msg, lead.enq, when);

    // Recovery dedup and fault injection hit the leader exactly as on
    // the legacy path; a consumed leader spends the slot.
    if (!_st.dedup.empty() && recoverableRequest(lead.msg.type) &&
        lead.msg.seq != 0) {
        tf::Outcome o;
        bool handled = tf::tryDedup(env(), _st, lead.msg, o);
        commit(std::move(o));
        if (handled) {
            homePump();
            return;
        }
    }
    FaultPlan *fp = _sys.faults();
    if (fp != nullptr && recoverableRequest(lead.msg.type) &&
        fp->injectNack(lead.msg.src)) {
        commit(tf::injectNack(env(), _st, lead.msg));
        homePump();
        return;
    }

    // Home-node combining: fold queued commutative requests to the
    // same line into this slot. GET_S additionally needs the line
    // quiet (a busy or exclusive entry forwards or NACKs instead).
    if (sv.combining) {
        bool lead_ok = false;
        DirEntry e = dirEntry(lead.msg.addr);
        switch (lead.msg.type) {
          case MsgType::UNC_REQ:
            lead_ok = lead.msg.op == AtomicOp::FAA && !e.busy &&
                      e.state == DirState::UNCACHED;
            break;
          case MsgType::UPD_REQ:
            lead_ok = lead.msg.op == AtomicOp::FAA && !e.busy &&
                      e.state != DirState::EXCLUSIVE;
            break;
          case MsgType::GET_S:
            lead_ok = !e.busy && e.state != DirState::EXCLUSIVE;
            break;
          default:
            break;
        }
        if (lead_ok) {
            std::vector<HomeQueue::Entry> followers =
                hq->extractCombinable(lead.msg, sv.combine_limit - 1);
            std::vector<Msg> batch;
            batch.push_back(lead.msg);
            for (const HomeQueue::Entry &f : followers) {
                // Per-member dedup, exactly as if delivered alone; the
                // replies captured by deliverCombined refresh each
                // member's slot.
                if (!_st.dedup.empty() && f.msg.seq != 0) {
                    tf::Outcome o;
                    bool handled = tf::tryDedup(env(), _st, f.msg, o);
                    commit(std::move(o));
                    if (handled)
                        continue;
                }
                batch.push_back(f.msg);
            }
            if (batch.size() >= 2) {
                sst.batches += 1;
                sst.coalesced += batch.size() - 1;
                sst.served += batch.size() - 1;
                for (std::size_t i = 1; i < batch.size(); ++i) {
                    if (batch[i].prio == 1)
                        ++sst.lo_served;
                    else
                        ++sst.hi_served;
                }
                for (const HomeQueue::Entry &f : followers)
                    noteHomeService(f.msg, f.enq, when);
                commit(tf::deliverCombined(env(), _st, batch));
                homePump();
                return;
            }
        }
    }

    commit(tf::deliver(env(), _st, lead.msg));
    homePump();
}

void
Controller::homeService(const Msg &m)
{
    // Recovery layer: filter duplicate requests (timeout
    // retransmissions) before any directory action or fault hook, so a
    // request is never serviced twice unless re-execution is provably
    // idempotent. Runs after the memory-queue delay on purpose — a
    // duplicate costs real memory bandwidth, like any other request.
    if (!_st.dedup.empty() && recoverableRequest(m.type) && m.seq != 0) {
        tf::Outcome o;
        bool handled = tf::tryDedup(env(), _st, m, o);
        commit(std::move(o));
        if (handled)
            return;
    }
    // Fault injection: an extra NACK round for request types that
    // already carry retry machinery. Never for write-backs, drop
    // notifications, or owner replies — those have no retry path and
    // NACKing them would wedge the directory's busy-state machine.
    FaultPlan *fp = _sys.faults();
    if (fp != nullptr) {
        switch (m.type) {
          case MsgType::GET_S:
          case MsgType::GET_X:
          case MsgType::UPGRADE:
          case MsgType::CAS_HOME:
          case MsgType::SC_REQ:
          case MsgType::UNC_REQ:
          case MsgType::UPD_REQ:
            if (fp->injectNack(m.src)) {
                commit(tf::injectNack(env(), _st, m));
                return;
            }
            break;
          default:
            break;
        }
    }
    commit(tf::deliver(env(), _st, m));
}

} // namespace dsm
