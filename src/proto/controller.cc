/**
 * @file
 * Controller: construction, message dispatch, and helpers shared by the
 * CPU-side, home-side, and remote-side implementation files.
 */

#include "proto/controller.hh"

#include <cstdlib>

#include "cpu/system.hh"
#include "fault/recovery.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

/** Message tracing for protocol debugging, enabled by DSM_TRACE=1. */
bool
traceEnabled()
{
    static const bool on = std::getenv("DSM_TRACE") != nullptr;
    return on;
}

} // namespace

Controller::Controller(System &sys, NodeId id)
    : _sys(sys), _id(id),
      _cache(sys.cfg().machine.cache_sets, sys.cfg().machine.cache_ways)
{
    if (sys.cfg().faults.recoveryEnabled())
        _dedup.resize(
            static_cast<std::size_t>(sys.cfg().machine.num_procs));
}

Tick
Controller::now() const
{
    return _sys.eq().now();
}

void
Controller::send(Msg m)
{
    m.src = _id;
    _sys.mesh().send(m);
}

void
Controller::handleMsg(const Msg &m)
{
    dsm_assert(m.dst == _id, "message for node %d delivered to %d",
               m.dst, _id);
    if (traceEnabled()) {
        std::fprintf(stderr,
                     "[%8llu] %2d<-%-2d %-14s blk=%#llx w=%#llx "
                     "val=%llu exp=%llu res=%llu ok=%d acks=%d ch=%d\n",
                     static_cast<unsigned long long>(now()), m.dst,
                     m.src, toString(m.type),
                     static_cast<unsigned long long>(m.addr),
                     static_cast<unsigned long long>(m.word_addr),
                     static_cast<unsigned long long>(m.value),
                     static_cast<unsigned long long>(m.expected),
                     static_cast<unsigned long long>(m.result),
                     m.success ? 1 : 0, m.ack_count, m.chain);
        if (m.has_data)
            std::fprintf(stderr, "           data0=%llu\n",
                         static_cast<unsigned long long>(m.data[0]));
    }
    switch (m.type) {
      // Home-targeted messages queue behind the memory module.
      case MsgType::GET_S:
      case MsgType::GET_X:
      case MsgType::UPGRADE:
      case MsgType::CAS_HOME:
      case MsgType::SC_REQ:
      case MsgType::UNC_REQ:
      case MsgType::UPD_REQ:
      case MsgType::WB_DATA:
      case MsgType::DROP_NOTIFY:
      case MsgType::OWNER_DATA_S:
      case MsgType::OWNER_DATA_X:
      case MsgType::CAS_OWNER_FAIL:
      case MsgType::CAS_OWNER_FAIL_S:
      case MsgType::FWD_NACK_RETRY:
      case MsgType::FWD_NACK_WB:
        homeEnqueue(m);
        break;

      // Responses addressed to this node as the requester.
      case MsgType::DATA_S:
      case MsgType::DATA_X:
      case MsgType::UPG_ACK:
      case MsgType::NACK:
      case MsgType::CAS_FAIL:
      case MsgType::CAS_FAIL_S:
      case MsgType::UNC_RESP:
      case MsgType::UPD_RESP:
      case MsgType::SC_RESP:
      case MsgType::INV_ACK:
      case MsgType::UPDATE_ACK:
        cpuResponse(m);
        break;

      // Third-party coherence actions.
      case MsgType::INV:
        handleInv(m);
        break;
      case MsgType::UPDATE:
        handleUpdate(m);
        break;
      case MsgType::FWD_GET_S:
      case MsgType::FWD_GET_X:
      case MsgType::FWD_CAS:
        handleFwd(m);
        break;
    }
}

void
Controller::reply(const Msg &req, Msg resp)
{
    resp.src = _id;
    resp.dst = req.src;
    resp.requester = req.src;
    resp.addr = req.addr;
    resp.word_addr = req.word_addr;
    resp.chain = chainNext(req.chain, _id, req.src);
    resp.txn_id = req.txn_id;
    resp.seq = req.seq;
    resp.attempt = req.attempt;
    if (!_dedup.empty() && recoverableRequest(req.type) && req.seq != 0)
        captureReply(req.src, req.seq, resp);
    send(resp);
}

void
Controller::captureReply(NodeId requester, std::uint64_t seq,
                         const Msg &resp)
{
    DedupEntry &de = _dedup[static_cast<std::size_t>(requester)];
    if (de.seq != seq)
        return; // a newer request already owns the slot
    de.has_reply = true;
    de.reply = resp;
}

bool
Controller::dedupRequest(const Msg &m)
{
    DedupEntry &de = _dedup[static_cast<std::size_t>(m.src)];
    Recovery::Counters &rc = _sys.recovery()->counters();
    if (m.seq > de.seq) {
        // New request: the requester is done with every older seq, so
        // the slot (and any cached reply) can be recycled.
        de = DedupEntry{};
        de.seq = m.seq;
        return false;
    }
    ++rc.dup_requests;
    if (m.seq < de.seq) {
        // Stale retransmission of a seq the requester already retired;
        // nothing references it anymore.
        ++rc.dup_stale;
        return true;
    }
    if (!de.has_reply) {
        // Original still in service (typically forwarded to the owner);
        // its reply will answer the requester.
        ++rc.dup_in_progress;
        return true;
    }
    // Shared grants cannot be replayed: a third party's invalidation
    // may have removed the requester from the sharer set since the
    // cached reply was built, and replaying it would install a stale,
    // untracked copy. Failed CAS verdicts are re-evaluated for the
    // same reason (CAS_FAIL_S grants a shared copy; a fresh verdict is
    // linearizable because a failure wrote nothing). Everything else —
    // notably granted exclusive replies, which the directory pins to
    // this requester until it answers (handleFwd NACKs forwards while
    // the local transaction waits) — is replayed verbatim.
    bool reexec =
        m.type == MsgType::GET_S ||
        (m.type == MsgType::CAS_HOME &&
         (de.reply.type == MsgType::CAS_FAIL ||
          de.reply.type == MsgType::CAS_FAIL_S));
    if (reexec && de.reply.type != MsgType::NACK) {
        ++rc.dup_reprocessed;
        de.has_reply = false; // re-execution re-captures the reply
        return false;
    }
    ++rc.dup_replayed;
    if (de.reply.type == MsgType::NACK)
        ++rc.nacks_replayed;
    Msg r = de.reply;
    // UPD copies track memory: refresh the block payload so the replay
    // carries any updates the requester's dead original missed. The
    // result word stays — it is the operation's execution-time value.
    if (r.type == MsgType::UPD_RESP && r.has_data)
        r.data = _sys.store().readBlock(r.addr);
    r.attempt = m.attempt;
    send(r);
    return true;
}

void
Controller::sendNack(const Msg &req)
{
    ++_sys.stats(_id).nacks;
    if (LineProfiler *lp = _sys.lineProfiler())
        lp->noteNack(req.addr);
    traceNack(req.src, req.addr, req.type);
    Msg n;
    n.type = MsgType::NACK;
    reply(req, n);
}

void
Controller::traceLineState(Addr block, LineState from, LineState to)
{
    Tracer &tr = _sys.tracer();
    if (!tr.on(TraceCat::LINE_STATE) || from == to)
        return;
    TraceEvent ev;
    ev.tick = now();
    ev.cat = TraceCat::LINE_STATE;
    ev.node = static_cast<std::int16_t>(_id);
    ev.addr = block;
    ev.arg_a = static_cast<std::uint8_t>(from);
    ev.arg_b = static_cast<std::uint8_t>(to);
    tr.record(ev);
}

void
Controller::setDirState(DirEntry &e, Addr block, DirState to)
{
    DirState from = e.state;
    e.state = to;
    if (from == to)
        return;
    _sys.dir(_id).noteTransition();
    Tracer &tr = _sys.tracer();
    if (!tr.on(TraceCat::DIR_STATE))
        return;
    TraceEvent ev;
    ev.tick = now();
    ev.cat = TraceCat::DIR_STATE;
    ev.node = static_cast<std::int16_t>(_id);
    ev.addr = block;
    ev.arg_a = static_cast<std::uint8_t>(from);
    ev.arg_b = static_cast<std::uint8_t>(to);
    tr.record(ev);
}

void
Controller::traceResv(TraceCat cat, Addr block)
{
    Tracer &tr = _sys.tracer();
    if (!tr.on(cat))
        return;
    TraceEvent ev;
    ev.tick = now();
    ev.cat = cat;
    ev.node = static_cast<std::int16_t>(_id);
    ev.addr = block;
    tr.record(ev);
}

void
Controller::traceNack(NodeId victim, Addr block, MsgType req_type)
{
    Tracer &tr = _sys.tracer();
    if (!tr.on(TraceCat::NACK))
        return;
    TraceEvent ev;
    ev.tick = now();
    ev.cat = TraceCat::NACK;
    ev.node = static_cast<std::int16_t>(_id);
    ev.peer = static_cast<std::int16_t>(victim);
    ev.addr = block;
    ev.op = static_cast<std::uint8_t>(req_type);
    tr.record(ev);
}

Word
Controller::applyOp(AtomicOp op, Word old, Word operand)
{
    switch (op) {
      case AtomicOp::STORE:
      case AtomicOp::FAS:
        return operand;
      case AtomicOp::TAS:
        return 1;
      case AtomicOp::FAA:
        return old + operand;
      case AtomicOp::FAO:
        return old | operand;
      default:
        dsm_panic("applyOp on non-modifying op %s", toString(op));
    }
}

bool
Controller::effectiveWrite(AtomicOp op, bool success)
{
    switch (op) {
      case AtomicOp::STORE:
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO:
        return true;
      case AtomicOp::CAS:
      case AtomicOp::SC:
      case AtomicOp::SCS:
        return success;
      default:
        return false;
    }
}

CacheLine *
Controller::installLine(Addr addr, LineState state,
                        const std::array<Word, BLOCK_WORDS> &data)
{
    Addr base = blockBase(addr);
    CacheLine *line = _cache.lookup(base);
    LineState prev = LineState::INVALID;
    if (line == nullptr) {
        Victim victim;
        line = _cache.allocate(base, &victim);
        if (victim.valid)
            evictVictim(victim);
    } else {
        prev = line->state;
    }
    line->state = state;
    line->data = data;
    traceLineState(base, prev, state);
    return line;
}

void
Controller::evictVictim(const Victim &v)
{
    if (v.state != LineState::EXCLUSIVE)
        return; // shared lines are dropped silently (DASH-style)
    ++_sys.stats(_id).writebacks;
    Msg wb;
    wb.type = MsgType::WB_DATA;
    wb.dst = _sys.homeOf(v.base);
    wb.requester = _id;
    wb.addr = v.base;
    wb.word_addr = v.base;
    wb.data = v.data;
    wb.has_data = true;
    wb.chain = 1;
    send(wb);
}

} // namespace dsm
