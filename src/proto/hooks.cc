/**
 * @file
 * ProtoHooks implementation: the single place where transition effect
 * records turn into Tracer/TxnTracer/LineProfiler/Directory/Recovery
 * hook calls and where stat deltas land in the counters.
 */

#include "proto/hooks.hh"

#include "fault/recovery.hh"
#include "mem/directory.hh"
#include "stats/attribution.hh"
#include "stats/line_profiler.hh"
#include "stats/stat_set.hh"
#include "trace/trace.hh"
#include "trace/txn.hh"

namespace dsm {

void
ProtoHooks::applyStats(const tf::StatDelta &d) const
{
    if (stats != nullptr) {
        stats->nacks += d.nacks;
        stats->retries += d.retries;
        stats->invalidations += d.invalidations;
        stats->updates += d.updates;
        stats->writebacks += d.writebacks;
        stats->drop_notifies += d.drop_notifies;
        stats->sc_local_failures += d.sc_local_failures;
    }
    if (recovery != nullptr) {
        Recovery::Counters &c = recovery->counters();
        c.dup_requests += d.dup_requests;
        c.dup_stale += d.dup_stale;
        c.dup_in_progress += d.dup_in_progress;
        c.dup_reprocessed += d.dup_reprocessed;
        c.dup_replayed += d.dup_replayed;
        c.nacks_replayed += d.nacks_replayed;
        c.nacks_stale += d.nacks_stale;
        c.stale_replies += d.stale_replies;
        c.dups_absorbed += d.dups_absorbed;
    }
}

bool
ProtoHooks::applyEffect(const tf::Effect &ef, NodeId self, Tick now) const
{
    switch (ef.kind) {
      case tf::EffectKind::TRACE_LINE: {
        if (tracer == nullptr || !tracer->on(TraceCat::LINE_STATE))
            return true;
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::LINE_STATE;
        ev.node = static_cast<std::int16_t>(self);
        ev.addr = ef.addr;
        ev.arg_a = ef.a;
        ev.arg_b = ef.b;
        tracer->record(ev);
        return true;
      }
      case tf::EffectKind::TRACE_DIR: {
        // Emitted only on an actual stable-state change; the transition
        // counter is unconditional, the trace record is mask-gated.
        if (dir != nullptr)
            dir->noteTransition();
        if (tracer == nullptr || !tracer->on(TraceCat::DIR_STATE))
            return true;
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::DIR_STATE;
        ev.node = static_cast<std::int16_t>(self);
        ev.addr = ef.addr;
        ev.arg_a = ef.a;
        ev.arg_b = ef.b;
        tracer->record(ev);
        return true;
      }
      case tf::EffectKind::TRACE_RESV: {
        TraceCat cat = ef.a != 0 ? TraceCat::RESV_CLEAR
                                 : TraceCat::RESV_SET;
        if (tracer == nullptr || !tracer->on(cat))
            return true;
        TraceEvent ev;
        ev.tick = now;
        ev.cat = cat;
        ev.node = static_cast<std::int16_t>(self);
        ev.addr = ef.addr;
        tracer->record(ev);
        return true;
      }
      case tf::EffectKind::TRACE_NACK: {
        if (tracer == nullptr || !tracer->on(TraceCat::NACK))
            return true;
        TraceEvent ev;
        ev.tick = now;
        ev.cat = TraceCat::NACK;
        ev.node = static_cast<std::int16_t>(self);
        ev.peer = static_cast<std::int16_t>(ef.node);
        ev.addr = ef.addr;
        ev.op = ef.a;
        tracer->record(ev);
        return true;
      }
      case tf::EffectKind::LP_NACK:
        if (lp != nullptr)
            lp->noteNack(ef.addr);
        return true;
      case tf::EffectKind::LP_OWNER:
        if (lp != nullptr)
            lp->noteOwner(ef.addr, ef.node);
        return true;
      case tf::EffectKind::LP_SHARER_JOIN:
        if (lp != nullptr)
            lp->noteSharerJoin(ef.addr);
        return true;
      case tf::EffectKind::LP_INVALIDATION:
        if (lp != nullptr)
            lp->noteInvalidation(ef.addr);
        return true;
      case tf::EffectKind::TXN_MARK:
        if (txns != nullptr)
            txns->mark(ef.id, static_cast<TxnPhase>(ef.a),
                       now + ef.delay, ef.node);
        return true;
      case tf::EffectKind::TXN_SERVICE:
        if (txns != nullptr)
            txns->service(ef.id, self, ef.facts.dir_state,
                          ef.facts.sharers, ef.facts.forwarded,
                          ef.facts.owner, ef.facts.fanout_mask);
        return true;
      case tf::EffectKind::SEND:
      case tf::EffectKind::COMPLETE:
      case tf::EffectKind::RETRY:
      case tf::EffectKind::ARM_TIMER:
        return false;
    }
    return false;
}

} // namespace dsm
