/**
 * @file
 * CPU side of the controller: dispatch of processor operations under the
 * three coherence policies (Section 3), response handling, and local
 * execution of atomic primitives for the INV implementations.
 */

#include "cpu/system.hh"
#include "fault/recovery.hh"
#include "proto/controller.hh"
#include "sim/logging.hh"

namespace dsm {

void
Controller::cpuRequest(AtomicOp op, Addr addr, Word value, Word expected,
                       DoneFn done)
{
    dsm_assert(!_txn.active,
               "processor %d issued %s with a transaction outstanding",
               _id, toString(op));
    dsm_assert(addr == wordBase(addr),
               "unaligned operand address %#llx",
               static_cast<unsigned long long>(addr));
    // Fault injection, at issue time only (never mid-transaction, so
    // the protocol's in-flight invariants are preserved): model a
    // context switch clearing the load_linked reservation and/or a
    // conflict miss evicting the target block just before the
    // operation starts. Both are events the paper's protocols must
    // already survive; the injector just makes them frequent.
    FaultPlan *fp = _sys.faults();
    if (fp != nullptr) {
        if (_cache.reservationValid() && fp->dropReservation())
            _cache.clearReservation();
        const CacheLine *line = _cache.peek(addr);
        if (line != nullptr && fp->forceEviction()) {
            Victim v;
            v.valid = true;
            v.base = blockBase(addr);
            v.state = line->state;
            v.data = line->data;
            ++_cache.stats().evictions;
            _cache.invalidate(addr);
            traceLineState(v.base, v.state, LineState::INVALID);
            evictVictim(v);
        }
    }
    _txn = Txn{};
    _txn.active = true;
    _txn.op = op;
    _txn.addr = addr;
    _txn.value = value;
    _txn.expected = expected;
    _txn.done = std::move(done);
    _txn.start = now();
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::ATOMIC_START)) {
        _txn.trace_flow = tr.nextFlowId();
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::ATOMIC_START;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(op);
        ev.addr = addr;
        ev.flow = _txn.trace_flow;
        tr.record(ev);
    }
    TxnTracer &tx = _sys.txns();
    if (tx.enabled())
        _txn.txn_id = tx.begin(
            _id, op, addr, _sys.policyOf(addr),
            static_cast<std::uint8_t>(_cache.stateOf(addr)), now());
    beginTxn();
}

void
Controller::beginTxn()
{
    switch (_sys.policyOf(_txn.addr)) {
      case SyncPolicy::INV:
        beginInv();
        break;
      case SyncPolicy::UNC:
        beginUnc();
        break;
      case SyncPolicy::UPD:
        beginUpd();
        break;
    }
}

void
Controller::finishTxn(Word value, bool success, Word serial)
{
    dsm_assert(_txn.active, "finish without an active transaction");
    SysStats &st = _sys.stats(_id);
    st.sampleOp(_txn.op, now() - _txn.start, _txn.max_chain);
    if (_txn.txn_id != 0)
        _sys.txns().complete(_txn.txn_id, now(), _txn.max_chain, success);
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::ATOMIC_COMPLETE)) {
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::ATOMIC_COMPLETE;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(_txn.op);
        ev.addr = _txn.addr;
        ev.value = now() - _txn.start;
        ev.flow = _txn.trace_flow;
        tr.record(ev);
    }
    if (_txn.op == AtomicOp::CAS) {
        if (success)
            ++st.cas_successes;
        else
            ++st.cas_failures;
    } else if (_txn.op == AtomicOp::SC || _txn.op == AtomicOp::SCS) {
        if (success)
            ++st.sc_successes;
        else
            ++st.sc_failures;
    }
    DoneFn done = std::move(_txn.done);
    _txn.active = false;
    Recovery *rc = _sys.recovery();
    if (rc != nullptr) {
        // The seq is retired: any still-uncovered drops charged to it
        // can no longer need recovery.
        rc->coverRequester(_id);
    }
    done(OpResult{value, success, serial});
}

void
Controller::finishTxnAfter(Tick delay, Word value, bool success,
                           Word serial)
{
    _sys.eq().scheduleIn(delay, [this, value, success, serial] {
        finishTxn(value, success, serial);
    });
}

void
Controller::retryTxn()
{
    dsm_assert(_txn.active, "retry without an active transaction");
    ++_txn.retries;
    ++_sys.stats(_id).retries;
    Watchdog *wd = _sys.watchdog();
    if (wd != nullptr)
        wd->onRetry(_sys, _id, _txn.op, _txn.addr, _txn.retries);
    Tracer &tr = _sys.tracer();
    if (tr.on(TraceCat::RETRY)) {
        TraceEvent ev;
        ev.tick = now();
        ev.cat = TraceCat::RETRY;
        ev.node = static_cast<std::int16_t>(_id);
        ev.op = static_cast<std::uint8_t>(_txn.op);
        ev.addr = _txn.addr;
        ev.value = static_cast<std::uint64_t>(_txn.retries);
        ev.flow = _txn.trace_flow;
        tr.record(ev);
    }
    _txn.waiting = false;
    _txn.resp_seen = false;
    _txn.acks_needed = 0;
    _txn.acks_got = 0;
    _txn.max_chain = 0;
    Recovery *rc = _sys.recovery();
    if (rc != nullptr) {
        // The NACK retires this seq (the retry will draw a fresh one),
        // so cover any drops still charged to it.
        rc->coverRequester(_id);
    }
    const MachineConfig &mc = _sys.cfg().machine;
    // Capped exponential backoff on retries: under heavy contention a
    // fixed retry delay floods the home memory module with requests
    // that will only be NACKed again.
    int shift = _txn.retries < 5 ? _txn.retries - 1 : 4;
    Tick delay = (mc.retry_delay << shift) *
                 _sys.rng().range(1, mc.retry_jitter);
    _sys.eq().scheduleIn(delay, [this] {
        dsm_assert(_txn.active, "retry fired without a transaction");
        if (_txn.txn_id != 0)
            _sys.txns().retry(_txn.txn_id, now());
        beginTxn();
    });
}

Msg
Controller::buildReq(MsgType t) const
{
    Msg m;
    m.type = t;
    m.dst = _sys.homeOf(_txn.addr);
    m.requester = _id;
    m.addr = blockBase(_txn.addr);
    m.word_addr = _txn.addr;
    m.op = _txn.op;
    m.value = _txn.value;
    m.expected = _txn.expected;
    // Serial-number SC carries the expected serial in the same field a
    // CAS uses for its expected value.
    m.serial = _txn.expected;
    m.chain = chainNext(0, _id, m.dst);
    m.txn_id = _txn.txn_id;
    m.seq = _txn.seq;
    m.attempt = _txn.attempt;
    return m;
}

void
Controller::sendReq(MsgType t)
{
    if (_sys.recovery() != nullptr) {
        // Every *new* network request (a NACK-and-retry included) gets
        // a fresh seq; only timeout retransmissions reuse one.
        _txn.seq = ++_next_seq;
        _txn.attempt = 1;
        _txn.req_type = t;
    }
    _txn.waiting = true;
    send(buildReq(t));
    if (_sys.recovery() != nullptr)
        armRecoveryTimer();
}

void
Controller::armRecoveryTimer()
{
    // Capped exponential backoff, mirroring retryTxn()'s idiom but
    // without jitter: the timeout must be deterministic so a fault-free
    // run with recovery armed never consumes RNG draws.
    Tick base = _sys.cfg().faults.req_timeout;
    int shift = _txn.attempt < 5 ? _txn.attempt - 1 : 4;
    std::uint64_t s = _txn.seq;
    int a = _txn.attempt;
    _sys.eq().scheduleIn(base << shift, [this, s, a] {
        recoveryTimeout(s, a);
    });
}

void
Controller::recoveryTimeout(std::uint64_t seq, int attempt)
{
    // Stale timer: the reply arrived (or the txn moved on) first.
    if (!_txn.active || !_txn.waiting || _txn.resp_seen ||
        _txn.seq != seq || _txn.attempt != attempt)
        return;
    Recovery *rc = _sys.recovery();
    ++rc->counters().retransmits;
    // A retransmission is the recovery event that covers every drop
    // charged to this seq so far (the resend supersedes them all).
    rc->coverRequester(_id);
    if (_txn.txn_id != 0)
        _sys.txns().mark(_txn.txn_id, TxnPhase::RECOVERY, now(), _id);
    ++_txn.attempt;
    send(buildReq(_txn.req_type));
    armRecoveryTimer();
}

void
Controller::beginInv()
{
    const Tick hit = _sys.cfg().machine.cache_hit_latency;
    Addr a = _txn.addr;
    CacheLine *line = _cache.lookup(a);

    switch (_txn.op) {
      case AtomicOp::LOAD:
        if (line != nullptr) {
            ++_cache.stats().hits;
            finishTxnAfter(hit, line->readWord(a), true);
        } else {
            ++_cache.stats().misses;
            sendReq(MsgType::GET_S);
        }
        break;

      case AtomicOp::LL:
        // load_linked obtains a *shared* copy; an exclusive load_linked
        // would invite livelock (Section 4.3.2).
        if (line != nullptr) {
            ++_cache.stats().hits;
            _cache.setReservation(a);
            traceResv(TraceCat::RESV_SET, blockBase(a));
            finishTxnAfter(hit, line->readWord(a), true);
        } else {
            ++_cache.stats().misses;
            sendReq(MsgType::GET_S);
        }
        break;

      case AtomicOp::LOAD_EXCL:
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++_cache.stats().hits;
            finishTxnAfter(hit, line->readWord(a), true);
        } else if (line != nullptr) {
            sendReq(MsgType::UPGRADE);
        } else {
            ++_cache.stats().misses;
            sendReq(MsgType::GET_X);
        }
        break;

      case AtomicOp::STORE:
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO:
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++_cache.stats().hits;
            Word old = line->readWord(a);
            line->writeWord(a, applyOp(_txn.op, old, _txn.value));
            finishTxnAfter(hit, _txn.op == AtomicOp::STORE ? 0 : old, true);
        } else if (line != nullptr) {
            sendReq(MsgType::UPGRADE);
        } else {
            ++_cache.stats().misses;
            sendReq(MsgType::GET_X);
        }
        break;

      case AtomicOp::CAS: {
        // Ordinary (non-sync) data always uses the plain INV flavour.
        CasVariant variant = _sys.isSync(a) ? _sys.cfg().sync.cas_variant
                                            : CasVariant::PLAIN;
        if (line != nullptr && line->state == LineState::EXCLUSIVE) {
            ++_cache.stats().hits;
            Word old = line->readWord(a);
            bool ok = old == _txn.expected;
            if (ok)
                line->writeWord(a, _txn.value);
            finishTxnAfter(hit, old, ok);
        } else if (variant == CasVariant::PLAIN) {
            if (line != nullptr) {
                sendReq(MsgType::UPGRADE);
            } else {
                ++_cache.stats().misses;
                sendReq(MsgType::GET_X);
            }
        } else {
            // INVd/INVs: the comparison happens at the home or owner.
            sendReq(MsgType::CAS_HOME);
        }
        break;
      }

      case AtomicOp::SC: {
        bool reserved = _cache.reservationValid() &&
                        _cache.reservationAddr() == blockBase(a);
        if (!reserved) {
            // Fails locally without causing any network traffic.
            ++_sys.stats(_id).sc_local_failures;
            finishTxnAfter(hit, 0, false);
        } else if (line != nullptr &&
                   line->state == LineState::EXCLUSIVE) {
            ++_cache.stats().hits;
            line->writeWord(a, _txn.value);
            _cache.clearReservation();
            traceResv(TraceCat::RESV_CLEAR, blockBase(a));
            finishTxnAfter(hit, 0, true);
        } else {
            dsm_assert(line != nullptr,
                       "valid reservation without a cached line");
            sendReq(MsgType::SC_REQ);
        }
        break;
      }

      case AtomicOp::LLS:
      case AtomicOp::SCS:
        dsm_fatal("serial-number load_linked/store_conditional is an "
                  "in-memory primitive (Section 3.1); the block must use "
                  "the UNC or UPD policy");
        break;

      case AtomicOp::DROP_COPY:
        if (line != nullptr) {
            Victim v;
            v.valid = true;
            v.base = blockBase(a);
            v.state = line->state;
            v.data = line->data;
            if (line->state == LineState::SHARED) {
                ++_sys.stats(_id).drop_notifies;
                Msg d;
                d.type = MsgType::DROP_NOTIFY;
                d.dst = _sys.homeOf(a);
                d.requester = _id;
                d.addr = blockBase(a);
                d.word_addr = a;
                d.chain = 1;
                send(d);
            } else {
                evictVictim(v); // sends the write-back
            }
            _cache.invalidate(a);
        }
        finishTxnAfter(hit, 0, true);
        break;
    }
}

void
Controller::beginUnc()
{
    if (_txn.op == AtomicOp::DROP_COPY) {
        // Nothing is ever cached under UNC.
        finishTxnAfter(_sys.cfg().machine.cache_hit_latency, 0, true);
        return;
    }
    if (_txn.op == AtomicOp::SC && _resv_denied &&
        _resv_denied_block == blockBase(_txn.addr)) {
        // The load_linked was denied a reservation (limited-reservation
        // option): the store_conditional is doomed, so it fails locally
        // without causing any network traffic (Section 3.1).
        _resv_denied = false;
        ++_sys.stats(_id).sc_local_failures;
        finishTxnAfter(_sys.cfg().machine.cache_hit_latency, 0, false);
        return;
    }
    // Every access goes to the memory at the home node.
    sendReq(MsgType::UNC_REQ);
}

void
Controller::beginUpd()
{
    const Tick hit = _sys.cfg().machine.cache_hit_latency;
    Addr a = _txn.addr;
    CacheLine *line = _cache.lookup(a);

    switch (_txn.op) {
      case AtomicOp::LOAD:
      case AtomicOp::LOAD_EXCL:
        // UPD lines are only ever shared; load_exclusive degenerates to
        // an ordinary load.
        if (line != nullptr) {
            ++_cache.stats().hits;
            finishTxnAfter(hit, line->readWord(a), true);
        } else {
            ++_cache.stats().misses;
            sendReq(MsgType::GET_S);
        }
        break;

      case AtomicOp::DROP_COPY:
        if (line != nullptr) {
            ++_sys.stats(_id).drop_notifies;
            Msg d;
            d.type = MsgType::DROP_NOTIFY;
            d.dst = _sys.homeOf(a);
            d.requester = _id;
            d.addr = blockBase(a);
            d.word_addr = a;
            d.chain = 1;
            send(d);
            _cache.invalidate(a);
        }
        finishTxnAfter(hit, 0, true);
        break;

      case AtomicOp::SC:
        if (_resv_denied && _resv_denied_block == blockBase(a)) {
            _resv_denied = false;
            ++_sys.stats(_id).sc_local_failures;
            finishTxnAfter(hit, 0, false);
            break;
        }
        sendReq(MsgType::UPD_REQ);
        break;

      default:
        // All writes and atomic operations -- and load_linked, which must
        // set its reservation at the memory -- go to the home node.
        sendReq(MsgType::UPD_REQ);
        break;
    }
}

void
Controller::cpuResponse(const Msg &m)
{
    Recovery *rc = _sys.recovery();
    if (rc != nullptr) {
        // Replies to a retired or retransmitted seq are duplicates the
        // recovery machinery manufactured; drop them at the door. A
        // primary reply after resp_seen is the same thing (the original
        // and a replayed copy both arrived).
        bool is_ack = m.type == MsgType::INV_ACK ||
                      m.type == MsgType::UPDATE_ACK;
        bool current = _txn.active && _txn.waiting &&
                       m.seq == _txn.seq &&
                       blockBase(_txn.addr) == m.addr;
        if (!current || (_txn.resp_seen && !is_ack)) {
            if (m.type == MsgType::NACK)
                ++rc->counters().nacks_stale;
            else
                ++rc->counters().stale_replies;
            return;
        }
    }
    dsm_assert(_txn.active && _txn.waiting,
               "node %d got %s with no transaction waiting",
               _id, toString(m.type));
    dsm_assert(blockBase(_txn.addr) == m.addr,
               "response block %#llx does not match transaction %#llx",
               static_cast<unsigned long long>(m.addr),
               static_cast<unsigned long long>(_txn.addr));
    if (m.chain > _txn.max_chain)
        _txn.max_chain = m.chain;
    if (m.txn_id != 0) {
        TxnPhase ph = (m.type == MsgType::INV_ACK ||
                       m.type == MsgType::UPDATE_ACK)
                          ? TxnPhase::FANOUT
                          : TxnPhase::REPLY_TRANSIT;
        _sys.txns().mark(m.txn_id, ph, now(), _id);
    }

    switch (m.type) {
      case MsgType::NACK:
        retryTxn();
        break;

      case MsgType::DATA_S: {
        CacheLine *line = installLine(m.addr, LineState::SHARED, m.data);
        if (_txn.op == AtomicOp::LL) {
            _cache.setReservation(_txn.addr);
            traceResv(TraceCat::RESV_SET, m.addr);
        }
        finishTxn(line->readWord(_txn.addr), true);
        break;
      }

      case MsgType::DATA_X:
        installLine(m.addr, LineState::EXCLUSIVE, m.data);
        _txn.resp_seen = true;
        _txn.acks_needed = m.ack_count;
        maybeComplete();
        break;

      case MsgType::UPG_ACK: {
        CacheLine *line = _cache.lookup(_txn.addr);
        dsm_assert(line != nullptr && line->state == LineState::SHARED,
                   "upgrade granted without a shared copy");
        line->state = LineState::EXCLUSIVE;
        traceLineState(m.addr, LineState::SHARED, LineState::EXCLUSIVE);
        _txn.resp_seen = true;
        _txn.acks_needed = m.ack_count;
        maybeComplete();
        break;
      }

      case MsgType::SC_RESP:
        if (!m.success) {
            _cache.clearReservation();
            traceResv(TraceCat::RESV_CLEAR, m.addr);
            finishTxn(0, false);
        } else {
            CacheLine *line = _cache.lookup(_txn.addr);
            dsm_assert(line != nullptr &&
                       line->state == LineState::SHARED,
                       "SC success without a shared copy");
            line->state = LineState::EXCLUSIVE;
            traceLineState(m.addr, LineState::SHARED,
                           LineState::EXCLUSIVE);
            _txn.resp_seen = true;
            _txn.acks_needed = m.ack_count;
            maybeComplete();
        }
        break;

      case MsgType::CAS_FAIL:
        finishTxn(m.result, false);
        break;

      case MsgType::CAS_FAIL_S:
        installLine(m.addr, LineState::SHARED, m.data);
        finishTxn(m.result, false);
        break;

      case MsgType::UNC_RESP:
        noteReservationVerdict(m);
        finishTxn(m.result, m.success, m.serial);
        break;

      case MsgType::UPD_RESP:
        noteReservationVerdict(m);
        installLine(m.addr, LineState::SHARED, m.data);
        _txn.resp_seen = true;
        _txn.acks_needed = m.ack_count;
        _txn.resp_value = m.result;
        _txn.resp_success = m.success;
        _txn.resp_serial = m.serial;
        maybeComplete();
        break;

      case MsgType::INV_ACK:
      case MsgType::UPDATE_ACK:
        ++_txn.acks_got;
        maybeComplete();
        break;

      default:
        dsm_panic("unexpected CPU response %s", toString(m.type));
    }
}

void
Controller::maybeComplete()
{
    if (!_txn.resp_seen || _txn.acks_got < _txn.acks_needed)
        return;
    if (_sys.policyOf(_txn.addr) == SyncPolicy::UPD)
        completeUpd();
    else
        completeExclusive();
}

void
Controller::noteReservationVerdict(const Msg &m)
{
    if (_txn.op != AtomicOp::LL)
        return;
    if (m.success) {
        if (_resv_denied && _resv_denied_block == m.addr)
            _resv_denied = false;
    } else {
        // Beyond-the-limit load_linked: remember that the matching
        // store_conditional is doomed (Section 3.1, option 3).
        _resv_denied = true;
        _resv_denied_block = m.addr;
    }
}

void
Controller::completeUpd()
{
    finishTxn(_txn.resp_value, _txn.resp_success, _txn.resp_serial);
}

void
Controller::completeExclusive()
{
    Addr a = _txn.addr;
    CacheLine *line = _cache.lookup(a);
    dsm_assert(line != nullptr && line->state == LineState::EXCLUSIVE,
               "exclusive completion without an exclusive line");

    switch (_txn.op) {
      case AtomicOp::LOAD_EXCL:
        finishTxn(line->readWord(a), true);
        break;
      case AtomicOp::STORE:
        line->writeWord(a, _txn.value);
        finishTxn(0, true);
        break;
      case AtomicOp::TAS:
      case AtomicOp::FAA:
      case AtomicOp::FAS:
      case AtomicOp::FAO: {
        Word old = line->readWord(a);
        line->writeWord(a, applyOp(_txn.op, old, _txn.value));
        finishTxn(old, true);
        break;
      }
      case AtomicOp::CAS: {
        // For the INVd/INVs paths the home/owner already verified
        // equality, so this local comparison succeeds; for plain INV it
        // decides the verdict.
        Word old = line->readWord(a);
        bool ok = old == _txn.expected;
        if (ok)
            line->writeWord(a, _txn.value);
        finishTxn(old, ok);
        break;
      }
      case AtomicOp::SC:
        line->writeWord(a, _txn.value);
        _cache.clearReservation();
        traceResv(TraceCat::RESV_CLEAR, blockBase(a));
        finishTxn(0, true);
        break;
      default:
        dsm_panic("unexpected exclusive completion for %s",
                  toString(_txn.op));
    }
}

} // namespace dsm
