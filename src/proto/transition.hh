/**
 * @file
 * Pure transition-function API for the coherence/synchronization
 * protocol (the api_redesign behind the model checker).
 *
 * The paper's three controller roles (CPU side, home directory side,
 * remote/network side) are expressed as *pure* guarded-action
 * transitions over an explicit controller state:
 *
 *     Outcome step(env, state, msg)   // canonical, copies the state
 *
 * plus in-place variants used by the simulator driver and the model
 * checker, which mutate a caller-owned CtrlState and return only the
 * Outcome. An Outcome carries everything a transition wants done to
 * the world — memory and directory writes, outbound messages, stat
 * deltas, trace/transaction-tracer records, completion/retry/timer
 * requests — as *data*. Nothing in this module touches the event
 * queue, the mesh, the tracer, RNGs, or global state; given the same
 * (env, state, msg) a transition always produces the same outcome.
 *
 * Consumers:
 *  - Controller (proto/controller.{hh,cc}) is the event-driven driver:
 *    it feeds delivered messages to deliver()/tryDedup(), then commits
 *    the outcome (applies writes, schedules sends and completions,
 *    fires the Tracer/TxnTracer/LineProfiler/fault hooks bundled in a
 *    ProtoHooks). Issue-time fault injection and all RNG draws
 *    (retry backoff jitter) stay in the driver.
 *  - The model checker (mc/explorer.{hh,cc}) drives the same
 *    transitions over explicit message-interleaving choices, with
 *    outcome effects applied to its own world state.
 */

#ifndef DSM_PROTO_TRANSITION_HH
#define DSM_PROTO_TRANSITION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "mem/directory.hh"
#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {
namespace tf {

/**
 * State of a node's single outstanding CPU-side transaction.
 * Everything the protocol needs to decide its next move lives here;
 * driver-only bookkeeping (the completion callback, the tracer flow
 * id) stays in the driver.
 */
struct TxnState
{
    bool active = false;
    AtomicOp op = AtomicOp::LOAD;
    Addr addr = 0;      ///< word address of the operand
    Word value = 0;     ///< operand / new value
    Word expected = 0;  ///< CAS expected value
    Tick start = 0;     ///< issue tick (latency accounting)

    bool waiting = false;    ///< a network request is outstanding
    bool resp_seen = false;  ///< primary response arrived
    int acks_needed = 0;
    int acks_got = 0;
    Word resp_value = 0;
    bool resp_success = false;
    Word resp_serial = 0;
    int max_chain = 0;       ///< longest serialized message chain
    int retries = 0;
    std::uint64_t txn_id = 0;     ///< transaction-tracer id (0 = off)

    /** @name Recovery layer (meaningful only when it is armed). @{ */
    std::uint64_t seq = 0;   ///< seq of the outstanding request
    int attempt = 1;         ///< retransmission attempt for seq
    MsgType req_type = MsgType::NACK; ///< outstanding request type
    /**
     * Bitmask of sharer nodes whose INV_ACK/UPDATE_ACK for the current
     * seq was already counted, so a duplicated or reordered ack is
     * absorbed instead of double-counted (num_procs <= 64 by the mesh
     * geometry). Cleared with each new request.
     */
    std::uint64_t acks_mask = 0;
    /**
     * Fill-race marker (armed only when reordering can break the
     * per-destination FIFO, see FaultConfig::reorderPossible): a
     * third-party INV or UPDATE for the block this node's outstanding
     * fill targets arrived before the fill itself. The install must
     * then complete the operation with the granted data but silently
     * drop the copy — the directory's view of it has already moved
     * past the grant. 0 = no race; reset with each new request.
     */
    std::uint8_t fill_raced = 0;
    /** @} */
};

/**
 * Home-side recovery state for one requester: the highest request seq
 * seen and, once sent, a copy of its reply (see fault/recovery.hh).
 */
struct DedupEntry
{
    std::uint64_t seq = 0;
    bool has_reply = false;
    Msg reply;
};

/**
 * The complete protocol-visible state of one node's controller. The
 * node's slice of the directory and of memory is *not* part of this
 * state — transitions read them through the Env and write them through
 * Outcome records, so one CtrlState per node plus a directory/memory
 * map is a full system configuration (what the model checker hashes).
 */
struct CtrlState
{
    Cache cache;
    TxnState txn;
    /** Next request seq for this node (recovery layer; 0 = unused). */
    std::uint64_t next_seq = 0;
    /** Per-requester dedup table; empty when the recovery layer is off. */
    std::vector<DedupEntry> dedup;
    /**
     * Set when an in-memory load_linked was denied a reservation
     * (limited-reservation option, Section 3.1): the matching
     * store_conditional fails locally without network traffic.
     */
    bool resv_denied = false;
    Addr resv_denied_block = 0;

    CtrlState(int sets, int ways) : cache(sets, ways) {}
};

/**
 * Read-only view of the world surrounding one controller. The driver
 * implements it over System; the model checker over its world state.
 * dirEntry() returns a *copy* (a default-constructed entry when the
 * block has no entry yet) — transitions never mutate the directory
 * directly.
 */
class StepCtx
{
  public:
    virtual ~StepCtx() = default;
    virtual bool isSync(Addr a) const = 0;
    virtual DirEntry dirEntry(Addr block) const = 0;
    virtual Word memWord(Addr a) const = 0;
    virtual std::array<Word, BLOCK_WORDS> memBlock(Addr block) const = 0;
    /** Transaction-tracer id of @p n's active txn (0 = none/off). */
    virtual std::uint64_t activeTxnId(NodeId n) const = 0;
};

/** Per-call environment: configuration, identity, and the world view. */
struct Env
{
    const Config *cfg = nullptr;
    NodeId self = INVALID_NODE;
    const StepCtx *ctx = nullptr;

    int numProcs() const { return cfg->machine.num_procs; }
    NodeId homeOf(Addr a) const
    {
        return static_cast<NodeId>((a / BLOCK_BYTES) %
                                   static_cast<Addr>(numProcs()));
    }
    SyncPolicy policyOf(Addr a) const
    {
        return ctx->isSync(a) ? cfg->sync.policy : SyncPolicy::INV;
    }
    bool recoveryOn() const { return cfg->faults.recoveryEnabled(); }
};

/** What an outcome effect asks the driver to do. */
enum class EffectKind : std::uint8_t
{
    SEND,            ///< send msg (src stamped by driver) after delay
    TRACE_LINE,      ///< cache line state transition addr: a -> b
    TRACE_DIR,       ///< directory transition addr: a -> b (+ counter)
    TRACE_RESV,      ///< reservation set (a=0) / clear (a=1) at addr
    TRACE_NACK,      ///< NACK aimed at node for addr (a = req MsgType)
    LP_NACK,         ///< line profiler: NACK on addr
    LP_OWNER,        ///< line profiler: node became owner of addr
    LP_SHARER_JOIN,  ///< line profiler: a sharer joined addr
    LP_INVALIDATION, ///< line profiler: invalidation sent for addr
    TXN_MARK,        ///< txn tracer mark(id, phase, now+delay, node)
    TXN_SERVICE,     ///< txn tracer service facts for id
    COMPLETE,        ///< finish the CPU op (value/flag/serial) after delay
    RETRY,           ///< schedule a NACK retry (driver draws the backoff)
    ARM_TIMER,       ///< arm the loss-recovery retransmission timer
};

/** Directory-service facts for Table 1 chain validation. */
struct ServiceFacts
{
    std::uint8_t dir_state = 0;
    int sharers = 0;
    bool forwarded = false;
    NodeId owner = INVALID_NODE;
    std::uint64_t fanout_mask = 0;
};

/**
 * One ordered side-effect request. Effects must be committed in order:
 * transitions interleave sends and trace records exactly as the
 * event-driven protocol engine did (e.g. a victim write-back message
 * precedes the installed line's LINE_STATE record).
 */
struct Effect
{
    EffectKind kind = EffectKind::SEND;
    Msg msg;                     ///< SEND payload (src unset)
    Addr addr = 0;               ///< trace/profiler block address
    Tick delay = 0;              ///< SEND/COMPLETE/TXN_MARK tick offset
    NodeId node = INVALID_NODE;  ///< trace peer / mark node / new owner
    std::uint8_t a = 0;          ///< from-state / phase / req type
    std::uint8_t b = 0;          ///< to-state
    std::uint64_t id = 0;        ///< txn tracer id
    ServiceFacts facts;          ///< TXN_SERVICE payload
    Word value = 0;              ///< COMPLETE value
    bool flag = false;           ///< COMPLETE success
    Word serial = 0;             ///< COMPLETE serial
};

/** Aggregate (order-insensitive) stat increments for one transition. */
struct StatDelta
{
    std::uint32_t nacks = 0;
    std::uint32_t retries = 0;
    std::uint32_t invalidations = 0;
    std::uint32_t updates = 0;
    std::uint32_t writebacks = 0;
    std::uint32_t drop_notifies = 0;
    std::uint32_t sc_local_failures = 0;

    /** @name Recovery ledger counters (fault/recovery.hh). @{ */
    std::uint32_t dup_requests = 0;
    std::uint32_t dup_stale = 0;
    std::uint32_t dup_in_progress = 0;
    std::uint32_t dup_reprocessed = 0;
    std::uint32_t dup_replayed = 0;
    std::uint32_t nacks_replayed = 0;
    std::uint32_t nacks_stale = 0;
    std::uint32_t stale_replies = 0;
    /** Injection-flagged (replayed) duplicates absorbed by a guard —
     *  counted here instead of the organic stale counters so the
     *  NACK-balance invariant survives duplication faults. */
    std::uint32_t dups_absorbed = 0;
    /** @} */
};

/** A directory entry replacement at the home node running the step. */
struct DirWrite
{
    Addr addr = 0;
    DirEntry entry;
};

/** A backing-store write at the home node running the step. */
struct MemWrite
{
    bool is_block = false;
    Addr addr = 0; ///< word address, or block base when is_block
    Word word = 0;
    std::array<Word, BLOCK_WORDS> block{};
};

/**
 * Everything one transition wants done to the world, as data. The
 * driver commits mem_writes, then dir_writes, then the stat delta,
 * then walks effects in order.
 */
struct Outcome
{
    std::vector<MemWrite> mem_writes;
    std::vector<DirWrite> dir_writes;
    StatDelta stats;
    std::vector<Effect> effects;
};

/** A processor operation to issue (driver-owned context pre-resolved). */
struct OpReq
{
    AtomicOp op = AtomicOp::LOAD;
    Addr addr = 0;
    Word value = 0;
    Word expected = 0;
    std::uint64_t txn_id = 0; ///< transaction-tracer id (0 = off)
    Tick start = 0;           ///< issue tick
};

/** @name In-place transition functions.
 *
 * Each mutates @p s (the node's own controller state — cache contents,
 * txn fields, dedup slots) and returns the Outcome describing every
 * *external* effect. Directory and memory are never mutated in place.
 * @{ */

/** Issue a processor operation (the CPU-side guard set). */
Outcome issue(const Env &env, CtrlState &s, const OpReq &req);

/** (Re)dispatch the active transaction from current cache state. */
Outcome dispatch(const Env &env, CtrlState &s);

/**
 * Deliver a message to this node (any of the three roles). For
 * home-targeted messages this is the post-memory-queue directory
 * action; the driver's memory-module queueing and fault injection
 * happen outside. Recovery dedup is *not* applied here — call
 * tryDedup() first (the split keeps the driver's fault-RNG draw
 * ordering identical to the event-driven engine's).
 */
Outcome deliver(const Env &env, CtrlState &s, const Msg &m);

/**
 * Deliver a *combined batch* of commutative home requests in one
 * memory service slot (serve.combining). All members must target this
 * home, combine with batch[0] (HomeQueue::combinesWith: FAA fetch&adds
 * to one word via UNC_REQ/UPD_REQ, or duplicate GET_S fills of one
 * block), and carry distinct sources. Produces exactly one reply per
 * member — fetch&adds observe consecutive prefix sums of a single
 * read-modify-write pass, and a combined UPD batch sends one UPDATE
 * fan-out (attributed to the leader) carrying the final value. The
 * caller runs tryDedup() per member first, exactly as for deliver().
 */
Outcome deliverCombined(const Env &env, CtrlState &s,
                        const std::vector<Msg> &batch);

/**
 * Home-side recovery dedup, run before any directory action on a
 * recoverable request carrying a seq. Appends its effects/stat deltas
 * to @p o.
 * @return true when the message was fully handled (stale or
 *         in-progress duplicate dropped, or a cached reply replayed)
 *         and deliver() must not run.
 */
bool tryDedup(const Env &env, CtrlState &s, const Msg &m, Outcome &o);

/** Timeout retransmission of the outstanding request (guards already
 *  checked by the driver): bumps attempt, resends, re-arms the timer. */
Outcome retransmit(const Env &env, CtrlState &s);

/** Home-side injected NACK for a retryable request (fault campaign). */
Outcome injectNack(const Env &env, CtrlState &s, const Msg &m);

/** @} */

/** Canonical pure step: successor state + outcome for one delivery. */
struct StepResult
{
    CtrlState next;
    Outcome out;
};

/**
 * The canonical pure transition over a *const* state: copies @p s,
 * applies recovery dedup (when armed and applicable) and delivery,
 * and returns the successor state plus the outcome. Calling it twice
 * on the same (state, msg) yields identical results — asserted by
 * tests/test_transition.cc.
 */
StepResult step(const Env &env, const CtrlState &s, const Msg &m);

/** @name Deterministic debug serialization (purity tests, MC dumps). @{ */
std::string debugString(const CtrlState &s);
std::string debugString(const Outcome &o);
std::string debugString(const Msg &m);
/** @} */

} // namespace tf
} // namespace dsm

#endif // DSM_PROTO_TRANSITION_HH
