/**
 * @file
 * End-to-end recovery accounting for message-loss faults.
 *
 * The recovery *mechanisms* live where the protocol lives — requester
 * timers and retransmission in the CPU side of the controller, the
 * dedup/reply-cache in the home side, link quarantine in the mesh.
 * This class is the shared ledger that ties them together: every
 * message the fault injector drops is recorded here and must later be
 * *covered* — either by the requester's retransmission machinery or,
 * when the failing link has been quarantined, attributed to the
 * quarantine event. proto/checker::checkFaultAccounting enforces
 * drops == retransmit_covered + quarantine_covered on quiesced runs,
 * so a silently-lost (unrecoverable) message is a checker violation,
 * not a hang.
 *
 * Cost discipline: like the tracers and the fault plan, callers hold a
 * null pointer when the recovery layer is off (System::recovery()), so
 * fault-free runs pay one branch per hook.
 */

#ifndef DSM_FAULT_RECOVERY_HH
#define DSM_FAULT_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "net/msg.hh"
#include "sim/types.hh"

namespace dsm {

class Mesh;
class System;

class Recovery
{
  public:
    /** Monotonic recovery counters, surfaced as recovery.* stats. */
    struct Counters
    {
        /** @name The drop ledger. @{ */
        std::uint64_t drops = 0;        ///< droppable messages lost
        std::uint64_t req_drops = 0;    ///< ... that were requests
        std::uint64_t reply_drops = 0;  ///< ... that were replies
        /** Drops covered by a requester retransmission (or absorbed as
         *  duplicates the retransmission machinery generated). */
        std::uint64_t retransmit_covered = 0;
        /** Drops on a link that was quarantined by cover time. */
        std::uint64_t quarantine_covered = 0;
        /** @} */

        /** @name Requester side. @{ */
        std::uint64_t retransmits = 0;   ///< timer-driven resends
        std::uint64_t stale_replies = 0; ///< replies dropped by the guard
        std::uint64_t nacks_lost = 0;    ///< NACKs dropped in the mesh
        std::uint64_t nacks_stale = 0;   ///< NACKs dropped by the guard
        /** NACKs re-sent from the home's reply cache (extra sends the
         *  protocol's nacks counter does not see). */
        std::uint64_t nacks_replayed = 0;
        /** @} */

        /** @name Home side (dedup / reply cache). @{ */
        std::uint64_t dup_requests = 0;    ///< duplicates seen at all
        std::uint64_t dup_replayed = 0;    ///< answered from the cache
        std::uint64_t dup_reprocessed = 0; ///< idempotently re-executed
        std::uint64_t dup_in_progress = 0; ///< original still in service
        std::uint64_t dup_stale = 0;       ///< requester has moved on
        /** @} */

        /** Mesh links quarantined (never un-quarantined within a run). */
        std::uint64_t links_quarantined = 0;

        /** @name Faulty-channel ledger (reorder/dup/corrupt axes). @{ */
        /** Injected corruptions caught by the ejection checksum verify
         *  (quiesced: == fault.msg_corruptions — zero escaped). */
        std::uint64_t corrupt_detected = 0;
        /** Injected duplicate deliveries absorbed by an epoch/sequence
         *  guard without re-execution (quiesced: == fault.msg_dups). */
        std::uint64_t dups_absorbed = 0;
        /** Out-of-FIFO deliveries that reached their destination
         *  (quiesced: == fault.msg_reorders — none were lost). */
        std::uint64_t reorders_delivered = 0;
        /** @} */
    };

    /**
     * Arm the ledger. @p sys provides the per-requester "currently
     * awaited seq" (Controller::cpuAwaitedSeq) so drops of already-
     * stale duplicates are covered immediately, and @p mesh provides
     * the link quarantine state used to bucket covered drops.
     */
    void configure(System &sys, Mesh &mesh);

    /**
     * Record a dropped message (called by the mesh). @p from / @p to
     * name the failing link. If the message's requester still awaits
     * this seq the drop stays pending until coverRequester(); otherwise
     * it is duplicate traffic the recovery machinery itself generated
     * and is covered immediately.
     */
    void noteDrop(const Msg &m, NodeId from, NodeId to);

    /**
     * Cover every pending drop charged to requester @p r. Called when
     * the requester retransmits and when it retires its seq (completion
     * or NACK-and-retry — the in-flight duplicates can no longer be
     * told from delivered ones, and the requester has recovered).
     */
    void coverRequester(NodeId r);

    /** Drops recorded but not yet covered (0 on any quiesced run). */
    std::uint64_t pendingDrops() const { return _pending_total; }

    Counters &counters() { return _ctr; }
    const Counters &counters() const { return _ctr; }

    /**
     * Reset the counters (System::clearStats). Pending ledger entries
     * survive — their eventual coverage must stay reconcilable, so the
     * drop total is re-seeded with the carried-over pending count.
     */
    void clearCounters();

  private:
    struct PendingDrop
    {
        std::uint64_t seq = 0;
        NodeId from = INVALID_NODE;
        NodeId to = INVALID_NODE;
        bool was_request = false;
    };

    void cover(const PendingDrop &d);

    System *_sys = nullptr;
    Mesh *_mesh = nullptr;
    /** Pending (uncovered) drops, per requester. */
    std::vector<std::vector<PendingDrop>> _pending;
    std::uint64_t _pending_total = 0;
    Counters _ctr;
};

} // namespace dsm

#endif // DSM_FAULT_RECOVERY_HH
