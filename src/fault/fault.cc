#include "fault/fault.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace dsm {

namespace {

/** Parts-per-million scaling for integer probability draws. */
constexpr std::uint64_t PPM = 1000000;

std::uint64_t
toPpm(double p)
{
    return static_cast<std::uint64_t>(p * static_cast<double>(PPM) + 0.5);
}

/** SplitMix64 finalizer: derive an independent stream from a seed. */
std::uint64_t
mixSeed(std::uint64_t s)
{
    std::uint64_t z = s + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
FaultPlan::configure(const FaultConfig &cfg, std::uint64_t machine_seed,
                     const MachineConfig &mc)
{
    _cfg = cfg;
    _seed = cfg.seed != 0 ? cfg.seed : mixSeed(machine_seed);
    _rng = Rng(_seed);
    _draws = 0;
    _jitter_ppm = toPpm(cfg.msg_jitter_prob);
    _resv_drop_ppm = toPpm(cfg.resv_drop_prob);
    _evict_ppm = toPpm(cfg.evict_prob);
    _nack_ppm = toPpm(cfg.nack_prob);
    _drop_ppm = toPpm(cfg.msg_drop_prob);
    _flaky_ppm = toPpm(cfg.flaky_drop_prob);
    _reorder_ppm = toPpm(cfg.reorder_prob);
    _dup_ppm = toPpm(cfg.dup_prob);
    _corrupt_ppm = toPpm(cfg.corrupt_prob);
    _nack_streak.assign(static_cast<std::size_t>(mc.num_procs), 0);
    _ctr = Counters();

    // Flaky-link episodes come off the front of the fault stream, so
    // their placement is independent of the workload's message order.
    _episodes.clear();
    if (cfg.flaky_links > 0 && mc.num_procs > 1) {
        for (int i = 0; i < cfg.flaky_links; ++i) {
            FlakyEpisode ep;
            NodeId a = static_cast<NodeId>(
                draw(static_cast<std::uint64_t>(mc.num_procs)));
            int x = a % mc.mesh_x, y = a / mc.mesh_x;
            // Draw an axis+sign; mirror the sign when the neighbour
            // would fall off the grid (draw count stays fixed).
            std::uint64_t dir = draw(4);
            NodeId b = a;
            if ((dir < 2 && mc.mesh_x > 1) || mc.mesh_y == 1) {
                int dx = dir % 2 == 0 ? 1 : -1;
                if (x + dx < 0 || x + dx >= mc.mesh_x)
                    dx = -dx;
                b = a + dx;
            } else {
                int dy = dir % 2 == 0 ? 1 : -1;
                if (y + dy < 0 || y + dy >= mc.mesh_y)
                    dy = -dy;
                b = a + dy * mc.mesh_x;
            }
            ep.from = a;
            ep.to = b;
            ep.start = draw(cfg.flaky_window);
            ++_draws;
            ep.end = ep.start + _rng.range(1, cfg.flaky_duration);
            _episodes.push_back(ep);
        }
    }
}

std::uint64_t
FaultPlan::draw(std::uint64_t bound)
{
    ++_draws;
    return _rng.below(bound);
}

bool
FaultPlan::drawChance(std::uint64_t ppm)
{
    ++_draws;
    return _rng.chance(ppm, PPM);
}

Tick
FaultPlan::messageJitter()
{
    if (_jitter_ppm == 0 || !drawChance(_jitter_ppm))
        return 0;
    ++_draws;
    Tick j = _rng.range(1, _cfg.msg_jitter_max);
    ++_ctr.jitter_applied;
    _ctr.jitter_cycles += j;
    return j;
}

bool
FaultPlan::dropReservation()
{
    if (_resv_drop_ppm == 0 || !drawChance(_resv_drop_ppm))
        return false;
    ++_ctr.resv_drops;
    return true;
}

bool
FaultPlan::forceEviction()
{
    if (_evict_ppm == 0 || !drawChance(_evict_ppm))
        return false;
    ++_ctr.forced_evictions;
    return true;
}

bool
FaultPlan::injectNack(NodeId requester)
{
    if (_nack_ppm == 0)
        return false;
    int &streak = _nack_streak[static_cast<std::size_t>(requester)];
    if (_cfg.max_extra_nacks > 0 && streak >= _cfg.max_extra_nacks) {
        streak = 0;
        return false;
    }
    if (!drawChance(_nack_ppm)) {
        streak = 0;
        return false;
    }
    ++streak;
    ++_ctr.nacks_injected;
    return true;
}

bool
FaultPlan::dropMessage(Tick now, const NodeId *path, int nodes,
                       NodeId &from, NodeId &to)
{
    // Flaky episodes first, link by link in path order: one draw per
    // link whose episode is active at `now`.
    for (int i = 0; i + 1 < nodes; ++i) {
        for (const FlakyEpisode &ep : _episodes) {
            if (ep.from != path[i] || ep.to != path[i + 1] ||
                now < ep.start || now >= ep.end)
                continue;
            if (drawChance(_flaky_ppm)) {
                ++_ctr.flaky_drops;
                from = path[i];
                to = path[i + 1];
                return true;
            }
            break; // one draw per link even with overlapping episodes
        }
    }
    // Then the random per-message loss draw, attributed to the first
    // link the message would have traversed.
    if (_drop_ppm != 0 && drawChance(_drop_ppm)) {
        ++_ctr.msg_drops;
        from = path[0];
        to = path[1];
        return true;
    }
    return false;
}

Tick
FaultPlan::reorderSkew()
{
    if (_reorder_ppm == 0 || !drawChance(_reorder_ppm))
        return 0;
    ++_draws;
    Tick skew = _rng.range(1, _cfg.reorder_max);
    ++_ctr.msg_reorders;
    return skew;
}

Tick
FaultPlan::duplicateDelay()
{
    if (_dup_ppm == 0 || !drawChance(_dup_ppm))
        return 0;
    ++_draws;
    Tick delay = _rng.range(1, _cfg.dup_delay);
    ++_ctr.msg_dups;
    return delay;
}

bool
FaultPlan::corruptMessage(Msg &m)
{
    if (_corrupt_ppm == 0 || !drawChance(_corrupt_ppm))
        return false;
    // Flip one seeded bit in one seeded protocol-visible word. Every
    // corrupted field is covered by Msg::computeChecksum, so the flip
    // is always detected at ejection. Fixed two draws per hit. The
    // checksum only covers the data block when the message carries
    // one, so payload-less messages redirect the data draw to the
    // value word — a flip must never land outside the checksummed
    // footprint or the ledger would count an undetectable hit.
    std::uint64_t field = draw(4);
    if (field == 3 && !m.has_data)
        field = 0;
    std::uint64_t bit = draw(64);
    std::uint64_t mask = 1ULL << bit;
    switch (field) {
      case 0: m.value ^= mask; break;
      case 1: m.result ^= mask; break;
      case 2: m.addr ^= mask; break;
      default:
        m.data[static_cast<std::size_t>(bit % BLOCK_WORDS)] ^= mask;
        break;
    }
    ++_ctr.msg_corruptions;
    return true;
}

std::string
FaultConfig::parse(const std::string &spec)
{
    if (spec == "1" || spec == "on" || spec == "default") {
        // The standard campaign mix: frequent-but-bounded jitter plus
        // occasional reservation drops, evictions, and NACK storms.
        enabled = true;
        msg_jitter_prob = 0.2;
        msg_jitter_max = 64;
        resv_drop_prob = 0.05;
        evict_prob = 0.02;
        nack_prob = 0.1;
        max_extra_nacks = 4;
        return "";
    }

    FaultConfig out;
    out.enabled = true;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return csprintf("fault spec item '%s' is not key=value",
                            item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *end = nullptr;
        double d = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0')
            return csprintf("fault spec value '%s' for '%s' is not a "
                            "number", val.c_str(), key.c_str());
        if (key == "jitter_prob") {
            out.msg_jitter_prob = d;
        } else if (key == "jitter_max") {
            out.msg_jitter_max = static_cast<Tick>(d);
        } else if (key == "resv_drop_prob") {
            out.resv_drop_prob = d;
        } else if (key == "evict_prob") {
            out.evict_prob = d;
        } else if (key == "nack_prob") {
            out.nack_prob = d;
        } else if (key == "max_extra_nacks") {
            out.max_extra_nacks = static_cast<int>(d);
        } else if (key == "seed") {
            out.seed = static_cast<std::uint64_t>(d);
        } else if (key == "drop_prob") {
            out.msg_drop_prob = d;
        } else if (key == "flaky_links") {
            out.flaky_links = static_cast<int>(d);
        } else if (key == "flaky_window") {
            out.flaky_window = static_cast<Tick>(d);
        } else if (key == "flaky_duration") {
            out.flaky_duration = static_cast<Tick>(d);
        } else if (key == "flaky_drop_prob") {
            out.flaky_drop_prob = d;
        } else if (key == "req_timeout") {
            out.req_timeout = static_cast<Tick>(d);
        } else if (key == "quarantine_k") {
            out.quarantine_k = static_cast<int>(d);
        } else if (key == "quarantine_window") {
            out.quarantine_window = static_cast<Tick>(d);
        } else if (key == "reorder_prob") {
            out.reorder_prob = d;
        } else if (key == "reorder_max") {
            out.reorder_max = static_cast<Tick>(d);
        } else if (key == "dup_prob") {
            out.dup_prob = d;
        } else if (key == "dup_delay") {
            out.dup_delay = static_cast<Tick>(d);
        } else if (key == "corrupt_prob") {
            out.corrupt_prob = d;
        } else if (key == "resv_max_age") {
            out.resv_max_age = static_cast<Tick>(d);
        } else {
            return csprintf("unknown fault spec key '%s'", key.c_str());
        }
    }
    *this = out;
    return "";
}

std::string
FaultConfig::summary() const
{
    std::string s =
        csprintf("seed=%llu,jitter_prob=%g,jitter_max=%llu,"
                 "resv_drop_prob=%g,evict_prob=%g,nack_prob=%g,"
                 "max_extra_nacks=%d",
                 (unsigned long long)seed, msg_jitter_prob,
                 (unsigned long long)msg_jitter_max, resv_drop_prob,
                 evict_prob, nack_prob, max_extra_nacks);
    // Loss/recovery keys appear only when armed, so summaries of
    // pre-existing loss-free specs stay byte-identical.
    if (lossEnabled() || recoveryEnabled()) {
        s += csprintf(",drop_prob=%g,flaky_links=%d,flaky_window=%llu,"
                      "flaky_duration=%llu,flaky_drop_prob=%g,"
                      "req_timeout=%llu,quarantine_k=%d,"
                      "quarantine_window=%llu",
                      msg_drop_prob, flaky_links,
                      (unsigned long long)flaky_window,
                      (unsigned long long)flaky_duration,
                      flaky_drop_prob, (unsigned long long)req_timeout,
                      quarantine_k,
                      (unsigned long long)quarantine_window);
    }
    // Faulty-channel keys likewise appear only when a chaos axis is
    // armed, keeping pre-existing summaries byte-identical.
    if (chaosEnabled()) {
        s += csprintf(",reorder_prob=%g,reorder_max=%llu,dup_prob=%g,"
                      "dup_delay=%llu,corrupt_prob=%g",
                      reorder_prob, (unsigned long long)reorder_max,
                      dup_prob, (unsigned long long)dup_delay,
                      corrupt_prob);
    }
    if (resv_max_age != 0)
        s += csprintf(",resv_max_age=%llu",
                      (unsigned long long)resv_max_age);
    return s;
}

FaultConfig
faultConfigFromEnv()
{
    FaultConfig fc;
    const char *spec = std::getenv("DSM_FAULTS");
    if (spec == nullptr || *spec == '\0' ||
        std::string(spec) == "0")
        return fc;
    std::string err = fc.parse(spec);
    if (!err.empty())
        dsm_fatal("DSM_FAULTS: %s", err.c_str());
    const char *seed = std::getenv("DSM_FAULT_SEED");
    if (seed != nullptr && *seed != '\0') {
        char *end = nullptr;
        unsigned long long s = std::strtoull(seed, &end, 10);
        if (end == seed || *end != '\0')
            dsm_fatal("DSM_FAULT_SEED must be an integer, got '%s'",
                      seed);
        fc.seed = s;
    }
    return fc;
}

} // namespace dsm
