#include "fault/fault.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace dsm {

namespace {

/** Parts-per-million scaling for integer probability draws. */
constexpr std::uint64_t PPM = 1000000;

std::uint64_t
toPpm(double p)
{
    return static_cast<std::uint64_t>(p * static_cast<double>(PPM) + 0.5);
}

/** SplitMix64 finalizer: derive an independent stream from a seed. */
std::uint64_t
mixSeed(std::uint64_t s)
{
    std::uint64_t z = s + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
FaultPlan::configure(const FaultConfig &cfg, std::uint64_t machine_seed,
                     int num_procs)
{
    _cfg = cfg;
    _seed = cfg.seed != 0 ? cfg.seed : mixSeed(machine_seed);
    _rng = Rng(_seed);
    _jitter_ppm = toPpm(cfg.msg_jitter_prob);
    _resv_drop_ppm = toPpm(cfg.resv_drop_prob);
    _evict_ppm = toPpm(cfg.evict_prob);
    _nack_ppm = toPpm(cfg.nack_prob);
    _nack_streak.assign(static_cast<std::size_t>(num_procs), 0);
    _ctr = Counters();
}

Tick
FaultPlan::messageJitter()
{
    if (_jitter_ppm == 0 || !_rng.chance(_jitter_ppm, PPM))
        return 0;
    Tick j = _rng.range(1, _cfg.msg_jitter_max);
    ++_ctr.jitter_applied;
    _ctr.jitter_cycles += j;
    return j;
}

bool
FaultPlan::dropReservation()
{
    if (_resv_drop_ppm == 0 || !_rng.chance(_resv_drop_ppm, PPM))
        return false;
    ++_ctr.resv_drops;
    return true;
}

bool
FaultPlan::forceEviction()
{
    if (_evict_ppm == 0 || !_rng.chance(_evict_ppm, PPM))
        return false;
    ++_ctr.forced_evictions;
    return true;
}

bool
FaultPlan::injectNack(NodeId requester)
{
    if (_nack_ppm == 0)
        return false;
    int &streak = _nack_streak[static_cast<std::size_t>(requester)];
    if (_cfg.max_extra_nacks > 0 && streak >= _cfg.max_extra_nacks) {
        streak = 0;
        return false;
    }
    if (!_rng.chance(_nack_ppm, PPM)) {
        streak = 0;
        return false;
    }
    ++streak;
    ++_ctr.nacks_injected;
    return true;
}

std::string
FaultConfig::parse(const std::string &spec)
{
    if (spec == "1" || spec == "on" || spec == "default") {
        // The standard campaign mix: frequent-but-bounded jitter plus
        // occasional reservation drops, evictions, and NACK storms.
        enabled = true;
        msg_jitter_prob = 0.2;
        msg_jitter_max = 64;
        resv_drop_prob = 0.05;
        evict_prob = 0.02;
        nack_prob = 0.1;
        max_extra_nacks = 4;
        return "";
    }

    FaultConfig out;
    out.enabled = true;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return csprintf("fault spec item '%s' is not key=value",
                            item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *end = nullptr;
        double d = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0')
            return csprintf("fault spec value '%s' for '%s' is not a "
                            "number", val.c_str(), key.c_str());
        if (key == "jitter_prob") {
            out.msg_jitter_prob = d;
        } else if (key == "jitter_max") {
            out.msg_jitter_max = static_cast<Tick>(d);
        } else if (key == "resv_drop_prob") {
            out.resv_drop_prob = d;
        } else if (key == "evict_prob") {
            out.evict_prob = d;
        } else if (key == "nack_prob") {
            out.nack_prob = d;
        } else if (key == "max_extra_nacks") {
            out.max_extra_nacks = static_cast<int>(d);
        } else if (key == "seed") {
            out.seed = static_cast<std::uint64_t>(d);
        } else {
            return csprintf("unknown fault spec key '%s'", key.c_str());
        }
    }
    *this = out;
    return "";
}

std::string
FaultConfig::summary() const
{
    return csprintf("seed=%llu,jitter_prob=%g,jitter_max=%llu,"
                    "resv_drop_prob=%g,evict_prob=%g,nack_prob=%g,"
                    "max_extra_nacks=%d",
                    (unsigned long long)seed, msg_jitter_prob,
                    (unsigned long long)msg_jitter_max, resv_drop_prob,
                    evict_prob, nack_prob, max_extra_nacks);
}

FaultConfig
faultConfigFromEnv()
{
    FaultConfig fc;
    const char *spec = std::getenv("DSM_FAULTS");
    if (spec == nullptr || *spec == '\0' ||
        std::string(spec) == "0")
        return fc;
    std::string err = fc.parse(spec);
    if (!err.empty())
        dsm_fatal("DSM_FAULTS: %s", err.c_str());
    const char *seed = std::getenv("DSM_FAULT_SEED");
    if (seed != nullptr && *seed != '\0') {
        char *end = nullptr;
        unsigned long long s = std::strtoull(seed, &end, 10);
        if (end == seed || *end != '\0')
            dsm_fatal("DSM_FAULT_SEED must be an integer, got '%s'",
                      seed);
        fc.seed = s;
    }
    return fc;
}

} // namespace dsm
