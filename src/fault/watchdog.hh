/**
 * @file
 * Forward-progress watchdogs: turn "the simulation hangs" into "the
 * simulation fails with a diagnosis". Two detectors:
 *
 *  - Deadlock (always on, no configuration): System::run() notices the
 *    event queue draining while tasks remain blocked and attaches
 *    Watchdog::blockedTxnDump() — every blocked transaction's state
 *    plus its TxnTracer span tree when transaction tracing is on.
 *  - Livelock/starvation (WatchdogConfig): any transaction exceeding
 *    the retry bound (checked on every retry) or the simulated-cycle
 *    age bound (checked by a periodic scan event) trips the watchdog;
 *    System::run() stops and reports RunResult::livelocked with the
 *    stored diagnosis instead of spinning to the tick deadline.
 */

#ifndef DSM_FAULT_WATCHDOG_HH
#define DSM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <string>

#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class System;

/**
 * Livelock/starvation detector. Trip state is sticky for the run; the
 * run loop polls tripped() and converts it into RunResult::livelocked.
 * The hooks are free when disabled: System::watchdog() returns nullptr
 * and callers take one null-pointer branch, like the tracers.
 */
class Watchdog
{
  public:
    void configure(const WatchdogConfig &cfg) { _cfg = cfg; }

    bool enabled() const { return _cfg.enabled; }
    const WatchdogConfig &cfg() const { return _cfg; }
    bool tripped() const { return _tripped; }
    /** Human-readable report of what tripped, "" until then. */
    const std::string &diagnosis() const { return _diag; }
    /** Stable storage for the fault.watchdog_trips stat. */
    const std::uint64_t *tripsCounter() const { return &_trips; }

    /**
     * Retry-bound check, called from Controller::retryTxn after the
     * retry counter is bumped.
     */
    void onRetry(System &sys, NodeId node, AtomicOp op, Addr addr,
                 int retries);

    /** Age-bound scan over every in-flight transaction. */
    void scan(System &sys);

    /**
     * Describe every blocked transaction in the system: controller
     * state (op, address, age, retries) plus the TxnTracer's phase
     * span tree when transaction tracing is enabled. Used both for
     * deadlock reports and to flesh out livelock trips.
     */
    static std::string blockedTxnDump(System &sys);

  private:
    void trip(System &sys, std::string why);

    WatchdogConfig _cfg;
    bool _tripped = false;
    std::string _diag;
    std::uint64_t _trips = 0;
};

} // namespace dsm

#endif // DSM_FAULT_WATCHDOG_HH
