#include "fault/recovery.hh"

#include "cpu/system.hh"
#include "net/mesh.hh"
#include "proto/controller.hh"

namespace dsm {

void
Recovery::configure(System &sys, Mesh &mesh)
{
    _sys = &sys;
    _mesh = &mesh;
    _pending.assign(
        static_cast<std::size_t>(sys.cfg().machine.num_procs), {});
    _pending_total = 0;
    _ctr = Counters();
}

void
Recovery::noteDrop(const Msg &m, NodeId from, NodeId to)
{
    ++_ctr.drops;
    if (recoverableRequest(m.type))
        ++_ctr.req_drops;
    else
        ++_ctr.reply_drops;
    if (m.type == MsgType::NACK)
        ++_ctr.nacks_lost;

    PendingDrop d;
    d.seq = m.seq;
    d.from = from;
    d.to = to;
    d.was_request = recoverableRequest(m.type);

    // Requests carry requester == src semantics only implicitly; the
    // requester field is stamped on every covered message, so use it.
    NodeId r = m.requester;
    if (_sys->ctrl(r).cpuAwaitedSeq() == m.seq) {
        _pending[static_cast<std::size_t>(r)].push_back(d);
        ++_pending_total;
    } else {
        // The requester already moved past this seq (or is between
        // attempts): this was duplicate traffic and needs no further
        // recovery action.
        cover(d);
    }
}

void
Recovery::coverRequester(NodeId r)
{
    auto &v = _pending[static_cast<std::size_t>(r)];
    if (v.empty())
        return;
    for (const PendingDrop &d : v)
        cover(d);
    _pending_total -= v.size();
    v.clear();
}

void
Recovery::cover(const PendingDrop &d)
{
    if (_mesh->linkQuarantined(d.from, d.to))
        ++_ctr.quarantine_covered;
    else
        ++_ctr.retransmit_covered;
}

void
Recovery::clearCounters()
{
    _ctr = Counters();
    _ctr.drops = _pending_total;
    for (const auto &v : _pending) {
        for (const PendingDrop &d : v) {
            if (d.was_request)
                ++_ctr.req_drops;
            else
                ++_ctr.reply_drops;
        }
    }
}

} // namespace dsm
