/**
 * @file
 * Deterministic fault injection: a FaultPlan owns a dedicated RNG
 * stream and decides, at well-defined protocol hook points, whether to
 * perturb the run — jitter a message, drop a reservation, evict a
 * cached block, or NACK a home request an extra round. Every decision
 * is drawn from the plan's own stream, never from the system RNG, so a
 * faulty run is reproducible byte-for-byte at a given seed and the
 * fault-free schedule is untouched by merely constructing a plan.
 */

#ifndef DSM_FAULT_FAULT_HH
#define DSM_FAULT_FAULT_HH

#include <cstdint>
#include <vector>

#include "net/msg.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace dsm {

/**
 * Run-time fault injector configured from Config::faults. The hooks
 * are cheap and branch-free when the plan is disabled because callers
 * hold a null pointer instead (System::faults() returns nullptr when
 * off), mirroring the tracer discipline. Each probability is
 * pre-scaled to parts-per-million so decisions stay in integer
 * arithmetic on the deterministic Rng.
 *
 * Injection sites and their safety arguments:
 *  - Message jitter is added to a network message's head arrival
 *    *before* the ejection-port FIFO reservation, so the per-
 *    destination delivery order the protocol depends on is preserved.
 *    Node-local messages are never jittered.
 *  - Reservation drops and forced evictions happen only at operation
 *    issue time, before the transaction starts, so they model the
 *    architectural events the paper discusses (context switches,
 *    conflict misses) without violating mid-transaction invariants.
 *  - Injected NACKs are confined to the request types that already
 *    carry retry machinery, and are capped per requester to a run of
 *    max_extra_nacks consecutive injections so the injector perturbs
 *    schedules without manufacturing livelock.
 *  - Message drops (fail-stop loss) are confined to the two legs the
 *    recovery layer covers — requests to the home and replies back —
 *    and require FaultConfig::req_timeout, so every loss is recoverable
 *    by retransmission (fault/recovery.hh keeps the ledger).
 *  - Reordering and duplication are confined to the sequence-guarded
 *    message classes (net/msg.hh sequenceGuarded): the epoch/sequence
 *    guards absorb a stale or replayed delivery without re-executing
 *    it, and every other class keeps per-link FIFO reliable delivery.
 *  - Payload corruption is confined to the droppable legs and always
 *    detected: the mesh stamps a checksum at send and verifies it at
 *    ejection, converting a corruption into a detected drop that the
 *    retransmission ledger already covers.
 */
class FaultPlan
{
  public:
    /** Monotonic injection counters, surfaced as fault.* stats. */
    struct Counters
    {
        std::uint64_t jitter_applied = 0;
        std::uint64_t jitter_cycles = 0;
        std::uint64_t resv_drops = 0;
        std::uint64_t forced_evictions = 0;
        std::uint64_t nacks_injected = 0;
        /** Messages dropped by the random per-message loss draw. */
        std::uint64_t msg_drops = 0;
        /** Messages dropped by an active flaky-link episode. */
        std::uint64_t flaky_drops = 0;
        /** Deliveries injected out of per-dst FIFO order. */
        std::uint64_t msg_reorders = 0;
        /** Injected duplicate (replayed) deliveries. */
        std::uint64_t msg_dups = 0;
        /** Messages whose payload was bit-flipped in flight. */
        std::uint64_t msg_corruptions = 0;
    };

    /** One seeded whole-link loss episode (directed mesh link). */
    struct FlakyEpisode
    {
        NodeId from = INVALID_NODE;
        NodeId to = INVALID_NODE;
        Tick start = 0;
        Tick end = 0;
    };

    /**
     * Arm the plan. A FaultConfig seed of 0 derives the fault stream
     * from @p machine_seed, so sweeping the machine seed perturbs the
     * faults along with the workload. Flaky-link episodes are drawn
     * here, from the front of the fault stream, using @p mc for the
     * mesh geometry.
     */
    void configure(const FaultConfig &cfg, std::uint64_t machine_seed,
                   const MachineConfig &mc);

    bool enabled() const { return _cfg.enabled; }
    /** The seed the RNG stream was actually built from. */
    std::uint64_t resolvedSeed() const { return _seed; }
    const Counters &counters() const { return _ctr; }
    /** Reset injection counters (System::clearStats). */
    void clearCounters() { _ctr = Counters(); }

    /** Extra cycles to add to a network message's arrival (0 = none). */
    Tick messageJitter();
    /** Drop the issuing CPU's reservation? Call only when one is held. */
    bool dropReservation();
    /** Evict the target block before issue? Call only when cached. */
    bool forceEviction();
    /**
     * NACK this home request without service? Tracks the requester's
     * consecutive-injection streak against max_extra_nacks.
     */
    bool injectNack(NodeId requester);

    /** True when any message-loss fault (drop/flaky) is armed. */
    bool lossArmed() const
    {
        return _drop_ppm != 0 || !_episodes.empty();
    }

    /** True when a faulty-channel axis (reorder/dup/corrupt) is armed. */
    bool chaosArmed() const
    {
        return _reorder_ppm != 0 || _dup_ppm != 0 || _corrupt_ppm != 0;
    }
    bool reorderArmed() const { return _reorder_ppm != 0; }
    bool dupArmed() const { return _dup_ppm != 0; }
    bool corruptArmed() const { return _corrupt_ppm != 0; }

    /**
     * Deliver this guarded message out of FIFO order? Returns the
     * bounded extra skew to add past the per-dst ejection reservation
     * (1..reorder_max), or 0 for an in-order delivery. Draws from the
     * stream only when the reorder axis is armed, so pre-existing
     * configs see an unchanged fault stream.
     */
    Tick reorderSkew();

    /**
     * Replay this guarded message after delivery? Returns the seeded
     * replay delay (1..dup_delay), or 0 for no duplicate. Draws only
     * when the duplication axis is armed.
     */
    Tick duplicateDelay();

    /**
     * Corrupt this droppable message in flight? On a hit, flips one
     * seeded bit in one seeded protocol-visible field of @p m (so the
     * stamped checksum no longer verifies) and returns true. Draws only
     * when the corruption axis is armed.
     */
    bool corruptMessage(Msg &m);

    /**
     * Drop this droppable message? @p path holds the nodes visited in
     * route order (path[0] = src). Flaky-link episodes are consulted
     * first (link by link, in path order), then the random per-message
     * loss draw; on a drop @p from / @p to name the failing link. The
     * number of fault-stream draws depends only on the path and the
     * episode state at @p now, keeping the stream reproducible.
     */
    bool dropMessage(Tick now, const NodeId *path, int nodes,
                     NodeId &from, NodeId &to);

    /** The seeded flaky-link episodes (for the mesh and diagnoses). */
    const std::vector<FlakyEpisode> &episodes() const { return _episodes; }

    /**
     * Fault-stream position: RNG draws made since configure(). Written
     * into watchdog dumps so a repro can fast-forward the stream, and
     * not reset by clearCounters() (positions are absolute).
     */
    std::uint64_t draws() const { return _draws; }

  private:
    /** One counted draw helper for each Rng use. */
    std::uint64_t draw(std::uint64_t bound);
    bool drawChance(std::uint64_t ppm);

    FaultConfig _cfg;
    std::uint64_t _seed = 0;
    Rng _rng{1};
    std::uint64_t _jitter_ppm = 0;
    std::uint64_t _resv_drop_ppm = 0;
    std::uint64_t _evict_ppm = 0;
    std::uint64_t _nack_ppm = 0;
    std::uint64_t _drop_ppm = 0;
    std::uint64_t _flaky_ppm = 0;
    std::uint64_t _reorder_ppm = 0;
    std::uint64_t _dup_ppm = 0;
    std::uint64_t _corrupt_ppm = 0;
    std::vector<FlakyEpisode> _episodes;
    /** Consecutive injected NACKs per requester, for the cap. */
    std::vector<int> _nack_streak;
    std::uint64_t _draws = 0;
    Counters _ctr;
};

/**
 * Build a FaultConfig from the environment: DSM_FAULTS holds a
 * FaultConfig::parse spec ("1" for the default mix), DSM_FAULT_SEED
 * overrides the fault seed. Returns a disabled config when DSM_FAULTS
 * is unset or "0"; dsm_fatal on a malformed spec.
 */
FaultConfig faultConfigFromEnv();

} // namespace dsm

#endif // DSM_FAULT_FAULT_HH
