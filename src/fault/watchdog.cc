#include "fault/watchdog.hh"

#include "cpu/system.hh"
#include "proto/controller.hh"
#include "sim/logging.hh"
#include "trace/txn.hh"

namespace dsm {

namespace {

/** One line of controller-side state for a blocked transaction. */
std::string
describeTxn(System &sys, NodeId n)
{
    Controller &c = sys.ctrl(n);
    std::string attempt;
    if (sys.cfg().faults.recoveryEnabled())
        attempt = csprintf(" attempt=%d", c.cpuAttempt());
    // Overload-protection park state: a transaction waiting out a
    // deliberate backoff or credit throttle is not stuck.
    std::string park;
    if (sys.now() < c.cpuParkedUntil())
        park = csprintf(" (throttled: %s until %llu)",
                        c.cpuParkKind() ==
                                Controller::ParkKind::THROTTLED
                            ? "credit"
                            : "backoff",
                        (unsigned long long)c.cpuParkedUntil());
    std::string s = csprintf(
        "  node %d: %s addr=%#llx issued@%llu age=%llu retries=%d%s%s%s\n",
        (int)n, toString(c.cpuOp()), (unsigned long long)c.cpuAddr(),
        (unsigned long long)c.cpuStart(),
        (unsigned long long)(sys.now() - c.cpuStart()), c.cpuRetries(),
        attempt.c_str(), c.cpuWaiting() ? " (awaiting reply)" : "",
        park.c_str());
    s += sys.txns().describeActive(n);
    return s;
}

} // namespace

void
Watchdog::onRetry(System &sys, NodeId node, AtomicOp op, Addr addr,
                  int retries)
{
    if (_tripped || _cfg.max_retries == 0 || retries <= _cfg.max_retries)
        return;
    trip(sys, csprintf("node %d %s addr=%#llx exceeded the retry bound: "
                       "%d retries > max_retries=%d",
                       (int)node, toString(op), (unsigned long long)addr,
                       retries, _cfg.max_retries));
}

void
Watchdog::scan(System &sys)
{
    if (_tripped || _cfg.max_txn_age == 0)
        return;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        Controller &c = sys.ctrl(n);
        if (!c.cpuBusy())
            continue;
        Tick age = sys.now() - c.cpuStart();
        // A transaction parked in a contention backoff or a credit
        // throttle (serve.*) is deliberately waiting with a scheduled
        // wake-up, not livelocked — and the cycles past parks already
        // cost it are equally deliberate. Charge only un-parked age
        // against the bound; parks show up as `throttled` in
        // blocked-transaction dumps.
        if (sys.cfg().serve.enabled) {
            if (sys.now() < c.cpuParkedUntil())
                continue;
            Tick parked = c.cpuParkedCycles();
            age = age > parked ? age - parked : 0;
        }
        if (age <= _cfg.max_txn_age)
            continue;
        trip(sys, csprintf("node %d %s addr=%#llx exceeded the age "
                           "bound: age %llu > max_txn_age=%llu "
                           "(retries=%d)",
                           (int)n, toString(c.cpuOp()),
                           (unsigned long long)c.cpuAddr(),
                           (unsigned long long)age,
                           (unsigned long long)_cfg.max_txn_age,
                           c.cpuRetries()));
        return;
    }
}

void
Watchdog::trip(System &sys, std::string why)
{
    _tripped = true;
    ++_trips;
    _diag = "livelock watchdog tripped: " + why + "\n" +
            blockedTxnDump(sys);
}

std::string
Watchdog::blockedTxnDump(System &sys)
{
    std::string out = csprintf("%d task(s) pending at tick %llu; "
                               "in-flight transactions:\n",
                               sys.tasksPending(),
                               (unsigned long long)sys.now());
    // Fault-stream position: a repro at the dumped seed can fast-
    // forward the stream to this draw count to reach the same state.
    if (sys.faultPlan().enabled())
        out += csprintf(
            "  fault stream: seed=%llu draws=%llu\n",
            (unsigned long long)sys.faultPlan().resolvedSeed(),
            (unsigned long long)sys.faultPlan().draws());
    int busy = 0;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        if (!sys.ctrl(n).cpuBusy())
            continue;
        ++busy;
        out += describeTxn(sys, n);
    }
    if (busy == 0)
        out += "  (no controller has an active transaction; the "
               "workload is blocked outside the protocol layer)\n";
    return out;
}

} // namespace dsm
