#include "stats/stat_set.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

void
SysStats::merge(const SysStats &o)
{
    nacks += o.nacks;
    retries += o.retries;
    invalidations += o.invalidations;
    updates += o.updates;
    writebacks += o.writebacks;
    drop_notifies += o.drop_notifies;
    sc_failures += o.sc_failures;
    sc_local_failures += o.sc_local_failures;
    sc_successes += o.sc_successes;
    cas_failures += o.cas_failures;
    cas_successes += o.cas_successes;
    for (int i = 0; i < NUM_ATOMIC_OPS; ++i) {
        op_count[i] += o.op_count[i];
        op_latency[i].merge(o.op_latency[i]);
    }
    chain_length.merge(o.chain_length);
}

std::string
SysStats::report() const
{
    std::string out;
    out += csprintf("nacks=%llu retries=%llu inv=%llu upd=%llu wb=%llu "
                    "drops=%llu\n",
                    (unsigned long long)nacks,
                    (unsigned long long)retries,
                    (unsigned long long)invalidations,
                    (unsigned long long)updates,
                    (unsigned long long)writebacks,
                    (unsigned long long)drop_notifies);
    out += csprintf("sc: ok=%llu fail=%llu (local=%llu)  "
                    "cas: ok=%llu fail=%llu\n",
                    (unsigned long long)sc_successes,
                    (unsigned long long)sc_failures,
                    (unsigned long long)sc_local_failures,
                    (unsigned long long)cas_successes,
                    (unsigned long long)cas_failures);
    for (int i = 0; i < NUM_ATOMIC_OPS; ++i) {
        if (op_count[i] == 0)
            continue;
        const LatencyStat &lat = op_latency[i];
        out += csprintf("%-18s n=%-10llu mean=%8.1f "
                        "p50=%-6llu p95=%-6llu p99=%-6llu p999=%-6llu "
                        "max=%llu\n",
                        toString(static_cast<AtomicOp>(i)),
                        (unsigned long long)op_count[i],
                        lat.mean(),
                        (unsigned long long)lat.p50(),
                        (unsigned long long)lat.p95(),
                        (unsigned long long)lat.p99(),
                        (unsigned long long)lat.p999(),
                        (unsigned long long)lat.max);
    }
    return out;
}

void
SysStats::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("nacks", nacks);
    w.kv("retries", retries);
    w.kv("invalidations", invalidations);
    w.kv("updates", updates);
    w.kv("writebacks", writebacks);
    w.kv("drop_notifies", drop_notifies);
    w.kv("sc_successes", sc_successes);
    w.kv("sc_failures", sc_failures);
    w.kv("sc_local_failures", sc_local_failures);
    w.kv("cas_successes", cas_successes);
    w.kv("cas_failures", cas_failures);
    w.key("ops");
    w.beginObject();
    for (int i = 0; i < NUM_ATOMIC_OPS; ++i) {
        if (op_count[i] == 0)
            continue;
        const LatencyStat &lat = op_latency[i];
        w.key(toString(static_cast<AtomicOp>(i)));
        w.beginObject();
        w.kv("count", op_count[i]);
        w.kv("mean_latency", lat.mean());
        w.kv("p50", static_cast<std::uint64_t>(lat.p50()));
        w.kv("p95", static_cast<std::uint64_t>(lat.p95()));
        w.kv("p99", static_cast<std::uint64_t>(lat.p99()));
        w.kv("p999", static_cast<std::uint64_t>(lat.p999()));
        w.kv("max_latency", static_cast<std::uint64_t>(lat.max));
        w.endObject();
    }
    w.endObject();
    w.key("chain_length");
    w.beginObject();
    w.kv("samples", chain_length.samples());
    w.kv("mean", chain_length.mean());
    w.kv("max", chain_length.max());
    w.endObject();
    w.endObject();
}

} // namespace dsm
