#include "stats/stat_set.hh"

#include "sim/logging.hh"

namespace dsm {

std::string
SysStats::report() const
{
    std::string out;
    out += csprintf("nacks=%llu retries=%llu inv=%llu upd=%llu wb=%llu "
                    "drops=%llu\n",
                    (unsigned long long)nacks,
                    (unsigned long long)retries,
                    (unsigned long long)invalidations,
                    (unsigned long long)updates,
                    (unsigned long long)writebacks,
                    (unsigned long long)drop_notifies);
    out += csprintf("sc: ok=%llu fail=%llu (local=%llu)  "
                    "cas: ok=%llu fail=%llu\n",
                    (unsigned long long)sc_successes,
                    (unsigned long long)sc_failures,
                    (unsigned long long)sc_local_failures,
                    (unsigned long long)cas_successes,
                    (unsigned long long)cas_failures);
    for (int i = 0; i < NUM_ATOMIC_OPS; ++i) {
        if (op_count[i] == 0)
            continue;
        out += csprintf("%-18s n=%-10llu mean=%8.1f max=%llu\n",
                        toString(static_cast<AtomicOp>(i)),
                        (unsigned long long)op_count[i],
                        op_latency[i].mean(),
                        (unsigned long long)op_latency[i].max);
    }
    return out;
}

} // namespace dsm
