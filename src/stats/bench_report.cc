#include "stats/bench_report.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "cpu/system.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

RunMetrics
collectRunMetrics(System &sys)
{
    SysStats agg = sys.stats();
    LatencyStat total;
    RunMetrics m;
    for (int i = 0; i < NUM_ATOMIC_OPS; ++i) {
        m.ops += agg.op_count[i];
        total.merge(agg.op_latency[i]);
    }
    m.mean_latency = total.mean();
    m.p50 = total.p50();
    m.p95 = total.p95();
    m.p99 = total.p99();
    m.p999 = total.p999();
    m.max_latency = total.max;
    const MeshStats &ms = sys.mesh().stats();
    m.messages = ms.messages;
    m.flits = ms.flits;
    m.nacks = agg.nacks;
    m.retries = agg.retries;
    m.invalidations = agg.invalidations;
    m.updates = agg.updates;
    m.ticks = sys.now();
    return m;
}

namespace {

std::string
renderString(const std::string &v)
{
    return "\"" + jsonEscape(v) + "\"";
}

std::string
renderNumber(double v)
{
    JsonWriter w;
    w.value(v);
    return w.str();
}

std::string
renderNumber(std::uint64_t v)
{
    return csprintf("%llu", static_cast<unsigned long long>(v));
}

} // anonymous namespace

BenchRow &
BenchRow::set(const std::string &k, const std::string &v)
{
    _fields.emplace_back(k, renderString(v));
    return *this;
}

BenchRow &
BenchRow::set(const std::string &k, const char *v)
{
    return set(k, std::string(v));
}

BenchRow &
BenchRow::set(const std::string &k, double v)
{
    _fields.emplace_back(k, renderNumber(v));
    return *this;
}

BenchRow &
BenchRow::set(const std::string &k, std::uint64_t v)
{
    _fields.emplace_back(k, renderNumber(v));
    return *this;
}

BenchRow &
BenchRow::set(const std::string &k, int v)
{
    _fields.emplace_back(k, csprintf("%d", v));
    return *this;
}

BenchRow &
BenchRow::setRaw(const std::string &k, std::string rendered_json)
{
    _fields.emplace_back(k, std::move(rendered_json));
    return *this;
}

BenchRow &
BenchRow::metrics(const RunMetrics &m)
{
    set("ops", m.ops);
    set("mean_latency", m.mean_latency);
    set("p50", static_cast<std::uint64_t>(m.p50));
    set("p95", static_cast<std::uint64_t>(m.p95));
    set("p99", static_cast<std::uint64_t>(m.p99));
    set("p999", static_cast<std::uint64_t>(m.p999));
    set("max_latency", static_cast<std::uint64_t>(m.max_latency));
    set("messages", m.messages);
    set("flits", m.flits);
    set("nacks", m.nacks);
    set("retries", m.retries);
    set("invalidations", m.invalidations);
    set("updates", m.updates);
    set("ticks", static_cast<std::uint64_t>(m.ticks));
    return *this;
}

BenchRow &
BenchRow::merge(const BenchRow &other)
{
    _fields.insert(_fields.end(), other._fields.begin(),
                   other._fields.end());
    return *this;
}

BenchReport::BenchReport(std::string name)
    : _name(std::move(name)), _created(std::chrono::steady_clock::now())
{
}

namespace {

/**
 * Commit provenance for the written report: $DSM_GIT_SHA wins (CI sets
 * it to the exact tested revision), else ask git, else "unknown" (e.g.
 * running from an exported tarball).
 */
std::string
gitSha()
{
    const char *env = std::getenv("DSM_GIT_SHA");
    if (env != nullptr && env[0] != '\0')
        return env;
    std::string sha;
    if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (std::fgets(buf, sizeof buf, p) != nullptr)
            sha = buf;
        pclose(p);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

} // anonymous namespace

void
BenchReport::meta(const std::string &k, const std::string &v)
{
    _meta.emplace_back(k, renderString(v));
}

void
BenchReport::meta(const std::string &k, double v)
{
    _meta.emplace_back(k, renderNumber(v));
}

void
BenchReport::meta(const std::string &k, std::uint64_t v)
{
    _meta.emplace_back(k, renderNumber(v));
}

void
BenchReport::meta(const std::string &k, int v)
{
    _meta.emplace_back(k, csprintf("%d", v));
}

BenchRow &
BenchReport::row()
{
    _rows.emplace_back();
    return _rows.back();
}

std::string
BenchReport::render(bool provenance) const
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "dsm-bench-v1");
    w.kv("bench", _name);
    w.key("meta");
    w.beginObject();
    for (const auto &[k, v] : _meta) {
        w.key(k);
        w.raw(v);
    }
    if (provenance) {
        using namespace std::chrono;
        w.kv("git_sha", gitSha());
        w.kv("wall_ms",
             static_cast<std::uint64_t>(duration_cast<milliseconds>(
                 steady_clock::now() - _created).count()));
        w.kv("host_cores",
             static_cast<std::uint64_t>(
                 std::thread::hardware_concurrency()));
    }
    w.endObject();
    w.key("results");
    w.beginArray();
    for (const BenchRow &r : _rows) {
        w.beginObject();
        for (const auto &[k, v] : r._fields) {
            w.key(k);
            w.raw(v);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
BenchReport::toJson() const
{
    return render(false);
}

std::string
BenchReport::outputPath() const
{
    const char *dir = std::getenv("DSM_BENCH_DIR");
    std::string d = dir != nullptr && dir[0] != '\0' ? dir : ".";
    return d + "/BENCH_" + _name + ".json";
}

std::string
BenchReport::write() const
{
    std::string path = outputPath();
    std::ofstream out(path, std::ios::binary);
    if (out)
        out << render(true) << '\n';
    if (!out) {
        dsm_warn("could not write bench report %s", path.c_str());
        return "";
    }
    return path;
}

} // namespace dsm
