/**
 * @file
 * Self-contained HTML rendering of a dsm-timeseries-v1 document.
 *
 * The generated page embeds the telemetry JSON verbatim and renders it
 * with inline JavaScript — no external assets, so the file can be
 * opened from a CI artifact or mailed around as-is. It shows, per sweep
 * point: a sparkline grid of every sampled series, the ranked hot-line
 * table, and an SVG heatmap of per-directed-link mesh utilization.
 */

#ifndef DSM_STATS_TELEMETRY_HTML_HH
#define DSM_STATS_TELEMETRY_HTML_HH

#include <string>

namespace dsm {

/**
 * Render @p timeseries_json (a dsm-timeseries-v1 document) as a
 * standalone HTML page titled @p title.
 */
std::string renderTelemetryHtml(const std::string &timeseries_json,
                                const std::string &title);

/**
 * renderTelemetryHtml() to a file.
 * @return true on success (warns on I/O failure).
 */
bool writeTelemetryHtml(const std::string &path,
                        const std::string &timeseries_json,
                        const std::string &title);

} // namespace dsm

#endif // DSM_STATS_TELEMETRY_HTML_HH
