#include "stats/telemetry_html.hh"

#include <fstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

/**
 * Make a JSON document safe for embedding inside a <script> block: a
 * literal "</" (as in a string containing "</script>") would terminate
 * the block early, so split it with a backslash, which JSON string
 * syntax treats as the identical character.
 */
std::string
scriptEscape(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    for (std::size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '<' && i + 1 < json.size() && json[i + 1] == '/')
            out += "<\\";
        else
            out += json[i];
    }
    return out;
}

const char *const HTML_HEAD = R"HTML(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%TITLE%</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em;
         background: #fafafa; color: #222; }
  h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
  .meta { color: #666; margin-bottom: 1em; }
  select { font: inherit; margin: .4em 0 1em; }
  .grid { display: flex; flex-wrap: wrap; gap: 10px; }
  .cell { background: #fff; border: 1px solid #ddd; border-radius: 4px;
          padding: 6px 8px; }
  .cell .name { font-weight: 600; }
  .cell .tot { color: #666; font-size: 11px; }
  svg.spark polyline { fill: none; stroke: #2a6fbb; stroke-width: 1; }
  svg.spark rect.bg { fill: #f4f7fb; }
  table { border-collapse: collapse; background: #fff; }
  th, td { border: 1px solid #ddd; padding: 3px 8px; text-align: right;
           font-variant-numeric: tabular-nums; }
  th { background: #eef2f6; }
  td.addr { font-family: monospace; text-align: left; }
  .note { color: #666; font-size: 12px; }
</style>
</head>
<body>
<h1>%TITLE%</h1>
<div class="meta" id="meta"></div>
<label>Sweep point: <select id="point"></select></label>
<h2>Series</h2>
<div class="grid" id="series"></div>
<div id="tailpanel" style="display:none">
<h2>Tail latency</h2>
<div class="note">Conditional phase attribution of the slowest
transactions (above the p90/p99 end-to-end latency thresholds) and the
top-K slowest exemplars; from the transaction tracer.</div>
<div id="tailserving" class="note"></div>
<div id="tailattr"></div>
<h2>Slowest transactions</h2>
<div id="tailexemplars"></div>
</div>
<h2>Hot lines</h2>
<div id="hotlines"></div>
<h2>Mesh link utilization</h2>
<div class="note">Directed links of the dimension-order mesh; stroke
scales with cumulative flits offered (both directions drawn offset).
</div>
<div id="mesh"></div>
<script>
const DATA =
)HTML";

const char *const HTML_TAIL = R"HTML(;

function el(tag, attrs, text) {
  const e = document.createElement(tag);
  for (const k in attrs || {}) e.setAttribute(k, attrs[k]);
  if (text !== undefined) e.textContent = text;
  return e;
}

function spark(values, w, h) {
  const ns = 'http://www.w3.org/2000/svg';
  const svg = document.createElementNS(ns, 'svg');
  svg.setAttribute('class', 'spark');
  svg.setAttribute('width', w); svg.setAttribute('height', h);
  const bg = document.createElementNS(ns, 'rect');
  bg.setAttribute('class', 'bg');
  bg.setAttribute('width', w); bg.setAttribute('height', h);
  svg.appendChild(bg);
  if (values.length > 0) {
    const max = Math.max(1, ...values);
    const pts = values.map((v, i) => {
      const x = values.length > 1 ? i * (w - 2) / (values.length - 1) : 0;
      return (1 + x) + ',' + (h - 1 - (h - 2) * v / max);
    }).join(' ');
    const line = document.createElementNS(ns, 'polyline');
    line.setAttribute('points', pts);
    svg.appendChild(line);
  }
  return svg;
}

function renderPoint(pt) {
  const grid = document.getElementById('series');
  grid.textContent = '';
  const ts = pt.timeseries;
  for (const name in ts.series) {
    const s = ts.series[name];
    const cell = el('div', {class: 'cell'});
    cell.appendChild(el('div', {class: 'name'}, name));
    cell.appendChild(spark(s.values, 180, 40));
    const tot = s.kind === 'delta'
        ? 'sum ' + (s.values.reduce((a, b) => a + b, 0) +
                    (s.evicted_sum || 0))
        : 'last ' + (s.values.length ?
                     s.values[s.values.length - 1] : 0);
    cell.appendChild(el('div', {class: 'tot'},
        s.kind + ', ' + tot + ', ' + s.values.length + ' win @' +
        ts.window_cycles + 'cy'));
    grid.appendChild(cell);
  }

  const panel = document.getElementById('tailpanel');
  panel.style.display = pt.tail ? '' : 'none';
  if (pt.tail) {
    const serving = document.getElementById('tailserving');
    serving.textContent = '';
    const ol = pt.tail.openloop;
    if (ol) {
      serving.textContent =
          'open-loop serving: offered ' + ol.offered + ', admitted ' +
          ol.admitted + ', shed ' + ol.rejected + ', completed ' +
          ol.completed + '; SLO ' + ol.slo_cycles + 'cy, ' +
          ol.slo_violations + ' violation(s); sojourn p50/p99/p999 ' +
          ol.sojourn.p50 + '/' + ol.sojourn.p99 + '/' +
          ol.sojourn.p999 + 'cy, max ' + ol.sojourn.max + 'cy';
    }
    const attr = document.getElementById('tailattr');
    attr.textContent = '';
    const a = pt.tail.attribution;
    const cuts = ['p90', 'p99'].filter(c => a[c] && a[c].count > 0);
    const phases = [];
    for (const c of cuts)
      for (const ph in a[c].phases)
        if (!phases.includes(ph)) phases.push(ph);
    const t = el('table');
    const hr0 = el('tr');
    hr0.appendChild(el('th', {}, 'cut'));
    hr0.appendChild(el('th', {}, 'threshold'));
    hr0.appendChild(el('th', {}, 'txns'));
    hr0.appendChild(el('th', {}, 'mean total'));
    for (const ph of phases) hr0.appendChild(el('th', {}, ph));
    t.appendChild(hr0);
    for (const c of cuts) {
      const tr = el('tr');
      tr.appendChild(el('td', {}, '≥' + c));
      tr.appendChild(el('td', {}, a[c].threshold + 'cy'));
      tr.appendChild(el('td', {}, String(a[c].count)));
      tr.appendChild(el('td', {}, a[c].total.mean.toFixed(1)));
      for (const ph of phases) {
        const s = a[c].phases[ph];
        tr.appendChild(el('td', {}, s ? s.mean.toFixed(1) : '—'));
      }
      t.appendChild(tr);
    }
    attr.appendChild(t);
    attr.appendChild(el('div', {class: 'note'},
        a.records + ' transactions recorded, ' + a.dropped +
        ' dropped; cells are mean cycles per phase inside the cut'));

    const ex = document.getElementById('tailexemplars');
    ex.textContent = '';
    const et = el('table');
    const ehr = el('tr');
    const ecols = ['id', 'op', 'proc', 'total', 'retries', 'messages',
                   'phases'];
    for (const c of ecols) ehr.appendChild(el('th', {}, c));
    et.appendChild(ehr);
    for (const e of pt.tail.exemplars || []) {
      const tr = el('tr');
      for (const c of ecols) {
        let v = e[c];
        if (c === 'phases')
          v = Object.entries(e.phases || {})
              .map(([k, n]) => k + '=' + n).join(' ');
        tr.appendChild(el('td',
            {class: c === 'phases' ? 'addr' : ''}, String(v)));
      }
      et.appendChild(tr);
    }
    ex.appendChild(et);
  }

  const hot = document.getElementById('hotlines');
  hot.textContent = '';
  const cols = ['addr', 'home', 'sync', 'score', 'requests',
                'service_cycles', 'nacks', 'migrations', 'sharer_joins',
                'invalidations'];
  const table = el('table');
  const hr = el('tr');
  for (const c of cols) hr.appendChild(el('th', {}, c));
  table.appendChild(hr);
  for (const l of pt.hot_lines) {
    const tr = el('tr');
    for (const c of cols) {
      const v = c === 'addr' ? '0x' + l.addr.toString(16) : l[c];
      tr.appendChild(el('td', {class: c === 'addr' ? 'addr' : ''},
                        String(v)));
    }
    table.appendChild(tr);
  }
  hot.appendChild(table);
  hot.appendChild(el('div', {class: 'note'},
      pt.lines_tracked + ' lines tracked; top ' +
      pt.hot_lines.length + ' shown'));

  const mesh = document.getElementById('mesh');
  mesh.textContent = '';
  const L = pt.links, n = L.nodes, mx = L.mesh_x, my = L.mesh_y;
  const cellpx = 56, pad = 30, r = 9;
  const ns = 'http://www.w3.org/2000/svg';
  const svg = document.createElementNS(ns, 'svg');
  svg.setAttribute('width', pad * 2 + (mx - 1) * cellpx);
  svg.setAttribute('height', pad * 2 + (my - 1) * cellpx);
  let maxf = 1;
  for (const f of L.flits) maxf = Math.max(maxf, f);
  const cx = a => pad + (a % mx) * cellpx;
  const cy = a => pad + Math.floor(a / mx) * cellpx;
  for (let a = 0; a < n; ++a) {
    for (const b of [a + 1, a + mx]) {  // right and down neighbours
      if (b >= n) continue;
      if (b === a + 1 && b % mx === 0) continue;
      for (const [src, dst, off] of [[a, b, -2], [b, a, 2]]) {
        const f = L.flits[src * n + dst];
        const horiz = Math.abs(src - dst) === 1;
        const line = document.createElementNS(ns, 'line');
        line.setAttribute('x1', cx(src) + (horiz ? 0 : off));
        line.setAttribute('y1', cy(src) + (horiz ? off : 0));
        line.setAttribute('x2', cx(dst) + (horiz ? 0 : off));
        line.setAttribute('y2', cy(dst) + (horiz ? off : 0));
        const t = f / maxf;
        line.setAttribute('stroke',
            f === 0 ? '#e5e5e5'
                    : 'hsl(' + Math.round(210 - 210 * t) + ',80%,45%)');
        line.setAttribute('stroke-width', 1 + 4 * t);
        const tt = document.createElementNS(ns, 'title');
        tt.textContent = src + ' → ' + dst + ': ' + f + ' flits';
        line.appendChild(tt);
        svg.appendChild(line);
      }
    }
  }
  for (let a = 0; a < n; ++a) {
    const c = document.createElementNS(ns, 'circle');
    c.setAttribute('cx', cx(a)); c.setAttribute('cy', cy(a));
    c.setAttribute('r', r);
    c.setAttribute('fill', '#fff'); c.setAttribute('stroke', '#888');
    svg.appendChild(c);
    const t = document.createElementNS(ns, 'text');
    t.setAttribute('x', cx(a)); t.setAttribute('y', cy(a) + 3);
    t.setAttribute('text-anchor', 'middle');
    t.setAttribute('font-size', '8');
    t.textContent = a;
    svg.appendChild(t);
  }
  mesh.appendChild(svg);
}

(function () {
  const meta = [];
  for (const k in DATA.meta || {}) meta.push(k + '=' + DATA.meta[k]);
  document.getElementById('meta').textContent =
      'bench ' + DATA.bench + (meta.length ? ' · ' : '') +
      meta.join(' · ');
  const sel = document.getElementById('point');
  DATA.points.forEach((pt, i) => {
    sel.appendChild(el('option', {value: i},
                       pt.impl + ' · ' + pt.point));
  });
  sel.addEventListener('change',
                       () => renderPoint(DATA.points[sel.value]));
  if (DATA.points.length > 0) renderPoint(DATA.points[0]);
})();
</script>
</body>
</html>
)HTML";

/** Replace every %TITLE% placeholder. */
std::string
substituteTitle(std::string tmpl, const std::string &title)
{
    const std::string key = "%TITLE%";
    std::string esc;
    for (char c : title) {
        switch (c) {
          case '<': esc += "&lt;"; break;
          case '>': esc += "&gt;"; break;
          case '&': esc += "&amp;"; break;
          default: esc += c;
        }
    }
    std::size_t pos = 0;
    while ((pos = tmpl.find(key, pos)) != std::string::npos) {
        tmpl.replace(pos, key.size(), esc);
        pos += esc.size();
    }
    return tmpl;
}

} // anonymous namespace

std::string
renderTelemetryHtml(const std::string &timeseries_json,
                    const std::string &title)
{
    return substituteTitle(HTML_HEAD, title) +
           scriptEscape(timeseries_json) + HTML_TAIL;
}

bool
writeTelemetryHtml(const std::string &path,
                   const std::string &timeseries_json,
                   const std::string &title)
{
    std::ofstream out(path, std::ios::binary);
    if (out)
        out << renderTelemetryHtml(timeseries_json, title);
    if (!out) {
        dsm_warn("could not write telemetry report %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace dsm
