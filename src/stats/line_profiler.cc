#include "stats/line_profiler.hh"

#include <algorithm>

namespace dsm {

LineProfile
LineProfiler::profile(Addr block) const
{
    auto it = _lines.find(block);
    return it != _lines.end() ? it->second : LineProfile{};
}

std::vector<LineProfiler::Ranked>
LineProfiler::ranked(std::size_t top) const
{
    std::vector<Ranked> all;
    all.reserve(_lines.size());
    for (const auto &[addr, prof] : _lines)
        all.push_back(Ranked{addr, prof});
    std::sort(all.begin(), all.end(),
              [](const Ranked &a, const Ranked &b) {
                  std::uint64_t sa = a.prof.score(), sb = b.prof.score();
                  if (sa != sb)
                      return sa > sb;
                  return a.addr < b.addr;
              });
    if (all.size() > top)
        all.resize(top);
    return all;
}

} // namespace dsm
