#include "stats/sharing_tracker.hh"

#include "sim/logging.hh"

namespace dsm {

void
SharingTracker::recordAccess(Addr a, NodeId n, bool is_write)
{
    LocState &loc = _locs[wordBase(a)];
    if (loc.run_writer != INVALID_NODE && loc.run_writer != n) {
        // Intervening access by another processor ends the run.
        _write_runs.add(loc.run_len);
        loc.run_writer = INVALID_NODE;
        loc.run_len = 0;
    }
    if (is_write) {
        loc.run_writer = n;
        ++loc.run_len;
    }
    // A read by the running writer does not break its own run.
}

void
SharingTracker::beginAttempt(Addr a, NodeId n)
{
    (void)n;
    LocState &loc = _locs[wordBase(a)];
    ++loc.attempts_open;
    _contention.add(static_cast<std::uint64_t>(loc.attempts_open));
}

void
SharingTracker::endAttempt(Addr a, NodeId n)
{
    (void)n;
    LocState &loc = _locs[wordBase(a)];
    dsm_assert(loc.attempts_open > 0,
               "endAttempt with no open attempt at %#llx",
               static_cast<unsigned long long>(a));
    --loc.attempts_open;
}

void
SharingTracker::finalize()
{
    for (auto &kv : _locs) {
        LocState &loc = kv.second;
        if (loc.run_writer != INVALID_NODE && loc.run_len > 0) {
            _write_runs.add(loc.run_len);
            loc.run_writer = INVALID_NODE;
            loc.run_len = 0;
        }
    }
}

void
SharingTracker::clear()
{
    _locs.clear();
    _write_runs.clear();
    _contention.clear();
}

} // namespace dsm
