/**
 * @file
 * Simple integer histogram with mean/percentile helpers, used for the
 * paper's contention histograms (Figure 2) and latency distributions.
 */

#ifndef DSM_STATS_HISTOGRAM_HH
#define DSM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsm {

/** Histogram over non-negative integer samples, unit-width buckets. */
class Histogram
{
  public:
    /** Record one sample. */
    void add(std::uint64_t value, std::uint64_t count = 1);

    /** Total number of samples. */
    std::uint64_t samples() const { return _samples; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return _sum; }

    /** Arithmetic mean; 0 if empty. */
    double mean() const;

    /** Largest sample seen; 0 if empty. */
    std::uint64_t max() const { return _max; }

    /** Count in bucket @p value. */
    std::uint64_t count(std::uint64_t value) const;

    /** Fraction of samples equal to @p value (0..1). */
    double fraction(std::uint64_t value) const;

    /** Smallest v such that at least @p q of samples are <= v. */
    std::uint64_t percentile(double q) const;

    /** @name Standard report percentiles. @{ */
    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }
    /** @} */

    /** Fold another histogram's samples into this one. */
    void merge(const Histogram &other);

    /** Forget everything. */
    void clear();

    /** One-line summary: "n=..., mean=..., max=...". */
    std::string summary() const;

    /** Direct access to the bucket array (index = sample value). */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _max = 0;
};

} // namespace dsm

#endif // DSM_STATS_HISTOGRAM_HH
