/**
 * @file
 * Trackers for the paper's two sharing-pattern metrics (Section 4.2):
 *
 * - **Average write-run length**: the average number of consecutive
 *   writes (including atomic updates) by one processor to an atomically
 *   accessed shared location without intervening accesses (reads or
 *   writes) by any other processor.
 *
 * - **Contention histograms**: the number of processors contending to
 *   access an atomically accessed shared location at the beginning of
 *   each access.
 */

#ifndef DSM_STATS_SHARING_TRACKER_HH
#define DSM_STATS_SHARING_TRACKER_HH

#include <unordered_map>

#include "sim/types.hh"
#include "stats/histogram.hh"

namespace dsm {

/** Tracks sharing-pattern metrics across all sync locations. */
class SharingTracker
{
  public:
    /**
     * Record an access to sync location @p a by node @p n.
     * @param is_write True for stores and atomic updates (a failed CAS
     *                 or SC counts as a read: it does not write).
     */
    void recordAccess(Addr a, NodeId n, bool is_write);

    /**
     * A processor began attempting an atomic access (e.g. issued the
     * primitive or entered an acquire loop) on location @p a. The
     * contention level sampled at the beginning of the access is the
     * number of processors concurrently in an attempt, including this
     * one.
     */
    void beginAttempt(Addr a, NodeId n);

    /** The attempt begun by beginAttempt() completed. */
    void endAttempt(Addr a, NodeId n);

    /**
     * Close all open write runs and fold them into the statistics;
     * call once at the end of the measured region.
     */
    void finalize();

    /** Distribution of completed write-run lengths. */
    const Histogram &writeRuns() const { return _write_runs; }

    /** Average write-run length (Section 4.2's headline number). */
    double averageWriteRun() const { return _write_runs.mean(); }

    /** Contention histogram (Figure 2). */
    const Histogram &contention() const { return _contention; }

    void clear();

  private:
    struct LocState
    {
        NodeId run_writer = INVALID_NODE;
        std::uint64_t run_len = 0;
        int attempts_open = 0;
    };

    std::unordered_map<Addr, LocState> _locs;
    Histogram _write_runs;
    Histogram _contention;
};

} // namespace dsm

#endif // DSM_STATS_SHARING_TRACKER_HH
