/**
 * @file
 * Machine-readable benchmark output.
 *
 * Every bench binary builds a BenchReport and writes BENCH_<name>.json
 * next to (or instead of) its plain-text tables, so figure/table data
 * can be consumed by scripts without screen-scraping. The schema is
 * "dsm-bench-v1": a meta object describing the run plus a flat results
 * array of rows, each row naming the implementation, the sweep point,
 * and the measured metrics (mean latency, percentiles, message counts).
 */

#ifndef DSM_STATS_BENCH_REPORT_HH
#define DSM_STATS_BENCH_REPORT_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace dsm {

class System;

/** Metrics harvested from one measured run window. */
struct RunMetrics
{
    std::uint64_t ops = 0;       ///< completed processor operations
    double mean_latency = 0.0;   ///< mean op latency (cycles)
    Tick p50 = 0;
    Tick p95 = 0;
    Tick p99 = 0;
    Tick p999 = 0;
    Tick max_latency = 0;
    std::uint64_t messages = 0;  ///< network messages
    std::uint64_t flits = 0;
    std::uint64_t nacks = 0;
    std::uint64_t retries = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t updates = 0;
    Tick ticks = 0;              ///< simulated time at harvest
};

/** Harvest the standard metrics from a system after a run. */
RunMetrics collectRunMetrics(System &sys);

/** One result row: ordered key -> rendered-JSON-value pairs. */
class BenchRow
{
  public:
    BenchRow &set(const std::string &k, const std::string &v);
    BenchRow &set(const std::string &k, const char *v);
    BenchRow &set(const std::string &k, double v);
    BenchRow &set(const std::string &k, std::uint64_t v);
    BenchRow &set(const std::string &k, int v);

    /** Set @p k to already-rendered JSON (object/array spliced as-is). */
    BenchRow &setRaw(const std::string &k, std::string rendered_json);

    /** Splice the standard metric keys of @p m into this row. */
    BenchRow &metrics(const RunMetrics &m);

    /** Append every field of @p other, preserving order. */
    BenchRow &merge(const BenchRow &other);

  private:
    friend class BenchReport;
    std::vector<std::pair<std::string, std::string>> _fields;
};

/**
 * Accumulates rows for one bench binary and writes BENCH_<name>.json.
 * The output directory comes from $DSM_BENCH_DIR (default: the current
 * working directory).
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);

    /** Add a run-level metadata entry (rendered under "meta"). */
    void meta(const std::string &k, const std::string &v);
    void meta(const std::string &k, double v);
    void meta(const std::string &k, std::uint64_t v);
    void meta(const std::string &k, int v);

    /** Append and return a new result row. */
    BenchRow &row();

    /** Append a fully built row (used by the Experiment API). */
    void append(BenchRow row) { _rows.push_back(std::move(row)); }

    std::size_t numRows() const { return _rows.size(); }

    /** The full document (no provenance; byte-stable per run config). */
    std::string toJson() const;

    /** Path the report will be written to. */
    std::string outputPath() const;

    /**
     * Write the document to outputPath(), with run-provenance entries
     * (git_sha, wall_ms, host_cores) appended to the meta object. Only
     * the written file carries provenance — toJson() never does, so
     * in-memory documents stay byte-identical across hosts and
     * schedules.
     * @return the path written, or "" on I/O failure (warned).
     */
    std::string write() const;

  private:
    /** Render, optionally appending provenance meta entries. */
    std::string render(bool provenance) const;

    std::string _name;
    std::vector<std::pair<std::string, std::string>> _meta;
    std::vector<BenchRow> _rows;
    /** Construction time, for the written report's wall_ms. */
    std::chrono::steady_clock::time_point _created;
};

} // namespace dsm

#endif // DSM_STATS_BENCH_REPORT_HH
