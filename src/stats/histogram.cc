#include "stats/histogram.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dsm {

void
Histogram::add(std::uint64_t value, std::uint64_t count)
{
    if (value >= _buckets.size())
        _buckets.resize(value + 1, 0);
    _buckets[value] += count;
    _samples += count;
    _sum += value * count;
    if (value > _max)
        _max = value;
}

double
Histogram::mean() const
{
    return _samples == 0 ? 0.0
                         : static_cast<double>(_sum) /
                               static_cast<double>(_samples);
}

std::uint64_t
Histogram::count(std::uint64_t value) const
{
    return value < _buckets.size() ? _buckets[value] : 0;
}

double
Histogram::fraction(std::uint64_t value) const
{
    return _samples == 0 ? 0.0
                         : static_cast<double>(count(value)) /
                               static_cast<double>(_samples);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (_samples == 0)
        return 0;
    // Nearest-rank: the target rank is ceil(q * n), clamped to [1, n],
    // so fractional ranks round up and percentile(1.0) is the maximum.
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_samples)));
    if (target == 0)
        target = 1;
    if (target > _samples)
        target = _samples;
    std::uint64_t seen = 0;
    for (std::uint64_t v = 0; v < _buckets.size(); ++v) {
        seen += _buckets[v];
        if (seen >= target)
            return v;
    }
    return _max;
}

void
Histogram::merge(const Histogram &other)
{
    for (std::uint64_t v = 0; v < other._buckets.size(); ++v)
        if (other._buckets[v] != 0)
            add(v, other._buckets[v]);
}

void
Histogram::clear()
{
    _buckets.clear();
    _samples = 0;
    _sum = 0;
    _max = 0;
}

std::string
Histogram::summary() const
{
    return csprintf("n=%llu, mean=%.2f, max=%llu",
                    static_cast<unsigned long long>(_samples), mean(),
                    static_cast<unsigned long long>(_max));
}

} // namespace dsm
