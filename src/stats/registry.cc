#include "stats/registry.hh"

#include <vector>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(path.substr(start));
            return parts;
        }
        parts.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
}

} // anonymous namespace

void
StatsRegistry::addCounter(const std::string &path, Getter getter)
{
    dsm_assert(!_entries.count(path), "duplicate stat path %s", path.c_str());
    Entry e;
    e.getter = std::move(getter);
    _entries.emplace(path, std::move(e));
}

void
StatsRegistry::addCounter(const std::string &path,
                          const std::uint64_t *counter)
{
    addCounter(path, [counter] { return *counter; });
}

void
StatsRegistry::addHistogram(const std::string &path, const Histogram *hist)
{
    dsm_assert(!_entries.count(path), "duplicate stat path %s", path.c_str());
    Entry e;
    e.hist = hist;
    _entries.emplace(path, std::move(e));
}

void
StatsRegistry::addLatency(const std::string &path, const LatencyStat *lat)
{
    dsm_assert(!_entries.count(path), "duplicate stat path %s", path.c_str());
    Entry e;
    e.lat = lat;
    _entries.emplace(path, std::move(e));
}

StatsRegistry::Snapshot
StatsRegistry::snapshot() const
{
    Snapshot snap;
    for (const auto &[path, e] : _entries) {
        if (e.hist) {
            snap[path + ".samples"] = e.hist->samples();
            snap[path + ".sum"] = e.hist->sum();
        } else if (e.lat) {
            snap[path + ".count"] = e.lat->count;
            snap[path + ".sum"] = e.lat->sum;
        } else {
            snap[path] = e.getter();
        }
    }
    return snap;
}

StatsRegistry::Snapshot
StatsRegistry::diff(const Snapshot &after, const Snapshot &before)
{
    Snapshot out;
    for (const auto &[path, v] : after) {
        auto it = before.find(path);
        std::uint64_t base = it == before.end() ? 0 : it->second;
        out[path] = v - base;
    }
    return out;
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    // Sorted iteration keeps prefix groups contiguous, so the tree can
    // be rendered with a single open-segment stack.
    std::vector<std::string> open;
    w.beginObject();
    for (const auto &[path, e] : _entries) {
        std::vector<std::string> parts = splitPath(path);
        dsm_assert(!parts.empty(), "empty stat path");

        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common])
            ++common;
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        while (open.size() + 1 < parts.size()) {
            w.key(parts[open.size()]);
            w.beginObject();
            open.push_back(parts[open.size()]);
        }

        w.key(parts.back());
        if (e.hist) {
            w.beginObject();
            w.kv("samples", e.hist->samples());
            w.kv("mean", e.hist->mean());
            w.kv("max", e.hist->max());
            w.kv("p50", e.hist->p50());
            w.kv("p95", e.hist->p95());
            w.kv("p99", e.hist->p99());
            w.kv("p999", e.hist->p999());
            w.endObject();
        } else if (e.lat) {
            w.beginObject();
            w.kv("count", e.lat->count);
            w.kv("mean", e.lat->mean());
            w.kv("max", static_cast<std::uint64_t>(e.lat->max));
            w.kv("p50", static_cast<std::uint64_t>(e.lat->p50()));
            w.kv("p95", static_cast<std::uint64_t>(e.lat->p95()));
            w.kv("p99", static_cast<std::uint64_t>(e.lat->p99()));
            w.kv("p999", static_cast<std::uint64_t>(e.lat->p999()));
            w.endObject();
        } else {
            w.value(e.getter());
        }
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
}

std::string
StatsRegistry::toJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

} // namespace dsm
