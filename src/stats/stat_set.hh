/**
 * @file
 * Protocol statistics and per-operation latency accounting.
 *
 * Since the observability rework every node carries its own SysStats
 * instance (System::stats(NodeId)); the aggregate view used by reports
 * and tests (System::stats()) is the merge of all per-node instances.
 */

#ifndef DSM_STATS_STAT_SET_HH
#define DSM_STATS_STAT_SET_HH

#include <cstdint>
#include <string>

#include "net/msg.hh"
#include "sim/types.hh"
#include "stats/histogram.hh"

namespace dsm {

class JsonWriter;

/**
 * Sum/count/max accumulator for latencies, with a bucketed sample
 * distribution for percentile reporting.
 */
struct LatencyStat
{
    /** Samples are bucketed at this granularity for percentiles. */
    static constexpr unsigned BUCKET_SHIFT = 3;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    Tick max = 0;
    /** Sample distribution in (1 << BUCKET_SHIFT)-cycle buckets. */
    Histogram dist;

    void
    sample(Tick t)
    {
        ++count;
        sum += t;
        if (t > max)
            max = t;
        dist.add(t >> BUCKET_SHIFT);
    }

    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }

    /**
     * Approximate percentile: the upper edge of the bucketed
     * distribution's percentile bucket, capped at the true max (so the
     * error is at most one bucket width).
     */
    Tick
    percentile(double q) const
    {
        if (count == 0)
            return 0;
        Tick edge = ((dist.percentile(q) + 1) << BUCKET_SHIFT) - 1;
        return edge > max ? max : edge;
    }

    Tick p50() const { return percentile(0.50); }
    Tick p95() const { return percentile(0.95); }
    Tick p99() const { return percentile(0.99); }
    Tick p999() const { return percentile(0.999); }

    /** Fold another accumulator's samples into this one. */
    void
    merge(const LatencyStat &o)
    {
        count += o.count;
        sum += o.sum;
        if (o.max > max)
            max = o.max;
        dist.merge(o.dist);
    }
};

/** Number of distinct AtomicOp values (for per-op arrays). */
constexpr int NUM_ATOMIC_OPS = static_cast<int>(AtomicOp::SCS) + 1;

/** Protocol-level statistics for one node (or, merged, the system). */
struct SysStats
{
    std::uint64_t nacks = 0;            ///< NACK responses sent
    std::uint64_t retries = 0;          ///< requester retry attempts
    std::uint64_t invalidations = 0;    ///< Inv messages sent
    std::uint64_t updates = 0;          ///< Update messages sent
    std::uint64_t writebacks = 0;       ///< WbData messages sent
    std::uint64_t drop_notifies = 0;    ///< DropNotify messages sent
    std::uint64_t sc_failures = 0;      ///< failed store_conditionals
    std::uint64_t sc_local_failures = 0;///< SC failures with no traffic
    std::uint64_t sc_successes = 0;
    std::uint64_t cas_failures = 0;
    std::uint64_t cas_successes = 0;

    /** Per-operation completion counts and latencies. */
    std::uint64_t op_count[NUM_ATOMIC_OPS] = {};
    LatencyStat op_latency[NUM_ATOMIC_OPS];

    /** Longest serialized message chain per completed operation. */
    Histogram chain_length;

    void
    sampleOp(AtomicOp op, Tick latency, int chain)
    {
        int i = static_cast<int>(op);
        ++op_count[i];
        op_latency[i].sample(latency);
        chain_length.add(static_cast<std::uint64_t>(chain));
    }

    /** Fold another node's statistics into this instance. */
    void merge(const SysStats &o);

    /** Multi-line human-readable dump. */
    std::string report() const;

    /** Emit this instance as one JSON object value on @p w. */
    void writeJson(JsonWriter &w) const;
};

} // namespace dsm

#endif // DSM_STATS_STAT_SET_HH
