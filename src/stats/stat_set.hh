/**
 * @file
 * System-wide protocol statistics and per-operation latency accounting.
 */

#ifndef DSM_STATS_STAT_SET_HH
#define DSM_STATS_STAT_SET_HH

#include <cstdint>
#include <string>

#include "net/msg.hh"
#include "sim/types.hh"
#include "stats/histogram.hh"

namespace dsm {

/** Sum/count/max accumulator for latencies. */
struct LatencyStat
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    Tick max = 0;

    void
    sample(Tick t)
    {
        ++count;
        sum += t;
        if (t > max)
            max = t;
    }

    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/** Number of distinct AtomicOp values (for per-op arrays). */
constexpr int NUM_ATOMIC_OPS = static_cast<int>(AtomicOp::SCS) + 1;

/** Protocol-level statistics aggregated across all nodes. */
struct SysStats
{
    std::uint64_t nacks = 0;            ///< NACK responses sent
    std::uint64_t retries = 0;          ///< requester retry attempts
    std::uint64_t invalidations = 0;    ///< Inv messages sent
    std::uint64_t updates = 0;          ///< Update messages sent
    std::uint64_t writebacks = 0;       ///< WbData messages sent
    std::uint64_t drop_notifies = 0;    ///< DropNotify messages sent
    std::uint64_t sc_failures = 0;      ///< failed store_conditionals
    std::uint64_t sc_local_failures = 0;///< SC failures with no traffic
    std::uint64_t sc_successes = 0;
    std::uint64_t cas_failures = 0;
    std::uint64_t cas_successes = 0;

    /** Per-operation completion counts and latencies. */
    std::uint64_t op_count[NUM_ATOMIC_OPS] = {};
    LatencyStat op_latency[NUM_ATOMIC_OPS];

    /** Longest serialized message chain per completed operation. */
    Histogram chain_length;

    void
    sampleOp(AtomicOp op, Tick latency, int chain)
    {
        int i = static_cast<int>(op);
        ++op_count[i];
        op_latency[i].sample(latency);
        chain_length.add(static_cast<std::uint64_t>(chain));
    }

    /** Multi-line human-readable dump. */
    std::string report() const;
};

} // namespace dsm

#endif // DSM_STATS_STAT_SET_HH
