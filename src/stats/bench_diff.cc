#include "stats/bench_diff.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

namespace {

/**
 * Per-metric noise model. Only the harmful direction is gated;
 * @c abs_slack absorbs fixed-cost jitter on tiny counts (a NACK count
 * moving 2 -> 3 is +50% but meaningless).
 */
struct MetricRule
{
    const char *name;
    bool higher_is_bad;
    double rel_pct;   ///< relative threshold, percent of baseline
    double abs_slack; ///< ignore changes at or below this magnitude
};

const MetricRule METRIC_RULES[] = {
    {"ops", false, 5.0, 16.0},
    {"mean_latency", true, 5.0, 8.0},
    {"p50", true, 10.0, 16.0},
    {"p95", true, 10.0, 16.0},
    {"p99", true, 10.0, 32.0},
    // Deep-tail percentiles wobble more than the body of the
    // distribution: wider relative band, larger fixed slack.
    {"p999", true, 15.0, 64.0},
    {"messages", true, 5.0, 64.0},
    {"flits", true, 5.0, 256.0},
    {"nacks", true, 10.0, 64.0},
    {"retries", true, 10.0, 64.0},
    {"ticks", true, 5.0, 256.0},
    {"avg_cycles_per_update", true, 5.0, 8.0},
    // Open-loop serving metrics (openloop_sweep): losing throughput or
    // growing the sojourn tail is the harmful direction; slo_frac is a
    // ratio in [0, 1], so gate it on absolute movement only.
    {"throughput", false, 5.0, 0.0},
    {"slo_frac", true, 0.0, 0.02},
    // Overload campaign (overload_sweep): goodput falling or shedding
    // growing is the harmful direction; shed_frac, like slo_frac, is a
    // ratio in [0, 1] and gates on absolute movement only.
    {"goodput", false, 5.0, 0.0},
    {"shed_frac", true, 0.0, 0.02},
    {"sojourn_p50", true, 10.0, 32.0},
    {"sojourn_p99", true, 10.0, 64.0},
    {"sojourn_p999", true, 15.0, 128.0},
};

const MetricRule *
findRule(const std::string &name)
{
    for (const MetricRule &r : METRIC_RULES)
        if (name == r.name)
            return &r;
    return nullptr;
}

/** Row identity: every string-valued field, in order. */
std::string
rowLabel(const JsonValue &row, int index)
{
    std::string label;
    for (const auto &[k, v] : row.object) {
        if (!v.isString())
            continue;
        if (!label.empty())
            label += ' ';
        label += k + '=' + v.string;
    }
    if (label.empty())
        label = csprintf("row %d", index);
    return label;
}

} // anonymous namespace

void
DiffResult::merge(const DiffResult &other)
{
    regressions.insert(regressions.end(), other.regressions.begin(),
                       other.regressions.end());
    improvements.insert(improvements.end(), other.improvements.begin(),
                        other.improvements.end());
    errors.insert(errors.end(), other.errors.begin(),
                  other.errors.end());
    rows_compared += other.rows_compared;
    metrics_compared += other.metrics_compared;
}

DiffResult
diffBenchReports(const JsonValue &base, const JsonValue &cand,
                 const DiffOptions &opt)
{
    DiffResult res;
    if (base.str("schema") != "dsm-bench-v1" ||
        cand.str("schema") != "dsm-bench-v1") {
        res.errors.push_back("not a dsm-bench-v1 report");
        return res;
    }
    std::string bench = base.str("bench");
    if (cand.str("bench") != bench) {
        res.errors.push_back("bench name mismatch: baseline \"" + bench +
                             "\" vs candidate \"" + cand.str("bench") +
                             "\"");
        return res;
    }
    const JsonValue *brows = base.find("results");
    const JsonValue *crows = cand.find("results");
    if (brows == nullptr || !brows->isArray() || crows == nullptr ||
        !crows->isArray()) {
        res.errors.push_back(bench + ": missing results array");
        return res;
    }
    if (brows->array.size() != crows->array.size()) {
        res.errors.push_back(csprintf(
            "%s: row count changed %zu -> %zu", bench.c_str(),
            brows->array.size(), crows->array.size()));
        return res;
    }

    for (std::size_t i = 0; i < brows->array.size(); ++i) {
        const JsonValue &br = brows->array[i];
        const JsonValue &cr = crows->array[i];
        if (!br.isObject() || !cr.isObject()) {
            res.errors.push_back(
                csprintf("%s: row %zu is not an object", bench.c_str(), i));
            continue;
        }
        std::string label = rowLabel(br, static_cast<int>(i));
        // Identifying string fields must agree, or the sweep shape
        // changed and per-metric comparison would be meaningless.
        if (rowLabel(cr, static_cast<int>(i)) != label) {
            res.errors.push_back(
                bench + ": row identity changed: baseline [" + label +
                "] vs candidate [" +
                rowLabel(cr, static_cast<int>(i)) + "]");
            continue;
        }
        ++res.rows_compared;

        for (const auto &[key, bval] : br.object) {
            const MetricRule *rule = findRule(key);
            if (rule == nullptr || !bval.isNumber())
                continue;
            const JsonValue *cval = cr.find(key);
            if (cval == nullptr || !cval->isNumber()) {
                res.errors.push_back(bench + " [" + label +
                                     "]: metric " + key +
                                     " missing from candidate");
                continue;
            }
            ++res.metrics_compared;
            double b = bval.number, c = cval->number;
            double diff = c - b;
            if (std::abs(diff) <= rule->abs_slack)
                continue;
            double change_pct = b != 0.0
                                    ? 100.0 * diff / b
                                    : (diff > 0 ? 100.0 : -100.0);
            double limit = rule->rel_pct * opt.threshold_scale;
            bool harmful = rule->higher_is_bad ? diff > 0 : diff < 0;
            if (std::abs(change_pct) <= limit)
                continue;
            DiffFinding f;
            f.bench = bench;
            f.row = label;
            f.metric = key;
            f.base = b;
            f.cand = c;
            f.change_pct = change_pct;
            f.threshold_pct = limit;
            (harmful ? res.regressions : res.improvements)
                .push_back(std::move(f));
        }
    }
    return res;
}

namespace {

bool
loadJsonFile(const std::string &path, JsonValue *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string perr;
    if (!parseJson(text.str(), out, &perr)) {
        *err = path + ": " + perr;
        return false;
    }
    return true;
}

} // anonymous namespace

DiffResult
diffBenchFiles(const std::string &base_path, const std::string &cand_path,
               const DiffOptions &opt)
{
    DiffResult res;
    JsonValue base, cand;
    std::string err;
    if (!loadJsonFile(base_path, &base, &err) ||
        !loadJsonFile(cand_path, &cand, &err)) {
        res.errors.push_back(err);
        return res;
    }
    return diffBenchReports(base, cand, opt);
}

DiffResult
diffBenchDirs(const std::string &base_dir, const std::string &cand_dir,
              const DiffOptions &opt)
{
    namespace fs = std::filesystem;
    DiffResult res;
    std::vector<std::string> names;
    std::error_code ec;
    for (const fs::directory_entry &e :
         fs::directory_iterator(base_dir, ec)) {
        std::string n = e.path().filename().string();
        if (n.rfind("BENCH_", 0) == 0 && n.size() > 5 &&
            n.substr(n.size() - 5) == ".json")
            names.push_back(n);
    }
    if (ec) {
        res.errors.push_back("cannot read directory " + base_dir + ": " +
                             ec.message());
        return res;
    }
    if (names.empty()) {
        res.errors.push_back("no BENCH_*.json files in " + base_dir);
        return res;
    }
    std::sort(names.begin(), names.end());
    for (const std::string &n : names) {
        std::string cand_path = cand_dir + "/" + n;
        if (!fs::exists(cand_path)) {
            res.errors.push_back("baseline " + n +
                                 " has no candidate counterpart in " +
                                 cand_dir);
            continue;
        }
        res.merge(diffBenchFiles(base_dir + "/" + n, cand_path, opt));
    }
    return res;
}

std::string
renderDiff(const DiffResult &r)
{
    std::string out;
    for (const std::string &e : r.errors)
        out += "ERROR: " + e + "\n";
    auto line = [&](const char *tag, const DiffFinding &f) {
        out += csprintf("%s %s [%s] %s: %g -> %g (%+.1f%%, threshold "
                        "%.1f%%)\n",
                        tag, f.bench.c_str(), f.row.c_str(),
                        f.metric.c_str(), f.base, f.cand, f.change_pct,
                        f.threshold_pct);
    };
    for (const DiffFinding &f : r.regressions)
        line("REGRESSION", f);
    for (const DiffFinding &f : r.improvements)
        line("improvement", f);
    out += csprintf("%d rows, %d metrics compared: %zu regression(s), "
                    "%zu improvement(s), %zu error(s)\n",
                    r.rows_compared, r.metrics_compared,
                    r.regressions.size(), r.improvements.size(),
                    r.errors.size());
    return out;
}

} // namespace dsm
