#include "stats/attribution.hh"

#include <algorithm>
#include <cmath>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

const char *
toString(TxnPhase ph)
{
    switch (ph) {
    case TxnPhase::CACHE:
        return "cache";
    case TxnPhase::REQ_TRANSIT:
        return "req_transit";
    case TxnPhase::DIR_QUEUE:
        return "dir_queue";
    case TxnPhase::DIR_SERVICE:
        return "dir_service";
    case TxnPhase::OWNER:
        return "owner";
    case TxnPhase::FANOUT:
        return "fanout";
    case TxnPhase::REPLY_TRANSIT:
        return "reply_transit";
    case TxnPhase::RETRY_WAIT:
        return "retry_wait";
    case TxnPhase::RECOVERY:
        return "recovery";
    case TxnPhase::ADMIT:
        return "admit";
    case TxnPhase::NUM_PHASES:
        break;
    }
    return "?";
}

void
PhaseAttribution::sample(AtomicOp op, const Tick phase_sum[NUM_TXN_PHASES],
                         Tick total, int retries, int fanout, int chain)
{
    int i = static_cast<int>(op);
    for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
        // Zero-cycle phases are skipped so per-phase counts reflect
        // how many transactions actually exercised the phase.
        if (phase_sum[ph] == 0)
            continue;
        _phase[i][ph].sample(phase_sum[ph]);
        _all_phase[ph].sample(phase_sum[ph]);
    }
    _total[i].sample(total);
    _all_total.sample(total);
    _retries.add(static_cast<std::uint64_t>(retries));
    _fanout.add(static_cast<std::uint64_t>(fanout));
    _chain.add(static_cast<std::uint64_t>(chain));
    ++_completed;

    if (_tail_cap != 0) {
        if (_tail.size() < _tail_cap) {
            TailRecord r;
            r.total = total;
            r.op = op;
            for (int ph = 0; ph < NUM_TXN_PHASES; ++ph)
                r.phase[ph] = phase_sum[ph];
            _tail.push_back(r);
        } else {
            ++_tail_dropped;
        }
    }
}

void
PhaseAttribution::configureTail(std::size_t capacity)
{
    _tail_cap = capacity;
    _tail.clear();
    _tail_dropped = 0;
}

PhaseAttribution::TailCut
PhaseAttribution::tailCut(double q) const
{
    TailCut cut;
    if (_tail.empty())
        return cut;
    std::vector<Tick> totals;
    totals.reserve(_tail.size());
    for (const TailRecord &r : _tail)
        totals.push_back(r.total);
    std::sort(totals.begin(), totals.end());
    // Nearest-rank threshold, same convention as Histogram::percentile.
    std::size_t n = totals.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    cut.threshold = totals[rank - 1];
    for (const TailRecord &r : _tail) {
        if (r.total < cut.threshold)
            continue;
        ++cut.count;
        cut.total.sample(r.total);
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
            if (r.phase[ph] != 0)
                cut.phase[ph].sample(r.phase[ph]);
        }
    }
    return cut;
}

namespace {

void
writeStat(JsonWriter &w, const LatencyStat &s)
{
    w.beginObject();
    w.key("count");
    w.value(s.count);
    w.key("mean");
    w.value(s.mean());
    w.key("p50");
    w.value(static_cast<std::uint64_t>(s.p50()));
    w.key("p95");
    w.value(static_cast<std::uint64_t>(s.p95()));
    w.key("p99");
    w.value(static_cast<std::uint64_t>(s.p99()));
    w.key("p999");
    w.value(static_cast<std::uint64_t>(s.p999()));
    w.key("max");
    w.value(static_cast<std::uint64_t>(s.max));
    w.endObject();
}

} // namespace

std::string
PhaseAttribution::phasesJson() const
{
    JsonWriter w;
    w.beginObject();
    for (int op = 0; op < NUM_ATOMIC_OPS; ++op) {
        if (_total[op].count == 0)
            continue;
        w.key(toString(static_cast<AtomicOp>(op)));
        w.beginObject();
        w.key("total");
        writeStat(w, _total[op]);
        w.key("phases");
        w.beginObject();
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
            if (_phase[op][ph].count == 0)
                continue;
            w.key(toString(static_cast<TxnPhase>(ph)));
            writeStat(w, _phase[op][ph]);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
PhaseAttribution::tailJson() const
{
    JsonWriter w;
    w.beginObject();
    w.kv("records", static_cast<std::uint64_t>(_tail.size()));
    w.kv("dropped", _tail_dropped);
    struct { const char *name; double q; } cuts[] = {
        { "p90", 0.90 },
        { "p99", 0.99 },
    };
    for (const auto &c : cuts) {
        TailCut cut = tailCut(c.q);
        w.key(c.name);
        w.beginObject();
        w.kv("threshold", static_cast<std::uint64_t>(cut.threshold));
        w.kv("count", cut.count);
        w.key("total");
        writeStat(w, cut.total);
        w.key("phases");
        w.beginObject();
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
            if (cut.phase[ph].count == 0)
                continue;
            w.key(toString(static_cast<TxnPhase>(ph)));
            writeStat(w, cut.phase[ph]);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
PhaseAttribution::summaryLine() const
{
    if (_completed == 0)
        return "txn: no completed transactions";
    std::string line =
        csprintf("txn: %llu completed, mean %.1f cy |",
                 static_cast<unsigned long long>(_completed),
                 _all_total.mean());
    for (int ph = 0; ph < NUM_TXN_PHASES; ++ph) {
        // Report the mean contribution across *all* transactions, so
        // the listed phase means sum to the end-to-end mean.
        double contrib =
            static_cast<double>(_all_phase[ph].sum) /
            static_cast<double>(_completed);
        if (_all_phase[ph].count == 0)
            continue;
        line += csprintf(" %s=%.1f", toString(static_cast<TxnPhase>(ph)),
                         contrib);
    }
    line += csprintf(" | retries=%.2f fanout=%.2f chain=%.2f",
                     _retries.mean(), _fanout.mean(), _chain.mean());
    return line;
}

} // namespace dsm
