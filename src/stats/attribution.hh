/**
 * @file
 * Per-phase latency attribution for traced transactions.
 *
 * The transaction tracer (trace/txn.hh) partitions every completed
 * operation's lifetime [issue, complete] into non-overlapping phase
 * segments; this aggregator folds those segments into per-op x
 * per-phase latency accumulators so benches and statsJson() can report
 * where an atomic operation's cycles go (the breakdown the paper uses
 * to explain Table 1 and the Section 5 figures).
 */

#ifndef DSM_STATS_ATTRIBUTION_HH
#define DSM_STATS_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stat_set.hh"

namespace dsm {

/**
 * Phases of a traced transaction. Every cycle between issue and
 * completion is attributed to exactly one phase, so the per-phase sums
 * of a transaction always add up to its end-to-end latency.
 */
enum class TxnPhase : std::uint8_t
{
    CACHE,         ///< local cache lookup / hit service
    REQ_TRANSIT,   ///< request (or forward) on the wire toward service
    DIR_QUEUE,     ///< waiting in the home memory module's queue
    DIR_SERVICE,   ///< directory + memory service time at the home
    OWNER,         ///< owner cache servicing a forwarded request
    FANOUT,        ///< waiting on invalidation / update acknowledgments
    REPLY_TRANSIT, ///< reply (or ack tail) on the wire back
    RETRY_WAIT,    ///< backoff between a NACK and the retried request
    RECOVERY,      ///< waiting out a loss-recovery timeout (retransmit)
    ADMIT,         ///< open-loop admission wait before the op issued
    NUM_PHASES
};

constexpr int NUM_TXN_PHASES = static_cast<int>(TxnPhase::NUM_PHASES);

const char *toString(TxnPhase ph);

/**
 * Aggregates completed-transaction phase breakdowns: one LatencyStat
 * per (op, phase) and per op total, plus all-op aggregates and
 * distributions of retries, fan-out degree, and observed chain length.
 * Storage is fixed arrays so registered pointers stay stable.
 */
class PhaseAttribution
{
  public:
    /**
     * Fold one completed transaction: @p phase_sum holds the cycles
     * attributed to each phase (summing to @p total).
     */
    void sample(AtomicOp op, const Tick phase_sum[NUM_TXN_PHASES],
                Tick total, int retries, int fanout, int chain);

    std::uint64_t completed() const { return _completed; }

    const LatencyStat *
    phaseStat(int op, int ph) const
    {
        return &_phase[op][ph];
    }

    const LatencyStat *totalStat(int op) const { return &_total[op]; }
    const LatencyStat *allPhaseStat(int ph) const { return &_all_phase[ph]; }
    const LatencyStat *allTotalStat() const { return &_all_total; }
    const Histogram *retriesHist() const { return &_retries; }
    const Histogram *fanoutHist() const { return &_fanout; }
    const Histogram *chainHist() const { return &_chain; }

    /**
     * Per-op breakdown as one JSON object: for every op with samples,
     * {"count", "total": {mean,p50,p95,p99,max}, "phases": {...}}.
     * Deterministic (op-enum order, phase-enum order).
     */
    std::string phasesJson() const;

    /** One-line aggregate summary of phase means, for bench output. */
    std::string summaryLine() const;

    /** @name Tail-vs-median conditional attribution.
     *
     * When a tail capacity is configured, sample() also keeps one
     * compact record per transaction (total + per-phase cycles), so a
     * report can answer "which phase dominates above the p90/p99 cut"
     * exactly: a TailCut aggregates only the transactions at or above
     * the nearest-rank percentile of the recorded totals, and because
     * each record's phases sum to its total, the conditional per-phase
     * sums add up exactly to the tail transactions' end-to-end cycles.
     * @{ */

    /** Compact per-transaction copy kept for tail cuts. */
    struct TailRecord
    {
        Tick total = 0;
        Tick phase[NUM_TXN_PHASES] = {};
        AtomicOp op{};
    };

    /** Conditional aggregates over transactions at/above a cut. */
    struct TailCut
    {
        Tick threshold = 0;      ///< nearest-rank percentile of totals
        std::uint64_t count = 0; ///< transactions at/above threshold
        LatencyStat total;
        LatencyStat phase[NUM_TXN_PHASES];
    };

    /** Bound the per-transaction tail records; 0 disables them. */
    void configureTail(std::size_t capacity);

    /** Build the conditional aggregates for quantile @p q (e.g. 0.99). */
    TailCut tailCut(double q) const;

    std::uint64_t tailRecords() const { return _tail.size(); }
    std::uint64_t tailDropped() const { return _tail_dropped; }

    /**
     * Tail report as one JSON object:
     * {"records","dropped","p90":{threshold,count,total,phases},"p99":...}.
     */
    std::string tailJson() const;

    /** @} */

  private:
    LatencyStat _phase[NUM_ATOMIC_OPS][NUM_TXN_PHASES];
    LatencyStat _total[NUM_ATOMIC_OPS];
    LatencyStat _all_phase[NUM_TXN_PHASES];
    LatencyStat _all_total;
    Histogram _retries;
    Histogram _fanout;
    Histogram _chain;
    std::uint64_t _completed = 0;
    std::vector<TailRecord> _tail;
    std::size_t _tail_cap = 0;
    std::uint64_t _tail_dropped = 0;
};

} // namespace dsm

#endif // DSM_STATS_ATTRIBUTION_HH
