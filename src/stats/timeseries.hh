/**
 * @file
 * Time-resolved telemetry: windowed time-series sampling of registered
 * counters, driven by the simulated clock.
 *
 * A TimeSeries holds a set of named series. Each DELTA series snapshots
 * the change of a monotonically increasing counter per sampling window
 * (so the values of all windows sum exactly to the end-of-run
 * aggregate); each GAUGE series records an instantaneous reading at
 * every window boundary. Samples land in a bounded ring per series:
 * when a run outlives the ring, the oldest delta windows are folded
 * into a per-series evicted sum, preserving the sum-to-aggregate
 * invariant that the tests assert.
 *
 * The sampler is driven by EventQueue::setSampler(): the hook fires at
 * every multiple of the configured window, immediately before the first
 * event at or after that boundary executes, so a sample at boundary T
 * observes exactly the activity of [0, T). finalize() captures the
 * residual partial window after the run drains.
 */

#ifndef DSM_STATS_TIMESERIES_HH
#define DSM_STATS_TIMESERIES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dsm {

class JsonWriter;

class TimeSeries
{
  public:
    using Getter = std::function<std::uint64_t()>;

    /** Apply a TelemetryConfig; must precede registration/sampling. */
    void configure(const TelemetryConfig &cfg);

    bool enabled() const { return _enabled; }
    Tick window() const { return _window; }

    /**
     * Register a series over a monotonically increasing counter; each
     * window records the counter's change within that window.
     */
    void addDelta(std::string name, Getter get);

    /** Register an instantaneous-reading series. */
    void addGauge(std::string name, Getter get);

    /** Record one sample per series at window boundary @p boundary. */
    void sample(Tick boundary);

    /**
     * Capture the residual partial window at end of run (tick @p now).
     * Idempotent; after this, retained + evicted delta sums equal the
     * underlying aggregate counters exactly.
     */
    void finalize(Tick now);

    /**
     * Re-baseline every delta series against the counters' current
     * values and drop all recorded windows (System::clearStats support:
     * the measured region starts afresh, like the per-node counters).
     */
    void rebaseline();

    /** @name Introspection (stats registry and tests). @{ */

    /** Windows sampled so far, including evicted ones. */
    std::uint64_t windowsSampled() const { return _windows_sampled; }

    /** Windows evicted from the rings (identical across series). */
    std::uint64_t windowsEvicted() const { return _windows_evicted; }

    std::uint64_t numSeries() const
    {
        return static_cast<std::uint64_t>(_series.size());
    }

    /** Sum of a delta series: retained windows + evicted sum. */
    std::uint64_t seriesTotal(const std::string &name) const;

    /** Retained values of a series, oldest first (empty if unknown). */
    std::vector<std::uint64_t> seriesValues(const std::string &name) const;

    /** @} */

    /**
     * Render as one JSON object: window size, window count, eviction
     * accounting, and every series in registration order.
     */
    void writeJson(JsonWriter &w) const;

  private:
    struct Series
    {
        std::string name;
        Getter get;
        bool gauge = false;
        std::uint64_t last = 0;        ///< delta baseline
        std::uint64_t evicted_sum = 0; ///< deltas folded out of the ring
        std::vector<std::uint64_t> ring;
        std::size_t head = 0;          ///< next write slot
        std::size_t count = 0;         ///< retained samples
    };

    void push(Series &s, std::uint64_t v);
    void sampleAll();
    const Series *findSeries(const std::string &name) const;

    bool _enabled = false;
    bool _finalized = false;
    Tick _window = 0;
    std::size_t _cap = 0;
    std::uint64_t _windows_sampled = 0;
    std::uint64_t _windows_evicted = 0;
    Tick _last_boundary = 0;  ///< highest boundary sampled
    Tick _final_tick = 0;     ///< finalize() time (0 = not finalized)
    std::vector<Series> _series;
};

} // namespace dsm

#endif // DSM_STATS_TIMESERIES_HH
