/**
 * @file
 * Cross-run perf-regression comparison of dsm-bench-v1 reports.
 *
 * diffBenchReports() compares a baseline and a candidate report row by
 * row. Rows are matched by position and verified by their identifying
 * string fields (implementation label, sweep-point label); each known
 * metric is then checked against a per-metric noise threshold in the
 * harmful direction only (latency and traffic up, throughput down). An
 * absolute slack per metric keeps tiny counts from tripping the
 * relative threshold. Everything else — unknown metrics, improvements —
 * is reported informationally, never as a failure.
 *
 * The bench/bench_diff CLI wraps this over files or whole directories
 * of BENCH_*.json snapshots; CI runs it against bench/baselines/ as the
 * perf gate.
 */

#ifndef DSM_STATS_BENCH_DIFF_HH
#define DSM_STATS_BENCH_DIFF_HH

#include <string>
#include <vector>

namespace dsm {

struct JsonValue;

/** Tuning knobs for a comparison. */
struct DiffOptions
{
    /**
     * Multiplier on every metric's relative threshold (CLI
     * --threshold-scale): 2.0 doubles the allowed noise, 0 flags any
     * change beyond the absolute slack.
     */
    double threshold_scale = 1.0;
};

/** One out-of-threshold metric (or notable improvement). */
struct DiffFinding
{
    std::string bench;   ///< bench name from the report
    std::string row;     ///< row identity (string fields joined)
    std::string metric;
    double base = 0.0;
    double cand = 0.0;
    double change_pct = 0.0;    ///< signed, relative to base
    double threshold_pct = 0.0; ///< effective (scaled) threshold
};

/** Outcome of comparing one report pair or two snapshot directories. */
struct DiffResult
{
    std::vector<DiffFinding> regressions;
    std::vector<DiffFinding> improvements; ///< informational only
    /** Structural problems: schema/bench/row mismatches, parse errors. */
    std::vector<std::string> errors;
    int rows_compared = 0;
    int metrics_compared = 0;

    bool ok() const { return regressions.empty() && errors.empty(); }

    /** Fold another result (e.g. one more file of a directory) in. */
    void merge(const DiffResult &other);
};

/** Compare two parsed dsm-bench-v1 documents. */
DiffResult diffBenchReports(const JsonValue &base, const JsonValue &cand,
                            const DiffOptions &opt = {});

/** Compare two BENCH_*.json files. */
DiffResult diffBenchFiles(const std::string &base_path,
                          const std::string &cand_path,
                          const DiffOptions &opt = {});

/**
 * Compare every BENCH_*.json in @p base_dir against the same-named
 * file in @p cand_dir. A baseline file with no candidate counterpart
 * is an error; extra candidate files are ignored (new benches are not
 * regressions).
 */
DiffResult diffBenchDirs(const std::string &base_dir,
                         const std::string &cand_dir,
                         const DiffOptions &opt = {});

/** Human-readable rendering, one line per finding/error plus summary. */
std::string renderDiff(const DiffResult &r);

} // namespace dsm

#endif // DSM_STATS_BENCH_DIFF_HH
