/**
 * @file
 * Per-cache-line contention hotspot profiles.
 *
 * The protocol's home-side hooks attribute traffic to the block it
 * targets: requests serviced at the home (with the memory service
 * cycles they consumed), NACKs, exclusive-ownership migrations, sharer
 * churn, and invalidations sent. ranked() orders lines by a combined
 * contention score, which is how the hot-line table of the telemetry
 * export identifies e.g. the lock-free counter's line as the #1 hotspot
 * under contention.
 *
 * Gating follows the fault/recovery discipline: System::lineProfiler()
 * returns nullptr when telemetry is off, so every hook costs a single
 * null-pointer branch.
 */

#ifndef DSM_STATS_LINE_PROFILER_HH
#define DSM_STATS_LINE_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace dsm {

/** Traffic attributed to one cache line (block). */
struct LineProfile
{
    std::uint64_t requests = 0;       ///< home-serviced messages
    std::uint64_t service_cycles = 0; ///< home memory cycles (queue+service)
    std::uint64_t nacks = 0;          ///< NACKs sent for this line
    std::uint64_t migrations = 0;     ///< exclusive owner changed hands
    std::uint64_t sharer_joins = 0;   ///< sharer-set additions (churn)
    std::uint64_t invalidations = 0;  ///< INVs sent for this line

    /** Combined contention score used for ranking. */
    std::uint64_t
    score() const
    {
        return requests + nacks + migrations + sharer_joins +
               invalidations;
    }

    /**
     * Last granted exclusive owner (migration tracking state, not a
     * statistic; a release and regrant to the same node is not a
     * migration).
     */
    NodeId last_owner = INVALID_NODE;
};

class LineProfiler
{
  public:
    /** @name Protocol hooks (callers null-gate on System). @{ */

    void
    noteService(Addr block, Tick service_cycles)
    {
        LineProfile &p = _lines[block];
        ++p.requests;
        p.service_cycles += static_cast<std::uint64_t>(service_cycles);
    }

    void noteNack(Addr block) { ++_lines[block].nacks; }

    /** Exclusive ownership granted to @p owner; counts hand-offs. */
    void
    noteOwner(Addr block, NodeId owner)
    {
        LineProfile &p = _lines[block];
        if (p.last_owner != owner) {
            if (p.last_owner != INVALID_NODE)
                ++p.migrations;
            p.last_owner = owner;
        }
    }

    void noteSharerJoin(Addr block) { ++_lines[block].sharer_joins; }

    void noteInvalidation(Addr block) { ++_lines[block].invalidations; }

    /** @} */

    std::uint64_t
    linesTracked() const
    {
        return static_cast<std::uint64_t>(_lines.size());
    }

    /** Profile of one line (zeros if never touched). */
    LineProfile profile(Addr block) const;

    /** One row of the ranked hot-line table. */
    struct Ranked
    {
        Addr addr = 0;
        LineProfile prof;
    };

    /**
     * The @p top hottest lines, by score descending (address ascending
     * on ties, so the ranking is deterministic).
     */
    std::vector<Ranked> ranked(std::size_t top) const;

    /** Drop all profiles (clearStats support). */
    void clear() { _lines.clear(); }

  private:
    std::unordered_map<Addr, LineProfile> _lines;
};

} // namespace dsm

#endif // DSM_STATS_LINE_PROFILER_HH
