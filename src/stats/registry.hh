/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register named counters and histograms under dotted paths
 * ("node3.cache.hits", "net.flits"). The registry does not own any
 * storage: counters are either getter callbacks or pointers into the
 * component's own counters, so registration costs nothing on the hot
 * path. Consumers take scalar snapshots (for warmup-vs-measurement
 * diffs) or render the whole tree as nested JSON.
 */

#ifndef DSM_STATS_REGISTRY_HH
#define DSM_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "stats/histogram.hh"
#include "stats/stat_set.hh"

namespace dsm {

class JsonWriter;

class StatsRegistry
{
  public:
    using Getter = std::function<std::uint64_t()>;

    /** Scalar view of the registry at one instant: path -> value. */
    using Snapshot = std::map<std::string, std::uint64_t>;

    /** Register a scalar counter computed on demand. */
    void addCounter(const std::string &path, Getter getter);

    /** Register a scalar counter read through a stable pointer. */
    void addCounter(const std::string &path, const std::uint64_t *counter);

    /** Register a histogram (rendered as a distribution summary). */
    void addHistogram(const std::string &path, const Histogram *hist);

    /** Register a latency accumulator (mean + percentiles in JSON). */
    void addLatency(const std::string &path, const LatencyStat *lat);

    /**
     * Scalar snapshot of every entry. Histograms contribute
     * "<path>.samples" and "<path>.sum"; latencies contribute
     * "<path>.count" and "<path>.sum".
     */
    Snapshot snapshot() const;

    /**
     * Per-key difference @p after - @p before (keys missing from
     * @p before count as zero). Used to isolate the measurement phase
     * from warmup.
     */
    static Snapshot diff(const Snapshot &after, const Snapshot &before);

    /** Render the whole registry as a nested JSON object. */
    void writeJson(JsonWriter &w) const;

    /** writeJson() into a fresh document. */
    std::string toJson() const;

    /** Number of registered entries. */
    std::size_t size() const { return _entries.size(); }

  private:
    struct Entry
    {
        // Exactly one of these is set.
        Getter getter;
        const Histogram *hist = nullptr;
        const LatencyStat *lat = nullptr;
    };

    // std::map keeps paths sorted; '.' < [0-9a-z] so every dotted
    // prefix group is contiguous, which writeJson() relies on.
    std::map<std::string, Entry> _entries;
};

} // namespace dsm

#endif // DSM_STATS_REGISTRY_HH
