#include "stats/timeseries.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dsm {

void
TimeSeries::configure(const TelemetryConfig &cfg)
{
    dsm_assert(_series.empty(), "configure() after series registration");
    _enabled = cfg.enabled;
    _window = cfg.window;
    _cap = cfg.max_windows;
}

void
TimeSeries::addDelta(std::string name, Getter get)
{
    dsm_assert(_enabled, "series registration with telemetry off");
    Series s;
    s.name = std::move(name);
    s.get = std::move(get);
    s.last = s.get();
    _series.push_back(std::move(s));
}

void
TimeSeries::addGauge(std::string name, Getter get)
{
    dsm_assert(_enabled, "series registration with telemetry off");
    Series s;
    s.name = std::move(name);
    s.get = std::move(get);
    s.gauge = true;
    _series.push_back(std::move(s));
}

void
TimeSeries::push(Series &s, std::uint64_t v)
{
    if (s.ring.size() < _cap) {
        s.ring.push_back(v);
        ++s.count;
        return;
    }
    // Ring full: fold the evicted window into the series' evicted sum
    // (gauges simply lose the reading) so delta sums stay exact.
    if (!s.gauge)
        s.evicted_sum += s.ring[s.head];
    s.ring[s.head] = v;
    s.head = (s.head + 1) % s.ring.size();
}

void
TimeSeries::sampleAll()
{
    bool evicting = !_series.empty() &&
                    _series.front().ring.size() == _cap;
    for (Series &s : _series) {
        std::uint64_t cur = s.get();
        if (s.gauge) {
            push(s, cur);
        } else {
            // Counters may be reset externally (clearStats without a
            // rebaseline is a caller bug, but never underflow here).
            std::uint64_t delta = cur >= s.last ? cur - s.last : 0;
            push(s, delta);
            s.last = cur;
        }
    }
    ++_windows_sampled;
    if (evicting)
        ++_windows_evicted;
}

void
TimeSeries::sample(Tick boundary)
{
    if (!_enabled || _finalized)
        return;
    _last_boundary = boundary;
    sampleAll();
}

void
TimeSeries::finalize(Tick now)
{
    if (!_enabled || _finalized)
        return;
    _finalized = true;
    _final_tick = now;
    // The residual partial window: whatever moved since the last
    // boundary. Recorded even when empty, so every counter increment
    // is in exactly one window.
    sampleAll();
}

void
TimeSeries::rebaseline()
{
    if (!_enabled)
        return;
    _finalized = false;
    _final_tick = 0;
    _windows_sampled = 0;
    _windows_evicted = 0;
    for (Series &s : _series) {
        s.last = s.get();
        s.evicted_sum = 0;
        s.ring.clear();
        s.head = 0;
        s.count = 0;
    }
}

const TimeSeries::Series *
TimeSeries::findSeries(const std::string &name) const
{
    for (const Series &s : _series)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::uint64_t
TimeSeries::seriesTotal(const std::string &name) const
{
    const Series *s = findSeries(name);
    if (s == nullptr)
        return 0;
    std::uint64_t sum = s->evicted_sum;
    for (std::uint64_t v : s->ring)
        sum += v;
    return sum;
}

std::vector<std::uint64_t>
TimeSeries::seriesValues(const std::string &name) const
{
    std::vector<std::uint64_t> out;
    const Series *s = findSeries(name);
    if (s == nullptr)
        return out;
    out.reserve(s->count);
    for (std::size_t i = 0; i < s->count; ++i)
        out.push_back(s->ring[(s->head + i) % s->ring.size()]);
    return out;
}

void
TimeSeries::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("window_cycles", static_cast<std::uint64_t>(_window));
    w.kv("windows", _windows_sampled);
    w.kv("windows_evicted", _windows_evicted);
    w.kv("final_tick", static_cast<std::uint64_t>(_final_tick));
    w.key("series");
    w.beginObject();
    for (const Series &s : _series) {
        w.key(s.name);
        w.beginObject();
        w.kv("kind", s.gauge ? "gauge" : "delta");
        if (!s.gauge)
            w.kv("evicted_sum", s.evicted_sum);
        w.key("values");
        w.beginArray();
        for (std::size_t i = 0; i < s.count; ++i)
            w.value(s.ring[(s.head + i) % s.ring.size()]);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace dsm
