/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace dsm;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        if (r.chance(1, 4))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}
