/** @file Central sense-reversing barrier tests. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/central_barrier.hh"

using namespace dsmtest;

namespace {

Task
phased(Proc &p, CentralBarrier &bar, int rounds,
       std::vector<int> &phase_of, bool *violation)
{
    for (int r = 0; r < rounds; ++r) {
        co_await p.compute(1 + (static_cast<Tick>(p.id()) * 13) % 29);
        phase_of[static_cast<size_t>(p.id())] = r;
        co_await bar.arrive(p);
        for (int other : phase_of)
            if (other < r)
                *violation = true;
        co_await bar.arrive(p);
    }
}

} // namespace

class CentralBarrierMatrix
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(CentralBarrierMatrix, SynchronizesAllProcs)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    CentralBarrier bar(sys, prim, 8);
    std::vector<int> phase_of(8, -1);
    bool violation = false;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(phased(sys.proc(n), bar, 5, phase_of, &violation));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(bar.roundsCompleted(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CentralBarrierMatrix,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

TEST(CentralBarrier, ReusableManyRounds)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    CentralBarrier bar(sys, Primitive::FAP, 4);
    int done = 0;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, CentralBarrier &b, int *d) -> Task {
            for (int i = 0; i < 25; ++i)
                co_await b.arrive(p);
            ++*d;
        }(sys.proc(n), bar, &done));
    }
    runAll(sys);
    EXPECT_EQ(done, 4);
    EXPECT_EQ(bar.roundsCompleted(), 25u);
}

TEST(CentralBarrier, SubsetOfProcessors)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    CentralBarrier bar(sys, Primitive::CAS, 3);
    int done = 0;
    for (NodeId n = 0; n < 3; ++n) {
        sys.spawn([](Proc &p, CentralBarrier &b, int *d) -> Task {
            for (int i = 0; i < 4; ++i)
                co_await b.arrive(p);
            ++*d;
        }(sys.proc(n), bar, &done));
    }
    runAll(sys);
    EXPECT_EQ(done, 3);
}
