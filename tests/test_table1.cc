/**
 * @file
 * Verifies Table 1 of the paper: serialized network messages for stores
 * to shared memory under each coherence policy and initial line state.
 *
 *   UNC                        2
 *   INV to cached exclusive    0
 *   INV to remote exclusive    4
 *   INV to remote shared       3
 *   INV to uncached            2
 *   UPD to cached              3
 *   UPD to uncached            2
 *
 * The serialized count is the longest chain of causally ordered network
 * messages ending at the requester (Msg::chain), recorded per completed
 * operation in SysStats::chain_length.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

namespace {

/** Run a store on proc 0 and return its serialized message chain. */
int
measureStoreChain(System &sys, Addr a)
{
    clearStats(sys);
    runOp(sys, 0, AtomicOp::STORE, a, 99);
    EXPECT_EQ(sys.stats().op_count[static_cast<int>(AtomicOp::STORE)], 1u);
    EXPECT_EQ(sys.stats().retries, 0u) << "unexpected retries";
    return static_cast<int>(sys.stats().chain_length.max());
}

} // namespace

TEST(Table1, UncStoreIsTwoMessages)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSyncAt(3); // remote home
    EXPECT_EQ(measureStoreChain(sys, a), 2);
}

TEST(Table1, InvStoreToCachedExclusiveIsZeroMessages)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::STORE, a, 1); // take exclusive ownership
    EXPECT_EQ(measureStoreChain(sys, a), 0);
}

TEST(Table1, InvStoreToRemoteExclusiveIsFourMessages)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::STORE, a, 1); // node 1 owns exclusively
    EXPECT_EQ(measureStoreChain(sys, a), 4);
}

TEST(Table1, InvStoreToRemoteSharedIsThreeMessages)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    sys.writeInit(a, 5);
    runOp(sys, 1, AtomicOp::LOAD, a);
    runOp(sys, 2, AtomicOp::LOAD, a); // line shared by remote nodes
    EXPECT_EQ(measureStoreChain(sys, a), 3);
}

TEST(Table1, InvStoreToUncachedIsTwoMessages)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3); // nobody has ever cached it
    EXPECT_EQ(measureStoreChain(sys, a), 2);
}

TEST(Table1, UpdStoreToCachedIsThreeMessages)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::LOAD, a); // a remote sharer exists
    EXPECT_EQ(measureStoreChain(sys, a), 3);
}

TEST(Table1, UpdStoreToUncachedIsTwoMessages)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSyncAt(3);
    EXPECT_EQ(measureStoreChain(sys, a), 2);
}

// The same chain accounting explains the drop_copy motivation
// (Section 3): after dropping, a write needs only 2 serialized messages.

TEST(Table1, DropCopyReducesNextWriteToTwoMessages)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::STORE, a, 1);     // remote exclusive
    runOp(sys, 1, AtomicOp::DROP_COPY, a);    // owner drops its copy
    EXPECT_EQ(measureStoreChain(sys, a), 2);  // 4 without the drop
}

TEST(Table1, LocalHomeOperationsUseNoNetworkMessages)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSyncAt(0); // home at the requester
    EXPECT_EQ(measureStoreChain(sys, a), 0);
}

TEST(Table1, AtomicPrimitiveChains)
{
    // The same serialized-message accounting applied to the atomic
    // primitives (these counts underpin the Section 4.3 analysis).
    {
        // UNC fetch_and_add: always 2.
        System sys(smallConfig(SyncPolicy::UNC));
        Addr a = sys.allocSyncAt(3);
        clearStats(sys);
        runOp(sys, 0, AtomicOp::FAA, a, 1);
        EXPECT_EQ(sys.stats().chain_length.max(), 2u);
    }
    {
        // INV fetch_and_add on an uncached line: 2 (like a store).
        System sys(smallConfig(SyncPolicy::INV));
        Addr a = sys.allocSyncAt(3);
        clearStats(sys);
        runOp(sys, 0, AtomicOp::FAA, a, 1);
        EXPECT_EQ(sys.stats().chain_length.max(), 2u);
        // And the second one is free (cache hit).
        clearStats(sys);
        runOp(sys, 0, AtomicOp::FAA, a, 1);
        EXPECT_EQ(sys.stats().chain_length.max(), 0u);
    }
    {
        // UPD fetch_and_add with one remote sharer: 3.
        System sys(smallConfig(SyncPolicy::UPD));
        Addr a = sys.allocSyncAt(3);
        runOp(sys, 1, AtomicOp::LOAD, a);
        clearStats(sys);
        runOp(sys, 0, AtomicOp::FAA, a, 1);
        EXPECT_EQ(sys.stats().chain_length.max(), 3u);
    }
}

TEST(Table1, CasVariantChains)
{
    // INVd/INVs failure at the home: 2 serialized messages (the whole
    // point -- a failing CAS does not run the invalidation protocol).
    for (CasVariant v : {CasVariant::DENY, CasVariant::SHARE}) {
        Config cfg = smallConfig(SyncPolicy::INV);
        cfg.sync.cas_variant = v;
        System sys(cfg);
        Addr a = sys.allocSyncAt(3);
        sys.writeInit(a, 1);
        runOp(sys, 1, AtomicOp::LOAD, a);
        runOp(sys, 2, AtomicOp::LOAD, a);
        clearStats(sys);
        EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 9, 0).success);
        EXPECT_EQ(sys.stats().chain_length.max(), 2u)
            << toString(v);
        // Failure at a remote owner costs 4 (home -> owner -> home).
        System sys2(cfg);
        Addr b = sys2.allocSyncAt(3);
        sys2.writeInit(b, 1);
        {
            OpResult r;
            sys2.spawn(doOp(sys2.proc(1), AtomicOp::STORE, b, 1, 0,
                            &r));
            sys2.run();
            sys2.reapTasks();
        }
        sys2.clearStats();
        OpResult fail;
        sys2.spawn(doOp(sys2.proc(0), AtomicOp::CAS, b, 9, 0, &fail));
        sys2.run();
        sys2.reapTasks();
        EXPECT_FALSE(fail.success);
        EXPECT_EQ(sys2.stats().chain_length.max(), 4u) << toString(v);
    }
}

TEST(Table1, ScSuccessChain)
{
    // A remote SC that must consult the directory: request + verdict
    // (+ invalidation acks when other sharers exist).
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::LL, a); // shared copy + reservation
    clearStats(sys);
    runOp(sys, 0, AtomicOp::SC, a, 9);
    EXPECT_EQ(sys.stats().chain_length.max(), 2u); // no other sharers
    // With another sharer, the acks add a third serialized message.
    System sys2(smallConfig(SyncPolicy::INV));
    Addr b = sys2.allocSyncAt(3);
    runOp(sys2, 1, AtomicOp::LOAD, b);
    runOp(sys2, 0, AtomicOp::LL, b);
    clearStats(sys2);
    runOp(sys2, 0, AtomicOp::SC, b, 9);
    EXPECT_EQ(sys2.stats().chain_length.max(), 3u);
}

TEST(Table1, ReadMissChains)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    sys.writeInit(a, 5);
    // Uncached read miss: request + data reply.
    clearStats(sys);
    runOp(sys, 0, AtomicOp::LOAD, a);
    EXPECT_EQ(sys.stats().chain_length.max(), 2u);
    // Remote-exclusive read miss: 4 serialized messages via the owner.
    runOp(sys, 1, AtomicOp::STORE, a, 6);
    clearStats(sys);
    runOp(sys, 2, AtomicOp::LOAD, a);
    EXPECT_EQ(sys.stats().chain_length.max(), 4u);
}
