/**
 * @file
 * Tests for the message-loss recovery layer: requester timeouts with
 * idempotent retransmission, the home-side dedup/reply cache, link
 * quarantine with reroute, the drop-accounting ledger, and the
 * zero-cost-when-off promise. The directed duplicate tests force
 * retransmissions without any loss (a tiny req_timeout makes every
 * reply "late"), so the home provably sees duplicates of requests it
 * already served and must answer them from the reply cache without
 * re-executing the operation.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

#include "fault/fault.hh"
#include "fault/recovery.hh"
#include "workloads/counter_apps.hh"

using namespace dsmtest;

namespace {

/** Recovery armed with no loss: timers, dedup, no dropped messages. */
Config
recoveryConfig(SyncPolicy pol, int procs, Tick req_timeout)
{
    Config cfg = smallConfig(pol, procs);
    cfg.faults.enabled = true;
    cfg.faults.req_timeout = req_timeout;
    return cfg;
}

/** Random message loss (and optionally flaky links) on @p procs nodes. */
Config
lossConfig(SyncPolicy pol, int procs, const std::string &spec,
           std::uint64_t seed)
{
    Config cfg = smallConfig(pol, procs);
    cfg.machine.seed = seed;
    std::string err = cfg.faults.parse(spec);
    EXPECT_EQ(err, "");
    return cfg;
}

void
expectAccounted(System &sys)
{
    for (const std::string &v : checkFaultAccounting(sys))
        ADD_FAILURE() << "fault accounting violation: " << v;
}

/** n concurrent fetch&add updaters, k increments each. */
void
spawnAdders(System &sys, Addr a, int nodes, int count)
{
    for (NodeId n = 0; n < nodes; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await p.fetchAdd(addr, 1);
        }(sys.proc(n), a, count));
    }
}

} // namespace

TEST(RecoveryConfig, LossRequiresTimeout)
{
    Config cfg = smallConfig();
    EXPECT_EQ(cfg.faults.parse("drop_prob=0.01"), "");
    EXPECT_NE(cfg.validate().find("req_timeout must be nonzero"),
              std::string::npos);
    EXPECT_EQ(cfg.faults.parse("drop_prob=0.01,req_timeout=500"), "");
    EXPECT_EQ(cfg.validate(), "");
    EXPECT_TRUE(cfg.faults.lossEnabled());
    EXPECT_TRUE(cfg.faults.recoveryEnabled());
}

TEST(RecoveryConfig, QuarantineRequiresWindow)
{
    Config cfg = smallConfig();
    EXPECT_EQ(cfg.faults.parse("drop_prob=0.01,req_timeout=500,"
                               "quarantine_k=2"),
              "");
    EXPECT_NE(cfg.validate().find("quarantine_window"),
              std::string::npos);
}

TEST(Recovery, ZeroCostWhenOff)
{
    System sys(smallConfig());
    Addr a = sys.allocSync();
    spawnAdders(sys, a, 4, 8);
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 32u);
    EXPECT_EQ(sys.recovery(), nullptr);
    const Recovery::Counters &rc = sys.recoveryState().counters();
    EXPECT_EQ(rc.drops + rc.retransmits + rc.dup_requests +
                  rc.stale_replies + rc.links_quarantined,
              0u);
    // The stats registry must not even mention the recovery domain.
    EXPECT_EQ(sys.statsJson().find("recovery."), std::string::npos);
    expectAccounted(sys);
}

TEST(Recovery, LegacyFaultMixLeavesRecoveryOff)
{
    // The pre-existing fault mix has no loss and no timeout: the
    // recovery layer must stay null-gated and its stats absent, so
    // legacy fault campaigns keep their exact JSON shape.
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    EXPECT_EQ(cfg.faults.parse("default"), "");
    System sys(cfg);
    EXPECT_NE(sys.faults(), nullptr);
    EXPECT_EQ(sys.recovery(), nullptr);
    EXPECT_EQ(sys.statsJson().find("recovery."), std::string::npos);
}

TEST(Recovery, DuplicateFapAnsweredFromCacheUncached)
{
    // UNC FAP executes fetch&add in the home's memory. A 16-cycle
    // req_timeout fires long before any reply can cross the mesh, so
    // every operation is retransmitted and the home sees duplicates of
    // requests it already executed. The reply cache must answer them
    // without touching memory again: the counter is incremented
    // exactly once per logical operation.
    Config cfg = recoveryConfig(SyncPolicy::UNC, 4, 16);
    System sys(cfg);
    Addr a = sys.allocSync();
    spawnAdders(sys, a, 4, 8);
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 32u);

    const Recovery::Counters &rc = sys.recoveryState().counters();
    EXPECT_GT(rc.retransmits, 0u);
    EXPECT_GT(rc.dup_requests, 0u);
    // Duplicates of an executed UNC FAP are answered from the cache,
    // never re-executed.
    EXPECT_GT(rc.dup_replayed, 0u);
    EXPECT_EQ(rc.dup_reprocessed, 0u);
    // Replayed replies race the original; the requester's stale guard
    // absorbs the losers.
    EXPECT_GT(rc.stale_replies, 0u);
    // No loss was configured: the ledger stays empty.
    EXPECT_EQ(rc.drops, 0u);
    expectAccounted(sys);
}

TEST(Recovery, DuplicateFapExactUnderEveryPolicy)
{
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        Config cfg = recoveryConfig(pol, 8, 16);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 6);
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 48u) << toString(pol);
        EXPECT_GT(sys.recoveryState().counters().dup_requests, 0u)
            << toString(pol);
        expectAccounted(sys);
    }
}

TEST(Recovery, StaleDuplicateOfRetiredSeqIsDiscarded)
{
    // A duplicate that arrives after the requester moved on to a newer
    // seq must be discarded without a reply: its slot (and cached
    // reply) were recycled by the newer request, so replaying would
    // hand out another operation's answer. Normal delivery can't
    // reorder same-path messages, so the late duplicate is injected
    // directly, emulating the extreme delay the guard exists for.
    Config cfg = recoveryConfig(SyncPolicy::UNC, 4, 1'000'000);
    System sys(cfg);
    Addr a = sys.allocSync();
    NodeId home = sys.homeOf(a);
    NodeId req = home == 2 ? 3 : 2;
    // Two completed operations from one requester: seqs 1 and 2
    // retired, the home's dedup slot for it now holds seq 2.
    EXPECT_EQ(runOp(sys, req, AtomicOp::FAA, a, 1).value, 0u);
    EXPECT_EQ(runOp(sys, req, AtomicOp::FAA, a, 1).value, 1u);
    EXPECT_EQ(sys.debugRead(a), 2u);

    Msg dup;
    dup.type = MsgType::UNC_REQ;
    dup.src = req;
    dup.dst = home;
    dup.requester = req;
    dup.addr = blockBase(a);
    dup.word_addr = a;
    dup.op = AtomicOp::FAA;
    dup.value = 1;
    dup.chain = 1;
    dup.seq = 1; // retired: the slot now belongs to seq 2
    dup.attempt = 2;
    sys.mesh().send(dup);
    sys.eq().run();

    // Discarded: no re-execution, no reply, counted as stale.
    EXPECT_EQ(sys.debugRead(a), 2u);
    const Recovery::Counters &rc = sys.recoveryState().counters();
    EXPECT_EQ(rc.dup_requests, 1u);
    EXPECT_EQ(rc.dup_stale, 1u);
    EXPECT_EQ(rc.dup_replayed, 0u);
    EXPECT_EQ(rc.dup_reprocessed, 0u);
    expectAccounted(sys);
}

TEST(Recovery, RandomLossRecoversExactly)
{
    // End-to-end: real drops at the mesh, covered by retransmission.
    // Across policies and seeds every run must complete with an exact
    // counter, a coherent end state, and a reconciled drop ledger.
    std::uint64_t drops = 0, retransmits = 0;
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            Config cfg = lossConfig(
                pol, 8, "drop_prob=0.005,req_timeout=2000", seed);
            System sys(cfg);
            Addr a = sys.allocSync();
            spawnAdders(sys, a, 8, 12);
            runAll(sys);
            EXPECT_EQ(sys.debugRead(a), 96u)
                << toString(pol) << " seed " << seed;
            expectAccounted(sys);
            const Recovery::Counters &rc =
                sys.recoveryState().counters();
            EXPECT_EQ(rc.drops,
                      rc.retransmit_covered + rc.quarantine_covered);
            EXPECT_EQ(sys.recoveryState().pendingDrops(), 0u);
            drops += rc.drops;
            retransmits += rc.retransmits;
        }
    }
    // The sweep must actually exercise loss somewhere.
    EXPECT_GT(drops, 0u);
    EXPECT_GT(retransmits, 0u);
}

TEST(Recovery, FlakyLinkQuarantineAndReroute)
{
    // Whole-link episodes at 100% loss with quarantine_k=1: the first
    // drop quarantines the link, later traffic reroutes around it (or,
    // where XY and YX coincide, keeps being covered), and the run
    // still completes exactly. Counters homed across the mesh keep
    // most links busy so the randomly placed episodes hit traffic;
    // several seeds vary which links they land on.
    std::uint64_t quarantined = 0, flaky = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Config cfg = lossConfig(
            SyncPolicy::INV, 8,
            "flaky_links=2,flaky_window=2000,flaky_duration=40000,"
            "flaky_drop_prob=1,req_timeout=2000,quarantine_k=1,"
            "quarantine_window=1000000",
            seed);
        System sys(cfg);
        ASSERT_EQ(sys.faultPlan().episodes().size(), 2u);
        Addr ctrs[4];
        const NodeId homes[4] = {0, 2, 5, 7};
        for (int i = 0; i < 4; ++i)
            ctrs[i] = sys.allocSyncAt(homes[i]);
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, const Addr *cs) -> Task {
                for (int i = 0; i < 24; ++i)
                    co_await p.fetchAdd(cs[i % 4], 1);
            }(sys.proc(n), ctrs));
        }
        runAll(sys);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(sys.debugRead(ctrs[i]), 48u) << "seed " << seed;
        expectAccounted(sys);
        const Recovery::Counters &rc = sys.recoveryState().counters();
        EXPECT_EQ(rc.drops,
                  rc.retransmit_covered + rc.quarantine_covered);
        quarantined += rc.links_quarantined;
        flaky += sys.faultPlan().counters().flaky_drops;
        if (rc.links_quarantined > 0) {
            // The quarantine must be observable in the stats output
            // (the registry nests dotted names).
            EXPECT_NE(sys.statsJson().find("\"links_quarantined\""),
                      std::string::npos);
        }
    }
    // At least one seed's episode must have hit live traffic.
    EXPECT_GT(flaky, 0u);
    EXPECT_GT(quarantined, 0u);
}

TEST(Recovery, DeterministicAtFixedSeed)
{
    // Loss, recovery, and quarantine all draw from counted streams and
    // deterministic timers: the same seed must reproduce the run
    // bit-for-bit.
    std::string json[2];
    Tick end[2];
    for (int i = 0; i < 2; ++i) {
        Config cfg = lossConfig(
            SyncPolicy::INV, 8,
            "drop_prob=0.01,flaky_links=1,flaky_window=2000,"
            "flaky_duration=20000,flaky_drop_prob=1,req_timeout=1500,"
            "quarantine_k=2,quarantine_window=1000000",
            42);
        System sys(cfg);
        Addr a = sys.allocSync();
        spawnAdders(sys, a, 8, 10);
        RunResult r = sys.run();
        ASSERT_TRUE(r.completed);
        json[i] = sys.statsJson();
        end[i] = r.end_tick;
    }
    EXPECT_EQ(end[0], end[1]);
    EXPECT_EQ(json[0], json[1]);
}

TEST(Recovery, CasUnderLossStaysLinearizable)
{
    // CAS success/failure verdicts must stay exact under duplication
    // and loss: per node, wins = observed successful CASes, and the
    // final value equals total wins. Every policy's CAS path (home
    // CAS, cached CAS, forwarded CAS) sees duplicates here.
    for (SyncPolicy pol :
         {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
        Config cfg = lossConfig(
            pol, 8, "drop_prob=0.005,req_timeout=2000", 7);
        System sys(cfg);
        Addr a = sys.allocSync();
        std::uint64_t wins[8] = {};
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, Addr addr, std::uint64_t *w) -> Task {
                for (int i = 0; i < 10; ++i) {
                    for (;;) {
                        Word old = (co_await p.load(addr)).value;
                        OpResult r =
                            co_await p.cas(addr, old, old + 1);
                        if (r.success) {
                            ++*w;
                            break;
                        }
                    }
                }
            }(sys.proc(n), a, &wins[n]));
        }
        runAll(sys);
        std::uint64_t total = 0;
        for (std::uint64_t w : wins)
            total += w;
        EXPECT_EQ(total, 80u) << toString(pol);
        EXPECT_EQ(sys.debugRead(a), 80u) << toString(pol);
        expectAccounted(sys);
    }
}

TEST(Recovery, ClearStatsCarriesPendingLedger)
{
    // clearStats() between phases must keep the ledger reconcilable:
    // counters reset, but drops still pending coverage are re-seeded
    // so quiesced accounting still closes at the end of the next
    // phase. With the system quiesced here, pending is zero and the
    // cleared ledger is simply empty.
    Config cfg = lossConfig(SyncPolicy::INV, 8,
                            "drop_prob=0.01,req_timeout=1500", 11);
    System sys(cfg);
    Addr a = sys.allocSync();
    spawnAdders(sys, a, 8, 8);
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 64u);
    sys.clearStats();
    const Recovery::Counters &rc = sys.recoveryState().counters();
    EXPECT_EQ(rc.drops, 0u);
    EXPECT_EQ(sys.recoveryState().pendingDrops(), 0u);
    expectAccounted(sys);

    // A second measured phase on the cleared counters still closes.
    spawnAdders(sys, a, 8, 8);
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 128u);
    expectAccounted(sys);
}

TEST(Recovery, LockFreeCounterMatrixUnderLoss)
{
    // The reduced campaign the recovery_sweep bench runs at scale:
    // every primitive's lock-free counter, with loss, must complete
    // with an exact result and reconciled accounting.
    for (Primitive prim :
         {Primitive::FAP, Primitive::LLSC, Primitive::CAS}) {
        Config cfg = lossConfig(
            SyncPolicy::INV, 8,
            "drop_prob=0.005,req_timeout=2000,quarantine_k=3,"
            "quarantine_window=100000",
            3);
        System sys(cfg);
        CounterAppConfig app;
        app.kind = CounterKind::LOCK_FREE;
        app.prim = prim;
        app.contention = 4;
        app.phases = 16;
        CounterAppResult r = runCounterApp(sys, app);
        ASSERT_TRUE(r.completed) << toString(prim);
        EXPECT_TRUE(r.correct) << toString(prim);
        expectCoherent(sys);
        expectAccounted(sys);
    }
}
