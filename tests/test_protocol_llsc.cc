/** @file load_linked/store_conditional semantics under all policies. */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

class LlscUnderPolicy : public testing::TestWithParam<SyncPolicy>
{
  protected:
    System sys{smallConfig(GetParam())};
};

namespace {

/** LL then SC with nothing in between. */
Task
llScPair(Proc &p, Addr a, Word newv, OpResult *ll_out, OpResult *sc_out)
{
    *ll_out = co_await p.ll(a);
    *sc_out = co_await p.sc(a, newv);
}

/** LL, then wait for a side signal, then SC. */
Task
llWaitSc(Proc &p, Addr a, Word newv, SyncBarrier &gate1,
         SyncBarrier &gate2, OpResult *sc_out)
{
    co_await p.ll(a);
    co_await gate1.arrive();
    co_await gate2.arrive();
    *sc_out = co_await p.sc(a, newv);
}

/** Wait at gate1, store, release gate2. */
Task
storeBetween(Proc &p, Addr a, Word v, SyncBarrier &gate1,
             SyncBarrier &gate2)
{
    co_await gate1.arrive();
    co_await p.store(a, v);
    co_await gate2.arrive();
}

} // namespace

TEST_P(LlscUnderPolicy, UncontestedPairSucceeds)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 40);
    OpResult ll, sc;
    sys.spawn(llScPair(sys.proc(0), a, 41, &ll, &sc));
    runAll(sys);
    EXPECT_EQ(ll.value, 40u);
    EXPECT_TRUE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 41u);
}

TEST_P(LlscUnderPolicy, InterveningWriteFailsSc)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    SyncBarrier gate1(sys, 2), gate2(sys, 2);
    OpResult sc;
    sys.spawn(llWaitSc(sys.proc(0), a, 100, gate1, gate2, &sc));
    sys.spawn(storeBetween(sys.proc(1), a, 55, gate1, gate2));
    runAll(sys);
    EXPECT_FALSE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 55u);
}

TEST_P(LlscUnderPolicy, InterveningScFailsSecondSc)
{
    Addr a = sys.allocSync();
    SyncBarrier gate1(sys, 2), gate2(sys, 2);
    OpResult sc0, sc1;
    sys.spawn(llWaitSc(sys.proc(0), a, 100, gate1, gate2, &sc0));
    sys.spawn([](Proc &p, Addr addr, SyncBarrier &g1, SyncBarrier &g2,
                 OpResult *out) -> Task {
        co_await g1.arrive();
        co_await p.ll(addr);
        *out = co_await p.sc(addr, 7);
        co_await g2.arrive();
    }(sys.proc(1), a, gate1, gate2, &sc1));
    runAll(sys);
    EXPECT_TRUE(sc1.success);
    EXPECT_FALSE(sc0.success);
    EXPECT_EQ(sys.debugRead(a), 7u);
}

TEST_P(LlscUnderPolicy, ScWithoutLlFailsLocally)
{
    Addr a = sys.allocSync();
    OpResult r = runOp(sys, 0, AtomicOp::SC, a, 9);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(sys.debugRead(a), 0u);
}

TEST_P(LlscUnderPolicy, RetryLoopImplementsFetchAdd)
{
    Addr a = sys.allocSync();
    const int per_proc = 20;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    Word old = (co_await p.ll(addr)).value;
                    if ((co_await p.sc(addr, old + 1)).success)
                        break;
                }
            }
        }(sys.proc(n), a, per_proc));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 4u * per_proc);
}

TEST_P(LlscUnderPolicy, LlDoesNotDisturbValue)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 31);
    EXPECT_EQ(runOp(sys, 0, AtomicOp::LL, a).value, 31u);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LL, a).value, 31u);
    EXPECT_EQ(sys.debugRead(a), 31u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LlscUnderPolicy,
                         testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                         SyncPolicy::UNC),
                         [](const auto &info) {
                             return toString(info.param);
                         });

// ----- INV-implementation specifics -----

TEST(LlscInv, ScOnExclusiveLineSucceedsLocally)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::STORE, a, 5); // node 0 exclusive
    auto msgs = sys.mesh().stats().messages;
    OpResult ll, sc;
    sys.spawn(llScPair(sys.proc(0), a, 6, &ll, &sc));
    runAll(sys);
    EXPECT_TRUE(sc.success);
    EXPECT_EQ(sys.mesh().stats().messages, msgs); // all local
}

TEST(LlscInv, FailedScAfterInvalidationIsFreeOfTraffic)
{
    // "should store_conditional fail, it fails locally without causing
    // any bus traffic" -- here, network traffic.
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    runOp(sys, 0, AtomicOp::LL, a);
    runOp(sys, 1, AtomicOp::STORE, a, 2); // invalidates node 0 + resv
    auto msgs = sys.mesh().stats().messages;
    clearStats(sys);
    OpResult r = runOp(sys, 0, AtomicOp::SC, a, 3);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(sys.mesh().stats().messages, msgs);
    EXPECT_EQ(sys.stats().sc_local_failures, 1u);
}

TEST(LlscInv, EvictionOfReservedLineFailsSc)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    cfg.machine.cache_sets = 1;
    cfg.machine.cache_ways = 1;
    System sys(cfg);
    Addr a = sys.allocSync();
    Addr b = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    OpResult out;
    sys.spawn([](Proc &p, Addr ra, Addr other, OpResult *o) -> Task {
        co_await p.ll(ra);
        co_await p.load(other); // evicts the reserved line
        *o = co_await p.sc(ra, 9);
    }(sys.proc(0), a, b, &out));
    runAll(sys);
    EXPECT_FALSE(out.success);
    EXPECT_EQ(sys.debugRead(a), 0u); // SC must not have written
}

TEST(LlscUnc, ReservationPerProcessorInMemory)
{
    // Two processors hold simultaneous reservations; the first SC wins,
    // the second fails because any write clears the whole vector.
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::LL, a);
    runOp(sys, 1, AtomicOp::LL, a);
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::SC, a, 5).success);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::SC, a, 6).success);
    EXPECT_EQ(sys.debugRead(a), 5u);
}

TEST(LlscUnc, OrdinaryWriteClearsAllReservations)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::LL, a);
    runOp(sys, 1, AtomicOp::LL, a);
    runOp(sys, 2, AtomicOp::STORE, a, 1);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::SC, a, 7).success);
    EXPECT_FALSE(runOp(sys, 1, AtomicOp::SC, a, 8).success);
}

TEST(LlscUnc, FetchAndPhiClearsReservations)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::LL, a);
    runOp(sys, 1, AtomicOp::FAA, a, 1);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::SC, a, 7).success);
}

TEST(LlscUnc, FailedCasDoesNotClearReservations)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSync();
    sys.writeInit(a, 3);
    runOp(sys, 0, AtomicOp::LL, a);
    EXPECT_FALSE(runOp(sys, 1, AtomicOp::CAS, a, 9, 8).success);
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::SC, a, 7).success);
    EXPECT_EQ(sys.debugRead(a), 7u);
}

TEST(LlscUpd, LoadLinkedGoesToMemoryEvenWhenCached)
{
    // "load_linked requests have to go to memory even if the datum is
    // cached, in order to set the appropriate reservation bit."
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSyncAt(3); // remote home for node 0
    runOp(sys, 0, AtomicOp::LOAD, a); // node 0 now has a shared copy
    auto msgs = sys.mesh().stats().messages;
    runOp(sys, 0, AtomicOp::LL, a);
    EXPECT_GE(sys.mesh().stats().messages, msgs + 2);
}

TEST(LlscUpd, SerialNumberAdvancesOnWrites)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    NodeId home = sys.homeOf(a);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    runOp(sys, 1, AtomicOp::FAA, a, 1);
    EXPECT_FALSE(runOp(sys, 2, AtomicOp::CAS, a, 9, 7).success);
    const DirEntry *e = sys.dir(home).find(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->serial, 2u); // two effective writes, failed CAS ignored
}
