/** @file Correctness tests for the MCS-style tree barrier. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/tree_barrier.hh"

using namespace dsmtest;

namespace {

/** Each thread bumps a host-side phase counter; the barrier must make
 *  phases strictly sequential across every processor. */
Task
phasedWorker(Proc &p, TreeBarrier &bar, int rounds,
             std::vector<int> &phase_of, bool *violation, Tick jitter)
{
    for (int r = 0; r < rounds; ++r) {
        // Unequal work before the barrier.
        co_await p.compute(1 + (static_cast<Tick>(p.id()) * jitter) %
                                   37);
        phase_of[static_cast<size_t>(p.id())] = r;
        co_await bar.arrive(p);
        // After the barrier, nobody may still be in an older phase.
        for (int other : phase_of)
            if (other < r)
                *violation = true;
        co_await bar.arrive(p);
    }
}

} // namespace

TEST(TreeBarrier, SynchronizesAllProcs)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    TreeBarrier bar(sys, 8);
    std::vector<int> phase_of(8, -1);
    bool violation = false;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(phasedWorker(sys.proc(n), bar, 6, phase_of,
                               &violation, 11));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(bar.roundsCompleted(), 12u);
}

TEST(TreeBarrier, WorksWithSixtyFourProcs)
{
    System sys(smallConfig(SyncPolicy::INV, 64));
    TreeBarrier bar(sys, 64);
    std::vector<int> phase_of(64, -1);
    bool violation = false;
    for (NodeId n = 0; n < 64; ++n)
        sys.spawn(phasedWorker(sys.proc(n), bar, 3, phase_of,
                               &violation, 7));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(bar.roundsCompleted(), 6u);
}

TEST(TreeBarrier, SingleParticipantIsTrivial)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    TreeBarrier bar(sys, 1);
    sys.spawn([](Proc &p, TreeBarrier &b) -> Task {
        for (int i = 0; i < 5; ++i)
            co_await b.arrive(p);
    }(sys.proc(0), bar));
    runAll(sys);
    EXPECT_EQ(bar.roundsCompleted(), 5u);
}

TEST(TreeBarrier, UsesOnlyLoadsAndStores)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    TreeBarrier bar(sys, 8);
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, TreeBarrier &b) -> Task {
            co_await b.arrive(p);
        }(sys.proc(n), bar));
    }
    runAll(sys);
    const SysStats &st = sys.stats();
    for (AtomicOp op : {AtomicOp::TAS, AtomicOp::FAA, AtomicOp::FAS,
                        AtomicOp::FAO, AtomicOp::CAS, AtomicOp::LL,
                        AtomicOp::SC})
        EXPECT_EQ(st.op_count[static_cast<int>(op)], 0u);
}
