/**
 * @file
 * Directed edge-case tests for the INVd/INVs compare_and_swap variants
 * interacting with the rest of the protocol: shared-copy requesters,
 * LL/SC reservations, drop_copy, eviction pressure, and sequences that
 * alternate success and failure.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

namespace {

Config
variantConfig(CasVariant v, int procs = 4)
{
    Config cfg = smallConfig(SyncPolicy::INV, procs);
    cfg.sync.cas_variant = v;
    return cfg;
}

} // namespace

TEST(CasVariantEdge, InvsFailureGrantsUsableSharedCopy)
{
    System sys(variantConfig(CasVariant::SHARE));
    Addr a = sys.allocSyncAt(3);
    sys.writeInit(a, 10);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 99, 0).success);
    // The INVs copy must satisfy subsequent loads locally.
    auto msgs = sys.mesh().stats().messages;
    EXPECT_EQ(runOp(sys, 0, AtomicOp::LOAD, a).value, 10u);
    EXPECT_EQ(sys.mesh().stats().messages, msgs);
}

TEST(CasVariantEdge, InvdFailureLeavesRequesterWithoutCopy)
{
    System sys(variantConfig(CasVariant::DENY));
    Addr a = sys.allocSyncAt(3);
    sys.writeInit(a, 10);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 99, 0).success);
    EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    // A subsequent load must fetch over the network.
    auto msgs = sys.mesh().stats().messages;
    EXPECT_EQ(runOp(sys, 0, AtomicOp::LOAD, a).value, 10u);
    EXPECT_GT(sys.mesh().stats().messages, msgs);
}

TEST(CasVariantEdge, RequesterWithSharedCopyKeepsItOnInvdFailure)
{
    System sys(variantConfig(CasVariant::DENY));
    Addr a = sys.allocSyncAt(3);
    sys.writeInit(a, 10);
    runOp(sys, 0, AtomicOp::LOAD, a); // requester holds a shared copy
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 99, 0).success);
    // "No *new* copy is provided" -- the existing one stays valid.
    const CacheLine *line = sys.ctrl(0).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::SHARED);
}

TEST(CasVariantEdge, RepeatedFailuresKeepOwnerExclusive)
{
    // Under INVd, a stream of failing CAS requests from many nodes must
    // never disturb the owner's exclusive copy.
    System sys(variantConfig(CasVariant::DENY));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::STORE, a, 42);
    for (int round = 0; round < 3; ++round) {
        for (NodeId n : {0, 2, 3})
            EXPECT_FALSE(runOp(sys, n, AtomicOp::CAS, a, 7, 0).success);
    }
    const CacheLine *line = sys.ctrl(1).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::EXCLUSIVE);
    EXPECT_EQ(line->readWord(a), 42u);
}

TEST(CasVariantEdge, InvsOwnerFailureDowngradesOnce)
{
    // After an INVs failure against a remote owner, both hold shared
    // copies; a second failing CAS is then decided at the home from
    // memory with no further forwarding.
    System sys(variantConfig(CasVariant::SHARE));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::STORE, a, 42);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 7, 0).success);
    EXPECT_EQ(sys.ctrl(1).cache().peek(a)->state, LineState::SHARED);
    clearStats(sys);
    EXPECT_FALSE(runOp(sys, 2, AtomicOp::CAS, a, 7, 0).success);
    // Home decided from memory: 2 serialized messages, no forward.
    EXPECT_EQ(sys.stats().chain_length.max(), 2u);
}

TEST(CasVariantEdge, SuccessAfterFailureTransfersOwnership)
{
    for (CasVariant v : {CasVariant::DENY, CasVariant::SHARE}) {
        System sys(variantConfig(v));
        Addr a = sys.allocSyncAt(3);
        runOp(sys, 1, AtomicOp::STORE, a, 5);
        EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 9, 4).success);
        EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 6, 5).success);
        EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 7, 6).success);
        EXPECT_EQ(sys.debugRead(a), 7u);
        // The second CAS was a local hit on the acquired line.
        const CacheLine *line = sys.ctrl(0).cache().peek(a);
        ASSERT_NE(line, nullptr);
        EXPECT_EQ(line->state, LineState::EXCLUSIVE);
    }
}

TEST(CasVariantEdge, VariantsInteractWithLlsc)
{
    // LL/SC on the same variable as variant CAS: an LL-reserved copy
    // invalidated by a successful CAS must fail its SC.
    for (CasVariant v : {CasVariant::DENY, CasVariant::SHARE}) {
        System sys(variantConfig(v));
        Addr a = sys.allocSyncAt(3);
        sys.writeInit(a, 1);
        runOp(sys, 2, AtomicOp::LL, a);
        EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 2, 1).success);
        EXPECT_FALSE(runOp(sys, 2, AtomicOp::SC, a, 9).success);
        EXPECT_EQ(sys.debugRead(a), 2u);
    }
}

TEST(CasVariantEdge, DropCopyRaceWithForwardedCas)
{
    // The owner drops its exclusive line while a FWD_CAS is in flight:
    // the request must be NACKed, retried, and decided from memory.
    for (CasVariant v : {CasVariant::DENY, CasVariant::SHARE}) {
        System sys(variantConfig(v));
        Addr a = sys.allocSyncAt(3);
        for (int round = 0; round < 10; ++round) {
            sys.spawn([](Proc &p, Addr addr) -> Task {
                co_await p.store(addr, 1);
                co_await p.dropCopy(addr);
            }(sys.proc(1), a));
            sys.spawn([](Proc &p, Addr addr) -> Task {
                co_await p.cas(addr, 1, 2);
            }(sys.proc(0), a));
            runAll(sys);
            Word val = sys.debugRead(a);
            EXPECT_TRUE(val == 1 || val == 2) << "round " << round;
            // Reset for the next round.
            sys.spawn(doStore(sys.proc(2), a, 0));
            runAll(sys);
        }
    }
}

TEST(CasVariantEdge, EvictionPressureWithVariants)
{
    for (CasVariant v : {CasVariant::DENY, CasVariant::SHARE}) {
        Config cfg = variantConfig(v, 8);
        cfg.machine.cache_sets = 2;
        cfg.machine.cache_ways = 1;
        System sys(cfg);
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < 8; ++n) {
            sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
                for (int i = 0; i < cnt; ++i) {
                    for (;;) {
                        Word old = (co_await p.load(addr)).value;
                        if ((co_await p.cas(addr, old, old + 1))
                                .success)
                            break;
                    }
                }
            }(sys.proc(n), a, 20));
        }
        runAll(sys);
        EXPECT_EQ(sys.debugRead(a), 160u);
    }
}

// ----- UPD edge cases -----

TEST(UpdEdge, LoadExclusiveDegeneratesToLoad)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.writeInit(a, 3);
    OpResult r = runOp(sys, 0, AtomicOp::LOAD_EXCL, a);
    EXPECT_EQ(r.value, 3u);
    const CacheLine *line = sys.ctrl(0).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::SHARED); // never exclusive
}

TEST(UpdEdge, EvictedSharerStillAcked)
{
    // A silently evicted UPD sharer stays in the directory; updates to
    // it must still be acknowledged and the system must stay coherent.
    Config cfg = smallConfig(SyncPolicy::UPD);
    cfg.machine.cache_sets = 1;
    cfg.machine.cache_ways = 1;
    System sys(cfg);
    Addr a = sys.allocSync();
    Addr filler = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    runOp(sys, 1, AtomicOp::LOAD, a);      // node 1 becomes a sharer
    runOp(sys, 1, AtomicOp::LOAD, filler); // and silently evicts it
    runOp(sys, 0, AtomicOp::FAA, a, 5);    // update to the stale sharer
    EXPECT_EQ(sys.debugRead(a), 5u);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 5u);
}

TEST(UpdEdge, ManyWritersInterleaveCoherently)
{
    System sys(smallConfig(SyncPolicy::UPD, 8));
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await p.fetchAdd(addr, 1);
                co_await p.load(addr); // exercise the refreshed copy
            }
        }(sys.proc(n), a, 20));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 160u);
}

TEST(UpdEdge, MonotoneReadsOfSharedCopy)
{
    // Under UPD with a single writer, a reader's cached copy must only
    // move forward through the writer's values.
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.spawn([](Proc &p, Addr addr) -> Task {
        for (int i = 1; i <= 60; ++i)
            co_await p.store(addr, static_cast<Word>(i));
    }(sys.proc(0), a));
    bool backwards = false;
    sys.spawn([](Proc &p, Addr addr, bool *bad) -> Task {
        Word prev = 0;
        for (int i = 0; i < 80; ++i) {
            Word v = (co_await p.load(addr)).value;
            if (v < prev)
                *bad = true;
            prev = v;
        }
    }(sys.proc(1), a, &backwards));
    runAll(sys);
    EXPECT_FALSE(backwards);
    EXPECT_EQ(sys.debugRead(a), 60u);
}
