/**
 * @file
 * Tests for the serial-number LL/SC primitive (Section 3.1, option 4)
 * and the limited-reservation option (option 3).
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/mcs_lock.hh"

using namespace dsmtest;

class SerialLlsc : public testing::TestWithParam<SyncPolicy>
{
  protected:
    System sys{smallConfig(GetParam())};
};

TEST_P(SerialLlsc, PairSucceedsUncontested)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 7);
    OpResult ll = runOp(sys, 0, AtomicOp::LLS, a);
    EXPECT_EQ(ll.value, 7u);
    OpResult sc = runOp(sys, 0, AtomicOp::SCS, a, 8, ll.serial);
    EXPECT_TRUE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 8u);
}

TEST_P(SerialLlsc, SerialAdvancesPerWrite)
{
    Addr a = sys.allocSync();
    Word s0 = runOp(sys, 0, AtomicOp::LLS, a).serial;
    runOp(sys, 1, AtomicOp::STORE, a, 1);
    runOp(sys, 2, AtomicOp::FAA, a, 1);
    Word s1 = runOp(sys, 0, AtomicOp::LLS, a).serial;
    EXPECT_EQ(s1, s0 + 2);
}

TEST_P(SerialLlsc, StaleSerialFails)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    OpResult ll = runOp(sys, 0, AtomicOp::LLS, a);
    runOp(sys, 1, AtomicOp::STORE, a, 2); // intervening write
    OpResult sc = runOp(sys, 0, AtomicOp::SCS, a, 9, ll.serial);
    EXPECT_FALSE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 2u);
}

TEST_P(SerialLlsc, AbaIsDetected)
{
    // The pointer problem: the value returns to its original state, but
    // the serial number exposes the intervening writes -- exactly what
    // plain compare_and_swap cannot see (Section 2.2).
    Addr a = sys.allocSync();
    sys.writeInit(a, 5);
    OpResult ll = runOp(sys, 0, AtomicOp::LLS, a);
    runOp(sys, 1, AtomicOp::STORE, a, 6);
    runOp(sys, 1, AtomicOp::STORE, a, 5); // back to the original value
    // CAS would succeed here...
    EXPECT_TRUE(runOp(sys, 2, AtomicOp::CAS, a, 5, 5).success);
    // ...but the serial-number SC correctly fails.
    OpResult sc = runOp(sys, 0, AtomicOp::SCS, a, 9, ll.serial);
    EXPECT_FALSE(sc.success);
}

TEST_P(SerialLlsc, BareStoreConditional)
{
    // "a process that expects a particular value (and serial number) in
    // memory can issue a bare store_conditional."
    Addr a = sys.allocSync();
    OpResult w = runOp(sys, 0, AtomicOp::FAS, a, 10);
    // The swap's response reports the post-write serial.
    OpResult sc = runOp(sys, 0, AtomicOp::SCS, a, 11, w.serial);
    EXPECT_TRUE(sc.success);
    EXPECT_EQ(sys.debugRead(a), 11u);
    // A second bare SC with the same (now stale) serial fails.
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::SCS, a, 12, w.serial).success);
}

TEST_P(SerialLlsc, FailureReportsCurrentSerial)
{
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    runOp(sys, 0, AtomicOp::STORE, a, 2);
    OpResult sc = runOp(sys, 1, AtomicOp::SCS, a, 9, 0);
    EXPECT_FALSE(sc.success);
    EXPECT_EQ(sc.serial, 2u);
    // Retrying with the reported serial succeeds.
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::SCS, a, 9, sc.serial).success);
}

TEST_P(SerialLlsc, RetryLoopImplementsFetchAdd)
{
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    OpResult r = co_await p.llSerial(addr);
                    OpResult s = co_await p.scSerial(addr, r.value + 1,
                                                     r.serial);
                    if (s.success)
                        break;
                }
            }
        }(sys.proc(n), a, 25));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 100u);
}

INSTANTIATE_TEST_SUITE_P(InMemoryPolicies, SerialLlsc,
                         testing::Values(SyncPolicy::UNC, SyncPolicy::UPD),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(SerialLlscDeath, InvPolicyIsRejected)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSync();
    EXPECT_EXIT(runOp(sys, 0, AtomicOp::LLS, a),
                testing::ExitedWithCode(1), "in-memory primitive");
}

// ----- MCS lock with the bare-SC release (the paper's example) -----

class SerialMcs : public testing::TestWithParam<SyncPolicy>
{
};

TEST_P(SerialMcs, MutualExclusionHolds)
{
    Config cfg = smallConfig(GetParam(), 8);
    System sys(cfg);
    McsLock lock(sys, Primitive::LLSC, true);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    const int per_proc = 10;
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, McsLock &l, Addr c, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await l.acquire(p);
                Word v = (co_await p.load(c)).value;
                co_await p.compute(3);
                co_await p.store(c, v + 1);
                co_await l.release(p);
            }
        }(sys.proc(n), lock, counter, per_proc));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(counter), 80u);
    EXPECT_EQ(sys.debugRead(lock.tailAddr()), 0u);
}

TEST_P(SerialMcs, UncontendedReleaseSavesAMemoryAccess)
{
    // Count home-memory accesses for one acquire/release pair: the
    // bare-SC release needs one access where LL+SC needs two.
    auto measure = [&](bool serial) {
        Config cfg = smallConfig(GetParam(), 4);
        System sys(cfg);
        McsLock lock(sys, Primitive::LLSC, serial);
        NodeId home = sys.homeOf(lock.tailAddr());
        sys.spawn([](Proc &p, McsLock &l) -> Task {
            co_await l.acquire(p);
            co_await l.release(p);
        }(sys.proc((home + 1) % 4), lock));
        RunResult r = sys.run();
        EXPECT_TRUE(r.completed);
        return sys.mem(home).accesses();
    };
    auto with_serial = measure(true);
    auto without = measure(false);
    EXPECT_EQ(with_serial + 1, without);
}

INSTANTIATE_TEST_SUITE_P(InMemoryPolicies, SerialMcs,
                         testing::Values(SyncPolicy::UNC, SyncPolicy::UPD),
                         [](const auto &info) {
                             return toString(info.param);
                         });

// ----- Limited reservations (Section 3.1, option 3) -----

class LimitedResv : public testing::TestWithParam<SyncPolicy>
{
};

TEST_P(LimitedResv, BeyondLimitLlIsDenied)
{
    Config cfg = smallConfig(GetParam());
    cfg.machine.max_memory_reservations = 2;
    System sys(cfg);
    Addr a = sys.allocSync();
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::LL, a).success);
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::LL, a).success);
    EXPECT_FALSE(runOp(sys, 2, AtomicOp::LL, a).success); // beyond limit
    // Holders can still succeed.
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::SC, a, 5).success);
}

TEST_P(LimitedResv, DeniedScFailsLocallyWithoutTraffic)
{
    Config cfg = smallConfig(GetParam());
    cfg.machine.max_memory_reservations = 1;
    System sys(cfg);
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::LL, a);
    EXPECT_FALSE(runOp(sys, 1, AtomicOp::LL, a).success);
    auto msgs = sys.mesh().stats().messages;
    clearStats(sys);
    EXPECT_FALSE(runOp(sys, 1, AtomicOp::SC, a, 9).success);
    EXPECT_EQ(sys.mesh().stats().messages, msgs); // fails locally
    EXPECT_EQ(sys.stats().sc_local_failures, 1u);
}

TEST_P(LimitedResv, WritesFreeSlotsAgain)
{
    Config cfg = smallConfig(GetParam());
    cfg.machine.max_memory_reservations = 1;
    System sys(cfg);
    Addr a = sys.allocSync();
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::LL, a).success);
    EXPECT_FALSE(runOp(sys, 1, AtomicOp::LL, a).success);
    runOp(sys, 2, AtomicOp::STORE, a, 1); // clears the vector
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::LL, a).success);
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::SC, a, 2).success);
}

TEST_P(LimitedResv, ReacquiringOwnReservationIsNotDenied)
{
    Config cfg = smallConfig(GetParam());
    cfg.machine.max_memory_reservations = 1;
    System sys(cfg);
    Addr a = sys.allocSync();
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::LL, a).success);
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::LL, a).success); // same holder
}

TEST_P(LimitedResv, ProgressUnderContention)
{
    // Lock-freedom is compromised in theory (the paper says so), but
    // writes clear the vector, so in practice counters still complete.
    Config cfg = smallConfig(GetParam(), 8);
    cfg.machine.max_memory_reservations = 2;
    System sys(cfg);
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                for (;;) {
                    Word old = (co_await p.ll(addr)).value;
                    if ((co_await p.sc(addr, old + 1)).success)
                        break;
                    co_await p.compute(20);
                }
            }
        }(sys.proc(n), a, 15));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 120u);
}

INSTANTIATE_TEST_SUITE_P(InMemoryPolicies, LimitedResv,
                         testing::Values(SyncPolicy::UNC, SyncPolicy::UPD),
                         [](const auto &info) {
                             return toString(info.param);
                         });
