/**
 * @file
 * Tests for the stats registry's snapshot/diff and JSON rendering, the
 * LatencyStat percentiles, and the dsm-bench-v1 BenchReport schema.
 */

#include <cstdio>
#include <cstdlib>

#include "helpers.hh"
#include "json_parse.hh"
#include "stats/bench_report.hh"
#include "stats/registry.hh"

namespace {

using namespace dsmtest;

TEST(StatsRegistryUnit, SnapshotAndDiff)
{
    std::uint64_t raw = 5;
    Histogram hist;
    hist.add(3);
    hist.add(5);
    LatencyStat lat;
    lat.sample(10);

    StatsRegistry reg;
    reg.addCounter("a.count", &raw);
    reg.addCounter("b.derived", [&raw] { return raw * 2; });
    reg.addHistogram("a.hist", &hist);
    reg.addLatency("a.lat", &lat);
    EXPECT_EQ(reg.size(), 4u);

    StatsRegistry::Snapshot s0 = reg.snapshot();
    EXPECT_EQ(s0.at("a.count"), 5u);
    EXPECT_EQ(s0.at("b.derived"), 10u);
    EXPECT_EQ(s0.at("a.hist.samples"), 2u);
    EXPECT_EQ(s0.at("a.hist.sum"), 8u);
    EXPECT_EQ(s0.at("a.lat.count"), 1u);
    EXPECT_EQ(s0.at("a.lat.sum"), 10u);

    raw = 9;
    hist.add(2);
    lat.sample(4);

    StatsRegistry::Snapshot s1 = reg.snapshot();
    StatsRegistry::Snapshot d = StatsRegistry::diff(s1, s0);
    EXPECT_EQ(d.at("a.count"), 4u);
    EXPECT_EQ(d.at("b.derived"), 8u);
    EXPECT_EQ(d.at("a.hist.samples"), 1u);
    EXPECT_EQ(d.at("a.hist.sum"), 2u);
    EXPECT_EQ(d.at("a.lat.count"), 1u);
    EXPECT_EQ(d.at("a.lat.sum"), 4u);

    // Keys missing from `before` count as zero.
    s0.erase("a.count");
    d = StatsRegistry::diff(s1, s0);
    EXPECT_EQ(d.at("a.count"), 9u);
}

TEST(StatsRegistryUnit, NestedJsonFromDottedPaths)
{
    std::uint64_t one = 1, two = 2, three = 3, four = 4;
    StatsRegistry reg;
    reg.addCounter("a.b", &one);
    reg.addCounter("a.c.d", &two);
    reg.addCounter("a.c.e", &three);
    reg.addCounter("z", &four);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(reg.toJson(), &root));
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->num("b"), 1.0);
    const JsonValue *c = a->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->num("d"), 2.0);
    EXPECT_EQ(c->num("e"), 3.0);
    EXPECT_EQ(root.num("z"), 4.0);
}

TEST(LatencyStatUnit, PercentilesBracketTheDistribution)
{
    LatencyStat lat;
    for (Tick t = 1; t <= 1000; ++t)
        lat.sample(t);

    EXPECT_EQ(lat.count, 1000u);
    EXPECT_DOUBLE_EQ(lat.mean(), 500.5);
    EXPECT_EQ(lat.max, 1000u);

    // Percentiles come from 8-cycle buckets: exact to within one
    // bucket, never above the true max.
    EXPECT_NEAR(static_cast<double>(lat.p50()), 500.0, 8.0);
    EXPECT_NEAR(static_cast<double>(lat.p95()), 950.0, 8.0);
    EXPECT_NEAR(static_cast<double>(lat.p99()), 990.0, 8.0);
    EXPECT_LE(lat.p50(), lat.p95());
    EXPECT_LE(lat.p95(), lat.p99());
    EXPECT_LE(lat.p99(), lat.max);

    // A single-sample stat reports that sample everywhere.
    LatencyStat single;
    single.sample(42);
    EXPECT_EQ(single.p50(), 42u);
    EXPECT_EQ(single.p99(), 42u);
}

TEST(StatsJson, SystemRegistryJsonParses)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::STORE, a, 7);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &root));

    const JsonValue *net = root.find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_GT(net->num("messages"), 0.0);
    EXPECT_GT(net->num("flits"), 0.0);

    const JsonValue *sim = root.find("sim");
    ASSERT_NE(sim, nullptr);
    EXPECT_GT(sim->num("ticks"), 0.0);

    // Every node contributes a full subtree.
    for (int n = 0; n < 4; ++n) {
        const JsonValue *node = root.find("node" + std::to_string(n));
        ASSERT_NE(node, nullptr) << "node" << n;
        ASSERT_TRUE(node->has("proto"));
        ASSERT_TRUE(node->has("cache"));
        ASSERT_TRUE(node->has("mem"));
        const JsonValue *proto = node->find("proto");
        ASSERT_TRUE(proto->has("nacks"));
        ASSERT_TRUE(proto->has("chain_length"));
    }
}

TEST(StatsJson, ChainCountsMatchTable1ViaJson)
{
    // The Table 1 single-store experiments, read back through the
    // registry JSON instead of the C++ stats object.
    auto chainFromJson = [](System &sys) {
        JsonValue root;
        if (!parseJsonOrFail(sys.statsJson(), &root))
            return -1.0;
        double max_chain = 0;
        for (const auto &[key, node] : root.object) {
            if (key.rfind("node", 0) != 0)
                continue;
            const JsonValue *proto = node.find("proto");
            if (proto == nullptr)
                continue;
            const JsonValue *chain = proto->find("chain_length");
            if (chain != nullptr)
                max_chain = std::max(max_chain, chain->num("max", 0.0));
        }
        return max_chain;
    };

    {
        // UNC store: request + reply = 2 serialized messages.
        System sys(smallConfig(SyncPolicy::UNC, 4));
        Addr a = sys.allocSyncAt(3);
        runOp(sys, 0, AtomicOp::STORE, a, 1);
        EXPECT_EQ(chainFromJson(sys), 2.0);
        EXPECT_EQ(sys.stats().chain_length.max(), 2u);
    }
    {
        // INV store to a line held exclusive by a third node: 4.
        System sys(smallConfig(SyncPolicy::INV, 4));
        Addr a = sys.allocSyncAt(3);
        runOp(sys, 1, AtomicOp::STORE, a, 1); // node 1 takes ownership
        sys.clearStats();
        runOp(sys, 0, AtomicOp::STORE, a, 2);
        EXPECT_EQ(chainFromJson(sys), 4.0);
        EXPECT_EQ(sys.stats().chain_length.max(), 4u);
    }
}

TEST(StatsJson, ClearStatsResetsProtocolButNotMesh)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::STORE, a, 7);

    StatsRegistry::Snapshot before = sys.registry().snapshot();
    ASSERT_GT(before.at("net.messages"), 0u);
    ASSERT_GT(before.at("node0.proto.ops.store.count"), 0u);

    sys.clearStats();
    StatsRegistry::Snapshot after = sys.registry().snapshot();
    EXPECT_EQ(after.at("node0.proto.ops.store.count"), 0u);
    EXPECT_EQ(after.at("net.messages"), before.at("net.messages"));
}

TEST(BenchReportTest, SchemaAndMetricsKeys)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    RunMetrics m = collectRunMetrics(sys);
    EXPECT_EQ(m.ops, 1u);
    EXPECT_GT(m.messages, 0u);
    EXPECT_GT(m.mean_latency, 0.0);

    BenchReport rep("unittest");
    rep.meta("procs", 4);
    rep.meta("label", "schema check");
    rep.row().set("impl", "INV FAA").set("point", "c=1").metrics(m);
    rep.row().set("impl", "INV FAA").set("point", "c=2").metrics(m);
    ASSERT_EQ(rep.numRows(), 2u);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(rep.toJson(), &root));
    EXPECT_EQ(root.str("schema"), "dsm-bench-v1");
    EXPECT_EQ(root.str("bench"), "unittest");

    const JsonValue *meta = root.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->num("procs"), 4.0);
    EXPECT_EQ(meta->str("label"), "schema check");

    const JsonValue *results = root.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_TRUE(results->isArray());
    ASSERT_EQ(results->array.size(), 2u);
    const JsonValue &row = results->array[0];
    EXPECT_EQ(row.str("impl"), "INV FAA");
    EXPECT_EQ(row.str("point"), "c=1");
    for (const char *key :
         {"ops", "mean_latency", "p50", "p95", "p99", "max_latency",
          "messages", "flits", "nacks", "retries", "invalidations",
          "updates", "ticks"})
        EXPECT_TRUE(row.has(key)) << "missing metric key " << key;
    EXPECT_EQ(row.num("ops"), 1.0);
    EXPECT_EQ(row.num("messages"), static_cast<double>(m.messages));
}

TEST(BenchReportTest, WritesBenchJsonToDsmBenchDir)
{
    std::string dir = ::testing::TempDir();
    ASSERT_EQ(::setenv("DSM_BENCH_DIR", dir.c_str(), 1), 0);

    BenchReport rep("writetest");
    rep.meta("procs", 4);
    rep.row().set("impl", "x").set("value", 1.5);
    std::string path = rep.write();
    ::unsetenv("DSM_BENCH_DIR");

    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path, dir + "/BENCH_writetest.json");

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "report file not written: " << path;
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(content, &root));
    EXPECT_EQ(root.str("schema"), "dsm-bench-v1");
    EXPECT_EQ(root.str("bench"), "writetest");
}

} // namespace
