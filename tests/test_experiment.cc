/**
 * @file
 * Unit tests for the Experiment / SweepRunner layer: deterministic
 * parallel execution (byte-identical results regardless of the job
 * count), declaration-order delivery, jobs-flag parsing, and the
 * fluent builder.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "exp/experiment.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;

namespace {

Config
smallConfig(SyncPolicy pol = SyncPolicy::INV)
{
    Config cfg;
    cfg.machine.num_procs = 16;
    cfg.machine.mesh_x = 4;
    cfg.machine.mesh_y = 4;
    cfg.sync.policy = pol;
    return cfg;
}

/** A fig3-style point: a contended lock-free counter run. */
std::string
counterStatsJson(const Config &cfg)
{
    System sys(cfg);
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = Primitive::FAP;
    app.contention = 8;
    app.phases = 8;
    CounterAppResult r = runCounterApp(sys, app);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    return sys.statsJson();
}

} // namespace

TEST(SweepRunner, SameSeedIsByteIdenticalAcrossRuns)
{
    std::string first = counterStatsJson(smallConfig());
    std::string second = counterStatsJson(smallConfig());
    EXPECT_EQ(first, second);
}

TEST(SweepRunner, ParallelStatsMatchSerialByteForByte)
{
    // Reference: the same fig3-style point run inline.
    std::string reference = counterStatsJson(smallConfig());

    // Four copies of the point under a 4-thread runner; each worker
    // builds its own System from the point's Config, so every result
    // must equal the inline run byte for byte.
    std::vector<Point> points;
    for (int i = 0; i < 4; ++i) {
        points.push_back(Point{
            csprintf("copy%d", i), "", smallConfig(), [](System &sys) {
                CounterAppConfig app;
                app.kind = CounterKind::LOCK_FREE;
                app.prim = Primitive::FAP;
                app.contention = 8;
                app.phases = 8;
                CounterAppResult r = runCounterApp(sys, app);
                PointResult res;
                res.value = r.avg_cycles_per_update;
                res.text = sys.statsJson();
                return res;
            }});
    }
    SweepRunner runner(4);
    EXPECT_EQ(runner.jobs(), 4);
    std::vector<PointResult> results = runner.run(points);
    ASSERT_EQ(results.size(), 4u);
    for (const PointResult &r : results)
        EXPECT_EQ(r.text, reference);
}

TEST(SweepRunner, ResultsArriveInDeclarationOrder)
{
    std::vector<Point> points;
    for (int i = 0; i < 12; ++i) {
        points.push_back(Point{csprintf("p%d", i), "", smallConfig(),
                               [i](System &) {
                                   PointResult res;
                                   res.value = i;
                                   return res;
                               }});
    }
    SweepRunner runner(4);
    std::vector<PointResult> out;
    std::vector<std::size_t> completed;
    runner.runInto(points, out, [&](std::size_t i) {
        completed.push_back(i);
        // The hook contract: out[i] is filled before on_done(i).
        EXPECT_EQ(out[i].value, static_cast<double>(i));
    });
    ASSERT_EQ(out.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)].value, i);
    EXPECT_EQ(completed.size(), 12u);
}

TEST(SweepRunner, ResolveJobsPrefersRequestOverEnv)
{
    ::setenv("DSM_JOBS", "7", 1);
    EXPECT_EQ(SweepRunner::resolveJobs(3), 3);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 7);
    ::unsetenv("DSM_JOBS");
    EXPECT_EQ(SweepRunner::resolveJobs(0), 1);
}

TEST(SweepRunner, ParseJobsFlagForms)
{
    const char *a1[] = {"bench", "--jobs", "8"};
    EXPECT_EQ(parseJobsFlag(3, const_cast<char **>(a1)), 8);
    const char *a2[] = {"bench", "--jobs=6"};
    EXPECT_EQ(parseJobsFlag(2, const_cast<char **>(a2)), 6);
    const char *a3[] = {"bench", "-j", "2"};
    EXPECT_EQ(parseJobsFlag(3, const_cast<char **>(a3)), 2);
    const char *a4[] = {"bench"};
    EXPECT_EQ(parseJobsFlag(1, const_cast<char **>(a4)), 0);
}

namespace {

/** A small two-impl, two-sweep experiment over the fast counter app. */
Experiment
tinyExperiment()
{
    Experiment ex("tiny", smallConfig());
    ex.quiet(true).writeReport(false);
    ex.title("tiny experiment")
        .meta("figure", "none")
        .impls({{"INV FAP", Primitive::FAP, SyncConfig{}},
                {"INV LLSC", Primitive::LLSC, SyncConfig{}}})
        .workload([](System &sys, const ImplCase &impl,
                     const SweepPoint &sp) {
            CounterAppConfig app;
            app.kind = CounterKind::LOCK_FREE;
            app.prim = impl.prim;
            app.contention = static_cast<int>(sp.value);
            app.phases = 6;
            CounterAppResult r = runCounterApp(sys, app);
            PointResult res;
            res.value = r.avg_cycles_per_update;
            res.metrics = collectRunMetrics(sys);
            res.fields.set("contention", sp.value)
                .set("avg_cycles_per_update", r.avg_cycles_per_update);
            return res;
        })
        .sweep("c", {2, 4});
    return ex;
}

} // namespace

TEST(Experiment, ParallelRunIsByteIdenticalToSerial)
{
    Experiment serial = tinyExperiment();
    serial.run(1);
    Experiment parallel = tinyExperiment();
    parallel.run(4);

    EXPECT_FALSE(serial.tableText().empty());
    EXPECT_EQ(serial.tableText(), parallel.tableText());
    EXPECT_EQ(serial.reportJson(), parallel.reportJson());
    EXPECT_EQ(serial.reportPath(), "");
}

TEST(Experiment, MatrixExpandsImplMajor)
{
    Experiment ex = tinyExperiment();
    const std::vector<PointResult> &results = ex.run(1);
    // 2 impls x 2 sweep values, impl-major.
    ASSERT_EQ(results.size(), 4u);
    ASSERT_EQ(ex.numPoints(), 4u);
    const std::string &table = ex.tableText();
    std::size_t fap = table.find("INV FAP");
    std::size_t llsc = table.find("INV LLSC");
    ASSERT_NE(fap, std::string::npos);
    ASSERT_NE(llsc, std::string::npos);
    EXPECT_LT(fap, llsc);
    EXPECT_NE(table.find("c=2"), std::string::npos);
    EXPECT_NE(table.find("c=4"), std::string::npos);
}

TEST(Experiment, ExplicitPointsKeepDeclarationOrderInReport)
{
    Experiment ex("explicit", smallConfig());
    ex.quiet(true).writeReport(false).table(false).rowKey("case")
        .colKey("");
    for (int i = 0; i < 3; ++i) {
        ex.point(csprintf("case%d", i), "", smallConfig(),
                 [i](System &) {
                     PointResult res;
                     res.value = i * 10;
                     res.fields.set("v", i * 10);
                     return res;
                 });
    }
    ex.run(2);
    std::string json = ex.reportJson();
    std::size_t c0 = json.find("case0");
    std::size_t c1 = json.find("case1");
    std::size_t c2 = json.find("case2");
    ASSERT_NE(c0, std::string::npos);
    ASSERT_NE(c1, std::string::npos);
    ASSERT_NE(c2, std::string::npos);
    EXPECT_LT(c0, c1);
    EXPECT_LT(c1, c2);
}

TEST(ExperimentDeath, SystemRejectsInvalidPointConfig)
{
    Config bad = smallConfig();
    bad.machine.mesh_x = 3; // 3x4 != 16
    EXPECT_EXIT({ System sys(bad); }, testing::ExitedWithCode(1),
                "invalid configuration: mesh 3x4 does not cover 16 "
                "procs");
}
