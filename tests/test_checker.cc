/**
 * @file
 * Directed failure-path tests for the coherence checker: corrupt
 * directory or cache state on purpose and assert that checkCoherence()
 * reports the specific violation. These guard the checker itself — a
 * checker that silently passes corrupted state would mask protocol
 * bugs in every other test and in the fault-injection campaigns.
 */

#include "helpers.hh"

#include "mem/directory.hh"

using namespace dsm;
using namespace dsmtest;

namespace {

/** True if some violation message contains @p needle. */
bool
hasViolation(const std::vector<std::string> &vs, const std::string &needle)
{
    for (const std::string &v : vs)
        if (v.find(needle) != std::string::npos)
            return true;
    return false;
}

std::string
joined(const std::vector<std::string> &vs)
{
    std::string out;
    for (const std::string &v : vs)
        out += v + "\n";
    return out;
}

} // namespace

TEST(Checker, CleanSystemHasNoViolations)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::STORE, a, 42);
    runOp(sys, 2, AtomicOp::LOAD, a);
    EXPECT_TRUE(checkCoherence(sys).empty());
}

TEST(Checker, BusyEntryAfterQuiesce)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::STORE, a, 7);
    sys.dir(0).entry(a).busy = true;
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "left busy after quiesce"))
        << joined(vs);
}

TEST(Checker, WrongDirectoryOwner)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::STORE, a, 7);
    DirEntry &e = sys.dir(0).entry(a);
    ASSERT_EQ(e.state, DirState::EXCLUSIVE);
    ASSERT_EQ(e.owner, 1);
    e.owner = 2;
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "directory owner")) << joined(vs);
}

TEST(Checker, SharerBitMissing)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::LOAD, a);
    runOp(sys, 2, AtomicOp::LOAD, a);
    DirEntry &e = sys.dir(0).entry(a);
    ASSERT_EQ(e.state, DirState::SHARED);
    ASSERT_TRUE(e.isSharer(2));
    e.removeSharer(2);
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "not a sharer")) << joined(vs);
}

TEST(Checker, SharedCopyDivergesFromMemory)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::LOAD, a);
    runOp(sys, 2, AtomicOp::LOAD, a);
    CacheLine *l = sys.ctrl(2).cache().lookup(a);
    ASSERT_NE(l, nullptr);
    ASSERT_EQ(l->state, LineState::SHARED);
    l->writeWord(a, 0xDEADBEEF);
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "differs from memory")) << joined(vs);
}

TEST(Checker, CachedWhileDirectoryUncached)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::STORE, a, 7);
    DirEntry &e = sys.dir(0).entry(a);
    ASSERT_EQ(e.state, DirState::EXCLUSIVE);
    e.state = DirState::UNCACHED;
    e.owner = -1;
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "cached while directory says uncached"))
        << joined(vs);
}

TEST(Checker, TwoExclusiveCopies)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    runOp(sys, 1, AtomicOp::STORE, a, 7);
    // Fabricate a second exclusive copy behind the protocol's back.
    Victim v;
    CacheLine *l = sys.ctrl(3).cache().allocate(a, &v);
    l->base = blockBase(a);
    l->state = LineState::EXCLUSIVE;
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "exclusive copies")) << joined(vs);
}

TEST(Checker, CachedWithNoDirectoryEntry)
{
    System sys(smallConfig());
    Addr a = sys.allocAt(0, 8);
    Victim v;
    CacheLine *l = sys.ctrl(3).cache().allocate(a, &v);
    l->base = blockBase(a);
    l->state = LineState::SHARED;
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "cached with no directory entry"))
        << joined(vs);
}

TEST(Checker, UncSyncBlockCached)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSyncAt(0);
    // Fabricate an otherwise-consistent shared copy of the UNC sync
    // block: directory says shared-by-3, node 3 holds matching data.
    DirEntry &e = sys.dir(0).entry(a);
    e.state = DirState::SHARED;
    e.addSharer(3);
    Victim v;
    CacheLine *l = sys.ctrl(3).cache().allocate(a, &v);
    l->base = blockBase(a);
    l->state = LineState::SHARED;
    l->data = sys.store().readBlock(a);
    std::vector<std::string> vs = checkCoherence(sys);
    EXPECT_TRUE(hasViolation(vs, "UNC sync block")) << joined(vs);
}
