/** @file Unit tests for the queued memory module. */

#include <gtest/gtest.h>

#include "mem/mem_module.hh"

using namespace dsm;

TEST(MemModule, IdleRequestTakesServiceTime)
{
    MemModule m(20);
    EXPECT_EQ(m.access(100), 120u);
}

TEST(MemModule, BackToBackRequestsQueue)
{
    MemModule m(20);
    EXPECT_EQ(m.access(0), 20u);
    EXPECT_EQ(m.access(0), 40u);
    EXPECT_EQ(m.access(0), 60u);
}

TEST(MemModule, QueueDrainsWhenIdle)
{
    MemModule m(10);
    EXPECT_EQ(m.access(0), 10u);
    EXPECT_EQ(m.access(100), 110u); // bank idle again
}

TEST(MemModule, PartialOverlap)
{
    MemModule m(10);
    EXPECT_EQ(m.access(0), 10u);
    EXPECT_EQ(m.access(5), 20u); // waits 5 cycles
    EXPECT_EQ(m.queueCycles(), 5u);
}

TEST(MemModule, StatsAccumulate)
{
    MemModule m(10);
    m.access(0);
    m.access(0);
    EXPECT_EQ(m.accesses(), 2u);
    EXPECT_EQ(m.busyCycles(), 20u);
    EXPECT_EQ(m.queueCycles(), 10u);
}
