/**
 * @file
 * Tests for the time-resolved telemetry subsystem: the TimeSeries
 * sampler (windowed deltas and gauges, ring eviction, the
 * sum-to-aggregate invariant), the event-queue sampling hook, the
 * per-line contention profiler, the stats-registry and JSON surface,
 * trace-ring drop accounting, and the Experiment export's
 * serial-vs-parallel byte identity.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "helpers.hh"
#include "json_parse.hh"
#include "stats/line_profiler.hh"
#include "stats/timeseries.hh"
#include "workloads/counter_apps.hh"

namespace {

using namespace dsmtest;

// ----- TimeSeries unit behavior -----

TEST(TimeSeriesUnit, DeltasGaugesAndRingEviction)
{
    TelemetryConfig tc;
    tc.enabled = true;
    tc.window = 10;
    tc.max_windows = 4;
    TimeSeries ts;
    ts.configure(tc);

    std::uint64_t ctr = 0, g = 0;
    ts.addDelta("ctr", [&] { return ctr; });
    ts.addGauge("g", [&] { return g; });
    EXPECT_EQ(ts.numSeries(), 2u);

    // Window w contributes delta w; six windows overflow the 4-ring.
    for (std::uint64_t w = 1; w <= 6; ++w) {
        ctr += w;
        g = w;
        ts.sample(w * 10);
    }
    EXPECT_EQ(ts.windowsSampled(), 6u);
    EXPECT_EQ(ts.windowsEvicted(), 2u);
    EXPECT_EQ(ts.seriesValues("ctr"),
              (std::vector<std::uint64_t>{3, 4, 5, 6}));
    // Evicted windows 1 and 2 are folded in, so the sum stays exact.
    EXPECT_EQ(ts.seriesTotal("ctr"), ctr);

    // finalize() captures the residual partial window.
    ctr += 5;
    ts.finalize(63);
    EXPECT_EQ(ts.windowsSampled(), 7u);
    EXPECT_EQ(ts.windowsEvicted(), 3u);
    EXPECT_EQ(ts.seriesValues("ctr"),
              (std::vector<std::uint64_t>{4, 5, 6, 5}));
    EXPECT_EQ(ts.seriesTotal("ctr"), ctr);
    // Gauges record instantaneous readings and simply lose old ones.
    EXPECT_EQ(ts.seriesValues("g"),
              (std::vector<std::uint64_t>{4, 5, 6, 6}));

    // finalize() is idempotent.
    ts.finalize(64);
    EXPECT_EQ(ts.windowsSampled(), 7u);

    // Unknown series read as empty/zero.
    EXPECT_EQ(ts.seriesTotal("nope"), 0u);
    EXPECT_TRUE(ts.seriesValues("nope").empty());

    // rebaseline() restarts the measured region at current counters.
    ts.rebaseline();
    EXPECT_EQ(ts.windowsSampled(), 0u);
    EXPECT_EQ(ts.seriesTotal("ctr"), 0u);
    ctr += 7;
    ts.sample(70);
    EXPECT_EQ(ts.seriesTotal("ctr"), 7u);
    EXPECT_EQ(ts.windowsEvicted(), 0u);
}

TEST(TimeSeriesUnit, EventQueueSamplerFiresPerWindowBoundary)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.setSampler(10, [&](Tick t) { fired.push_back(t); });

    bool ran = false;
    eq.schedule(5, [] {});
    eq.schedule(25, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    // Boundaries 10 and 20 are delivered before the event at 25; the
    // event at 5 precedes the first boundary.
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));

    // The final clock jump of runUntil() crosses boundaries too.
    eq.runUntil(41);
    EXPECT_EQ(eq.now(), 41u);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

// ----- LineProfiler unit behavior -----

TEST(LineProfilerUnit, ScoresRankAndMigrations)
{
    LineProfiler lp;
    lp.noteService(0x100, 7);
    lp.noteService(0x100, 3);
    lp.noteNack(0x100);
    lp.noteService(0x200, 1);

    // Regrant to the same owner is not a migration; a hand-off is.
    lp.noteOwner(0x100, 1);
    lp.noteOwner(0x100, 1);
    lp.noteOwner(0x100, 2);

    LineProfile p = lp.profile(0x100);
    EXPECT_EQ(p.requests, 2u);
    EXPECT_EQ(p.service_cycles, 10u);
    EXPECT_EQ(p.nacks, 1u);
    EXPECT_EQ(p.migrations, 1u);
    EXPECT_EQ(p.score(), 4u);
    EXPECT_EQ(lp.profile(0x7f000000).requests, 0u);

    EXPECT_EQ(lp.linesTracked(), 2u);
    std::vector<LineProfiler::Ranked> top = lp.ranked(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].addr, 0x100u);
    EXPECT_EQ(top[1].addr, 0x200u);
    EXPECT_GE(top[0].prof.score(), top[1].prof.score());

    // Ties break by ascending address, deterministically.
    lp.noteService(0x300, 1);
    top = lp.ranked(8);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[1].addr, 0x200u);
    EXPECT_EQ(top[2].addr, 0x300u);
}

// ----- System-level invariants -----

TEST(Telemetry, WindowDeltasSumToAggregates)
{
    Config cfg = smallConfig(SyncPolicy::INV, 16);
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 512;
    System sys(cfg);

    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = Primitive::FAP;
    app.contention = 8;
    app.phases = 8;
    CounterAppResult r = runCounterApp(sys, app);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);

    TimeSeries *ts = sys.telemetry();
    ASSERT_NE(ts, nullptr);
    ts->finalize(sys.now());
    EXPECT_GT(ts->windowsSampled(), 1u);

    // Every per-window delta, summed over all windows (including any
    // evicted ones), equals the end-of-run aggregate exactly.
    SysStats agg = sys.stats();
    const MeshStats &ms = sys.mesh().stats();
    EXPECT_EQ(ts->seriesTotal("nacks"), agg.nacks);
    EXPECT_EQ(ts->seriesTotal("retries"), agg.retries);
    EXPECT_EQ(ts->seriesTotal("invalidations"), agg.invalidations);
    EXPECT_EQ(ts->seriesTotal("messages"), ms.messages);
    EXPECT_EQ(ts->seriesTotal("flits"), ms.flits);
}

TEST(Telemetry, SumToAggregateSurvivesEviction)
{
    // A ring far smaller than the run: most windows are evicted, yet
    // the folded evicted sums keep the totals exact.
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 128;
    cfg.telemetry.max_windows = 2;
    System sys(cfg);

    CounterAppConfig app;
    app.contention = 8;
    app.phases = 8;
    CounterAppResult r = runCounterApp(sys, app);
    ASSERT_TRUE(r.completed);

    TimeSeries *ts = sys.telemetry();
    ASSERT_NE(ts, nullptr);
    ts->finalize(sys.now());
    EXPECT_GT(ts->windowsEvicted(), 0u);

    SysStats agg = sys.stats();
    const MeshStats &ms = sys.mesh().stats();
    EXPECT_EQ(ts->seriesTotal("nacks"), agg.nacks);
    EXPECT_EQ(ts->seriesTotal("messages"), ms.messages);
    EXPECT_EQ(ts->seriesTotal("flits"), ms.flits);
}

TEST(Telemetry, ClearStatsRebaselinesDeltas)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 64;
    System sys(cfg);
    Addr a = sys.allocSync();

    auto contend = [&] {
        for (NodeId n = 0; n < 4; ++n) {
            sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
                for (int i = 0; i < cnt; ++i)
                    co_await p.fetchAdd(addr, 1);
            }(sys.proc(n), a, 8));
        }
        runAll(sys);
    };

    contend(); // warmup region, discarded by clearStats()
    sys.clearStats();
    contend(); // measured region

    TimeSeries *ts = sys.telemetry();
    ASSERT_NE(ts, nullptr);
    ts->finalize(sys.now());
    // Post-clear windows sum to the post-clear aggregates, exactly as
    // the paper-figure benches (warmup + clearStats + measure) need.
    EXPECT_EQ(ts->seriesTotal("nacks"), sys.stats().nacks);
    EXPECT_EQ(ts->seriesTotal("retries"), sys.stats().retries);
}

TEST(Telemetry, HotLineRankingIdentifiesContendedCounter)
{
    Config cfg = smallConfig(SyncPolicy::INV, 8);
    cfg.telemetry.enabled = true;
    System sys(cfg);
    Addr hot = sys.allocSync();
    std::vector<Addr> cold;
    for (int i = 0; i < 4; ++i)
        cold.push_back(sys.alloc(BLOCK_BYTES, BLOCK_BYTES));

    // All eight processors hammer one counter; the cold blocks see a
    // few loads each and then hit in cache.
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, Addr h, std::vector<Addr> cs,
                     int cnt) -> Task {
            for (int i = 0; i < cnt; ++i) {
                co_await p.fetchAdd(h, 1);
                co_await p.load(cs[static_cast<std::size_t>(
                    (p.id() + i) % static_cast<int>(cs.size()))]);
            }
        }(sys.proc(n), hot, cold, 16));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(hot), 128u);

    LineProfiler *lp = sys.lineProfiler();
    ASSERT_NE(lp, nullptr);
    EXPECT_GT(lp->linesTracked(), 1u);
    std::vector<LineProfiler::Ranked> top = lp->ranked(4);
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0].addr, blockBase(hot));
    EXPECT_GT(top[0].prof.requests, 0u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].prof.score(), top[i].prof.score());
}

// ----- Stats-registry and JSON surface -----

TEST(Telemetry, ZeroCostWhenOff)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(1);
    runOp(sys, 0, AtomicOp::FAA, a, 1);

    EXPECT_EQ(sys.telemetry(), nullptr);
    EXPECT_EQ(sys.lineProfiler(), nullptr);
    EXPECT_FALSE(sys.mesh().linkCountersEnabled());

    // The registry JSON keeps its pre-telemetry shape: no timeseries
    // group appears on a run with telemetry off.
    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &root));
    EXPECT_FALSE(root.has("timeseries"));
}

TEST(Telemetry, RegistryGroupPresentWhenOn)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 256;
    System sys(cfg);
    Addr a = sys.allocSyncAt(1);
    runOp(sys, 0, AtomicOp::FAA, a, 1);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &root));
    const JsonValue *t = root.find("timeseries");
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->num("series"), 9.0);
    EXPECT_GE(t->num("lines_tracked"), 1.0);
    EXPECT_GE(t->num("windows"), 0.0);
    EXPECT_GE(t->num("windows_evicted"), 0.0);
}

TEST(Telemetry, TelemetryJsonShape)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.telemetry.enabled = true;
    cfg.telemetry.window = 128;
    System sys(cfg);
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await p.fetchAdd(addr, 1);
        }(sys.proc(n), a, 8));
    }
    runAll(sys);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.telemetryJson(), &root));

    const JsonValue *ts = root.find("timeseries");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->num("window_cycles"), 128.0);
    const JsonValue *series = ts->find("series");
    ASSERT_NE(series, nullptr);
    const JsonValue *nacks = series->find("nacks");
    ASSERT_NE(nacks, nullptr);
    EXPECT_EQ(nacks->str("kind"), "delta");
    const JsonValue *vals = nacks->find("values");
    ASSERT_NE(vals, nullptr);
    EXPECT_TRUE(vals->isArray());
    const JsonValue *backlog = series->find("mem_backlog");
    ASSERT_NE(backlog, nullptr);
    EXPECT_EQ(backlog->str("kind"), "gauge");

    // The contended counter is a sync line and tops the hot-line table.
    const JsonValue *hot = root.find("hot_lines");
    ASSERT_NE(hot, nullptr);
    ASSERT_TRUE(hot->isArray());
    ASSERT_FALSE(hot->array.empty());
    const JsonValue &first = hot->array[0];
    EXPECT_EQ(first.num("addr"), static_cast<double>(blockBase(a)));
    EXPECT_GT(first.num("score"), 0.0);
    ASSERT_NE(first.find("sync"), nullptr);
    EXPECT_TRUE(first.find("sync")->boolean);

    // Per-directed-link offered load, row-major nodes x nodes.
    const JsonValue *links = root.find("links");
    ASSERT_NE(links, nullptr);
    EXPECT_EQ(links->num("nodes"), 4.0);
    EXPECT_EQ(links->num("mesh_x"), 2.0);
    const JsonValue *flits = links->find("flits");
    ASSERT_NE(flits, nullptr);
    ASSERT_EQ(flits->array.size(), 16u);
    double total = 0;
    for (const JsonValue &v : flits->array)
        total += v.number;
    EXPECT_GT(total, 0.0);
}

// ----- Trace-ring drop accounting (bounded-ring observability) -----

TEST(TraceAccounting, RecordedAndDroppedSurfaceInStatsAndChromeExport)
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.trace.enabled = true;
    cfg.trace.capacity = 16; // tiny ring: overwrites are certain
    System sys(cfg);
    Addr a = sys.allocSync();
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await p.fetchAdd(addr, 1);
        }(sys.proc(n), a, 8));
    }
    runAll(sys);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &root));
    const JsonValue *tr = root.find("trace");
    ASSERT_NE(tr, nullptr);
    double recorded = tr->num("recorded");
    double dropped = tr->num("dropped");
    EXPECT_GT(recorded, 16.0);
    // Retained = recorded - dropped = the ring capacity once wrapped.
    EXPECT_EQ(recorded - dropped, 16.0);

    // The Chrome export carries the same accounting in its footer.
    JsonValue chrome;
    ASSERT_TRUE(parseJsonOrFail(sys.tracer().exportChromeJson(), &chrome));
    EXPECT_EQ(chrome.num("dsm_recorded"), recorded);
    EXPECT_EQ(chrome.num("dsm_dropped"), dropped);
}

TEST(TraceAccounting, NoTraceGroupWhenTracingOff)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(1);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.statsJson(), &root));
    EXPECT_FALSE(root.has("trace"));
}

// ----- Experiment export determinism -----

namespace exp_ident {

Experiment
build()
{
    Experiment ex("ts_identity", smallConfig(SyncPolicy::INV, 16));
    ex.quiet(true).writeReport(false).timeseries(true);
    for (int c : {4, 8}) {
        CounterAppConfig app;
        app.kind = CounterKind::LOCK_FREE;
        app.prim = Primitive::FAP;
        app.contention = c;
        app.phases = 4;
        ex.point("INV FAP", "c=" + std::to_string(c),
                 smallConfig(SyncPolicy::INV, 16), [app](System &sys) {
                     CounterAppResult r = runCounterApp(sys, app);
                     PointResult pr;
                     pr.value = r.avg_cycles_per_update;
                     pr.metrics = collectRunMetrics(sys);
                     return pr;
                 });
    }
    return ex;
}

} // namespace exp_ident

TEST(TelemetryExperiment, SerialAndParallelExportsAreByteIdentical)
{
    Experiment serial = exp_ident::build();
    serial.run(1);
    Experiment parallel = exp_ident::build();
    parallel.run(4);

    ASSERT_FALSE(serial.timeseriesJson().empty());
    EXPECT_EQ(serial.timeseriesJson(), parallel.timeseriesJson());
    EXPECT_EQ(serial.reportJson(), parallel.reportJson());

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(serial.timeseriesJson(), &root));
    EXPECT_EQ(root.str("schema"), "dsm-timeseries-v1");
    EXPECT_EQ(root.str("bench"), "ts_identity");
    const JsonValue *meta = root.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->num("procs"), 16.0);
    const JsonValue *points = root.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_TRUE(points->isArray());
    ASSERT_EQ(points->array.size(), 2u);
    for (const JsonValue &p : points->array) {
        EXPECT_EQ(p.str("impl"), "INV FAP");
        EXPECT_TRUE(p.has("timeseries"));
        EXPECT_TRUE(p.has("hot_lines"));
        EXPECT_TRUE(p.has("links"));
    }
}

TEST(TelemetryExperiment, NoTimeseriesDocumentWhenOff)
{
    unsetenv("DSM_TIMESERIES"); // the env switch must not leak in
    Experiment ex("ts_off", smallConfig(SyncPolicy::INV, 4));
    ex.quiet(true).writeReport(false);
    ex.point("INV FAP", "c=1", smallConfig(SyncPolicy::INV, 4),
             [](System &sys) {
                 Addr a = sys.allocSync();
                 sys.spawn([](Proc &p, Addr addr) -> Task {
                     co_await p.fetchAdd(addr, 1);
                 }(sys.proc(0), a));
                 sys.run();
                 PointResult pr;
                 pr.metrics = collectRunMetrics(sys);
                 return pr;
             });
    ex.run(1);
    EXPECT_TRUE(ex.timeseriesJson().empty());
    EXPECT_TRUE(ex.timeseriesPath().empty());
}

} // anonymous namespace
