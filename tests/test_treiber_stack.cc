/** @file Treiber stack tests, including the Section 2.2 ABA scenario. */

#include <gtest/gtest.h>

#include <set>

#include "helpers.hh"
#include "sync/treiber_stack.hh"

using namespace dsmtest;

class StackPrim : public testing::TestWithParam<Primitive>
{
};

TEST_P(StackPrim, PushPopSingleThread)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    TreiberStack st(sys, GetParam(), 8);
    sys.spawn([](Proc &p, TreiberStack &s) -> Task {
        co_await s.push(p, 0, 100);
        co_await s.push(p, 1, 101);
        co_await s.push(p, 2, 102);
        EXPECT_EQ(co_await s.pop(p), 2);
        EXPECT_EQ(co_await s.pop(p), 1);
        EXPECT_EQ(co_await s.pop(p), 0);
        EXPECT_EQ(co_await s.pop(p), -1); // empty
    }(sys.proc(0), st));
    runAll(sys);
}

TEST_P(StackPrim, ConcurrentPushesAllLand)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    const int per_proc = 8;
    TreiberStack st(sys, GetParam(), 4 * per_proc);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, TreiberStack &s, int base, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await s.push(p, base + i,
                                static_cast<Word>(base + i + 1000));
        }(sys.proc(n), st, n * per_proc, per_proc));
    }
    runAll(sys);
    // Pop everything on one proc; we must see each node exactly once.
    std::set<int> popped;
    sys.spawn([](Proc &p, TreiberStack &s, std::set<int> *out) -> Task {
        for (;;) {
            int id = co_await s.pop(p);
            if (id < 0)
                break;
            out->insert(id);
        }
    }(sys.proc(0), st, &popped));
    runAll(sys);
    EXPECT_EQ(popped.size(), static_cast<size_t>(4 * per_proc));
}

TEST_P(StackPrim, ConcurrentMixedTraffic)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    const int nodes_per_proc = 4;
    TreiberStack st(sys, GetParam(), 8 * nodes_per_proc);
    std::uint64_t pops = 0;
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, TreiberStack &s, int base,
                     std::uint64_t *pop_count) -> Task {
            // Each proc owns its nodes, pushing and popping repeatedly;
            // node ownership transfers via the stack, so reuse a private
            // pool slot only after popping something.
            for (int i = 0; i < nodes_per_proc; ++i)
                co_await s.push(p, base + i, static_cast<Word>(base + i));
            for (int round = 0; round < 10; ++round) {
                int got = co_await s.pop(p);
                if (got >= 0) {
                    ++*pop_count;
                    co_await s.push(p, got, static_cast<Word>(got));
                }
            }
        }(sys.proc(n), st, n * nodes_per_proc, &pops));
    }
    runAll(sys);
    EXPECT_GT(pops, 0u);
    // Drain and verify no duplicates / losses.
    std::set<int> popped;
    sys.spawn([](Proc &p, TreiberStack &s, std::set<int> *out) -> Task {
        for (;;) {
            int id = co_await s.pop(p);
            if (id < 0)
                break;
            EXPECT_TRUE(out->insert(id).second) << "duplicate node";
        }
    }(sys.proc(0), st, &popped));
    runAll(sys);
    EXPECT_EQ(popped.size(), static_cast<size_t>(8 * nodes_per_proc));
}

INSTANTIATE_TEST_SUITE_P(Prims, StackPrim,
                         testing::Values(Primitive::CAS, Primitive::LLSC),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

// ----- The pointer (ABA) problem, Section 2.2 -----
//
// Stack is [A, B] (A on top). A slow popper reads head=A and next=B.
// Meanwhile another processor pops A, pops B, and pushes A back: the
// stack is [A] and B is free. With CAS, the slow pop's compare succeeds
// (head is again A) and installs B as the new head -- resurrecting a
// freed node. With LL/SC the intervening writes invalidate the
// reservation, so the SC fails and the popper retries correctly.

namespace {

Task
slowPop(Proc &p, TreiberStack &st, SyncBarrier &g1, SyncBarrier &g2,
        Primitive prim, OpResult *attempt, Word *observed_head)
{
    Addr head = st.headAddr();
    Word h = prim == Primitive::CAS ? (co_await p.load(head)).value
                                    : (co_await p.ll(head)).value;
    *observed_head = h;
    Word next = (co_await p.load(st.nodeNextAddr(
                     static_cast<int>(h) - 1))).value;
    co_await g1.arrive();
    co_await g2.arrive(); // interference happens between the gates
    if (prim == Primitive::CAS)
        *attempt = co_await p.cas(head, h, next);
    else
        *attempt = co_await p.sc(head, next);
}

Task
interferer(Proc &p, TreiberStack &st, SyncBarrier &g1, SyncBarrier &g2)
{
    co_await g1.arrive();
    int a = co_await st.pop(p); // pops A
    int b = co_await st.pop(p); // pops B
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    co_await st.push(p, a, 500); // pushes A back; B stays free
    co_await g2.arrive();
}

} // namespace

TEST(StackAba, CasSuffersAba)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    TreiberStack st(sys, Primitive::CAS, 4);
    sys.spawn([](Proc &p, TreiberStack &s) -> Task {
        co_await s.push(p, 1, 200); // B deeper
        co_await s.push(p, 0, 100); // A on top
    }(sys.proc(0), st));
    runAll(sys);

    SyncBarrier g1(sys, 2), g2(sys, 2);
    OpResult attempt;
    Word observed = 0;
    sys.spawn(slowPop(sys.proc(1), st, g1, g2, Primitive::CAS, &attempt,
                      &observed));
    sys.spawn(interferer(sys.proc(2), st, g1, g2));
    runAll(sys);

    EXPECT_EQ(observed, 1u);         // saw A on top
    EXPECT_TRUE(attempt.success);    // ABA: the CAS wrongly succeeds
    // The head now points at B, which was popped (freed) -- corruption.
    EXPECT_EQ(sys.debugRead(st.headAddr()), 2u);
}

TEST(StackAba, LlScIsImmune)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    TreiberStack st(sys, Primitive::LLSC, 4);
    sys.spawn([](Proc &p, TreiberStack &s) -> Task {
        co_await s.push(p, 1, 200);
        co_await s.push(p, 0, 100);
    }(sys.proc(0), st));
    runAll(sys);

    SyncBarrier g1(sys, 2), g2(sys, 2);
    OpResult attempt;
    Word observed = 0;
    sys.spawn(slowPop(sys.proc(1), st, g1, g2, Primitive::LLSC, &attempt,
                      &observed));
    sys.spawn(interferer(sys.proc(2), st, g1, g2));
    runAll(sys);

    EXPECT_EQ(observed, 1u);
    EXPECT_FALSE(attempt.success);   // the reservation caught the writes
    EXPECT_EQ(sys.debugRead(st.headAddr()), 1u); // stack intact: [A]
}
