/** @file Unit tests for the sparse memory backing store. */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

using namespace dsm;

TEST(BackingStore, ZeroInitialized)
{
    BackingStore bs;
    EXPECT_EQ(bs.readWord(0x1000), 0u);
    EXPECT_EQ(bs.readWord(0), 0u);
}

TEST(BackingStore, WordRoundTrip)
{
    BackingStore bs;
    bs.writeWord(0x40, 0xdeadbeefULL);
    EXPECT_EQ(bs.readWord(0x40), 0xdeadbeefULL);
    EXPECT_EQ(bs.readWord(0x48), 0u);
}

TEST(BackingStore, UnalignedAccessUsesWordBase)
{
    BackingStore bs;
    bs.writeWord(0x44, 7); // within word at 0x40
    EXPECT_EQ(bs.readWord(0x40), 7u);
    EXPECT_EQ(bs.readWord(0x47), 7u);
}

TEST(BackingStore, BlockRoundTrip)
{
    BackingStore bs;
    std::array<Word, BLOCK_WORDS> data{1, 2, 3, 4};
    bs.writeBlock(0x80, data);
    EXPECT_EQ(bs.readBlock(0x80), data);
    EXPECT_EQ(bs.readWord(0x88), 2u);
    EXPECT_EQ(bs.readWord(0x98), 4u);
}

TEST(BackingStore, BlockReadUsesBlockBase)
{
    BackingStore bs;
    std::array<Word, BLOCK_WORDS> data{9, 8, 7, 6};
    bs.writeBlock(0x100, data);
    EXPECT_EQ(bs.readBlock(0x108), data);
}
