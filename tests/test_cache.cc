/** @file Unit tests for the set-associative cache. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace dsm;

namespace {

std::array<Word, BLOCK_WORDS>
pattern(Word base)
{
    return {base, base + 1, base + 2, base + 3};
}

} // namespace

TEST(Cache, MissOnEmpty)
{
    Cache c(8, 2);
    EXPECT_EQ(c.lookup(0x40), nullptr);
    EXPECT_EQ(c.peek(0x40), nullptr);
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, AllocateAndLookup)
{
    Cache c(8, 2);
    Victim v;
    CacheLine *line = c.allocate(0x40, &v);
    EXPECT_FALSE(v.valid);
    line->state = LineState::SHARED;
    line->data = pattern(10);
    CacheLine *hit = c.lookup(0x48);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->readWord(0x48), 11u);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(Cache, WordReadWrite)
{
    Cache c(8, 2);
    CacheLine *line = c.allocate(0x100, nullptr);
    line->state = LineState::EXCLUSIVE;
    line->writeWord(0x110, 77);
    EXPECT_EQ(line->readWord(0x110), 77u);
    EXPECT_EQ(line->readWord(0x100), 0u);
}

TEST(Cache, LruEvictsColdestWay)
{
    Cache c(1, 2); // one set, two ways
    c.allocate(0x00, nullptr)->state = LineState::SHARED;
    c.allocate(0x20, nullptr)->state = LineState::SHARED;
    // Touch 0x00 so 0x20 becomes LRU.
    ASSERT_NE(c.lookup(0x00), nullptr);
    Victim v;
    c.allocate(0x40, &v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.base, 0x20u);
    EXPECT_NE(c.peek(0x00), nullptr);
    EXPECT_EQ(c.peek(0x20), nullptr);
}

TEST(Cache, VictimCarriesStateAndData)
{
    Cache c(1, 1);
    CacheLine *line = c.allocate(0x40, nullptr);
    line->state = LineState::EXCLUSIVE;
    line->data = pattern(5);
    Victim v;
    c.allocate(0x60, &v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.base, 0x40u);
    EXPECT_EQ(v.state, LineState::EXCLUSIVE);
    EXPECT_EQ(v.data, pattern(5));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, InvalidateDropsLine)
{
    Cache c(8, 2);
    c.allocate(0x40, nullptr)->state = LineState::SHARED;
    c.invalidate(0x40);
    EXPECT_EQ(c.peek(0x40), nullptr);
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(2, 1);
    c.allocate(0x00, nullptr)->state = LineState::SHARED; // set 0
    c.allocate(0x20, nullptr)->state = LineState::SHARED; // set 1
    EXPECT_EQ(c.validLines(), 2u);
    EXPECT_NE(c.peek(0x00), nullptr);
    EXPECT_NE(c.peek(0x20), nullptr);
}

TEST(Cache, ReservationLifecycle)
{
    Cache c(8, 2);
    EXPECT_FALSE(c.reservationValid());
    c.setReservation(0x48);
    EXPECT_TRUE(c.reservationValid());
    EXPECT_EQ(c.reservationAddr(), 0x40u);
    c.clearReservation();
    EXPECT_FALSE(c.reservationValid());
}

TEST(Cache, ReservationClearedByCoveringInvalidate)
{
    Cache c(8, 2);
    c.allocate(0x40, nullptr)->state = LineState::SHARED;
    c.setReservation(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.reservationValid());
}

TEST(Cache, ReservationSurvivesOtherInvalidate)
{
    Cache c(8, 2);
    c.allocate(0x40, nullptr)->state = LineState::SHARED;
    c.allocate(0x80, nullptr)->state = LineState::SHARED;
    c.setReservation(0x40);
    c.invalidate(0x80);
    EXPECT_TRUE(c.reservationValid());
}

TEST(Cache, ReservationClearedByEviction)
{
    Cache c(1, 1);
    c.allocate(0x40, nullptr)->state = LineState::SHARED;
    c.setReservation(0x40);
    Victim v;
    c.allocate(0x60, &v);
    EXPECT_FALSE(c.reservationValid());
}

TEST(CacheDeath, DoubleAllocatePanics)
{
    Cache c(8, 2);
    c.allocate(0x40, nullptr)->state = LineState::SHARED;
    EXPECT_DEATH(c.allocate(0x40, nullptr), "already-present");
}
