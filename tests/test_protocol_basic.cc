/** @file Directed tests of the base write-invalidate directory protocol. */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

TEST(ProtocolBasic, StoreThenLoadSameProc)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    EXPECT_EQ(runOp(sys, 0, AtomicOp::STORE, a, 42).success, true);
    EXPECT_EQ(runOp(sys, 0, AtomicOp::LOAD, a).value, 42u);
    EXPECT_EQ(sys.debugRead(a), 42u);
}

TEST(ProtocolBasic, LoadReturnsInitializedMemory)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 1234);
    EXPECT_EQ(runOp(sys, 2, AtomicOp::LOAD, a).value, 1234u);
}

TEST(ProtocolBasic, StoreIsVisibleToOtherProc)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 7);
    EXPECT_EQ(runOp(sys, 3, AtomicOp::LOAD, a).value, 7u);
}

TEST(ProtocolBasic, ExclusiveTransferBetweenWriters)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    runOp(sys, 1, AtomicOp::STORE, a, 2);
    runOp(sys, 2, AtomicOp::STORE, a, 3);
    EXPECT_EQ(sys.debugRead(a), 3u);
    // Node 2 now owns the line exclusively.
    const CacheLine *line = sys.ctrl(2).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::EXCLUSIVE);
    EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    EXPECT_EQ(sys.ctrl(1).cache().peek(a), nullptr);
}

TEST(ProtocolBasic, ReadersShareALine)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 9);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(runOp(sys, n, AtomicOp::LOAD, a).value, 9u);
    for (NodeId n = 0; n < 4; ++n) {
        const CacheLine *line = sys.ctrl(n).cache().peek(a);
        ASSERT_NE(line, nullptr) << "node " << n;
        EXPECT_EQ(line->state, LineState::SHARED);
    }
}

TEST(ProtocolBasic, WriterInvalidatesReaders)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 9);
    for (NodeId n = 0; n < 4; ++n)
        runOp(sys, n, AtomicOp::LOAD, a);
    clearStats(sys);
    runOp(sys, 1, AtomicOp::STORE, a, 10);
    // Three other sharers were invalidated (node 1 upgraded).
    EXPECT_EQ(sys.stats().invalidations, 3u);
    for (NodeId n = 0; n < 4; ++n) {
        const CacheLine *line = sys.ctrl(n).cache().peek(a);
        if (n == 1) {
            ASSERT_NE(line, nullptr);
            EXPECT_EQ(line->state, LineState::EXCLUSIVE);
        } else {
            EXPECT_EQ(line, nullptr) << "node " << n;
        }
    }
    EXPECT_EQ(runOp(sys, 3, AtomicOp::LOAD, a).value, 10u);
}

TEST(ProtocolBasic, ReadAfterRemoteWriteDowngradesOwner)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 5);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 5u);
    const CacheLine *owner = sys.ctrl(0).cache().peek(a);
    const CacheLine *reader = sys.ctrl(1).cache().peek(a);
    ASSERT_NE(owner, nullptr);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(owner->state, LineState::SHARED);
    EXPECT_EQ(reader->state, LineState::SHARED);
}

TEST(ProtocolBasic, LoadExclusiveGrantsOwnership)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 77);
    OpResult r = runOp(sys, 2, AtomicOp::LOAD_EXCL, a);
    EXPECT_EQ(r.value, 77u);
    const CacheLine *line = sys.ctrl(2).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::EXCLUSIVE);
    // A subsequent store by the same node is a pure cache hit.
    clearStats(sys);
    auto msgs_before = sys.mesh().stats().messages;
    runOp(sys, 2, AtomicOp::STORE, a, 78);
    EXPECT_EQ(sys.mesh().stats().messages, msgs_before);
}

TEST(ProtocolBasic, LoadExclusiveUpgradesSharedCopy)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 3);
    runOp(sys, 0, AtomicOp::LOAD, a);
    runOp(sys, 1, AtomicOp::LOAD, a);
    clearStats(sys);
    OpResult r = runOp(sys, 0, AtomicOp::LOAD_EXCL, a);
    EXPECT_EQ(r.value, 3u);
    EXPECT_EQ(sys.stats().invalidations, 1u); // node 1 invalidated
    EXPECT_EQ(sys.ctrl(0).cache().peek(a)->state, LineState::EXCLUSIVE);
}

TEST(ProtocolBasic, DropCopySharedNotifiesHome)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    sys.writeInit(a, 1);
    runOp(sys, 0, AtomicOp::LOAD, a);
    runOp(sys, 1, AtomicOp::LOAD, a);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::DROP_COPY, a);
    EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    EXPECT_EQ(sys.stats().drop_notifies, 1u);
    // A later writer should invalidate only the remaining sharer.
    runOp(sys, 2, AtomicOp::STORE, a, 2);
    EXPECT_EQ(sys.stats().invalidations, 1u);
}

TEST(ProtocolBasic, DropCopyExclusiveWritesBack)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 11);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::DROP_COPY, a);
    EXPECT_EQ(sys.stats().writebacks, 1u);
    EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 11u);
}

TEST(ProtocolBasic, DropCopyOnAbsentLineIsLocal)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    auto msgs = sys.mesh().stats().messages;
    runOp(sys, 0, AtomicOp::DROP_COPY, a);
    EXPECT_EQ(sys.mesh().stats().messages, msgs);
}

TEST(ProtocolBasic, EvictionWritesBackDirtyLine)
{
    // Tiny direct-mapped cache: the second store to a conflicting block
    // evicts the first, which must reach memory.
    Config cfg = smallConfig();
    cfg.machine.cache_sets = 1;
    cfg.machine.cache_ways = 1;
    System sys(cfg);
    Addr a = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr b = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 111);
    runOp(sys, 0, AtomicOp::STORE, b, 222); // evicts a
    EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 111u);
    EXPECT_EQ(sys.debugRead(b), 222u);
}

TEST(ProtocolBasic, WordsInOneBlockAreIndependent)
{
    System sys(smallConfig());
    Addr block = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    for (unsigned w = 0; w < BLOCK_WORDS; ++w)
        runOp(sys, 0, AtomicOp::STORE, block + w * WORD_BYTES, 100 + w);
    for (unsigned w = 0; w < BLOCK_WORDS; ++w)
        EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD,
                        block + w * WORD_BYTES).value,
                  100u + w);
}

TEST(ProtocolBasic, ManyBlocksManyProcs)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    std::vector<Addr> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(sys.alloc(WORD_BYTES));
    for (int i = 0; i < 32; ++i)
        runOp(sys, i % 8, AtomicOp::STORE, addrs[i],
              static_cast<Word>(i * 3));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(runOp(sys, (i + 5) % 8, AtomicOp::LOAD,
                        addrs[i]).value,
                  static_cast<Word>(i * 3));
}
