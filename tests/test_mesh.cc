/** @file Unit tests for the 2-D wormhole mesh model. */

#include <gtest/gtest.h>

#include <vector>

#include "net/mesh.hh"
#include "sim/event_queue.hh"

using namespace dsm;

namespace {

MachineConfig
smallMachine()
{
    MachineConfig mc;
    mc.num_procs = 4;
    mc.mesh_x = 2;
    mc.mesh_y = 2;
    return mc;
}

struct Env
{
    EventQueue eq;
    MachineConfig mc = smallMachine();
    Mesh mesh{eq, mc};
    std::vector<std::pair<Tick, Msg>> delivered;

    Env()
    {
        for (NodeId n = 0; n < mc.num_procs; ++n) {
            mesh.setHandler(n, [this](const Msg &m) {
                delivered.emplace_back(eq.now(), m);
            });
        }
    }

    Msg
    makeMsg(NodeId src, NodeId dst, MsgType t = MsgType::GET_S)
    {
        Msg m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        return m;
    }
};

} // namespace

TEST(Mesh, HopCountIsManhattanDistance)
{
    Env e;
    EXPECT_EQ(e.mesh.hops(0, 0), 0);
    EXPECT_EQ(e.mesh.hops(0, 1), 1);
    EXPECT_EQ(e.mesh.hops(0, 2), 1);
    EXPECT_EQ(e.mesh.hops(0, 3), 2);
    EXPECT_EQ(e.mesh.hops(3, 0), 2);
}

TEST(Mesh, SingleMessageLatency)
{
    Env e;
    // GET_S: 8 payload + 8 header = 16 bytes = 2 flits; ser = 2 cycles.
    // depart 0; head arrives 0 + 2 hops * 2 = 4; deliver 4 + 2 = 6.
    e.mesh.send(e.makeMsg(0, 3));
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 1u);
    EXPECT_EQ(e.delivered[0].first, 6u);
}

TEST(Mesh, DataMessageTakesLongerToSerialize)
{
    Env e;
    Msg m = e.makeMsg(0, 3, MsgType::DATA_X);
    m.has_data = true; // 8 + 32 + 8 header = 48 bytes = 6 flits
    e.mesh.send(m);
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 1u);
    EXPECT_EQ(e.delivered[0].first, 4u + 6u);
}

TEST(Mesh, InjectionPortSerializesSameSource)
{
    Env e;
    e.mesh.send(e.makeMsg(0, 3));
    e.mesh.send(e.makeMsg(0, 3));
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 2u);
    // Second message departs at 2 (after the first's 2 flits), head
    // arrives 2+4=6, ejection free at 6 (first delivered), so 6+2=8.
    EXPECT_EQ(e.delivered[0].first, 6u);
    EXPECT_EQ(e.delivered[1].first, 8u);
}

TEST(Mesh, EjectionPortSerializesSameDestination)
{
    Env e;
    e.mesh.send(e.makeMsg(1, 0)); // 1 hop: head 2, deliver 4
    e.mesh.send(e.makeMsg(2, 0)); // 1 hop: head 2, but port busy to 4
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 2u);
    EXPECT_EQ(e.delivered[0].first, 4u);
    EXPECT_EQ(e.delivered[1].first, 6u);
}

TEST(Mesh, SameSrcDstPairIsFifo)
{
    Env e;
    for (int i = 0; i < 10; ++i) {
        Msg m = e.makeMsg(0, 3);
        m.value = static_cast<Word>(i);
        e.mesh.send(m);
    }
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(e.delivered[static_cast<size_t>(i)].second.value,
                  static_cast<Word>(i));
}

TEST(Mesh, LocalDeliveryBypassesNetwork)
{
    Env e;
    e.mesh.send(e.makeMsg(2, 2));
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 1u);
    EXPECT_EQ(e.delivered[0].first, e.mc.local_latency);
    EXPECT_EQ(e.mesh.stats().messages, 0u);
    EXPECT_EQ(e.mesh.stats().local, 1u);
}

TEST(Mesh, StatsCountMessagesAndFlits)
{
    Env e;
    e.mesh.send(e.makeMsg(0, 3)); // 2 flits
    Msg m = e.makeMsg(0, 1, MsgType::DATA_S);
    m.has_data = true; // 6 flits
    e.mesh.send(m);
    e.eq.run();
    EXPECT_EQ(e.mesh.stats().messages, 2u);
    EXPECT_EQ(e.mesh.stats().flits, 8u);
    EXPECT_EQ(e.mesh.stats().hop_sum, 3u);
}

TEST(Mesh, LaterSendSeesBusyPort)
{
    Env e;
    e.mesh.send(e.makeMsg(0, 3));
    e.eq.schedule(1, [&e] { e.mesh.send(e.makeMsg(0, 1)); });
    e.eq.run();
    ASSERT_EQ(e.delivered.size(), 2u);
    // Second message cannot inject before tick 2.
    // depart 2, head 2+2=4, deliver 4+2=6.
    EXPECT_EQ(e.delivered[1].first, 6u);
}
