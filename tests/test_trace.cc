/**
 * @file
 * Tests for the protocol event tracer: ring-buffer bounds, category
 * filtering, deterministic capture across identical seeded runs, and
 * well-formed Chrome trace-event JSON from a contended run.
 */

#include <map>
#include <set>

#include "helpers.hh"
#include "json_parse.hh"
#include "trace/trace.hh"
#include "workloads/counter_apps.hh"

namespace {

using namespace dsmtest;

TraceEvent
mkEvent(Tick tick, TraceCat cat, NodeId node = 0, Addr addr = 0)
{
    TraceEvent ev;
    ev.tick = tick;
    ev.cat = cat;
    ev.node = static_cast<std::int16_t>(node);
    ev.addr = addr;
    return ev;
}

TEST(TracerUnit, RingOverwritesOldestAndCountsDrops)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.capacity = 8;
    Tracer tr;
    tr.configure(cfg);
    ASSERT_EQ(tr.capacity(), 8u);
    ASSERT_TRUE(tr.enabled());

    for (Tick t = 0; t < 20; ++t)
        tr.record(mkEvent(t, TraceCat::NACK));

    EXPECT_EQ(tr.size(), 8u);
    EXPECT_EQ(tr.totalRecorded(), 20u);
    EXPECT_EQ(tr.dropped(), 12u);

    // Oldest records were overwritten; the survivors come back oldest
    // first.
    std::vector<TraceEvent> evs = tr.events();
    ASSERT_EQ(evs.size(), 8u);
    for (std::size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].tick, 12 + i);

    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.totalRecorded(), 0u);
    EXPECT_EQ(tr.capacity(), 8u);
}

TEST(TracerUnit, CategoryMaskFilters)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.categories = traceBit(TraceCat::NACK) |
                     traceBit(TraceCat::DIR_STATE);
    cfg.capacity = 16;
    Tracer tr;
    tr.configure(cfg);

    EXPECT_TRUE(tr.on(TraceCat::NACK));
    EXPECT_TRUE(tr.on(TraceCat::DIR_STATE));
    EXPECT_FALSE(tr.on(TraceCat::MSG_SEND));
    EXPECT_FALSE(tr.on(TraceCat::ATOMIC_START));

    // Instrumentation sites are expected to guard with on(); the test
    // mimics that contract.
    for (TraceCat cat : {TraceCat::NACK, TraceCat::MSG_SEND,
                         TraceCat::DIR_STATE, TraceCat::RETRY}) {
        if (tr.on(cat))
            tr.record(mkEvent(1, cat));
    }
    std::vector<TraceEvent> evs = tr.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].cat, TraceCat::NACK);
    EXPECT_EQ(evs[1].cat, TraceCat::DIR_STATE);
}

TEST(TracerUnit, DisabledConfigMeansMaskZero)
{
    Tracer tr;
    tr.configure(TraceConfig{}); // default: enabled = false
    EXPECT_FALSE(tr.enabled());
    for (unsigned c = 0; c < NUM_TRACE_CATEGORIES; ++c)
        EXPECT_FALSE(tr.on(static_cast<TraceCat>(c)));
}

TEST(TracerUnit, SetMaskProvisionsRingLazily)
{
    Tracer tr;
    EXPECT_EQ(tr.capacity(), 0u);
    tr.setMask(TRACE_ALL);
    EXPECT_TRUE(tr.enabled());
    EXPECT_GT(tr.capacity(), 0u);
    tr.record(mkEvent(7, TraceCat::RESV_SET));
    EXPECT_EQ(tr.size(), 1u);
}

/** A short contended LL/SC counter run with tracing fully enabled. */
Config
tracedConfig()
{
    Config cfg = smallConfig(SyncPolicy::INV, 4);
    cfg.trace.enabled = true;
    cfg.trace.categories = TRACE_ALL;
    cfg.trace.capacity = 1u << 16;
    return cfg;
}

CounterAppResult
runTracedCounter(System &sys)
{
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = Primitive::LLSC;
    app.contention = 4;
    app.phases = 12;
    CounterAppResult r = runCounterApp(sys, app);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    return r;
}

TEST(TraceSystem, DisabledTracingRecordsNothing)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    runTracedCounter(sys);
    EXPECT_FALSE(sys.tracer().enabled());
    EXPECT_EQ(sys.tracer().totalRecorded(), 0u);
}

TEST(TraceSystem, DeterministicOrderAcrossIdenticalRuns)
{
    std::vector<TraceEvent> first;
    for (int run = 0; run < 2; ++run) {
        System sys(tracedConfig());
        runTracedCounter(sys);
        std::vector<TraceEvent> evs = sys.tracer().events();
        ASSERT_GT(evs.size(), 0u);
        ASSERT_EQ(sys.tracer().dropped(), 0u)
            << "ring too small for a lossless comparison";
        if (run == 0) {
            first = evs;
            continue;
        }
        ASSERT_EQ(evs.size(), first.size());
        for (std::size_t i = 0; i < evs.size(); ++i) {
            EXPECT_EQ(evs[i].tick, first[i].tick) << "record " << i;
            EXPECT_EQ(evs[i].cat, first[i].cat) << "record " << i;
            EXPECT_EQ(evs[i].node, first[i].node) << "record " << i;
            EXPECT_EQ(evs[i].addr, first[i].addr) << "record " << i;
            EXPECT_EQ(evs[i].op, first[i].op) << "record " << i;
        }
    }
}

TEST(TraceSystem, CapturesProtocolActivity)
{
    System sys(tracedConfig());
    runTracedCounter(sys);

    std::map<TraceCat, int> counts;
    for (const TraceEvent &ev : sys.tracer().events())
        ++counts[ev.cat];

    EXPECT_GT(counts[TraceCat::MSG_SEND], 0);
    EXPECT_GT(counts[TraceCat::MSG_RECV], 0);
    EXPECT_GT(counts[TraceCat::DIR_STATE], 0);
    EXPECT_GT(counts[TraceCat::ATOMIC_START], 0);
    EXPECT_GT(counts[TraceCat::ATOMIC_COMPLETE], 0);
    EXPECT_GT(counts[TraceCat::RESV_SET], 0);
    // Four processors hammering one LL/SC counter must fail some SCs
    // or get NACKed at the home.
    EXPECT_GT(counts[TraceCat::NACK] + counts[TraceCat::RETRY], 0);

    // Ticks never decrease: the ring preserves simulation order.
    std::vector<TraceEvent> evs = sys.tracer().events();
    for (std::size_t i = 1; i < evs.size(); ++i)
        ASSERT_LE(evs[i - 1].tick, evs[i].tick);

    std::string text = sys.tracer().exportText();
    EXPECT_NE(text.find("dir_state"), std::string::npos);
    EXPECT_NE(text.find("msg_send"), std::string::npos);
}

TEST(TraceSystem, ChromeJsonIsWellFormed)
{
    System sys(tracedConfig());
    runTracedCounter(sys);
    ASSERT_EQ(sys.tracer().dropped(), 0u);

    JsonValue root;
    ASSERT_TRUE(parseJsonOrFail(sys.tracer().exportChromeJson(), &root));
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.str("displayTimeUnit"), "ns");

    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->array.size(), 0u);

    bool saw_thread_name = false;
    bool saw_dir_transition = false;
    bool saw_nack_or_retry = false;
    std::set<double> flow_starts, flow_ends;
    std::map<double, int> open_slices; // tid -> B minus E
    for (const JsonValue &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        std::string ph = ev.str("ph");
        ASSERT_FALSE(ph.empty());
        ASSERT_TRUE(ev.has("pid"));
        ASSERT_TRUE(ev.has("tid"));
        if (ph == "M") {
            saw_thread_name |= ev.str("name") == "thread_name";
            continue;
        }
        ASSERT_TRUE(ev.has("ts"));
        std::string cat = ev.str("cat");
        saw_dir_transition |= cat == "dir_state";
        saw_nack_or_retry |= cat == "nack" || cat == "retry";
        if (ph == "s")
            flow_starts.insert(ev.num("id"));
        if (ph == "f")
            flow_ends.insert(ev.num("id"));
        if (ph == "B")
            ++open_slices[ev.num("tid")];
        if (ph == "E")
            --open_slices[ev.num("tid")];
    }

    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(saw_dir_transition);
    EXPECT_TRUE(saw_nack_or_retry);

    // Flow arrows: every finish refers to an emitted start (the ring
    // did not wrap, so no send was lost).
    EXPECT_GT(flow_starts.size(), 0u);
    EXPECT_GT(flow_ends.size(), 0u);
    for (double id : flow_ends)
        EXPECT_TRUE(flow_starts.count(id)) << "dangling flow " << id;

    // Duration slices: the run quiesced, so every B has a matching E
    // on its track.
    for (const auto &[tid, open] : open_slices)
        EXPECT_EQ(open, 0) << "unbalanced B/E on tid " << tid;
}

} // namespace
