/** @file CLH queue lock tests across primitives and policies. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/clh_lock.hh"

using namespace dsmtest;

namespace {

Task
clhWorker(Proc &p, ClhLock &lock, Addr counter, Addr inside, int n,
          bool *violation)
{
    for (int i = 0; i < n; ++i) {
        co_await lock.acquire(p);
        OpResult in = co_await p.load(inside);
        if (in.value != 0)
            *violation = true;
        co_await p.store(inside, 1);
        OpResult c = co_await p.load(counter);
        co_await p.compute(3);
        co_await p.store(counter, c.value + 1);
        co_await p.store(inside, 0);
        co_await lock.release(p);
    }
}

} // namespace

class ClhMatrix
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(ClhMatrix, MutualExclusionAndProgress)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    ClhLock lock(sys, prim);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr inside = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    bool violation = false;
    const int per_proc = 8;
    for (NodeId n = 0; n < 8; ++n)
        sys.spawn(clhWorker(sys.proc(n), lock, counter, inside,
                            per_proc, &violation));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(sys.debugRead(counter), 64u);
    EXPECT_EQ(lock.acquisitions(), 64u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ClhMatrix,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                     SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

TEST(ClhLock, HandoffIsFifo)
{
    // Processors that enqueue in a known order must enter in that order.
    System sys(smallConfig(SyncPolicy::INV, 4));
    ClhLock lock(sys, Primitive::FAP);
    std::vector<int> order;
    SyncBarrier gate(sys, 4);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, ClhLock &l, SyncBarrier &g,
                     std::vector<int> *ord) -> Task {
            // Stagger arrivals deterministically: proc i swaps i-th.
            co_await g.arrive();
            co_await p.compute(static_cast<Tick>(1 + 500 * p.id()));
            co_await l.acquire(p);
            ord->push_back(p.id());
            co_await p.compute(2500); // hold past later arrivals
            co_await l.release(p);
        }(sys.proc(n), lock, gate, &order));
    }
    runAll(sys);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ClhLock, ReacquireAfterRotation)
{
    // CLH rotates node ownership between acquires; many consecutive
    // acquires by the same set must keep working.
    System sys(smallConfig(SyncPolicy::INV, 4));
    ClhLock lock(sys, Primitive::LLSC);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, ClhLock &l, Addr c) -> Task {
            for (int i = 0; i < 20; ++i) {
                co_await l.acquire(p);
                Word v = (co_await p.load(c)).value;
                co_await p.store(c, v + 1);
                co_await l.release(p);
            }
        }(sys.proc(n), lock, counter));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(counter), 80u);
}
