/** @file Tests for System::report() and SysStats::report(). */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

TEST(Report, MentionsConfigurationAndDomains)
{
    Config cfg = smallConfig(SyncPolicy::UNC);
    cfg.sync.use_drop_copy = true;
    System sys(cfg);
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    std::string r = sys.report();
    EXPECT_NE(r.find("4 procs (2x2 mesh)"), std::string::npos);
    EXPECT_NE(r.find("UNC+dc"), std::string::npos);
    EXPECT_NE(r.find("network:"), std::string::npos);
    EXPECT_NE(r.find("memory:"), std::string::npos);
    EXPECT_NE(r.find("caches:"), std::string::npos);
    EXPECT_NE(r.find("fetch_and_add"), std::string::npos);
}

TEST(Report, CountsMatchUnderlyingStats)
{
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    runOp(sys, 1, AtomicOp::LOAD, a);
    std::string r = sys.report();
    auto msgs = sys.mesh().stats().messages;
    EXPECT_NE(r.find(csprintf("%llu messages",
                              (unsigned long long)msgs)),
              std::string::npos);
}

TEST(Report, OpLatencyLinesOnlyForUsedOps)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    std::string r = sys.stats().report();
    EXPECT_NE(r.find("store"), std::string::npos);
    EXPECT_EQ(r.find("compare_and_swap"), std::string::npos);
}
