/** @file Unit tests for protocol message sizing and naming. */

#include <gtest/gtest.h>

#include "net/msg.hh"

using namespace dsm;

TEST(Msg, ControlMessagesAreSmall)
{
    Msg m;
    m.type = MsgType::GET_S;
    EXPECT_EQ(m.sizeBytes(), 8u);
    m.type = MsgType::INV;
    EXPECT_EQ(m.sizeBytes(), 8u);
    m.type = MsgType::INV_ACK;
    EXPECT_EQ(m.sizeBytes(), 8u);
}

TEST(Msg, OperandMessagesCarryWords)
{
    Msg m;
    m.type = MsgType::UNC_REQ;
    EXPECT_EQ(m.sizeBytes(), 8u + 2 * WORD_BYTES);
    m.type = MsgType::SC_REQ;
    EXPECT_EQ(m.sizeBytes(), 8u + WORD_BYTES);
    m.type = MsgType::UPDATE;
    EXPECT_EQ(m.sizeBytes(), 8u + WORD_BYTES);
}

TEST(Msg, DataMessagesCarryABlock)
{
    Msg m;
    m.type = MsgType::DATA_X;
    m.has_data = true;
    EXPECT_EQ(m.sizeBytes(), 8u + BLOCK_BYTES);
    m.type = MsgType::UPD_RESP;
    EXPECT_EQ(m.sizeBytes(), 8u + WORD_BYTES + BLOCK_BYTES);
}

TEST(Msg, OpClassification)
{
    EXPECT_TRUE(isFetchAndPhi(AtomicOp::TAS));
    EXPECT_TRUE(isFetchAndPhi(AtomicOp::FAA));
    EXPECT_TRUE(isFetchAndPhi(AtomicOp::FAS));
    EXPECT_TRUE(isFetchAndPhi(AtomicOp::FAO));
    EXPECT_FALSE(isFetchAndPhi(AtomicOp::CAS));
    EXPECT_FALSE(isFetchAndPhi(AtomicOp::LOAD));
    EXPECT_TRUE(isAtomic(AtomicOp::CAS));
    EXPECT_TRUE(isAtomic(AtomicOp::SC));
    EXPECT_FALSE(isAtomic(AtomicOp::LL));
    EXPECT_FALSE(isAtomic(AtomicOp::STORE));
}

TEST(Msg, NamesAreDistinct)
{
    EXPECT_STREQ(toString(MsgType::GET_S), "GetS");
    EXPECT_STREQ(toString(MsgType::FWD_NACK_WB), "FwdNackWb");
    EXPECT_STREQ(toString(AtomicOp::CAS), "compare_and_swap");
    EXPECT_STREQ(toString(AtomicOp::LL), "load_linked");
}

TEST(Msg, AddressHelpers)
{
    EXPECT_EQ(blockBase(0x47), 0x40u);
    EXPECT_EQ(blockBase(0x40), 0x40u);
    EXPECT_EQ(wordInBlock(0x40), 0u);
    EXPECT_EQ(wordInBlock(0x48), 1u);
    EXPECT_EQ(wordInBlock(0x58), 3u);
    EXPECT_EQ(wordBase(0x4c), 0x48u);
}
