/**
 * @file
 * Tests of the pure transition-function API (proto/transition.hh):
 *
 *  - purity: tf::step on the same (state, msg) twice yields
 *    byte-identical successor states and outcomes, and never mutates
 *    its input state;
 *  - stat-shape stability: the statsJson of a fixed Table 1-style
 *    counter run is byte-identical to the committed baseline, pinning
 *    the refactored driver's counters to the event-driven engine's.
 *    Regenerate with DSM_REGEN_BASELINES=1 after an *intended* stats
 *    change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cpu/system.hh"
#include "proto/transition.hh"
#include "sync/lockfree_counter.hh"

using namespace dsm;

namespace {

constexpr Addr BLOCK = BLOCK_BYTES;

/** A fixed world view for driving transitions without a System. */
struct FakeCtx : tf::StepCtx
{
    DirEntry de;
    std::array<Word, BLOCK_WORDS> blk{};

    bool isSync(Addr) const override { return true; }
    DirEntry dirEntry(Addr) const override { return de; }
    Word
    memWord(Addr a) const override
    {
        return blk[wordInBlock(a)];
    }
    std::array<Word, BLOCK_WORDS>
    memBlock(Addr) const override
    {
        return blk;
    }
    std::uint64_t activeTxnId(NodeId) const override { return 0; }
};

Config
twoNodeConfig(SyncPolicy pol)
{
    Config cfg;
    cfg.machine.num_procs = 2;
    cfg.machine.mesh_x = 2;
    cfg.machine.mesh_y = 1;
    cfg.machine.cache_sets = 1;
    cfg.machine.cache_ways = 1;
    cfg.sync.policy = pol;
    return cfg;
}

tf::Env
envFor(const Config &cfg, NodeId self, const FakeCtx &ctx)
{
    tf::Env e;
    e.cfg = &cfg;
    e.self = self;
    e.ctx = &ctx;
    return e;
}

} // namespace

TEST(Transition, StepIsPureAtHome)
{
    Config cfg = twoNodeConfig(SyncPolicy::INV);
    FakeCtx ctx;
    tf::Env env = envFor(cfg, 1, ctx);

    Msg m;
    m.type = MsgType::GET_X;
    m.src = 0;
    m.dst = 1;
    m.requester = 0;
    m.addr = BLOCK;
    m.word_addr = BLOCK;
    m.op = AtomicOp::FAA;
    m.value = 1;
    m.chain = 1;

    tf::CtrlState s(1, 1);
    const std::string before = tf::debugString(s);

    tf::StepResult r1 = tf::step(env, s, m);
    tf::StepResult r2 = tf::step(env, s, m);

    EXPECT_EQ(tf::debugString(s), before)
        << "step() mutated its const input state";
    EXPECT_EQ(tf::debugString(r1.next), tf::debugString(r2.next));
    EXPECT_EQ(tf::debugString(r1.out), tf::debugString(r2.out));
    EXPECT_FALSE(r1.out.effects.empty());
}

TEST(Transition, StepIsPureAtRequester)
{
    Config cfg = twoNodeConfig(SyncPolicy::INV);
    FakeCtx ctx;
    tf::Env env = envFor(cfg, 0, ctx);

    // Put node 0 into the waiting-for-DATA_X state via a real issue.
    tf::CtrlState s(1, 1);
    tf::OpReq req;
    req.op = AtomicOp::FAA;
    req.addr = BLOCK;
    req.value = 1;
    tf::Outcome issued = tf::issue(env, s, req);
    ASSERT_TRUE(s.txn.active);
    ASSERT_TRUE(s.txn.waiting);
    ASSERT_FALSE(issued.effects.empty());

    Msg m;
    m.type = MsgType::DATA_X;
    m.src = 1;
    m.dst = 0;
    m.requester = 0;
    m.addr = BLOCK;
    m.word_addr = BLOCK;
    m.has_data = true;
    m.data = {7, 0, 0, 0};
    m.chain = 2;

    const std::string before = tf::debugString(s);
    tf::StepResult r1 = tf::step(env, s, m);
    tf::StepResult r2 = tf::step(env, s, m);

    EXPECT_EQ(tf::debugString(s), before);
    EXPECT_EQ(tf::debugString(r1.next), tf::debugString(r2.next));
    EXPECT_EQ(tf::debugString(r1.out), tf::debugString(r2.out));
    // The grant completes the fetch&add: old value 7.
    bool completed = false;
    for (const tf::Effect &ef : r1.out.effects) {
        if (ef.kind == tf::EffectKind::COMPLETE) {
            completed = true;
            EXPECT_EQ(ef.value, 7u);
        }
    }
    EXPECT_TRUE(completed);
    // Retiring the transaction (txn.active = false) is the driver's
    // job on committing COMPLETE; the pure layer only records the
    // response.
    EXPECT_TRUE(r1.next.txn.resp_seen);
}

TEST(Transition, IssueIsDeterministic)
{
    Config cfg = twoNodeConfig(SyncPolicy::UNC);
    FakeCtx ctx;
    tf::Env env = envFor(cfg, 0, ctx);

    tf::OpReq req;
    req.op = AtomicOp::FAA;
    req.addr = BLOCK;
    req.value = 1;

    tf::CtrlState a(1, 1), b(1, 1);
    tf::Outcome oa = tf::issue(env, a, req);
    tf::Outcome ob = tf::issue(env, b, req);
    EXPECT_EQ(tf::debugString(a), tf::debugString(b));
    EXPECT_EQ(tf::debugString(oa), tf::debugString(ob));
}

namespace {

Task
incTimes(Proc &p, LockFreeCounter &c, int n)
{
    for (int i = 0; i < n; ++i)
        co_await c.fetchInc(p);
}

/** The fixed Table 1-style run the baseline pins: paper-default
 *  64-node machine, INV policy, four contending fetch&add loops. */
std::string
baselineRunJson()
{
    Config cfg; // paper machine: 64 nodes, 8x8 mesh
    cfg.sync.policy = SyncPolicy::INV;
    System sys(cfg);
    LockFreeCounter ctr(sys, Primitive::FAP);
    for (NodeId p = 0; p < 4; ++p)
        sys.spawn(incTimes(sys.proc(p), ctr, 2));
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    return sys.statsJson();
}

} // namespace

TEST(Transition, StatsJsonMatchesCommittedBaseline)
{
    const std::string path =
        std::string(DSM_TEST_BASELINE_DIR) + "/statsjson_table1.json";
    std::string json = baselineRunJson();

    if (std::getenv("DSM_REGEN_BASELINES") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "baseline regenerated: " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing baseline " << path
        << " (regenerate with DSM_REGEN_BASELINES=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(json, buf.str())
        << "statsJson drifted from the committed baseline; if the "
           "change is intended, regenerate with DSM_REGEN_BASELINES=1";
}
