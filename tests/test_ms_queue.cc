/** @file FIFO queue tests: two-lock and non-blocking variants. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "helpers.hh"
#include "sync/ms_queue.hh"

using namespace dsmtest;

namespace {

/** Each producer enqueues an increasing sequence tagged with its id;
 *  consumers verify per-producer FIFO order. */
template <typename Queue>
Task
producer(Proc &p, Queue &q, int id, int count)
{
    for (int i = 0; i < count; ++i) {
        Word v = static_cast<Word>(id) * 1000 + static_cast<Word>(i);
        for (;;) {
            bool ok = co_await q.enqueue(p, v);
            if (ok)
                break;
            co_await p.compute(50); // pool exhausted; wait for consumers
        }
    }
}

template <typename Queue>
Task
consumer(Proc &p, Queue &q, int total, std::vector<Word> *out,
         int *remaining)
{
    while (*remaining > 0) {
        Word v = 0;
        bool ok = co_await q.dequeue(p, &v);
        if (ok) {
            out->push_back(v);
            --*remaining;
        } else {
            co_await p.compute(30);
        }
        (void)total;
    }
}

void
checkPerProducerFifo(const std::vector<std::vector<Word>> &consumed,
                     int producers, int per_producer)
{
    // Merge all consumer streams; per producer, sequence numbers must
    // appear in increasing order within each consumer's stream, and the
    // union must be exactly {0..per_producer-1} per producer.
    std::vector<std::set<Word>> seen(static_cast<size_t>(producers));
    for (const auto &stream : consumed) {
        std::vector<Word> last(static_cast<size_t>(producers), 0);
        std::vector<bool> started(static_cast<size_t>(producers), false);
        for (Word v : stream) {
            auto pid = static_cast<size_t>(v / 1000);
            Word seq = v % 1000;
            ASSERT_LT(pid, static_cast<size_t>(producers));
            if (started[pid]) {
                EXPECT_GT(seq, last[pid]) << "producer " << pid
                                          << " reordered";
            }
            started[pid] = true;
            last[pid] = seq;
            EXPECT_TRUE(seen[pid].insert(seq).second) << "duplicate";
        }
    }
    for (int p = 0; p < producers; ++p)
        EXPECT_EQ(seen[static_cast<size_t>(p)].size(),
                  static_cast<size_t>(per_producer));
}

} // namespace

// ----- TwoLockQueue -----

class TwoLockQueuePrim
    : public testing::TestWithParam<std::tuple<Primitive, SyncPolicy>>
{
};

TEST_P(TwoLockQueuePrim, SingleThreadFifo)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 4));
    TwoLockQueue q(sys, prim, 8);
    sys.spawn([](Proc &p, TwoLockQueue &queue) -> Task {
        EXPECT_TRUE(co_await queue.enqueue(p, 10));
        EXPECT_TRUE(co_await queue.enqueue(p, 11));
        EXPECT_TRUE(co_await queue.enqueue(p, 12));
        Word v = 0;
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 10u);
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 11u);
        EXPECT_TRUE(co_await queue.enqueue(p, 13));
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 12u);
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 13u);
        EXPECT_FALSE(co_await queue.dequeue(p, &v)); // empty
    }(sys.proc(0), q));
    runAll(sys);
}

TEST_P(TwoLockQueuePrim, CapacityIsBounded)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 4));
    TwoLockQueue q(sys, prim, 3);
    sys.spawn([](Proc &p, TwoLockQueue &queue) -> Task {
        EXPECT_TRUE(co_await queue.enqueue(p, 1));
        EXPECT_TRUE(co_await queue.enqueue(p, 2));
        EXPECT_TRUE(co_await queue.enqueue(p, 3));
        EXPECT_FALSE(co_await queue.enqueue(p, 4)); // pool exhausted
        Word v = 0;
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_TRUE(co_await queue.enqueue(p, 4)); // slot recycled
    }(sys.proc(0), q));
    runAll(sys);
}

TEST_P(TwoLockQueuePrim, ProducersAndConsumers)
{
    auto [prim, pol] = GetParam();
    System sys(smallConfig(pol, 8));
    TwoLockQueue q(sys, prim, 16);
    const int producers = 4, per_producer = 12;
    std::vector<std::vector<Word>> consumed(4);
    int remaining = producers * per_producer;
    for (int i = 0; i < producers; ++i)
        sys.spawn(producer(sys.proc(i), q, i, per_producer));
    for (int i = 0; i < 4; ++i)
        sys.spawn(consumer(sys.proc(producers + i), q,
                           producers * per_producer,
                           &consumed[static_cast<size_t>(i)],
                           &remaining));
    runAll(sys);
    checkPerProducerFifo(consumed, producers, per_producer);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TwoLockQueuePrim,
    testing::Combine(testing::Values(Primitive::FAP, Primitive::CAS,
                                     Primitive::LLSC),
                     testing::Values(SyncPolicy::INV, SyncPolicy::UNC)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               toString(std::get<1>(info.param));
    });

// ----- NonBlockingQueue -----

class NonBlockingQueuePolicy : public testing::TestWithParam<SyncPolicy>
{
};

TEST_P(NonBlockingQueuePolicy, SingleThreadFifo)
{
    System sys(smallConfig(GetParam(), 4));
    NonBlockingQueue q(sys, 8);
    sys.spawn([](Proc &p, NonBlockingQueue &queue) -> Task {
        Word v = 0;
        EXPECT_FALSE(co_await queue.dequeue(p, &v)); // initially empty
        EXPECT_TRUE(co_await queue.enqueue(p, 21));
        EXPECT_TRUE(co_await queue.enqueue(p, 22));
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 21u);
        EXPECT_TRUE(co_await queue.enqueue(p, 23));
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 22u);
        EXPECT_TRUE(co_await queue.dequeue(p, &v));
        EXPECT_EQ(v, 23u);
        EXPECT_FALSE(co_await queue.dequeue(p, &v));
    }(sys.proc(0), q));
    runAll(sys);
}

TEST_P(NonBlockingQueuePolicy, NodesRecycleThroughTheFreeList)
{
    System sys(smallConfig(GetParam(), 4));
    NonBlockingQueue q(sys, 2);
    sys.spawn([](Proc &p, NonBlockingQueue &queue) -> Task {
        Word v = 0;
        for (int round = 0; round < 10; ++round) {
            EXPECT_TRUE(co_await queue.enqueue(p, 100 + round));
            EXPECT_TRUE(co_await queue.enqueue(p, 200 + round));
            EXPECT_FALSE(co_await queue.enqueue(p, 999)); // full
            EXPECT_TRUE(co_await queue.dequeue(p, &v));
            EXPECT_EQ(v, 100u + round);
            EXPECT_TRUE(co_await queue.dequeue(p, &v));
            EXPECT_EQ(v, 200u + round);
        }
    }(sys.proc(0), q));
    runAll(sys);
}

TEST_P(NonBlockingQueuePolicy, ProducersAndConsumers)
{
    System sys(smallConfig(GetParam(), 8));
    NonBlockingQueue q(sys, 16);
    const int producers = 4, per_producer = 12;
    std::vector<std::vector<Word>> consumed(4);
    int remaining = producers * per_producer;
    for (int i = 0; i < producers; ++i)
        sys.spawn(producer(sys.proc(i), q, i, per_producer));
    for (int i = 0; i < 4; ++i)
        sys.spawn(consumer(sys.proc(producers + i), q,
                           producers * per_producer,
                           &consumed[static_cast<size_t>(i)],
                           &remaining));
    runAll(sys);
    checkPerProducerFifo(consumed, producers, per_producer);
}

TEST_P(NonBlockingQueuePolicy, AllProcsHammerTheQueue)
{
    System sys(smallConfig(GetParam(), 8));
    NonBlockingQueue q(sys, 32);
    std::uint64_t enq = 0, deq = 0;
    for (NodeId n = 0; n < 8; ++n) {
        sys.spawn([](Proc &p, NonBlockingQueue &queue, std::uint64_t *e,
                     std::uint64_t *d) -> Task {
            Word v = 0;
            for (int i = 0; i < 30; ++i) {
                if (i % 2 == 0) {
                    if (co_await queue.enqueue(
                            p, static_cast<Word>(p.id()) * 100 + i))
                        ++*e;
                } else {
                    if (co_await queue.dequeue(p, &v))
                        ++*d;
                }
            }
        }(sys.proc(n), q, &enq, &deq));
    }
    runAll(sys);
    // Drain what is left and check conservation.
    std::uint64_t drained = 0;
    sys.spawn([](Proc &p, NonBlockingQueue &queue,
                 std::uint64_t *n) -> Task {
        Word v = 0;
        while (co_await queue.dequeue(p, &v))
            ++*n;
    }(sys.proc(0), q, &drained));
    runAll(sys);
    EXPECT_EQ(enq, deq + drained);
}

INSTANTIATE_TEST_SUITE_P(Policies, NonBlockingQueuePolicy,
                         testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                         SyncPolicy::UNC),
                         [](const auto &info) {
                             return toString(info.param);
                         });
