/** @file Atomic primitive semantics under all three coherence policies. */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

class AtomicsUnderPolicy : public testing::TestWithParam<SyncPolicy>
{
  protected:
    System sys{smallConfig(GetParam())};
};

TEST_P(AtomicsUnderPolicy, FetchAddReturnsOldAndAdds)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 10);
    OpResult r = runOp(sys, 0, AtomicOp::FAA, a, 5);
    EXPECT_EQ(r.value, 10u);
    EXPECT_EQ(sys.debugRead(a), 15u);
}

TEST_P(AtomicsUnderPolicy, FetchAddAccumulatesAcrossProcs)
{
    Addr a = sys.allocSync();
    for (int i = 0; i < 12; ++i)
        runOp(sys, i % 4, AtomicOp::FAA, a, 1);
    EXPECT_EQ(sys.debugRead(a), 12u);
}

TEST_P(AtomicsUnderPolicy, TestAndSetSetsToOne)
{
    Addr a = sys.allocSync();
    EXPECT_EQ(runOp(sys, 0, AtomicOp::TAS, a).value, 0u);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::TAS, a).value, 1u);
    EXPECT_EQ(sys.debugRead(a), 1u);
}

TEST_P(AtomicsUnderPolicy, FetchStoreSwaps)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 3);
    EXPECT_EQ(runOp(sys, 2, AtomicOp::FAS, a, 8).value, 3u);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::FAS, a, 9).value, 8u);
    EXPECT_EQ(sys.debugRead(a), 9u);
}

TEST_P(AtomicsUnderPolicy, FetchOrOrsBits)
{
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::FAO, a, 0x1);
    runOp(sys, 1, AtomicOp::FAO, a, 0x4);
    OpResult r = runOp(sys, 2, AtomicOp::FAO, a, 0x2);
    EXPECT_EQ(r.value, 0x5u);
    EXPECT_EQ(sys.debugRead(a), 0x7u);
}

TEST_P(AtomicsUnderPolicy, CasSucceedsOnMatch)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 5);
    OpResult r = runOp(sys, 0, AtomicOp::CAS, a, 6, 5);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(sys.debugRead(a), 6u);
}

TEST_P(AtomicsUnderPolicy, CasFailsOnMismatchWithoutWriting)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 5);
    OpResult r = runOp(sys, 0, AtomicOp::CAS, a, 7, 4);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(sys.debugRead(a), 5u);
}

TEST_P(AtomicsUnderPolicy, CasChainsAcrossProcessors)
{
    Addr a = sys.allocSync();
    for (int i = 0; i < 8; ++i) {
        OpResult r = runOp(sys, i % 4, AtomicOp::CAS, a,
                           static_cast<Word>(i + 1),
                           static_cast<Word>(i));
        EXPECT_TRUE(r.success) << "step " << i;
    }
    EXPECT_EQ(sys.debugRead(a), 8u);
}

TEST_P(AtomicsUnderPolicy, OrdinaryAccessesMixWithAtomics)
{
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::STORE, a, 100);
    EXPECT_EQ(runOp(sys, 1, AtomicOp::FAA, a, 1).value, 100u);
    EXPECT_EQ(runOp(sys, 2, AtomicOp::LOAD, a).value, 101u);
    runOp(sys, 3, AtomicOp::STORE, a, 0);
    EXPECT_EQ(sys.debugRead(a), 0u);
}

TEST_P(AtomicsUnderPolicy, ConcurrentIncrementsAreAtomic)
{
    Addr a = sys.allocSync();
    const int per_proc = 25;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, Addr addr, int cnt) -> Task {
            for (int i = 0; i < cnt; ++i)
                co_await p.fetchAdd(addr, 1);
        }(sys.proc(n), a, per_proc));
    }
    runAll(sys);
    EXPECT_EQ(sys.debugRead(a), 4u * per_proc);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AtomicsUnderPolicy,
                         testing::Values(SyncPolicy::INV, SyncPolicy::UPD,
                                         SyncPolicy::UNC),
                         [](const auto &info) {
                             return toString(info.param);
                         });

// ----- INVd / INVs compare_and_swap variants (Section 3) -----

namespace {

Config
variantConfig(CasVariant v)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    cfg.sync.cas_variant = v;
    return cfg;
}

} // namespace

class CasVariantTest : public testing::TestWithParam<CasVariant>
{
  protected:
    System sys{variantConfig(GetParam())};
};

TEST_P(CasVariantTest, SemanticsPreserved)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 9, 0).success);
    EXPECT_TRUE(runOp(sys, 1, AtomicOp::CAS, a, 2, 1).success);
    EXPECT_EQ(sys.debugRead(a), 2u);
}

TEST_P(CasVariantTest, FailingCasDoesNotInvalidateSharers)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    runOp(sys, 2, AtomicOp::LOAD, a);
    runOp(sys, 3, AtomicOp::LOAD, a);
    clearStats(sys);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 9, 0).success);
    // INVd/INVs: no invalidations for a failing CAS (vs 2 for plain INV).
    EXPECT_EQ(sys.stats().invalidations, 0u);
    EXPECT_NE(sys.ctrl(2).cache().peek(a), nullptr);
    EXPECT_NE(sys.ctrl(3).cache().peek(a), nullptr);
}

TEST_P(CasVariantTest, SucceedingCasBehavesLikeInv)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    runOp(sys, 2, AtomicOp::LOAD, a);
    clearStats(sys);
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 5, 1).success);
    EXPECT_EQ(sys.stats().invalidations, 1u);
    const CacheLine *line = sys.ctrl(0).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::EXCLUSIVE);
}

TEST_P(CasVariantTest, ComparisonAtOwnerWhenExclusiveRemote)
{
    Addr a = sys.allocSync();
    runOp(sys, 1, AtomicOp::STORE, a, 42); // node 1 owns exclusively
    // Failure decided at the owner.
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 0, 41).success);
    if (GetParam() == CasVariant::DENY) {
        // Owner keeps its exclusive copy; requester gets nothing.
        EXPECT_EQ(sys.ctrl(1).cache().peek(a)->state,
                  LineState::EXCLUSIVE);
        EXPECT_EQ(sys.ctrl(0).cache().peek(a), nullptr);
    } else {
        // INVs: both end up with shared copies.
        EXPECT_EQ(sys.ctrl(1).cache().peek(a)->state, LineState::SHARED);
        ASSERT_NE(sys.ctrl(0).cache().peek(a), nullptr);
        EXPECT_EQ(sys.ctrl(0).cache().peek(a)->state, LineState::SHARED);
    }
    // Success transfers ownership.
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 43, 42).success);
    EXPECT_EQ(sys.debugRead(a), 43u);
    EXPECT_EQ(sys.ctrl(0).cache().peek(a)->state, LineState::EXCLUSIVE);
}

TEST_P(CasVariantTest, LocalExclusiveFastPathStillWorks)
{
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    auto msgs = sys.mesh().stats().messages;
    EXPECT_TRUE(runOp(sys, 0, AtomicOp::CAS, a, 2, 1).success);
    EXPECT_EQ(sys.mesh().stats().messages, msgs); // pure cache hit
}

TEST_P(CasVariantTest, FailureReturnsCurrentValue)
{
    Addr a = sys.allocSync();
    sys.writeInit(a, 1234);
    OpResult r = runOp(sys, 0, AtomicOp::CAS, a, 1, 0);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.value, 1234u);
}

INSTANTIATE_TEST_SUITE_P(Variants, CasVariantTest,
                         testing::Values(CasVariant::DENY,
                                         CasVariant::SHARE),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

// ----- UPD-specific behaviour -----

TEST(UpdPolicy, SharersReceiveWordUpdates)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.writeInit(a, 1);
    runOp(sys, 1, AtomicOp::LOAD, a);
    runOp(sys, 2, AtomicOp::LOAD, a);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    EXPECT_EQ(sys.stats().updates, 2u);
    EXPECT_EQ(sys.stats().invalidations, 0u);
    // Sharers' cached copies were refreshed in place: their loads hit
    // and observe the new value.
    auto msgs = sys.mesh().stats().messages;
    EXPECT_EQ(runOp(sys, 1, AtomicOp::LOAD, a).value, 2u);
    EXPECT_EQ(runOp(sys, 2, AtomicOp::LOAD, a).value, 2u);
    EXPECT_EQ(sys.mesh().stats().messages, msgs);
}

TEST(UpdPolicy, WriterRetainsASharedCopy)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::FAA, a, 7);
    const CacheLine *line = sys.ctrl(0).cache().peek(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::SHARED);
    EXPECT_EQ(line->readWord(a), 7u);
}

TEST(UpdPolicy, FailedCasSendsNoUpdates)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    sys.writeInit(a, 3);
    runOp(sys, 1, AtomicOp::LOAD, a);
    clearStats(sys);
    EXPECT_FALSE(runOp(sys, 0, AtomicOp::CAS, a, 9, 8).success);
    EXPECT_EQ(sys.stats().updates, 0u);
}

TEST(UpdPolicy, DropCopyStopsUpdates)
{
    System sys(smallConfig(SyncPolicy::UPD));
    Addr a = sys.allocSync();
    runOp(sys, 1, AtomicOp::LOAD, a);
    runOp(sys, 1, AtomicOp::DROP_COPY, a);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::STORE, a, 5);
    EXPECT_EQ(sys.stats().updates, 0u);
}

// ----- UNC-specific behaviour -----

TEST(UncPolicy, NothingIsEverCached)
{
    System sys(smallConfig(SyncPolicy::UNC));
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    runOp(sys, 0, AtomicOp::LOAD, a);
    runOp(sys, 1, AtomicOp::STORE, a, 9);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(sys.ctrl(n).cache().peek(a), nullptr) << "node " << n;
}

TEST(UncPolicy, EveryAccessCostsMessages)
{
    System sys(smallConfig(SyncPolicy::UNC));
    // Choose a sync var not homed at node 0 so requests use the network.
    Addr a = sys.allocSyncAt(3);
    auto msgs = sys.mesh().stats().messages;
    runOp(sys, 0, AtomicOp::LOAD, a);
    EXPECT_EQ(sys.mesh().stats().messages, msgs + 2); // req + resp
    runOp(sys, 0, AtomicOp::LOAD, a);
    EXPECT_EQ(sys.mesh().stats().messages, msgs + 4); // no caching
}
