/**
 * @file
 * Tests for the cross-run perf-regression harness: identical reports
 * pass, a synthetic 10% throughput/latency regression is detected,
 * absolute slack absorbs tiny-count jitter, structural mismatches are
 * errors, and directory comparison matches snapshots by filename. Also
 * covers the provenance (git sha, wall time, host cores) that written
 * dsm-bench-v1 reports carry while toJson() stays byte-stable.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/json.hh"
#include "stats/bench_diff.hh"
#include "stats/bench_report.hh"

namespace {

using dsm::BenchReport;
using dsm::DiffOptions;
using dsm::DiffResult;

dsm::JsonValue
parsed(const std::string &text)
{
    dsm::JsonValue v;
    std::string err;
    EXPECT_TRUE(dsm::parseJson(text, &v, &err)) << err;
    return v;
}

/** A one-row dsm-bench-v1 document with the three metrics under test. */
std::string
report(std::uint64_t ops, double mean_latency, std::uint64_t nacks,
       const char *impl = "INV FAP", const char *name = "synthetic")
{
    BenchReport rep(name);
    rep.row()
        .set("impl", impl)
        .set("point", "c=8")
        .set("ops", ops)
        .set("mean_latency", mean_latency)
        .set("nacks", nacks);
    return rep.toJson();
}

TEST(BenchDiff, IdenticalReportsPass)
{
    std::string doc = report(100000, 1000.0, 500);
    DiffResult res = dsm::diffBenchReports(parsed(doc), parsed(doc));
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.regressions.empty());
    EXPECT_TRUE(res.improvements.empty());
    EXPECT_EQ(res.rows_compared, 1);
    EXPECT_EQ(res.metrics_compared, 3);
}

TEST(BenchDiff, TenPercentThroughputDropIsARegression)
{
    DiffResult res = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500)),
        parsed(report(90000, 1000.0, 500)));
    EXPECT_FALSE(res.ok());
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_EQ(res.regressions[0].metric, "ops");
    EXPECT_NEAR(res.regressions[0].change_pct, -10.0, 0.01);
    EXPECT_EQ(res.regressions[0].row, "impl=INV FAP point=c=8");
}

TEST(BenchDiff, OnlyTheHarmfulDirectionGates)
{
    // Latency up 10% fails; latency down 10% is an improvement only.
    DiffResult worse = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500)),
        parsed(report(100000, 1100.0, 500)));
    EXPECT_FALSE(worse.ok());
    ASSERT_EQ(worse.regressions.size(), 1u);
    EXPECT_EQ(worse.regressions[0].metric, "mean_latency");

    DiffResult better = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500)),
        parsed(report(100000, 900.0, 500)));
    EXPECT_TRUE(better.ok());
    ASSERT_EQ(better.improvements.size(), 1u);
    EXPECT_EQ(better.improvements[0].metric, "mean_latency");
}

TEST(BenchDiff, AbsoluteSlackAbsorbsTinyCounts)
{
    // 2 -> 40 NACKs is +1900% but only 38 events, inside the slack.
    DiffResult res = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 2)),
        parsed(report(100000, 1000.0, 40)));
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.regressions.empty());
}

TEST(BenchDiff, ThresholdScaleLoosensTheGate)
{
    DiffOptions loose;
    loose.threshold_scale = 3.0; // ops gate becomes 15%
    DiffResult res = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500)),
        parsed(report(90000, 1000.0, 500)), loose);
    EXPECT_TRUE(res.ok());
}

TEST(BenchDiff, RowIdentityMismatchIsAnError)
{
    DiffResult res = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500, "INV FAP")),
        parsed(report(100000, 1000.0, 500, "UPD FAP")));
    EXPECT_FALSE(res.ok());
    ASSERT_FALSE(res.errors.empty());
    EXPECT_NE(res.errors[0].find("row identity"), std::string::npos);
    EXPECT_EQ(res.rows_compared, 0);
}

TEST(BenchDiff, BenchNameAndSchemaMismatchAreErrors)
{
    DiffResult name = dsm::diffBenchReports(
        parsed(report(1000, 10.0, 0, "x", "alpha")),
        parsed(report(1000, 10.0, 0, "x", "beta")));
    EXPECT_FALSE(name.ok());
    ASSERT_FALSE(name.errors.empty());
    EXPECT_NE(name.errors[0].find("bench name mismatch"),
              std::string::npos);

    DiffResult schema = dsm::diffBenchReports(
        parsed("{\"schema\":\"other\"}"),
        parsed(report(1000, 10.0, 0)));
    EXPECT_FALSE(schema.ok());
}

TEST(BenchDiff, RenderDiffNamesTheFindings)
{
    DiffResult res = dsm::diffBenchReports(
        parsed(report(100000, 1000.0, 500)),
        parsed(report(90000, 1100.0, 500)));
    std::string text = dsm::renderDiff(res);
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("ops"), std::string::npos);
    EXPECT_NE(text.find("mean_latency"), std::string::npos);
    EXPECT_NE(text.find("2 regression(s)"), std::string::npos);
}

TEST(BenchDiff, DirectoriesMatchSnapshotsByFilename)
{
    namespace fs = std::filesystem;
    fs::path root = fs::path(testing::TempDir()) / "bench_diff_dirs";
    fs::path base = root / "base", cand = root / "cand";
    fs::remove_all(root);
    fs::create_directories(base);
    fs::create_directories(cand);
    auto put = [](const fs::path &p, const std::string &text) {
        std::ofstream(p) << text;
    };

    put(base / "BENCH_alpha.json", report(1000, 10.0, 0, "x", "alpha"));
    put(base / "BENCH_beta.json", report(1000, 10.0, 0, "x", "beta"));
    put(cand / "BENCH_alpha.json", report(1000, 10.0, 0, "x", "alpha"));

    // A baseline bench missing from the candidate is an error.
    DiffResult res = dsm::diffBenchDirs(base.string(), cand.string());
    EXPECT_FALSE(res.ok());
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_NE(res.errors[0].find("BENCH_beta.json"), std::string::npos);
    EXPECT_EQ(res.rows_compared, 1);

    // With the counterpart present (but regressed) the directory diff
    // folds the per-file results together; extra candidate files are
    // ignored (a new bench is not a regression).
    put(cand / "BENCH_beta.json", report(500, 10.0, 0, "x", "beta"));
    put(cand / "BENCH_gamma.json", report(1, 1.0, 0, "x", "gamma"));
    res = dsm::diffBenchDirs(base.string(), cand.string());
    EXPECT_TRUE(res.errors.empty());
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_EQ(res.regressions[0].bench, "beta");
    EXPECT_EQ(res.regressions[0].metric, "ops");
    EXPECT_EQ(res.rows_compared, 2);

    // File-level comparison agrees with the directory walk.
    DiffResult one = dsm::diffBenchFiles(
        (base / "BENCH_beta.json").string(),
        (cand / "BENCH_beta.json").string());
    ASSERT_EQ(one.regressions.size(), 1u);
    EXPECT_EQ(one.regressions[0].metric, "ops");

    DiffResult missing = dsm::diffBenchFiles(
        (base / "BENCH_nope.json").string(),
        (cand / "BENCH_beta.json").string());
    EXPECT_FALSE(missing.ok());
}

// ----- written-report provenance (meta.git_sha / wall_ms / host_cores) -----

TEST(BenchReportProvenance, WrittenReportCarriesProvenance)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(testing::TempDir()) / "bench_prov";
    fs::create_directories(dir);
    setenv("DSM_BENCH_DIR", dir.string().c_str(), 1);
    setenv("DSM_GIT_SHA", "cafe1234", 1);

    BenchReport rep("prov");
    rep.meta("workload", "unit");
    rep.row().set("impl", "x").set("ops", std::uint64_t{1});

    // The in-memory document stays byte-stable (the serial-vs-parallel
    // identity tests compare it): no provenance keys.
    EXPECT_EQ(rep.toJson().find("git_sha"), std::string::npos);
    EXPECT_EQ(rep.toJson().find("wall_ms"), std::string::npos);

    std::string path = rep.write();
    ASSERT_FALSE(path.empty());
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    dsm::JsonValue root = parsed(text);
    EXPECT_EQ(root.str("schema"), "dsm-bench-v1");
    const dsm::JsonValue *meta = root.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->str("workload"), "unit"); // user meta kept first
    EXPECT_EQ(meta->str("git_sha"), "cafe1234");
    EXPECT_GE(meta->num("wall_ms"), 0.0);
    EXPECT_GE(meta->num("host_cores"), 1.0);

    unsetenv("DSM_GIT_SHA");
    unsetenv("DSM_BENCH_DIR");
}

} // anonymous namespace
