/**
 * @file
 * Shared helpers for simulator-level tests: small machine configs and
 * single-operation workload coroutines.
 */

#ifndef DSM_TESTS_HELPERS_HH
#define DSM_TESTS_HELPERS_HH

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "proto/checker.hh"

namespace dsmtest {

using namespace dsm;

/** A small 4-node machine (2x2 mesh) with the given sync policy. */
inline Config
smallConfig(SyncPolicy pol = SyncPolicy::INV, int procs = 4)
{
    Config cfg;
    cfg.machine.num_procs = procs;
    switch (procs) {
      case 1: cfg.machine.mesh_x = 1; cfg.machine.mesh_y = 1; break;
      case 2: cfg.machine.mesh_x = 2; cfg.machine.mesh_y = 1; break;
      case 4: cfg.machine.mesh_x = 2; cfg.machine.mesh_y = 2; break;
      case 8: cfg.machine.mesh_x = 4; cfg.machine.mesh_y = 2; break;
      case 16: cfg.machine.mesh_x = 4; cfg.machine.mesh_y = 4; break;
      case 64: cfg.machine.mesh_x = 8; cfg.machine.mesh_y = 8; break;
      default:
        cfg.machine.mesh_x = procs;
        cfg.machine.mesh_y = 1;
        break;
    }
    cfg.sync.policy = pol;
    return cfg;
}

/** Issue one operation and capture its result. */
inline Task
doOp(Proc &p, AtomicOp op, Addr a, Word v, Word exp, OpResult *out)
{
    OpResult r;
    switch (op) {
      case AtomicOp::LOAD: r = co_await p.load(a); break;
      case AtomicOp::STORE: r = co_await p.store(a, v); break;
      case AtomicOp::LOAD_EXCL: r = co_await p.loadExclusive(a); break;
      case AtomicOp::DROP_COPY: r = co_await p.dropCopy(a); break;
      case AtomicOp::TAS: r = co_await p.testAndSet(a); break;
      case AtomicOp::FAA: r = co_await p.fetchAdd(a, v); break;
      case AtomicOp::FAS: r = co_await p.fetchStore(a, v); break;
      case AtomicOp::FAO: r = co_await p.fetchOr(a, v); break;
      case AtomicOp::CAS: r = co_await p.cas(a, exp, v); break;
      case AtomicOp::LL: r = co_await p.ll(a); break;
      case AtomicOp::SC: r = co_await p.sc(a, v); break;
      case AtomicOp::LLS: r = co_await p.llSerial(a); break;
      case AtomicOp::SCS: r = co_await p.scSerial(a, v, exp); break;
    }
    if (out != nullptr)
        *out = r;
}

inline Task
doStore(Proc &p, Addr a, Word v)
{
    co_await p.store(a, v);
}

inline Task
doLoad(Proc &p, Addr a, OpResult *out)
{
    *out = co_await p.load(a);
}

inline Task
doLoadVoid(Proc &p, Addr a)
{
    co_await p.load(a);
}

/** Assert that every coherence invariant holds on the quiesced system. */
inline void
expectCoherent(System &sys)
{
    for (const std::string &v : checkCoherence(sys))
        ADD_FAILURE() << "coherence violation: " << v;
}

/** Run the system to completion, assert completion and coherence. */
inline void
runAll(System &sys)
{
    RunResult r = sys.run();
    ASSERT_TRUE(r.completed) << "simulation deadlocked at tick "
                             << r.end_tick;
    expectCoherent(sys);
    sys.reapTasks();
}

/** Run a single op on @p proc to completion and return its result. */
inline OpResult
runOp(System &sys, NodeId proc, AtomicOp op, Addr a, Word v = 0,
      Word exp = 0)
{
    OpResult out;
    sys.spawn(doOp(sys.proc(proc), op, a, v, exp, &out));
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    sys.reapTasks();
    return out;
}

/** Reset system-wide protocol statistics. */
inline void
clearStats(System &sys)
{
    sys.clearStats();
}

} // namespace dsmtest

#endif // DSM_TESTS_HELPERS_HH
