/**
 * @file
 * Timing-model regression tests: exact end-to-end latencies of simple
 * operations, derived from the machine parameters. These pin down the
 * mesh serialization, memory queueing, and protocol-path arithmetic so
 * that accidental model changes are caught.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace dsmtest;

namespace {

/** Flits for a message of @p payload bytes under config @p mc. */
Tick
flits(const MachineConfig &mc, unsigned payload)
{
    return (payload + mc.header_bytes + mc.flit_bytes - 1) /
           mc.flit_bytes;
}

/** One-way network time: inject + hops + eject on idle ports. */
Tick
netTime(const MachineConfig &mc, int hops, unsigned payload)
{
    return static_cast<Tick>(hops) * mc.hop_latency +
           flits(mc, payload) * mc.flit_latency;
}

Tick
measuredMean(System &sys, AtomicOp op)
{
    return static_cast<Tick>(
        sys.stats().op_latency[static_cast<int>(op)].mean());
}

} // namespace

TEST(Timing, CacheHitIsOneCycle)
{
    System sys(smallConfig());
    Addr a = sys.alloc(WORD_BYTES);
    runOp(sys, 0, AtomicOp::STORE, a, 1);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::LOAD, a);
    EXPECT_EQ(measuredMean(sys, AtomicOp::LOAD),
              sys.cfg().machine.cache_hit_latency);
}

TEST(Timing, UncRemoteRoundTrip)
{
    Config cfg = smallConfig(SyncPolicy::UNC);
    System sys(cfg);
    const MachineConfig &mc = cfg.machine;
    Addr a = sys.allocSyncAt(3); // 2 hops from node 0 on the 2x2 mesh
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    // Request: UNC_REQ (8 + 16 bytes payload); memory; UNC_RESP (16).
    Tick expect = netTime(mc, 2, 24) + mc.mem_service_time +
                  netTime(mc, 2, 16);
    EXPECT_EQ(measuredMean(sys, AtomicOp::FAA), expect);
}

TEST(Timing, UncLocalRoundTrip)
{
    Config cfg = smallConfig(SyncPolicy::UNC);
    System sys(cfg);
    const MachineConfig &mc = cfg.machine;
    Addr a = sys.allocSyncAt(0); // home at the requester
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    Tick expect = mc.local_latency + mc.mem_service_time +
                  mc.local_latency;
    EXPECT_EQ(measuredMean(sys, AtomicOp::FAA), expect);
}

TEST(Timing, InvColdMissReadsMemoryAtHome)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    System sys(cfg);
    const MachineConfig &mc = cfg.machine;
    Addr a = sys.allocSyncAt(3);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::LOAD, a);
    // GET_S (8) out, DATA_S (8 + 32) back.
    Tick expect = netTime(mc, 2, 8) + mc.mem_service_time +
                  netTime(mc, 2, 40);
    EXPECT_EQ(measuredMean(sys, AtomicOp::LOAD), expect);
}

TEST(Timing, RemoteExclusiveTransferIsFourLegs)
{
    Config cfg = smallConfig(SyncPolicy::INV);
    System sys(cfg);
    const MachineConfig &mc = cfg.machine;
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 1, AtomicOp::STORE, a, 5); // node 1 owns (1 hop from 3)
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    // GET_X 0->3 (2 hops, 8B); mem; FWD 3->1 (1 hop, 8B); cache access;
    // OWNER_DATA_X 1->3 (1 hop, 40B); mem; DATA_X 3->0 (2 hops, 40B).
    Tick expect = netTime(mc, 2, 8) + mc.mem_service_time +
                  netTime(mc, 1, 8) + mc.cache_access_latency +
                  netTime(mc, 1, 40) + mc.mem_service_time +
                  netTime(mc, 2, 40);
    EXPECT_EQ(measuredMean(sys, AtomicOp::FAA), expect);
}

TEST(Timing, MemoryQueueingDelaysConcurrentRequests)
{
    // Two UNC requests from different nodes to one home serialize on
    // the memory module: the later completion includes queueing time.
    Config cfg = smallConfig(SyncPolicy::UNC);
    System sys(cfg);
    Addr a = sys.allocSyncAt(3);
    sys.spawn(doOp(sys.proc(0), AtomicOp::FAA, a, 1, 0, nullptr));
    sys.spawn(doOp(sys.proc(1), AtomicOp::FAA, a, 1, 0, nullptr));
    runAll(sys);
    EXPECT_GE(sys.mem(3).queueCycles(), cfg.machine.mem_service_time / 2);
    EXPECT_EQ(sys.debugRead(a), 2u);
}

TEST(Timing, SecondAccessInRunIsAHit)
{
    // The INV advantage for long write runs: the second FAA by the same
    // processor costs exactly one cycle.
    System sys(smallConfig(SyncPolicy::INV));
    Addr a = sys.allocSyncAt(3);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    clearStats(sys);
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    EXPECT_EQ(measuredMean(sys, AtomicOp::FAA),
              sys.cfg().machine.cache_hit_latency);
}

TEST(Timing, ComputeIsExact)
{
    System sys(smallConfig());
    Tick t0 = sys.now();
    sys.spawn([](Proc &p) -> Task {
        co_await p.compute(137);
    }(sys.proc(0)));
    runAll(sys);
    EXPECT_EQ(sys.now() - t0, 137u);
}

TEST(Timing, DeterministicLatenciesAcrossRuns)
{
    auto once = [] {
        System sys(smallConfig(SyncPolicy::INV, 8));
        Addr a = sys.allocSync();
        for (NodeId n = 0; n < 8; ++n)
            sys.spawn(doOp(sys.proc(n), AtomicOp::FAA, a, 1, 0,
                           nullptr));
        sys.run();
        return sys.stats()
            .op_latency[static_cast<int>(AtomicOp::FAA)]
            .sum;
    };
    EXPECT_EQ(once(), once());
}
