/** @file Reader-writer lock tests across primitives. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/rw_lock.hh"

using namespace dsmtest;

namespace {

struct RwState
{
    int readers = 0;
    int writers = 0;
    bool violation = false;
};

Task
readerTask(Proc &p, RwLock &lock, RwState &st, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await lock.readerAcquire(p);
        ++st.readers;
        if (st.writers > 0)
            st.violation = true;
        co_await p.compute(5);
        --st.readers;
        co_await lock.readerRelease(p);
        co_await p.compute(3);
    }
}

Task
writerTask(Proc &p, RwLock &lock, RwState &st, Addr data, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await lock.writerAcquire(p);
        ++st.writers;
        if (st.writers != 1 || st.readers != 0)
            st.violation = true;
        Word v = (co_await p.load(data)).value;
        co_await p.compute(4);
        co_await p.store(data, v + 1);
        --st.writers;
        co_await lock.writerRelease(p);
        co_await p.compute(7);
    }
}

} // namespace

class RwLockPrim : public testing::TestWithParam<Primitive>
{
};

TEST_P(RwLockPrim, ReadersExcludeWriters)
{
    System sys(smallConfig(SyncPolicy::INV, 8));
    RwLock lock(sys, GetParam());
    RwState st;
    Addr data = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    const int w_rounds = 6, r_rounds = 10;
    // 2 writers, 6 readers.
    sys.spawn(writerTask(sys.proc(0), lock, st, data, w_rounds));
    sys.spawn(writerTask(sys.proc(1), lock, st, data, w_rounds));
    for (NodeId n = 2; n < 8; ++n)
        sys.spawn(readerTask(sys.proc(n), lock, st, r_rounds));
    runAll(sys);
    EXPECT_FALSE(st.violation);
    EXPECT_EQ(sys.debugRead(data), 2u * w_rounds);
    EXPECT_EQ(sys.debugRead(lock.addr()), 0u); // fully released
}

TEST_P(RwLockPrim, ReadersMayOverlap)
{
    System sys(smallConfig(SyncPolicy::INV, 4));
    RwLock lock(sys, GetParam());
    int max_readers = 0;
    int cur = 0;
    for (NodeId n = 0; n < 4; ++n) {
        sys.spawn([](Proc &p, RwLock &l, int *c, int *mx) -> Task {
            co_await l.readerAcquire(p);
            ++*c;
            if (*c > *mx)
                *mx = *c;
            co_await p.compute(200); // long read section to force overlap
            --*c;
            co_await l.readerRelease(p);
        }(sys.proc(n), lock, &cur, &max_readers));
    }
    runAll(sys);
    EXPECT_GT(max_readers, 1);
}

INSTANTIATE_TEST_SUITE_P(Prims, RwLockPrim,
                         testing::Values(Primitive::FAP, Primitive::CAS,
                                         Primitive::LLSC),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });
