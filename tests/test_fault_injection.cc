/**
 * @file
 * Tests for the deterministic fault-injection layer and the
 * forward-progress watchdogs: FaultConfig parsing, zero-cost-when-off,
 * bit-exact reproducibility per seed, a reduced randomized campaign
 * over the application implementation matrix, and directed
 * deadlock/livelock scenarios that must be detected and diagnosed
 * rather than hanging the test suite.
 */

#include "helpers.hh"

#include "exp/experiment.hh"
#include "fault/fault.hh"
#include "workloads/counter_apps.hh"

using namespace dsm;
using namespace dsmtest;

namespace {

/** The standard fault mix on a small machine. */
Config
faultyConfig(const SyncConfig &sync, std::uint64_t seed)
{
    Config cfg;
    cfg.machine.num_procs = 8;
    cfg.machine.mesh_x = 4;
    cfg.machine.mesh_y = 2;
    cfg.machine.seed = seed;
    cfg.sync = sync;
    std::string err = cfg.faults.parse("default");
    EXPECT_EQ(err, "");
    return cfg;
}

/** Run the lock-free counter app and return its result. */
CounterAppResult
runCounter(System &sys, Primitive prim, int contention, int phases)
{
    CounterAppConfig app;
    app.kind = CounterKind::LOCK_FREE;
    app.prim = prim;
    app.contention = contention;
    app.phases = phases;
    return runCounterApp(sys, app);
}

} // namespace

TEST(FaultConfig, ParseDefaultMix)
{
    FaultConfig fc;
    EXPECT_EQ(fc.parse("default"), "");
    EXPECT_TRUE(fc.enabled);
    EXPECT_DOUBLE_EQ(fc.msg_jitter_prob, 0.2);
    EXPECT_EQ(fc.msg_jitter_max, 64u);
    EXPECT_DOUBLE_EQ(fc.resv_drop_prob, 0.05);
    EXPECT_DOUBLE_EQ(fc.evict_prob, 0.02);
    EXPECT_DOUBLE_EQ(fc.nack_prob, 0.1);
    EXPECT_EQ(fc.max_extra_nacks, 4);
}

TEST(FaultConfig, ParseKeyValueSpec)
{
    FaultConfig fc;
    EXPECT_EQ(fc.parse("nack_prob=0.5,jitter_max=16,seed=7,"
                       "max_extra_nacks=2"),
              "");
    EXPECT_TRUE(fc.enabled);
    EXPECT_DOUBLE_EQ(fc.nack_prob, 0.5);
    EXPECT_EQ(fc.msg_jitter_max, 16u);
    EXPECT_EQ(fc.seed, 7u);
    EXPECT_EQ(fc.max_extra_nacks, 2);
    // Unmentioned knobs keep their defaults.
    EXPECT_DOUBLE_EQ(fc.msg_jitter_prob, 0.0);
}

TEST(FaultConfig, ParseErrors)
{
    FaultConfig fc;
    EXPECT_NE(fc.parse("bogus").find("not key=value"),
              std::string::npos);
    EXPECT_NE(fc.parse("nack_prob=abc").find("not a number"),
              std::string::npos);
    EXPECT_NE(fc.parse("zorp=1").find("unknown fault spec key"),
              std::string::npos);
}

TEST(FaultConfig, ValidateRejectsBadProbability)
{
    Config cfg;
    EXPECT_EQ(cfg.faults.parse("nack_prob=1.5"), "");
    EXPECT_EQ(cfg.validate(),
              "faults.nack_prob must be in [0, 1], got 1.5");
}

TEST(FaultInjection, ZeroCostWhenOff)
{
    System sys(smallConfig());
    CounterAppResult r = runCounter(sys, Primitive::FAP, 4, 4);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(sys.faults(), nullptr);
    EXPECT_EQ(sys.watchdog(), nullptr);
    const FaultPlan::Counters &c = sys.faultPlan().counters();
    EXPECT_EQ(c.jitter_applied + c.jitter_cycles + c.resv_drops +
                  c.forced_evictions + c.nacks_injected,
              0u);
    // The stats registry must not even mention the fault domain.
    EXPECT_EQ(sys.statsJson().find("fault."), std::string::npos);
    EXPECT_TRUE(checkFaultAccounting(sys).empty());
}

TEST(FaultInjection, DeterministicAtFixedSeed)
{
    SyncConfig sync;
    std::string json[2];
    Tick end[2];
    for (int i = 0; i < 2; ++i) {
        System sys(faultyConfig(sync, 42));
        CounterAppResult r = runCounter(sys, Primitive::LLSC, 4, 4);
        ASSERT_TRUE(r.completed);
        EXPECT_TRUE(r.correct);
        json[i] = sys.statsJson();
        end[i] = r.elapsed;
    }
    EXPECT_EQ(json[0], json[1]);
    EXPECT_EQ(end[0], end[1]);
}

TEST(FaultInjection, DifferentSeedsDiverge)
{
    SyncConfig sync;
    std::uint64_t jitter[2];
    for (int i = 0; i < 2; ++i) {
        System sys(faultyConfig(sync, 100 + i));
        CounterAppResult r = runCounter(sys, Primitive::CAS, 4, 4);
        ASSERT_TRUE(r.completed);
        jitter[i] = sys.faultPlan().counters().jitter_cycles;
    }
    EXPECT_NE(jitter[0], jitter[1]);
}

TEST(FaultInjection, CampaignAcrossImplMatrix)
{
    std::uint64_t total_injected = 0;
    for (const ImplCase &impl : applicationMatrix()) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            Config cfg = faultyConfig(impl.sync, seed);
            cfg.watchdog.enabled = true;
            cfg.watchdog.max_retries = 100000;
            cfg.watchdog.max_txn_age = 5'000'000;
            cfg.watchdog.scan_period = 50'000;
            System sys(cfg);
            CounterAppResult r = runCounter(sys, impl.prim, 4, 2);
            ASSERT_TRUE(r.completed)
                << impl.label << " seed " << seed << ":\n"
                << (sys.watchdogState().tripped()
                        ? sys.watchdogState().diagnosis()
                        : Watchdog::blockedTxnDump(sys));
            EXPECT_TRUE(r.correct) << impl.label << " seed " << seed;
            for (const std::string &v : checkCoherence(sys))
                ADD_FAILURE() << impl.label << " seed " << seed << ": "
                              << v;
            for (const std::string &v : checkFaultAccounting(sys))
                ADD_FAILURE() << impl.label << " seed " << seed << ": "
                              << v;
            const FaultPlan::Counters &c = sys.faultPlan().counters();
            total_injected += c.nacks_injected + c.resv_drops +
                              c.forced_evictions + c.jitter_applied;
            EXPECT_FALSE(sys.watchdogState().tripped())
                << impl.label << " seed " << seed << ":\n"
                << sys.watchdogState().diagnosis();
        }
    }
    // The campaign must actually have exercised the fault paths.
    EXPECT_GT(total_injected, 0u);
}

TEST(Watchdog, DeadlockDetectedAndDiagnosed)
{
    Config cfg = smallConfig();
    cfg.txn_trace.enabled = true;
    System sys(cfg);
    Addr a = sys.allocAt(0, 8);
    // Black-hole the home node: node 1's GET_X vanishes, the event
    // queue drains, and the run must report a deadlock, not hang.
    sys.mesh().setHandler(0, [](const Msg &) {});
    sys.spawn(doStore(sys.proc(1), a, 7));
    RunResult r = sys.run();
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.diagnosis.find("deadlock"), std::string::npos)
        << r.diagnosis;
    EXPECT_NE(r.diagnosis.find("node 1"), std::string::npos)
        << r.diagnosis;
    sys.reapTasks();
}

TEST(Watchdog, LivelockRetryBoundTrips)
{
    Config cfg = smallConfig();
    // Every NACKable request is NACKed forever (no streak cap): a true
    // livelock. The retry bound must trip and name the victim.
    ASSERT_EQ(cfg.faults.parse("nack_prob=1.0,max_extra_nacks=0"), "");
    cfg.watchdog.enabled = true;
    cfg.watchdog.max_retries = 10;
    System sys(cfg);
    Addr a = sys.allocAt(0, 8);
    sys.spawn(doStore(sys.proc(1), a, 7));
    RunResult r = sys.run();
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.livelocked);
    EXPECT_NE(r.diagnosis.find("retry bound"), std::string::npos)
        << r.diagnosis;
    EXPECT_NE(r.diagnosis.find("node 1"), std::string::npos)
        << r.diagnosis;
    EXPECT_EQ(*sys.watchdogState().tripsCounter(), 1u);
    sys.reapTasks();
}

TEST(Watchdog, LivelockAgeBoundTrips)
{
    Config cfg = smallConfig();
    ASSERT_EQ(cfg.faults.parse("nack_prob=1.0,max_extra_nacks=0"), "");
    cfg.watchdog.enabled = true;
    cfg.watchdog.max_retries = 0; // retry bound off; age bound only
    cfg.watchdog.max_txn_age = 2000;
    cfg.watchdog.scan_period = 100;
    System sys(cfg);
    Addr a = sys.allocAt(0, 8);
    sys.spawn(doStore(sys.proc(1), a, 7));
    RunResult r = sys.run();
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.livelocked);
    EXPECT_NE(r.diagnosis.find("age bound"), std::string::npos)
        << r.diagnosis;
    sys.reapTasks();
}

TEST(Watchdog, QuietOnHealthyRun)
{
    Config cfg = smallConfig();
    cfg.watchdog.enabled = true;
    cfg.watchdog.max_retries = 100000;
    cfg.watchdog.max_txn_age = 5'000'000;
    cfg.watchdog.scan_period = 10'000;
    System sys(cfg);
    CounterAppResult r = runCounter(sys, Primitive::FAP, 4, 4);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.correct);
    EXPECT_FALSE(sys.watchdogState().tripped());
    EXPECT_EQ(*sys.watchdogState().tripsCounter(), 0u);
}
