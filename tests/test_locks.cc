/** @file Mutual-exclusion tests for the lock library, across the full
 *  (primitive x policy x variant) matrix the paper studies. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "sync/mcs_lock.hh"
#include "sync/ticket_lock.hh"
#include "sync/tts_lock.hh"

using namespace dsmtest;

namespace {

/** A tuple describing one lock configuration under test. */
struct LockCase
{
    Primitive prim;
    SyncPolicy policy;
    bool load_exclusive;
    bool drop_copy;
};

std::string
caseName(const testing::TestParamInfo<LockCase> &info)
{
    std::string s = toString(info.param.prim);
    s += "_";
    s += toString(info.param.policy);
    if (info.param.load_exclusive)
        s += "_lx";
    if (info.param.drop_copy)
        s += "_dc";
    return s;
}

std::vector<LockCase>
allCases()
{
    std::vector<LockCase> v;
    for (Primitive prim :
         {Primitive::FAP, Primitive::CAS, Primitive::LLSC}) {
        for (SyncPolicy pol :
             {SyncPolicy::INV, SyncPolicy::UPD, SyncPolicy::UNC}) {
            v.push_back({prim, pol, false, false});
        }
    }
    // Auxiliary-instruction combinations (INV only, as recommended).
    v.push_back({Primitive::CAS, SyncPolicy::INV, true, false});
    v.push_back({Primitive::CAS, SyncPolicy::INV, true, true});
    v.push_back({Primitive::FAP, SyncPolicy::INV, false, true});
    return v;
}

Config
caseConfig(const LockCase &c, int procs = 8)
{
    Config cfg = smallConfig(c.policy, procs);
    cfg.sync.use_load_exclusive = c.load_exclusive;
    cfg.sync.use_drop_copy = c.drop_copy;
    return cfg;
}

/** Increment a lock-protected counter; also check mutual exclusion via
 *  an "inside" flag that must never be seen set by an entrant. */
template <typename Lock>
Task
criticalSections(Proc &p, Lock &lock, Addr counter, Addr inside, int n,
                 bool *violation)
{
    for (int i = 0; i < n; ++i) {
        co_await lock.acquire(p);
        OpResult in = co_await p.load(inside);
        if (in.value != 0)
            *violation = true;
        co_await p.store(inside, 1);
        OpResult c = co_await p.load(counter);
        co_await p.compute(3);
        co_await p.store(counter, c.value + 1);
        co_await p.store(inside, 0);
        co_await lock.release(p);
    }
}

/** Ticket lock needs the ticket threaded through. */
Task
ticketSections(Proc &p, TicketLock &lock, Addr counter, Addr inside,
               int n, bool *violation)
{
    for (int i = 0; i < n; ++i) {
        Word t = co_await lock.acquire(p);
        if ((co_await p.load(inside)).value != 0)
            *violation = true;
        co_await p.store(inside, 1);
        Word v = (co_await p.load(counter)).value;
        co_await p.compute(3);
        co_await p.store(counter, v + 1);
        co_await p.store(inside, 0);
        co_await lock.release(p, t);
    }
}

} // namespace

class TtsLockMatrix : public testing::TestWithParam<LockCase>
{
};

TEST_P(TtsLockMatrix, MutualExclusionAndProgress)
{
    System sys(caseConfig(GetParam()));
    TtsLock lock(sys, GetParam().prim);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr inside = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    bool violation = false;
    const int per_proc = 8;
    for (NodeId n = 0; n < sys.numProcs(); ++n)
        sys.spawn(criticalSections(sys.proc(n), lock, counter, inside,
                                   per_proc, &violation));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(sys.debugRead(counter),
              static_cast<Word>(sys.numProcs() * per_proc));
    EXPECT_EQ(lock.acquisitions(),
              static_cast<std::uint64_t>(sys.numProcs() * per_proc));
    EXPECT_EQ(sys.debugRead(lock.addr()), 0u); // lock released
}

INSTANTIATE_TEST_SUITE_P(Matrix, TtsLockMatrix,
                         testing::ValuesIn(allCases()), caseName);

class McsLockMatrix : public testing::TestWithParam<LockCase>
{
};

TEST_P(McsLockMatrix, MutualExclusionAndProgress)
{
    System sys(caseConfig(GetParam()));
    McsLock lock(sys, GetParam().prim);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr inside = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    bool violation = false;
    const int per_proc = 8;
    for (NodeId n = 0; n < sys.numProcs(); ++n)
        sys.spawn(criticalSections(sys.proc(n), lock, counter, inside,
                                   per_proc, &violation));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(sys.debugRead(counter),
              static_cast<Word>(sys.numProcs() * per_proc));
    EXPECT_EQ(sys.debugRead(lock.tailAddr()), 0u); // queue empty
}

INSTANTIATE_TEST_SUITE_P(Matrix, McsLockMatrix,
                         testing::ValuesIn(allCases()), caseName);

class TicketLockMatrix : public testing::TestWithParam<LockCase>
{
};

TEST_P(TicketLockMatrix, MutualExclusionAndFifoProgress)
{
    System sys(caseConfig(GetParam()));
    TicketLock lock(sys, GetParam().prim);
    Addr counter = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    Addr inside = sys.alloc(BLOCK_BYTES, BLOCK_BYTES);
    bool violation = false;
    const int per_proc = 6;
    for (NodeId n = 0; n < sys.numProcs(); ++n)
        sys.spawn(ticketSections(sys.proc(n), lock, counter, inside,
                                 per_proc, &violation));
    runAll(sys);
    EXPECT_FALSE(violation);
    EXPECT_EQ(sys.debugRead(counter),
              static_cast<Word>(sys.numProcs() * per_proc));
    // All tickets consumed: next == serving.
    EXPECT_EQ(sys.debugRead(lock.nextTicketAddr()),
              sys.debugRead(lock.nowServingAddr()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, TicketLockMatrix,
                         testing::ValuesIn(allCases()), caseName);

TEST(Locks, UncontendedTtsAcquireIsCheap)
{
    System sys(smallConfig(SyncPolicy::INV));
    TtsLock lock(sys, Primitive::CAS);
    // Warm up: take and release once.
    sys.spawn([](Proc &p, TtsLock &l) -> Task {
        co_await l.acquire(p);
        co_await l.release(p);
        // Re-acquire: the line is still cached exclusive, so this must
        // not produce any network traffic.
        co_await l.acquire(p);
        co_await l.release(p);
    }(sys.proc(0), lock));
    runAll(sys);
    EXPECT_EQ(lock.failedAttempts(), 0u);
}
