/**
 * @file
 * Tests for the end-to-end transaction tracer: per-phase latency
 * attribution (phase sums must equal end-to-end latency), Table 1
 * chain validation, spin-loop iteration tracking, the Chrome trace
 * export (nested phase slices + flow arrows), and byte-identity of the
 * traced Experiment harvest between serial and parallel sweeps.
 */

#include <map>
#include <set>

#include "exp/experiment.hh"
#include "helpers.hh"
#include "json_parse.hh"
#include "proto/checker.hh"
#include "trace/txn.hh"

namespace {

using namespace dsmtest;

Config
txnConfig(SyncPolicy pol = SyncPolicy::INV, int procs = 4)
{
    Config cfg = smallConfig(pol, procs);
    cfg.txn_trace.enabled = true;
    return cfg;
}

Task
faaLoop(Proc &p, Addr a, int iters)
{
    for (int i = 0; i < iters; ++i)
        co_await p.fetchAdd(a, 1);
}

Task
tasLockLoop(Proc &p, Addr lock, int sections)
{
    for (int i = 0; i < sections; ++i) {
        while ((co_await p.testAndSet(lock)).value != 0) {
        }
        co_await p.compute(20);
        co_await p.store(lock, 0);
    }
}

/** Contended fetch_and_add run on a traced system. */
void
runContendedFaa(System &sys, int procs, int iters)
{
    Addr a = sys.allocSync();
    for (int p = 0; p < procs; ++p)
        sys.spawn(faaLoop(sys.proc(p), a, iters));
    runAll(sys);
}

TEST(TxnTrace, DisabledByDefault)
{
    System sys(smallConfig());
    Addr a = sys.allocSync();
    runOp(sys, 0, AtomicOp::FAA, a, 1);
    EXPECT_FALSE(sys.txns().enabled());
    EXPECT_EQ(sys.txns().completed(), 0u);
    EXPECT_TRUE(sys.txns().records().empty());
    // The registry must keep its untraced shape: no txn section.
    EXPECT_EQ(sys.statsJson().find("\"txn\""), std::string::npos);
    EXPECT_TRUE(checkChains(sys).empty());
}

TEST(TxnTrace, ConfigRejectsZeroCapacity)
{
    Config cfg = txnConfig();
    cfg.txn_trace.capacity = 0;
    EXPECT_NE(cfg.validate().find("txn_trace.capacity"),
              std::string::npos);
}

TEST(TxnTrace, PhaseSumsEqualEndToEndLatency)
{
    System sys(txnConfig(SyncPolicy::INV, 8));
    runContendedFaa(sys, 8, 8);

    const TxnTracer &tx = sys.txns();
    EXPECT_EQ(tx.completed(), 64u);
    EXPECT_EQ(tx.phaseSumMismatches(), 0u);
    EXPECT_EQ(tx.chainDivergences(), 0u);
    EXPECT_EQ(tx.markAnomalies(), 0u);
    EXPECT_TRUE(checkChains(sys).empty());

    ASSERT_EQ(tx.records().size(), 64u);
    for (const TxnRecord &r : tx.records()) {
        Tick sum = 0;
        for (int ph = 0; ph < NUM_TXN_PHASES; ++ph)
            sum += r.phase_sum[ph];
        EXPECT_EQ(sum, r.complete - r.issue)
            << "txn " << r.id << " phases do not partition its latency";

        // Spans must tile [issue, complete] without gaps or overlap.
        Tick cursor = r.issue;
        for (const TxnSpan &s : r.spans) {
            EXPECT_EQ(s.start, cursor);
            EXPECT_LT(s.start, s.end);
            cursor = s.end;
        }
        EXPECT_EQ(cursor, r.complete);
    }

    // The aggregate view must agree with the per-record partition.
    const PhaseAttribution &at = tx.attribution();
    EXPECT_EQ(at.completed(), 64u);
    EXPECT_GT(at.allTotalStat()->count, 0u);
}

TEST(TxnTrace, StatsJsonGainsTxnSectionWhenEnabled)
{
    System sys(txnConfig(SyncPolicy::INV, 4));
    runContendedFaa(sys, 4, 2);
    std::string json = sys.statsJson();
    EXPECT_NE(json.find("\"txn\""), std::string::npos);
    EXPECT_NE(json.find("\"completed\""), std::string::npos);
    JsonValue doc;
    ASSERT_TRUE(parseJsonOrFail(json, &doc));
}

TEST(TxnTrace, DirectedChainsMatchTable1)
{
    // INV store to a remote-exclusive line: 4 serialized messages
    // (req -> home -> owner -> home -> requester); the follow-up store
    // hits the now-exclusive local copy: 0 messages.
    System sys(txnConfig(SyncPolicy::INV, 4));
    Addr a = sys.allocSyncAt(2);
    runOp(sys, 1, AtomicOp::STORE, a, 7); // node 1 becomes owner
    runOp(sys, 0, AtomicOp::STORE, a, 8); // remote exclusive: chain 4
    runOp(sys, 0, AtomicOp::STORE, a, 9); // cached exclusive: chain 0

    const TxnTracer &tx = sys.txns();
    ASSERT_EQ(tx.records().size(), 3u);
    const TxnRecord &remote = tx.records()[1];
    EXPECT_EQ(remote.observed_chain, 4);
    EXPECT_EQ(remote.expected_chain, 4);
    EXPECT_TRUE(remote.forwarded);
    EXPECT_EQ(remote.owner, 1);
    const TxnRecord &hit = tx.records()[2];
    EXPECT_EQ(hit.observed_chain, 0);
    EXPECT_EQ(hit.expected_chain, 0);
    EXPECT_EQ(tx.chainDivergences(), 0u);
}

TEST(TxnTrace, ExpectedChainFormula)
{
    TxnRecord r;
    r.proc = 0;
    EXPECT_EQ(TxnTracer::expectedChain(r), 0); // unserviced

    r.serviced = true;
    r.home = 1;
    EXPECT_EQ(TxnTracer::expectedChain(r), 2); // req + reply

    r.home = 0;
    EXPECT_EQ(TxnTracer::expectedChain(r), 0); // local home, no traffic

    r.home = 1;
    r.forwarded = true;
    r.owner = 3;
    EXPECT_EQ(TxnTracer::expectedChain(r), 4); // via the remote owner

    // An invalidation to sharer 2 serializes req -> inv -> ack: 3, but
    // the forwarded reply chain (4) is longer and wins.
    r.fanout_mask = 1ull << 2;
    EXPECT_EQ(TxnTracer::expectedChain(r), 4);

    r.forwarded = false;
    EXPECT_EQ(TxnTracer::expectedChain(r), 3);

    // A sharer colocated with the requester acks locally: hop saved.
    r.fanout_mask = 1ull << 0;
    EXPECT_EQ(TxnTracer::expectedChain(r), 2);
}

TEST(TxnTrace, SpinLoopIterationsRecorded)
{
    System sys(txnConfig(SyncPolicy::INV, 4));
    Addr lock = sys.allocSync();
    for (int p = 0; p < 4; ++p)
        sys.spawn(tasLockLoop(sys.proc(p), lock, 2));
    runAll(sys);

    const TxnTracer &tx = sys.txns();
    EXPECT_EQ(tx.phaseSumMismatches(), 0u);
    EXPECT_EQ(tx.chainDivergences(), 0u);
    bool spun = false;
    for (const TxnRecord &r : tx.records())
        if (r.op == AtomicOp::TAS && r.loop_iter > 0)
            spun = true;
    EXPECT_TRUE(spun) << "contended TAS never recorded a spin iteration";
}

TEST(TxnTrace, ChromeExportNestedSlicesAndFlows)
{
    System sys(txnConfig(SyncPolicy::INV, 4));
    runContendedFaa(sys, 4, 4);

    std::string json = sys.txns().exportChromeJson();
    JsonValue doc;
    ASSERT_TRUE(parseJsonOrFail(json, &doc));
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Partition events; validate the required fields per kind.
    std::vector<const JsonValue *> roots, phases;
    std::map<double, int> flow_s, flow_f;
    bool has_process_name = false;
    for (const JsonValue &e : events->array) {
        std::string ph = e.str("ph");
        if (ph == "M") {
            has_process_name |= e.str("name") == "process_name";
            continue;
        }
        if (ph == "X") {
            ASSERT_TRUE(e.find("ts") != nullptr &&
                        e.find("ts")->isNumber());
            ASSERT_TRUE(e.find("dur") != nullptr &&
                        e.find("dur")->isNumber());
            if (e.str("cat") == "txn")
                roots.push_back(&e);
            else if (e.str("cat") == "txn_phase")
                phases.push_back(&e);
            continue;
        }
        if (ph == "s" || ph == "t" || ph == "f") {
            EXPECT_EQ(e.str("cat"), "txn_flow");
            double id = e.num("id");
            if (ph == "s")
                ++flow_s[id];
            if (ph == "f") {
                ++flow_f[id];
                EXPECT_EQ(e.str("bp"), "e");
            }
        }
    }
    EXPECT_TRUE(has_process_name);
    EXPECT_EQ(roots.size(), 16u);
    EXPECT_FALSE(phases.empty());

    // Every phase slice nests inside a root slice on the same thread.
    for (const JsonValue *p : phases) {
        double ts = p->num("ts"), dur = p->num("dur");
        double tid = p->num("tid");
        bool contained = false;
        for (const JsonValue *r : roots) {
            if (r->num("tid") != tid)
                continue;
            if (r->num("ts") <= ts &&
                ts + dur <= r->num("ts") + r->num("dur"))
                contained = true;
        }
        EXPECT_TRUE(contained)
            << "phase slice " << p->str("name") << " at ts=" << ts
            << " is not contained in any txn slice";
    }

    // Flow arrows pair up: one start and one end per flow id.
    EXPECT_FALSE(flow_s.empty());
    EXPECT_EQ(flow_s.size(), flow_f.size());
    for (const auto &[id, n] : flow_s) {
        EXPECT_EQ(n, 1);
        EXPECT_EQ(flow_f.count(id), 1u);
    }
}

TEST(TxnTrace, TracedExperimentSerialMatchesParallel)
{
    auto build = [] {
        Experiment ex("txn_identity", smallConfig(SyncPolicy::INV, 4));
        ex.quiet(true).table(false).writeReport(false).traceTxns(true);
        for (int k = 0; k < 4; ++k) {
            Config cfg = smallConfig(SyncPolicy::INV, 4);
            cfg.machine.seed = 1000 + static_cast<unsigned>(k);
            ex.point(csprintf("p%d", k), "", cfg, [](System &sys) {
                Addr a = sys.allocSync();
                for (int p = 0; p < 4; ++p)
                    sys.spawn(faaLoop(sys.proc(p), a, 3));
                RunResult rr = sys.run();
                EXPECT_TRUE(rr.completed);
                sys.reapTasks();
                PointResult res;
                res.metrics = collectRunMetrics(sys);
                return res;
            });
        }
        return ex;
    };

    Experiment serial = build();
    serial.run(1);
    Experiment parallel = build();
    parallel.run(4);

    EXPECT_EQ(serial.reportJson(), parallel.reportJson());
    ASSERT_EQ(serial.results().size(), parallel.results().size());
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        EXPECT_EQ(serial.results()[i].txn_events,
                  parallel.results()[i].txn_events)
            << "point " << i << " trace differs between schedules";
        EXPECT_EQ(serial.results()[i].txn_summary,
                  parallel.results()[i].txn_summary);
        EXPECT_GT(serial.results()[i].txn_events.size(), 2u);
    }
    // The attribution section of the report must be present and equal.
    EXPECT_NE(serial.reportJson().find("\"txn_phases\""),
              std::string::npos);
}

} // namespace
